//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the small slice of `rand` 0.8 it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers `gen`,
//! `gen_range` and `gen_bool`. The generator is xoshiro256++ seeded via
//! splitmix64 — deterministic for a given seed, which is all the synthetic
//! workload generators and tests rely on (they constrain statistics by
//! construction, not by distribution of a specific engine).

#![forbid(unsafe_code)]

/// Core infallible random-number source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Integer types uniformly samplable over a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 {
                    // Full-width range of a 128-bit type: any value works.
                    return u128::sample(rng) as $t;
                }
                // Widening multiply keeps bias negligible for test-sized spans.
                let draw = u128::from(rng.next_u64()) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + num_dec::One> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(rng, self.start, num_dec::One::dec(self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

mod num_dec {
    /// Decrement helper so `lo..hi` can reuse the inclusive sampler.
    pub trait One {
        /// `self - 1`.
        fn dec(self) -> Self;
    }
    macro_rules! impl_one {
        ($($t:ty),*) => {$(impl One for $t { fn dec(self) -> Self { self - 1 } })*};
    }
    impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// User-facing convenience methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value within `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// `StdRng`; same API, different — but stable — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let v = r.gen_range(0..=16u32);
            assert!(v <= 16);
            let v = r.gen_range(0..5usize);
            assert!(v < 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits {hits}");
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
    }

    #[test]
    fn range_values_cover_domain() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
