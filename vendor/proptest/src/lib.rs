//! Offline mini-implementation of the `proptest` API surface this
//! workspace uses.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This stand-in keeps the same *interface* — `proptest!`,
//! `Strategy` with `prop_map`/`prop_filter_map`, `any::<T>()`, ranges and
//! tuples as strategies, `collection::vec`, `option::of`, `prop_oneof!`,
//! `Just`, `prop::sample::Index`, and the `prop_assert*`/`prop_assume!`
//! macros — but generates cases with a plain seeded RNG and reports the
//! failing case without shrinking. Failures print the case number and the
//! per-test deterministic seed, which is enough to reproduce: the same
//! test binary replays the identical sequence.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A generator of values of one type. Unlike real proptest there is no
/// value tree and no shrinking; `generate` draws a fresh value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values `f` maps to `Some`, retrying the draw otherwise.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f, whence }
    }

    /// Keeps only values satisfying `f`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, whence }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

/// Draw retries before a filter gives up.
const FILTER_RETRIES: usize = 10_000;

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.whence);
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

/// Strategy yielding a fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::Rng::gen::<$t>(rng)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool);

/// Strategy for any value of `T`; see [`any`].
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&str` patterns generate matching strings, as in real proptest. Only
/// the subset this workspace uses is supported: literal characters and
/// `[abc]` character classes (no ranges, repetition or alternation).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = self.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '[' => {
                    let mut class: Vec<char> = Vec::new();
                    for c in chars.by_ref() {
                        if c == ']' {
                            break;
                        }
                        class.push(c);
                    }
                    assert!(!class.is_empty(), "empty character class in pattern {self:?}");
                    out.push(class[rand::Rng::gen_range(rng, 0..class.len())]);
                }
                '\\' => out.push(chars.next().unwrap_or('\\')),
                '.' | '*' | '+' | '?' | '(' | ')' | '{' | '}' | '|' => {
                    panic!("string pattern {self:?}: unsupported regex syntax {c:?}")
                }
                other => out.push(other),
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for vectors of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rand::Rng::gen_range(rng, self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// Strategy yielding `Some(inner)` three times out of four, `None`
    /// otherwise (real proptest also biases toward `Some`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rand::Rng::gen_range(rng, 0..4u32) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use site.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `0..len`.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rand::Rng::gen::<u64>(rng))
        }
    }
}

/// Namespace mirror (`prop::sample::Index`, etc.).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

/// Union of same-typed strategies; used by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds from boxed alternatives.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rand::Rng::gen_range(rng, 0..self.options.len());
        self.options[i].generate(rng)
    }
}

pub mod test_runner {
    //! Case-execution plumbing used by the [`proptest!`][crate::proptest]
    //! macro expansion.

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Successful cases required.
        pub cases: u32,
        /// Rejected draws tolerated before the test errors out.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Self::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — draw again, not a failure.
        Reject(String),
        /// `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Constructs a failure.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Constructs a rejection.
        #[must_use]
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result of one case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// FNV-1a over the test path — the per-test deterministic seed.
    #[must_use]
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `case` until `config.cases` draws pass.
    ///
    /// # Panics
    /// Panics on the first failing case (no shrinking) or when rejects
    /// exceed `config.max_global_rejects`.
    pub fn run(
        test_path: &str,
        config: &ProptestConfig,
        mut case: impl FnMut(&mut crate::TestRng) -> TestCaseResult,
    ) {
        let seed = seed_for(test_path);
        let mut rng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(seed);
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let mut draws: u64 = 0;
        while passed < config.cases {
            draws += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.max_global_rejects,
                        "{test_path}: too many prop_assume! rejections \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{test_path}: property failed at draw {draws} \
                         (seed {seed:#x}, no shrinking): {msg}"
                    );
                }
            }
        }
    }
}

/// The entry macro: declares `#[test]` functions whose arguments are drawn
/// from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            $crate::test_runner::run(test_path, &config, |rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// `prop_assert!`: like `assert!` but routed through the case result.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!`: like `assert_eq!` but routed through the case result.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// `prop_assert_ne!`: like `assert_ne!` but routed through the case result.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// `prop_assume!`: reject the current draw without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// `prop_oneof!`: uniform choice among listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The prelude, as in real proptest.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..=6), c in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            let _ = c;
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u8..255, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn filter_map_and_assume(
            x in (0u32..100).prop_filter_map("even", |x| (x % 2 == 0).then_some(x))
        ) {
            prop_assume!(x != 2);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(7u8)]) {
            prop_assert!(v == 1 || v == 7);
        }

        #[test]
        fn index_in_bounds(i in any::<prop::sample::Index>()) {
            prop_assert!(i.index(13) < 13);
        }
    }

    #[test]
    fn option_of_yields_both_variants() {
        use rand::SeedableRng;
        let s = crate::option::of(0u32..5);
        let mut rng = crate::TestRng::seed_from_u64(1);
        let draws: Vec<_> = (0..200).map(|_| crate::Strategy::generate(&s, &mut rng)).collect();
        assert!(draws.iter().any(Option::is_some));
        assert!(draws.iter().any(Option::is_none));
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        crate::test_runner::run("t", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
