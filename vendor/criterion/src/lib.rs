//! Offline minimal stand-in for the `criterion` bench harness.
//!
//! The build environment has no network access, so this crate supplies
//! the API the workspace's benches use — `criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups,
//! `BenchmarkId` and `black_box` — with a simple calibrated wall-clock
//! measurement loop and plain text output. No statistics, plots or
//! comparisons; good enough to run `cargo bench` and eyeball numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier (re-exported from std).
pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", name.into()) }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `self.iters` times, recording total elapsed time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Configuration + runner handle.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, measurement_time: Duration::from_millis(500) }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&id.to_string(), self.sample_size, self.measurement_time, f);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        run_bench(&full, self.criterion.sample_size, self.criterion.measurement_time, f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_bench(id: &str, samples: usize, budget: Duration, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: grow iteration count until one sample costs >= ~1ms or
    // the budget share is reached.
    let mut iters: u64 = 1;
    let per_sample = budget / samples.max(1) as u32;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1).min(per_sample) || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(4);
    }
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        best = best.min(b.elapsed);
        total += b.elapsed;
    }
    let mean_ns = total.as_nanos() as f64 / (samples as u64 * iters) as f64;
    let best_ns = best.as_nanos() as f64 / iters as f64;
    println!("bench {id:<48} {mean_ns:>12.1} ns/iter (best {best_ns:.1} ns, {iters} iters x {samples} samples)");
}

/// Declares a benchmark group runner, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs listed groups. Accepts and ignores
/// criterion's CLI flags (notably the `--bench`/`--test` args cargo
/// passes), so `cargo bench` and `cargo test --benches` both work.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the harness passes `--test`; benches are
            // compile-checked but not run, matching criterion's behavior.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(10));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
        let mut g = c.benchmark_group("g");
        g.bench_function(BenchmarkId::new("x", 5), |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("mtl", 300).to_string(), "mtl/300");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
