//! The reproduction's central correctness property: for arbitrary rule
//! populations, the decomposition architecture classifies every header
//! exactly like the highest-priority-match reference — including the
//! nasty cases (nested prefixes at the same trie level, wildcards,
//! default routes, overlapping ranges).

use openflow_mtl::prelude::*;
use proptest::prelude::*;

/// Reference: highest priority, then specificity.
fn reference(set: &FilterSet, header: &HeaderValues) -> Verdict {
    set.rules
        .iter()
        .filter(|r| r.flow_match.matches(header))
        .max_by_key(|r| (r.priority, r.flow_match.specificity()))
        .map(|r| match r.action {
            RuleAction::Forward(p) => Verdict::Output(p),
            RuleAction::Deny => Verdict::Drop,
            RuleAction::Controller => Verdict::ToController,
        })
        .unwrap_or(Verdict::ToController)
}

/// Routing-style rule: (port, prefix value bits, len) -> forward.
fn routing_rule_strategy() -> impl Strategy<Value = (u32, u32, u32)> {
    // Small port domain and clustered prefixes maximise collisions and
    // nesting.
    (0u32..4, any::<u32>(), 0u32..=32)
}

fn build_routing_set(raw: Vec<(u32, u32, u32)>) -> FilterSet {
    let mut seen = std::collections::HashSet::new();
    let rules: Vec<Rule> = raw
        .into_iter()
        .filter_map(|(port, value, len)| {
            // Cluster values into a narrow space so prefixes nest often.
            let value = value & 0x0003_0F0F;
            let masked = if len == 0 {
                0
            } else {
                u128::from(value) & oflow::flow_match::prefix_mask(32, len)
            };
            if !seen.insert((port, masked, len)) {
                return None;
            }
            Some(Rule::new(
                0,
                len as u16,
                FlowMatch::any()
                    .with_exact(MatchFieldKind::InPort, u128::from(port))
                    .unwrap()
                    .with_prefix(MatchFieldKind::Ipv4Dst, masked, len)
                    .unwrap(),
                RuleAction::Forward(port * 100 + len),
            ))
        })
        .collect();
    FilterSet::new("prop", FilterKind::Routing, rules)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decomposition == reference for arbitrary nested routing rules.
    #[test]
    fn routing_equivalence(
        raw in proptest::collection::vec(routing_rule_strategy(), 1..60),
        headers in proptest::collection::vec((0u32..5, any::<u32>()), 50)
    ) {
        let set = build_routing_set(raw);
        prop_assume!(!set.is_empty());
        let config = SwitchConfig::single_app(FilterKind::Routing, 0);
        let sw = MtlSwitch::build(&config, &[&set]);
        for (port, dst) in headers {
            // Bias headers into the clustered space half the time.
            let dst = dst & 0x0003_0FFF;
            let h = HeaderValues::new()
                .with(MatchFieldKind::InPort, u128::from(port))
                .with(MatchFieldKind::Ipv4Dst, u128::from(dst));
            prop_assert_eq!(
                sw.classify(&h).verdict,
                reference(&set, &h),
                "header {}", h
            );
        }
    }

    /// Same property on the flat (single-table, multi-field) preset.
    #[test]
    fn flat_equivalence(
        raw in proptest::collection::vec(routing_rule_strategy(), 1..40),
        headers in proptest::collection::vec((0u32..5, any::<u32>()), 30)
    ) {
        let set = build_routing_set(raw);
        prop_assume!(!set.is_empty());
        let config = SwitchConfig::flat_app(FilterKind::Routing, 0);
        let sw = MtlSwitch::build(&config, &[&set]);
        for (port, dst) in headers {
            let dst = dst & 0x0003_0FFF;
            let h = HeaderValues::new()
                .with(MatchFieldKind::InPort, u128::from(port))
                .with(MatchFieldKind::Ipv4Dst, u128::from(dst));
            prop_assert_eq!(
                sw.classify(&h).verdict,
                reference(&set, &h),
                "header {}", h
            );
        }
    }

    /// MAC sets (exact/exact) are the easy case; verify anyway.
    #[test]
    fn mac_equivalence(
        raw in proptest::collection::vec((0u32..8, 0u64..64), 1..50),
        headers in proptest::collection::vec((0u32..10, 0u64..80), 40)
    ) {
        let mut seen = std::collections::HashSet::new();
        let rules: Vec<Rule> = raw
            .into_iter()
            .filter(|k| seen.insert(*k))
            .map(|(vlan, mac)| {
                Rule::new(
                    0,
                    1,
                    FlowMatch::any()
                        .with_exact(MatchFieldKind::VlanVid, u128::from(vlan))
                        .unwrap()
                        .with_exact(MatchFieldKind::EthDst, u128::from(mac))
                        .unwrap(),
                    RuleAction::Forward(vlan + 1),
                )
            })
            .collect();
        let set = FilterSet::new("prop", FilterKind::MacLearning, rules);
        let config = SwitchConfig::single_app(FilterKind::MacLearning, 0);
        let sw = MtlSwitch::build(&config, &[&set]);
        for (vlan, mac) in headers {
            let h = HeaderValues::new()
                .with(MatchFieldKind::VlanVid, u128::from(vlan))
                .with(MatchFieldKind::EthDst, u128::from(mac));
            prop_assert_eq!(sw.classify(&h).verdict, reference(&set, &h));
        }
    }
}

/// Deterministic regression cases distilled from the proptest shrinker
/// during development.
#[test]
fn regression_same_level_nesting_with_default() {
    let rules = vec![
        (1u32, 0u128, 0u32),  // default via port 1
        (2, 0x0003_0000, 18), // /18
        (1, 0x0003_0C00, 22), // /22 nested inside the /18 (same L1 level of lower trie? lens 18,22)
        (3, 0x0003_0F00, 24), // /24 deeper
    ];
    let rules: Vec<Rule> = rules
        .into_iter()
        .enumerate()
        .map(|(i, (port, v, len))| {
            Rule::new(
                i as u32,
                len as u16,
                FlowMatch::any()
                    .with_exact(MatchFieldKind::InPort, u128::from(port))
                    .unwrap()
                    .with_prefix(MatchFieldKind::Ipv4Dst, v, len)
                    .unwrap(),
                RuleAction::Forward(port * 10),
            )
        })
        .collect();
    let set = FilterSet::new("reg", FilterKind::Routing, rules);
    let sw = MtlSwitch::build(&SwitchConfig::single_app(FilterKind::Routing, 0), &[&set]);
    for port in 0u32..4 {
        for dst in [0u128, 0x0003_0000, 0x0003_0C01, 0x0003_0F55, 0x0003_0FFF, 0xFFFF_FFFF] {
            let h = HeaderValues::new()
                .with(MatchFieldKind::InPort, u128::from(port))
                .with(MatchFieldKind::Ipv4Dst, dst);
            assert_eq!(sw.classify(&h).verdict, reference(&set, &h), "port {port} dst {dst:#x}");
        }
    }
}
