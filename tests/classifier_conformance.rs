//! Trait-conformance suite for the unified `Classifier` API.
//!
//! One parameterized harness checks every implementation — the
//! decomposition architecture and all four baselines — against
//! `reference_classify` on synthesized ACL, routing and MAC filter sets,
//! and checks that `classify_batch` agrees with per-packet `classify`
//! element by element. Adding a new engine to the conformance list is the
//! whole cost of validating it.

use classifier_api::{
    reference_classify, BuildError, Classifier, ClassifierBuilder, DynamicClassifier,
};
use mtl_core::MtlSwitch;
use ofbaseline::hicuts::HiCutsTree;
use ofbaseline::linear::LinearClassifier;
use ofbaseline::tcam::TcamModel;
use ofbaseline::tss::TupleSpaceSearch;
use offilter::synth::{
    generate_acl, generate_mac, generate_routing, AclConfig, MacTargets, RoutingTargets,
};
use offilter::{FilterKind, FilterSet};
use oflow::{FieldMatch, HeaderValues, MatchFieldKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds every `Classifier` implementation over one set.
fn all_classifiers(set: &FilterSet) -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(LinearClassifier::try_build(set).expect("linear builds")),
        Box::new(TcamModel::try_build(set).expect("tcam builds")),
        Box::new(TupleSpaceSearch::try_build(set).expect("tss builds")),
        Box::new(HiCutsTree::try_build(set).expect("hicuts builds")),
        Box::new(<MtlSwitch as ClassifierBuilder>::try_build(set).expect("mtl builds")),
    ]
}

/// Headers stressing a set: rule-derived (free bits randomized) + random.
fn probe_headers(set: &FilterSet, n: usize, seed: u64) -> Vec<HeaderValues> {
    let mut rng = StdRng::seed_from_u64(seed);
    let fields = set.kind.fields();
    (0..n)
        .map(|i| {
            let mut h = HeaderValues::new();
            // Random floor for every field the application matches.
            for &field in fields {
                let width = field.bit_width().min(64);
                let v = u128::from(rng.gen::<u64>()) & ((1u128 << width) - 1);
                h.set(field, v);
            }
            if i % 2 == 0 {
                // Overlay a rule's own constraints half the time.
                let r = &set.rules[rng.gen_range(0..set.len())];
                for &field in fields {
                    match r.field(field) {
                        FieldMatch::Exact(v) => {
                            h.set(field, v);
                        }
                        FieldMatch::Prefix { value, len } => {
                            let free = field.bit_width() - len;
                            let fill = if free == 0 {
                                0
                            } else {
                                u128::from(rng.gen::<u64>()) & ((1 << free) - 1)
                            };
                            h.set(field, value | fill);
                        }
                        FieldMatch::Range { lo, hi } => {
                            let span = (hi - lo) as u64;
                            h.set(field, lo + u128::from(rng.gen::<u64>() % (span + 1)));
                        }
                        FieldMatch::Any => {}
                    }
                }
            }
            h
        })
        .collect()
}

/// The conformance property: classify == oracle, batch == per-packet,
/// par_classify_batch == batch for any thread count, and the cost
/// surfaces report sane values.
fn assert_conformance(set: &FilterSet, probes: usize, seed: u64) {
    let headers = probe_headers(set, probes, seed);
    for classifier in all_classifiers(set) {
        let name = classifier.name().to_owned();
        let batch = classifier.classify_batch(&headers);
        assert_eq!(batch.len(), headers.len(), "{name}: batch length");
        for (h, batched) in headers.iter().zip(&batch) {
            let want = reference_classify(&set.rules, h);
            assert_eq!(classifier.classify(h), want, "{name} vs oracle on {h}");
            assert_eq!(*batched, want, "{name} batch vs oracle on {h}");
            assert!(classifier.lookup_accesses(h) >= 1, "{name}: zero-cost lookup");
        }
        // Sharded classification is element-wise identical to the batch
        // (and hence to per-packet classify), for thread counts that
        // divide the batch, don't, and exceed it.
        for threads in [1, 2, 3, 8, probes + 7] {
            let par = classifier.par_classify_batch(&headers, threads);
            assert_eq!(par, batch, "{name}: par({threads}) vs batch");
        }
        assert!(classifier.classify_batch(&[]).is_empty(), "{name}: empty batch");
        assert!(classifier.par_classify_batch(&[], 4).is_empty(), "{name}: empty par batch");
        assert!(classifier.memory_bits() > 0, "{name}: zero memory");
        assert!(classifier.build_records() > 0, "{name}: zero build records");
    }
}

#[test]
fn conformance_on_routing_sets() {
    for (rules, seed) in [(120, 51u64), (400, 52)] {
        let set = generate_routing(
            &RoutingTargets {
                name: "conf".into(),
                rules,
                port_unique: 8,
                ip_partitions: [rules / 12, rules / 2],
                short_prefixes: 3,
                out_ports: 8,
            },
            seed,
        );
        assert_conformance(&set, 400, seed ^ 0xABCD);
    }
}

#[test]
fn conformance_on_mac_sets() {
    let set = generate_mac(
        &MacTargets {
            name: "conf".into(),
            rules: 300,
            vlan_unique: 12,
            eth_partitions: [8, 60, 200],
            ports: 8,
        },
        61,
    );
    assert_conformance(&set, 400, 62);
}

#[test]
fn conformance_on_acl_sets() {
    let set = generate_acl(&AclConfig { rules: 250, ..AclConfig::default() }, 71);
    assert_conformance(&set, 400, 72);
}

#[test]
fn conformance_on_range_heavy_acl() {
    // Nested ranges stress TCAM expansion and the decomposition's
    // completion entries at once.
    let set =
        generate_acl(&AclConfig { rules: 300, range_fraction: 0.8, ..AclConfig::default() }, 73);
    assert_conformance(&set, 300, 74);
}

#[test]
fn conformance_on_tiny_and_degenerate_sets() {
    use offilter::{Rule, RuleAction};
    use oflow::FlowMatch;
    // Single rule.
    let one = FilterSet::new(
        "one",
        FilterKind::Routing,
        vec![Rule::new(
            0,
            8,
            FlowMatch::any()
                .with_exact(MatchFieldKind::InPort, 1)
                .unwrap()
                .with_prefix(MatchFieldKind::Ipv4Dst, 0x0A00_0000, 8)
                .unwrap(),
            RuleAction::Forward(1),
        )],
    );
    assert_conformance(&one, 100, 81);
}

#[test]
fn builders_report_errors_not_panics() {
    use offilter::{Rule, RuleAction};
    use oflow::FlowMatch;
    // A routing rule with a range on the in-port, which the architecture's
    // EM-LUT assignment cannot store. Baselines accept it; MtlSwitch must
    // report the typed error.
    let set = FilterSet::new(
        "bad",
        FilterKind::Routing,
        vec![Rule::new(
            0,
            1,
            FlowMatch::any()
                .with_range(MatchFieldKind::InPort, 1, 4)
                .unwrap()
                .with_prefix(MatchFieldKind::Ipv4Dst, 0, 0)
                .unwrap(),
            RuleAction::Forward(1),
        )],
    );
    assert!(LinearClassifier::try_build(&set).is_ok());
    assert!(TcamModel::try_build(&set).is_ok());
    assert!(TupleSpaceSearch::try_build(&set).is_ok());
    assert!(HiCutsTree::try_build(&set).is_ok());
    let err = <MtlSwitch as ClassifierBuilder>::try_build(&set).unwrap_err();
    assert!(
        matches!(err, BuildError::UnsupportedConstraint { .. }),
        "expected UnsupportedConstraint, got {err:?}"
    );
    // The error formats usefully.
    assert!(err.to_string().contains("in_port"), "{err}");
}

#[test]
fn dynamic_classifiers_stay_conformant_under_updates() {
    let set = generate_routing(
        &RoutingTargets {
            name: "dyn".into(),
            rules: 200,
            port_unique: 8,
            ip_partitions: [16, 100],
            short_prefixes: 2,
            out_ports: 8,
        },
        91,
    );
    let (seed_rules, tail) = set.rules.split_at(150);
    let seed_set = FilterSet::new("dyn", FilterKind::Routing, seed_rules.to_vec());

    let mut dynamics: Vec<Box<dyn DynamicClassifier>> = vec![
        Box::new(TupleSpaceSearch::try_build(&seed_set).expect("tss builds")),
        Box::new(<MtlSwitch as ClassifierBuilder>::try_build(&seed_set).expect("mtl builds")),
    ];
    for d in &mut dynamics {
        for rule in tail {
            d.insert_rule(rule.clone()).expect("insert works");
        }
    }
    // After the inserts both engines classify the full set correctly.
    let headers = probe_headers(&set, 300, 92);
    for d in &dynamics {
        for h in &headers {
            assert_eq!(
                d.classify(h),
                reference_classify(&set.rules, h),
                "{} after inserts on {h}",
                d.name()
            );
        }
    }
    // Removing the inserted tail restores the seed behaviour.
    for d in &mut dynamics {
        for rule in tail {
            assert!(d.remove_rule(rule.id).is_some(), "{}: rule {}", d.name(), rule.id);
        }
        for h in &headers {
            assert_eq!(
                d.classify(h),
                reference_classify(&seed_set.rules, h),
                "{} after removals on {h}",
                d.name()
            );
        }
    }
}
