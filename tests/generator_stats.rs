//! The substitution contract: for arbitrary feasible targets, the
//! constrained generators reproduce the requested statistics exactly —
//! this is what justifies standing synthetic data in for the Stanford
//! backbone sets (DESIGN.md §2).

use offilter::analysis::{prefix_length_histogram, survey_mac, survey_routing};
use offilter::synth::{generate_mac, generate_routing, MacTargets, RoutingTargets};
use oflow::MatchFieldKind;
use proptest::prelude::*;

fn mac_targets() -> impl Strategy<Value = MacTargets> {
    (50usize..400, 1usize..30, 1usize..20, 1usize..60, 1usize..120).prop_filter_map(
        "feasible combination space",
        |(rules, vlan, hi, mid, lo)| {
            let vlan = vlan.min(rules);
            let (hi, mid, lo) = (hi.min(rules), mid.min(rules), lo.min(rules));
            if (hi as u128) * (mid as u128) * (lo as u128) < rules as u128 {
                return None;
            }
            Some(MacTargets {
                name: "prop".into(),
                rules,
                vlan_unique: vlan,
                eth_partitions: [hi, mid, lo],
                ports: 8,
            })
        },
    )
}

fn routing_targets() -> impl Strategy<Value = RoutingTargets> {
    (60usize..400, 1usize..25, 2usize..40, 2usize..200, 0usize..6).prop_filter_map(
        "feasible combination space",
        |(rules, ports, hi, lo, shorts)| {
            let ports = ports.min(rules);
            let (hi, lo) = (hi.min(rules), lo.min(rules));
            if (hi as u128) * (lo as u128) < rules as u128 {
                return None;
            }
            Some(RoutingTargets {
                name: "prop".into(),
                rules,
                port_unique: ports,
                ip_partitions: [hi, lo],
                short_prefixes: shorts.min(rules - 1).min(hi),
                out_ports: 8,
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MAC sets hit their targets exactly, with unique MACs per rule.
    #[test]
    fn mac_generator_exact(t in mac_targets(), seed in any::<u64>()) {
        let set = generate_mac(&t, seed);
        let s = survey_mac(&set);
        prop_assert_eq!(s.rules, t.rules);
        prop_assert_eq!(s.vlan_unique, t.vlan_unique);
        prop_assert_eq!(s.eth_partitions, t.eth_partitions);
        let macs: std::collections::HashSet<u128> = set
            .rules
            .iter()
            .map(|r| r.field_as_prefix(MatchFieldKind::EthDst).unwrap().0)
            .collect();
        prop_assert_eq!(macs.len(), set.len(), "MACs must be unique");
    }

    /// Routing sets hit their targets exactly, with unique prefixes,
    /// aligned values and priority == prefix length.
    #[test]
    fn routing_generator_exact(t in routing_targets(), seed in any::<u64>()) {
        let set = generate_routing(&t, seed);
        let s = survey_routing(&set);
        prop_assert_eq!(s.rules, t.rules);
        prop_assert_eq!(s.port_unique, t.port_unique);
        prop_assert_eq!(s.ip_partitions, t.ip_partitions);

        let mut prefixes = std::collections::HashSet::new();
        for r in &set.rules {
            let (v, len) = r.field_as_prefix(MatchFieldKind::Ipv4Dst).unwrap();
            prop_assert!(prefixes.insert((v, len)), "duplicate prefix {:#x}/{}", v, len);
            if len < 32 {
                prop_assert_eq!(v & ((1u128 << (32 - len)) - 1), 0, "unaligned {:#x}/{}", v, len);
            }
            prop_assert_eq!(u32::from(r.priority), len);
        }
    }

    /// Determinism: the same seed gives the same set; different seeds
    /// (almost always) differ.
    #[test]
    fn generators_deterministic(t in routing_targets(), seed in any::<u64>()) {
        let a = generate_routing(&t, seed);
        let b = generate_routing(&t, seed);
        prop_assert_eq!(a, b);
    }

    /// Short prefixes appear when requested (including the default route).
    #[test]
    fn short_prefixes_present(t in routing_targets()) {
        prop_assume!(t.short_prefixes >= 1);
        let set = generate_routing(&t, 1);
        let hist = prefix_length_histogram(&set.rules, MatchFieldKind::Ipv4Dst);
        let shorts: usize = hist[..16].iter().sum();
        prop_assert!(shorts >= 1, "no short prefixes generated");
        prop_assert!(hist[0] >= 1, "no default route");
    }
}
