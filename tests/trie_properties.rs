//! Property tests on the multi-bit trie: LPM agreement with a reference
//! scan, ancestor-closure completeness, rebuild idempotence, and node
//! accounting invariants.

use ofalgo::trie::TrieSizing;
use ofalgo::{Label, Mbt, PartitionedTrie, StrideSchedule};
use proptest::prelude::*;

/// Reference LPM over raw prefixes.
fn ref_lpm(prefixes: &[(u64, u32)], key: u64, width: u32) -> Option<(usize, u32)> {
    prefixes
        .iter()
        .enumerate()
        .filter(|&(_, &(v, l))| l == 0 || (key >> (width - l)) == (v >> (width - l)))
        .max_by_key(|&(_, &(_, l))| l)
        .map(|(i, &(_, l))| (i, l))
}

/// Deduplicated, aligned prefixes from raw pairs.
fn normalise(raw: Vec<(u64, u32)>, width: u32) -> Vec<(u64, u32)> {
    let mut seen = std::collections::HashSet::new();
    raw.into_iter()
        .map(|(v, l)| {
            let l = l % (width + 1);
            let v = if l == 0 { 0 } else { (v & ((1 << width) - 1)) >> (width - l) << (width - l) };
            (v, l)
        })
        .filter(|p| seen.insert(*p))
        .collect()
}

fn schedules() -> impl Strategy<Value = StrideSchedule> {
    prop_oneof![
        Just(StrideSchedule::classic_16()),
        Just(StrideSchedule::new(vec![4, 4, 4, 4])),
        Just(StrideSchedule::new(vec![8, 8])),
        Just(StrideSchedule::new(vec![16])),
        Just(StrideSchedule::new(vec![3, 5, 8])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// LPM over any stride schedule agrees with the reference scan.
    #[test]
    fn lpm_matches_reference(
        schedule in schedules(),
        raw in proptest::collection::vec((any::<u64>(), 0u32..=16), 0..80),
        keys in proptest::collection::vec(any::<u64>(), 40)
    ) {
        let prefixes = normalise(raw, 16);
        let mut sorted = prefixes.clone();
        sorted.sort_by_key(|&(_, l)| l);
        let mut trie = Mbt::new(schedule);
        for (i, &(v, l)) in sorted.iter().enumerate() {
            trie.insert(v, l, Label(i as u32));
        }
        for key in keys {
            let key = key & 0xFFFF;
            let got = trie.lookup(key).map(|(_, l)| l);
            let want = ref_lpm(&sorted, key, 16).map(|(_, l)| l);
            prop_assert_eq!(got, want, "key {:#x}", key);
        }
    }

    /// The effective chain (LPM + ancestor closure) is exactly the set of
    /// stored prefixes matching the key — the property that makes the
    /// index combination step correct.
    #[test]
    fn effective_chain_is_all_matching_prefixes(
        raw in proptest::collection::vec((any::<u64>(), 0u32..=32), 0..60),
        keys in proptest::collection::vec(any::<u32>(), 30)
    ) {
        let prefixes = normalise(raw, 32);
        let mut pt = PartitionedTrie::new(32);
        for &(v, l) in &prefixes {
            pt.insert(u128::from(v), l);
        }
        pt.finalize();
        for key in keys {
            let chains = pt.effective_chains(u128::from(key));
            // Per partition, the chain's lengths must equal the lengths of
            // every stored partition entry containing the key part.
            for (i, chain) in chains.iter().enumerate() {
                let dict = &pt.dictionaries()[i];
                let part = if i == 0 { u64::from(key >> 16) } else { u64::from(key & 0xFFFF) };
                let mut want: Vec<u32> = dict
                    .values()
                    .iter()
                    .filter(|&&(v, l)| l == 0 || (part >> (16 - l)) == (v >> (16 - l)))
                    .map(|&(_, l)| l)
                    .collect();
                want.sort_unstable_by(|a, b| b.cmp(a));
                let got: Vec<u32> = chain.iter().map(|(_, l)| l).collect();
                prop_assert_eq!(got, want, "key {:#x} partition {}", key, i);
            }
        }
    }

    /// The flattened/packed arena layout returns chains identical to a
    /// reference oracle over arbitrary stride schedules: per level, the
    /// chain holds exactly the longest stored prefix covering the key
    /// that terminates at that level (controlled prefix expansion keeps
    /// the longest per entry), ordered longest first.
    #[test]
    fn packed_layout_chain_matches_reference_oracle(
        schedule in schedules(),
        raw in proptest::collection::vec((any::<u64>(), 0u32..=16), 0..80),
        keys in proptest::collection::vec(any::<u64>(), 40)
    ) {
        let prefixes = normalise(raw, 16);
        let mut sorted = prefixes.clone();
        sorted.sort_by_key(|&(_, l)| l);
        let levels = schedule.levels();
        let mut trie = Mbt::new(schedule.clone());
        for (i, &(v, l)) in sorted.iter().enumerate() {
            trie.insert(v, l, Label(i as u32));
        }
        let mut buf = ofalgo::MatchChain::new();
        for key in keys {
            let key = key & 0xFFFF;
            // Oracle: longest covering prefix per terminal level,
            // shortest level first, then reversed (longest first).
            let mut want: Vec<(Label, u32)> = (0..levels)
                .filter_map(|li| {
                    sorted
                        .iter()
                        .enumerate()
                        .filter(|&(_, &(v, l))| {
                            schedule.terminal_level(l) == li
                                && (l == 0 || (key >> (16 - l)) == (v >> (16 - l)))
                        })
                        .max_by_key(|&(_, &(_, l))| l)
                        .map(|(i, &(_, l))| (Label(i as u32), l))
                })
                .collect();
            want.reverse();
            let got = trie.chain(key);
            prop_assert_eq!(got.as_slice(), want.as_slice(), "key {:#x}", key);
            // The buffer-reusing variant and the traced variant agree.
            trie.chain_into(key, &mut buf);
            prop_assert_eq!(&buf, &got);
            prop_assert_eq!(trie.chain_traced(key).0, got);
        }
    }

    /// The interleaved multi-key walks agree exactly with the
    /// single-key paths on random key batches of every size around the
    /// group width: `lookup_multi == lookup` and
    /// `chain_into_multi == chain_into`, element-wise.
    #[test]
    fn multi_key_walks_match_single_key(
        schedule in schedules(),
        raw in proptest::collection::vec((any::<u64>(), 0u32..=16), 0..80),
        keys in proptest::collection::vec(any::<u64>(), 0..40)
    ) {
        let prefixes = normalise(raw, 16);
        let mut sorted = prefixes.clone();
        sorted.sort_by_key(|&(_, l)| l);
        let mut trie = Mbt::new(schedule);
        for (i, &(v, l)) in sorted.iter().enumerate() {
            trie.insert(v, l, Label(i as u32));
        }
        let keys: Vec<u64> = keys.into_iter().map(|k| k & 0xFFFF).collect();
        let mut hits = vec![None; keys.len()];
        trie.lookup_multi(&keys, &mut hits);
        let mut chains = vec![ofalgo::MatchChain::new(); keys.len()];
        trie.chain_into_multi(&keys, &mut chains);
        let mut single = ofalgo::MatchChain::new();
        for (i, &key) in keys.iter().enumerate() {
            prop_assert_eq!(hits[i], trie.lookup(key), "key {:#x}", key);
            trie.chain_into(key, &mut single);
            prop_assert_eq!(&chains[i], &single, "key {:#x}", key);
        }
    }

    /// The vector (SIMD) group walks are bit-identical to the scalar
    /// walks on random tries and key batches, for both `lookup_multi`
    /// and `chain_into_multi`. Without the `simd` feature (or on CPUs
    /// with no vector backend) both passes run the scalar walk and the
    /// property is trivially true; under `--features simd` this is the
    /// scalar-vs-vector equivalence proof the runtime dispatch relies
    /// on.
    #[test]
    fn simd_walks_match_scalar_walks(
        schedule in schedules(),
        raw in proptest::collection::vec((any::<u64>(), 0u32..=16), 0..80),
        keys in proptest::collection::vec(any::<u64>(), 0..60)
    ) {
        let prefixes = normalise(raw, 16);
        let mut sorted = prefixes.clone();
        sorted.sort_by_key(|&(_, l)| l);
        let mut trie = Mbt::new(schedule);
        for (i, &(v, l)) in sorted.iter().enumerate() {
            trie.insert(v, l, Label(i as u32));
        }
        let keys: Vec<u64> = keys.into_iter().map(|k| k & 0xFFFF).collect();

        ofalgo::set_simd_enabled(false);
        let mut hits_scalar = vec![None; keys.len()];
        trie.lookup_multi(&keys, &mut hits_scalar);
        let mut chains_scalar = vec![ofalgo::MatchChain::new(); keys.len()];
        trie.chain_into_multi(&keys, &mut chains_scalar);

        ofalgo::set_simd_enabled(true);
        let mut hits_simd = vec![None; keys.len()];
        trie.lookup_multi(&keys, &mut hits_simd);
        let mut chains_simd = vec![ofalgo::MatchChain::new(); keys.len()];
        trie.chain_into_multi(&keys, &mut chains_simd);

        prop_assert_eq!(hits_simd, hits_scalar, "backend {}", ofalgo::simd_level());
        prop_assert_eq!(chains_simd, chains_scalar, "backend {}", ofalgo::simd_level());
    }

    /// Rebuild preserves semantics and size exactly (block numbering may
    /// permute, so equivalence is checked on lookups and node counts).
    #[test]
    fn rebuild_is_idempotent(
        raw in proptest::collection::vec((any::<u64>(), 0u32..=16), 1..50)
    ) {
        let prefixes = normalise(raw, 16);
        let mut sorted = prefixes.clone();
        sorted.sort_by_key(|&(_, l)| l);
        let mut trie = Mbt::classic_16();
        for (i, &(v, l)) in sorted.iter().enumerate() {
            trie.insert(v, l, Label(i as u32));
        }
        let mut rebuilt = trie.clone();
        rebuilt.rebuild();
        prop_assert_eq!(trie.stored_nodes(), rebuilt.stored_nodes());
        prop_assert_eq!(trie.len(), rebuilt.len());
        for key in (0..=0xFFFFu64).step_by(7) {
            prop_assert_eq!(trie.lookup(key), rebuilt.lookup(key), "key {:#x}", key);
        }
    }

    /// Removing a prefix yields the same structure as never inserting it.
    #[test]
    fn remove_equals_never_inserted(
        raw in proptest::collection::vec((any::<u64>(), 0u32..=16), 2..40),
        victim in any::<prop::sample::Index>()
    ) {
        let prefixes = normalise(raw, 16);
        prop_assume!(prefixes.len() >= 2);
        let mut sorted = prefixes.clone();
        sorted.sort_by_key(|&(_, l)| l);
        let victim = victim.index(sorted.len());

        let mut with = Mbt::classic_16();
        for (i, &(v, l)) in sorted.iter().enumerate() {
            with.insert(v, l, Label(i as u32));
        }
        let (v, l) = sorted[victim];
        let (existed, _) = with.remove(v, l);
        prop_assert!(existed);

        let mut without = Mbt::classic_16();
        let mut remainder: Vec<(usize, (u64, u32))> =
            sorted.iter().copied().enumerate().filter(|&(i, _)| i != victim).collect();
        remainder.sort_by_key(|&(_, (_, l))| l);
        for (i, (v, l)) in remainder {
            without.insert(v, l, Label(i as u32));
        }
        // Structures must agree on every lookup (labels differ by id, so
        // compare matched lengths).
        for key in 0..=0xFFFFu64 {
            prop_assert_eq!(
                with.lookup(key).map(|(_, l)| l),
                without.lookup(key).map(|(_, l)| l),
                "key {:#x}", key
            );
        }
    }

    /// Node accounting: stored nodes equal blocks x block size per level,
    /// and only the last level may lack child pointers.
    #[test]
    fn node_accounting_consistent(
        raw in proptest::collection::vec((any::<u64>(), 0u32..=16), 0..60)
    ) {
        let prefixes = normalise(raw, 16);
        let mut sorted = prefixes.clone();
        sorted.sort_by_key(|&(_, l)| l);
        let mut trie = Mbt::classic_16();
        for (i, &(v, l)) in sorted.iter().enumerate() {
            trie.insert(v, l, Label(i as u32));
        }
        let stats = trie.level_stats();
        prop_assert_eq!(stats.len(), 3);
        let mut total = 0;
        for s in &stats {
            prop_assert_eq!(s.entries, s.blocks << s.stride);
            prop_assert!(s.labeled <= s.entries);
            prop_assert!(s.with_child <= s.entries);
            total += s.entries;
        }
        prop_assert_eq!(trie.stored_nodes(), total);
        // Last level never points anywhere.
        prop_assert_eq!(stats[2].with_child, 0);
        // Memory report mirrors the stats.
        let report = trie.memory_report(&TrieSizing::default());
        prop_assert_eq!(report.total_entries(), total);
    }
}
