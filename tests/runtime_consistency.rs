//! Sharded-runtime consistency under concurrent classification + churn.
//!
//! The `mtl-runtime` contract: while the control plane inserts and
//! removes rules, every classified packet must be **byte-identical** to
//! what the sequential oracle (`reference_classify`) answers over the
//! exact rule set of the snapshot **version that served it** — the
//! runtime reports that version per packet. These stress tests drive
//! random churn schedules from a real control-plane thread against
//! concurrent batch submissions across multiple shards (workers racing
//! RCU publishes, per-shard caches invalidating on version bumps) and
//! verify every single result against the versioned oracle. A stale
//! cache entry, a torn snapshot, a worker serving mid-publish state, or
//! a misattributed version would all surface here.

use classifier_api::{reference_classify, ClassifierBuilder};
use mtl_core::MtlSwitch;
use mtl_runtime::{ClassifiedBatch, Runtime, RuntimeConfig};
use offilter::{FilterKind, FilterSet, Rule, RuleAction};
use oflow::{FlowMatch, HeaderValues, MatchFieldKind};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Mutex;

fn route(id: u32, port: u32, value: u32, len: u32, out: u32) -> Rule {
    Rule::new(
        id,
        len as u16,
        FlowMatch::any()
            .with_exact(MatchFieldKind::InPort, u128::from(port))
            .unwrap()
            .with_prefix(MatchFieldKind::Ipv4Dst, u128::from(value), len)
            .unwrap(),
        RuleAction::Forward(out),
    )
}

fn header(port: u32, dst: u32) -> HeaderValues {
    HeaderValues::new()
        .with(MatchFieldKind::InPort, u128::from(port))
        .with(MatchFieldKind::Ipv4Dst, u128::from(dst))
}

/// Overlapping/nested routing rules the churn schedule draws from.
fn rule_pool() -> Vec<Rule> {
    let mut pool = Vec::new();
    let mut id = 0;
    for port in 1..=2u32 {
        for (value, len) in [
            (0x0000_0000, 0),
            (0x0A00_0000, 8),
            (0x0A01_0000, 16),
            (0x0A01_8000, 17),
            (0x0A01_0200, 24),
            (0x0A01_0280, 25),
            (0x0B00_0000, 8),
            (0x0B0B_0000, 16),
        ] {
            pool.push(route(id, port, value, len, id + 100));
            id += 1;
        }
    }
    pool
}

/// Probe headers hitting the pool's nesting structure plus misses —
/// spread over enough ports that the RSS dispatcher uses every shard.
fn probes() -> Vec<HeaderValues> {
    let mut out = Vec::new();
    for port in 1..=3u32 {
        for dst in [
            0x0A01_0203u32,
            0x0A01_0281,
            0x0A01_8001,
            0x0A01_FFFF,
            0x0A02_0000,
            0x0B0B_0001,
            0x0BFF_0000,
            0xDEAD_BEEF,
        ] {
            for salt in 0..4u32 {
                out.push(header(port, dst ^ salt));
            }
        }
    }
    out
}

/// Verifies one served batch against the versioned oracle.
fn verify(out: &ClassifiedBatch, headers: &[HeaderValues], log: &[(u64, Vec<Rule>)], ctx: &str) {
    for (i, (&row, &version)) in out.rows.iter().zip(&out.versions).enumerate() {
        let rules_at = &log
            .iter()
            .rev()
            .find(|(v, _)| *v <= version)
            .unwrap_or_else(|| panic!("{ctx}: version {version} not logged"))
            .1;
        assert_eq!(
            row,
            reference_classify(rules_at, &headers[i]),
            "{ctx}: packet {i} ({}) diverges at version {version}",
            headers[i]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random churn schedules (which pool rules to add/remove, in which
    /// order) against concurrent classification over 3 shards: every
    /// result must match `reference_classify` at the generation it was
    /// served under — while updates land mid-flight.
    #[test]
    fn concurrent_churn_matches_versioned_oracle(
        seed_mask in 1u32..0xFFFF,
        ops in proptest::collection::vec((any::<bool>(), any::<prop::sample::Index>()), 1..16)
    ) {
        let pool = rule_pool();
        // Seed switch: the pool rules whose bit is set in seed_mask.
        let seed_rules: Vec<Rule> = pool
            .iter()
            .enumerate()
            .filter(|(i, _)| seed_mask & (1 << (i % 16)) != 0)
            .map(|(_, r)| r.clone())
            .collect();
        prop_assume!(!seed_rules.is_empty());
        let set = FilterSet::preserving_ids("stress", FilterKind::Routing, seed_rules.clone());
        let switch = <MtlSwitch as ClassifierBuilder>::try_build(&set).expect("switch builds");
        let config = RuntimeConfig {
            shards: 3,
            ring_capacity: 8,
            cache_capacity: 32, // tiny: force plenty of admission traffic
            pin_workers: false,
            ..RuntimeConfig::default()
        };
        let rt = Runtime::with_control(switch, &config);
        let handle = rt.handle();

        let headers = probes();
        // Version -> rule set, appended *before* each publish by the
        // single churn writer, so no served version can outrun the log.
        let log: Mutex<Vec<(u64, Vec<Rule>)>> = Mutex::new(vec![(1, seed_rules.clone())]);
        let done = AtomicBool::new(false);

        std::thread::scope(|scope| {
            let churn = scope.spawn(|| {
                let mut rules = seed_rules.clone();
                let mut next_version = 2u64;
                for (add, which) in &ops {
                    let rule = &pool[which.index(pool.len())];
                    if *add && !rules.iter().any(|r| r.id == rule.id) {
                        rules.push(rule.clone());
                        log.lock().unwrap().push((next_version, rules.clone()));
                        let (_, v) = handle.add_rule(rule.clone()).expect("pool rule inserts");
                        assert_eq!(v, next_version);
                        next_version += 1;
                    } else if !*add && rules.iter().any(|r| r.id == rule.id) {
                        rules.retain(|r| r.id != rule.id);
                        log.lock().unwrap().push((next_version, rules.clone()));
                        let (_, v) =
                            handle.remove_rule(rule.id).expect("rule is present in the master");
                        assert_eq!(v, next_version);
                        next_version += 1;
                    }
                    std::thread::yield_now();
                }
                done.store(true, SeqCst);
            });

            // Classify concurrently with the churn until it finishes,
            // then once more so post-churn state is covered too.
            let mut batches = Vec::new();
            while !done.load(SeqCst) {
                batches.push(rt.classify_batch(&headers));
            }
            batches.push(rt.classify_batch(&headers));
            churn.join().expect("churn thread");

            let log = log.lock().unwrap();
            assert!(!batches.is_empty());
            for (k, out) in batches.iter().enumerate() {
                assert_eq!(out.len(), headers.len());
                verify(out, &headers, &log, &format!("batch {k}"));
            }
            // Quiesced tail: once churn is done, another batch must be
            // served at (or after) the last batch's version and match
            // the final rule set's sequential oracle exactly.
            let final_version =
                *batches.last().expect("nonempty").versions.iter().max().expect("nonempty batch");
            let final_rules = &log.last().expect("log nonempty").1;
            let tail = rt.classify_batch(&headers);
            let oracle_rows: Vec<Option<u32>> =
                headers.iter().map(|h| reference_classify(final_rules, h)).collect();
            assert_eq!(tail.rows, oracle_rows);
            assert!(tail.versions.iter().all(|&v| v >= final_version));
        });
    }
}

/// A deterministic (non-proptest) smoke of the same contract, heavy on
/// removals (every remove is a full rebuild + publish).
#[test]
fn removal_heavy_churn_stays_consistent() {
    let pool = rule_pool();
    let set = FilterSet::preserving_ids("stress", FilterKind::Routing, pool.clone());
    let switch = <MtlSwitch as ClassifierBuilder>::try_build(&set).expect("switch builds");
    let rt = Runtime::with_control(
        switch,
        &RuntimeConfig {
            shards: 2,
            cache_capacity: 16,
            pin_workers: false,
            ..RuntimeConfig::default()
        },
    );
    let handle = rt.handle();
    let headers = probes();
    let log: Mutex<Vec<(u64, Vec<Rule>)>> = Mutex::new(vec![(1, pool.clone())]);

    std::thread::scope(|scope| {
        let churn = scope.spawn(|| {
            let mut rules = pool.clone();
            let mut next_version = 2u64;
            // Remove every second rule, then add them all back.
            for rule in pool.iter().step_by(2) {
                rules.retain(|r| r.id != rule.id);
                log.lock().unwrap().push((next_version, rules.clone()));
                let (_, v) = handle.remove_rule(rule.id).expect("rule exists");
                assert_eq!(v, next_version);
                next_version += 1;
            }
            for rule in pool.iter().step_by(2) {
                rules.push(rule.clone());
                log.lock().unwrap().push((next_version, rules.clone()));
                let (_, v) = handle.add_rule(rule.clone()).expect("rule inserts");
                assert_eq!(v, next_version);
                next_version += 1;
            }
        });
        for k in 0..24 {
            let out = rt.classify_batch(&headers);
            let snapshot = log.lock().unwrap().clone();
            verify(&out, &headers, &snapshot, &format!("round {k}"));
        }
        churn.join().expect("churn thread");
    });

    // Fully quiesced: identical to the sequential oracle over the final
    // rule set (everything was added back).
    let log = log.into_inner().unwrap();
    let final_rules = &log.last().expect("nonempty").1;
    let out = rt.classify_batch(&headers);
    for (h, &row) in headers.iter().zip(&out.rows) {
        assert_eq!(row, reference_classify(final_rules, h), "quiesced tail on {h}");
    }
    let telemetry = rt.telemetry();
    assert!(telemetry.total_packets() > 0);
    assert!(
        telemetry.per_shard.iter().map(|s| s.snapshot_refreshes).sum::<u64>() > 0,
        "workers must have re-acquired snapshots across the churn"
    );
}
