//! Packet substrate properties: build -> parse round trips across the
//! protocol stack, checksum validity, and extraction consistency.

use oflow::MatchFieldKind;
use ofpacket::headers::{ethertype, Ipv4Header, TcpHeader, UdpHeader, VlanTag};
use ofpacket::{parse_packet, MacAddr, PacketBuilder};
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any TCP/IPv4 frame the builder produces parses back to the same
    /// field values, with valid IPv4 and TCP checksums.
    #[test]
    fn tcp_frame_roundtrip(
        src_mac in any::<u64>(),
        dst_mac in any::<u64>(),
        vlan in proptest::option::of(0u16..4096),
        src_ip in any::<u32>(),
        dst_ip in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        let src_mac = MacAddr::from_u64(src_mac & 0xFFFF_FFFF_FFFF);
        let dst_mac = MacAddr::from_u64(dst_mac & 0xFFFF_FFFF_FFFF);
        let mut b = PacketBuilder::ethernet(src_mac, dst_mac);
        if let Some(v) = vlan {
            b = b.vlan(v, 3);
        }
        let frame = b
            .ipv4(Ipv4Addr::from(src_ip), Ipv4Addr::from(dst_ip))
            .tcp(sport, dport)
            .payload(payload.clone())
            .build();

        let pkt = parse_packet(&frame).expect("self-built frame parses");
        prop_assert_eq!(pkt.ethernet.src, src_mac);
        prop_assert_eq!(pkt.ethernet.dst, dst_mac);
        match vlan {
            Some(v) => {
                prop_assert_eq!(pkt.vlans.len(), 1);
                prop_assert_eq!(pkt.vlans[0].vid, v & 0xFFF);
            }
            None => prop_assert!(pkt.vlans.is_empty()),
        }
        let ip = pkt.ipv4.as_ref().expect("ipv4 present");
        prop_assert_eq!(ip.src, Ipv4Addr::from(src_ip));
        prop_assert_eq!(ip.dst, Ipv4Addr::from(dst_ip));
        let tcp = pkt.tcp.as_ref().expect("tcp present");
        prop_assert_eq!(tcp.src_port, sport);
        prop_assert_eq!(tcp.dst_port, dport);
        prop_assert_eq!(&frame[pkt.payload_offset..], &payload[..]);

        // IPv4 header checksum verifies over the header bytes.
        let l2 = 14 + if vlan.is_some() { 4 } else { 0 };
        prop_assert!(ofpacket::checksum::verify(&frame[l2..l2 + 20]));

        // TCP checksum verifies with the pseudo-header.
        let seg = &frame[l2 + 20..];
        let ck = ofpacket::checksum::transport_checksum_v4(
            Ipv4Addr::from(src_ip).octets(),
            Ipv4Addr::from(dst_ip).octets(),
            6,
            seg,
        );
        prop_assert_eq!(ck, 0, "checksummed segment folds to zero");
    }

    /// Header extraction yields exactly the fields the layers carry.
    #[test]
    fn extraction_field_presence(
        udp in any::<bool>(),
        vlan in any::<bool>(),
        in_port in 0u32..64
    ) {
        let mut b = PacketBuilder::ethernet(
            MacAddr::from_u64(0x0200_0000_0001),
            MacAddr::from_u64(0x0200_0000_0002),
        );
        if vlan {
            b = b.vlan(7, 0);
        }
        let b = b.ipv4(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8));
        let frame = if udp { b.udp(1, 2) } else { b.tcp(3, 4) }.build();
        let h = parse_packet(&frame).unwrap().header_values(in_port);

        prop_assert_eq!(h.get(MatchFieldKind::InPort), Some(u128::from(in_port)));
        prop_assert_eq!(h.get(MatchFieldKind::VlanVid).is_some(), vlan);
        prop_assert_eq!(h.get(MatchFieldKind::UdpDst).is_some(), udp);
        prop_assert_eq!(h.get(MatchFieldKind::TcpDst).is_some(), !udp);
        prop_assert!(h.get(MatchFieldKind::Ipv4Dst).is_some());
        prop_assert_eq!(h.get(MatchFieldKind::Ipv6Dst), None);
    }

    /// Individual header codecs are their own inverses on arbitrary
    /// field values.
    #[test]
    fn header_codecs_roundtrip(
        vid in 0u16..4096,
        pcp in 0u8..8,
        dscp in 0u8..64,
        ttl in any::<u8>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        length in 8u16..2000
    ) {
        let tag = VlanTag { pcp, dei: false, vid, ethertype: ethertype::IPV4 };
        let mut buf = Vec::new();
        tag.write_to(&mut buf);
        prop_assert_eq!(VlanTag::parse(&buf).unwrap().0, tag);

        let mut ip = Ipv4Header::template(Ipv4Addr::LOCALHOST, Ipv4Addr::BROADCAST, 17);
        ip.dscp = dscp;
        ip.ttl = ttl;
        ip.total_len = length.max(20);
        let mut buf = Vec::new();
        ip.write_to(&mut buf);
        prop_assert_eq!(Ipv4Header::parse(&buf).unwrap().0, ip);

        let udp = UdpHeader { src_port: sport, dst_port: dport, length, checksum: 0 };
        let mut buf = Vec::new();
        udp.write_to(&mut buf);
        prop_assert_eq!(UdpHeader::parse(&buf).unwrap().0, udp);

        let tcp = TcpHeader::template(sport, dport);
        let mut buf = Vec::new();
        tcp.write_to(&mut buf);
        prop_assert_eq!(TcpHeader::parse(&buf).unwrap().0, tcp);
    }

    /// Truncating any frame inside a header never panics — parsing fails
    /// cleanly or succeeds on a shorter stack.
    #[test]
    fn truncation_never_panics(cut in 0usize..60) {
        let frame = PacketBuilder::ethernet(
            MacAddr::from_u64(1),
            MacAddr::from_u64(2),
        )
        .vlan(5, 0)
        .ipv4(Ipv4Addr::new(9, 9, 9, 9), Ipv4Addr::new(8, 8, 8, 8))
        .tcp(80, 443)
        .build();
        let cut = cut.min(frame.len());
        let _ = parse_packet(&frame[..cut]); // must not panic
    }
}
