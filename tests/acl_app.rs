//! The ACL (5-tuple) application through the flat single-table preset:
//! range fields, deny rules and ordered priorities — the configuration
//! exercising the range engine and its completion entries inside the
//! full architecture.

use offilter::synth::{generate_acl, AclConfig};
use openflow_mtl::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn reference(set: &FilterSet, header: &HeaderValues) -> Verdict {
    set.rules
        .iter()
        .filter(|r| r.flow_match.matches(header))
        .max_by_key(|r| (r.priority, r.flow_match.specificity()))
        .map(|r| match r.action {
            RuleAction::Forward(p) => Verdict::Output(p),
            RuleAction::Deny => Verdict::Drop,
            RuleAction::Controller => Verdict::ToController,
        })
        .unwrap_or(Verdict::ToController)
}

fn acl_headers(set: &FilterSet, n: usize, seed: u64) -> Vec<HeaderValues> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Mix rule-derived and random headers.
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                let r = &set.rules[rng.gen_range(0..set.len())];
                let mut h = HeaderValues::new()
                    .with(MatchFieldKind::IpProto, 6)
                    .with(MatchFieldKind::Ipv4Src, u128::from(rng.gen::<u32>()))
                    .with(MatchFieldKind::Ipv4Dst, u128::from(rng.gen::<u32>()))
                    .with(MatchFieldKind::TcpSrc, u128::from(rng.gen::<u16>()))
                    .with(MatchFieldKind::TcpDst, u128::from(rng.gen::<u16>()));
                for &field in FilterKind::Acl.fields() {
                    match r.field(field) {
                        FieldMatch::Exact(v) => {
                            h.set(field, v);
                        }
                        FieldMatch::Prefix { value, len } => {
                            let free = field.bit_width() - len;
                            let fill = if free == 0 {
                                0
                            } else {
                                u128::from(rng.gen::<u32>()) & ((1 << free) - 1)
                            };
                            h.set(field, value | fill);
                        }
                        FieldMatch::Range { lo, hi } => {
                            let span = hi - lo;
                            h.set(field, lo + u128::from(rng.gen::<u16>()) % (span + 1));
                        }
                        FieldMatch::Any => {}
                    }
                }
                h
            } else {
                HeaderValues::new()
                    .with(MatchFieldKind::IpProto, if rng.gen_bool(0.7) { 6 } else { 17 })
                    .with(MatchFieldKind::Ipv4Src, u128::from(rng.gen::<u32>()))
                    .with(MatchFieldKind::Ipv4Dst, u128::from(rng.gen::<u32>()))
                    .with(MatchFieldKind::TcpSrc, u128::from(rng.gen::<u16>()))
                    .with(MatchFieldKind::TcpDst, u128::from(rng.gen::<u16>()))
            }
        })
        .collect()
}

#[test]
fn flat_acl_agrees_with_reference() {
    let set = generate_acl(&AclConfig { rules: 400, ..AclConfig::default() }, 77);
    let sw = MtlSwitch::build(&SwitchConfig::flat_app(FilterKind::Acl, 0), &[&set]);
    for h in acl_headers(&set, 3_000, 1) {
        assert_eq!(sw.classify(&h).verdict, reference(&set, &h), "header {h}");
    }
}

#[test]
fn acl_memory_report_includes_range_matchers() {
    let set = generate_acl(&AclConfig { rules: 300, ..AclConfig::default() }, 78);
    let sw = MtlSwitch::build(&SwitchConfig::flat_app(FilterKind::Acl, 0), &[&set]);
    let m = SwitchMemoryReport::of(&sw);
    assert!(m.range_bits > 0, "range matchers must be accounted");
    assert!(m.mbt_bits > 0, "prefix fields use tries");
    assert!(m.lut_bits > 0, "ip_proto uses an EM LUT");
}

#[test]
fn acl_range_completion_entries_counted() {
    // Nested ranges force completion entries; they must appear in the
    // index statistics (the honest memory cost of decomposition).
    let set =
        generate_acl(&AclConfig { rules: 500, range_fraction: 0.8, ..AclConfig::default() }, 79);
    let sw = MtlSwitch::build(&SwitchConfig::flat_app(FilterKind::Acl, 0), &[&set]);
    let table = &sw.apps[0].tables[0];
    assert!(
        table.index.completion_entries() > 0,
        "nested ACL ranges should produce completion entries"
    );
    // And classification still matches the reference under heavy nesting.
    for h in acl_headers(&set, 1_500, 2) {
        assert_eq!(sw.classify(&h).verdict, reference(&set, &h), "header {h}");
    }
}

#[test]
fn incremental_acl_add_existing_range_is_fast() {
    use mtl_core::UpdateMode;
    let set = generate_acl(&AclConfig { rules: 200, ..AclConfig::default() }, 80);
    let mut sw = MtlSwitch::build(&SwitchConfig::flat_app(FilterKind::Acl, 0), &[&set]);
    // Reuse an existing rule's exact shape with a new source host: all
    // field values already interned except possibly the host -> fast path
    // unless it has a fresh range.
    let template = set
        .rules
        .iter()
        .find(|r| matches!(r.field(MatchFieldKind::TcpDst), FieldMatch::Range { .. }))
        .expect("some rule has a range");
    let mut rule = template.clone();
    rule.id = 9_999;
    rule.priority = u16::MAX;
    rule.action = RuleAction::Deny;
    let out = sw.add_rule(FilterKind::Acl, rule);
    assert_eq!(out.mode, UpdateMode::Incremental, "existing range reuses its label");
}
