//! Property tests on the remaining single-field algorithms and the label
//! machinery: hash LUT vs `HashMap`, range matcher vs linear scan,
//! dictionary bijectivity, and the TCAM range expansion's exact cover.

use ofalgo::{Dictionary, HashLut, Label, RangeMatcher};
use ofbaseline::tcam::range_to_prefixes;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// HashLut behaves exactly like a HashMap under inserts/replacements.
    #[test]
    fn hashlut_matches_hashmap(
        ops in proptest::collection::vec((0u64..512, any::<u32>()), 1..200),
        queries in proptest::collection::vec(0u64..1024, 50)
    ) {
        let mut lut = HashLut::with_capacity(16, ops.len());
        let mut reference: HashMap<u64, Label> = HashMap::new();
        for (k, v) in ops {
            let l = Label(v);
            let got_prev = lut.insert(k, l);
            let want_prev = reference.insert(k, l);
            prop_assert_eq!(got_prev, want_prev);
        }
        prop_assert_eq!(lut.len(), reference.len());
        for q in queries {
            prop_assert_eq!(lut.lookup(q), reference.get(&q).copied(), "key {}", q);
        }
    }

    /// RangeMatcher returns a narrowest covering range (width-equal to the
    /// linear scan's choice) and misses exactly when no range covers.
    #[test]
    fn range_matcher_matches_scan(
        ranges in proptest::collection::vec((0u64..1000, 0u64..200), 0..40),
        queries in proptest::collection::vec(0u64..1400, 60)
    ) {
        let ranges: Vec<(u64, u64, Label)> = ranges
            .into_iter()
            .enumerate()
            .map(|(i, (lo, span))| (lo, lo + span, Label(i as u32)))
            .collect();
        let m = RangeMatcher::new(16, ranges.clone());
        for q in queries {
            let got = m.lookup(q);
            let want_width = ranges
                .iter()
                .filter(|&&(lo, hi, _)| lo <= q && q <= hi)
                .map(|&(lo, hi, _)| hi - lo)
                .min();
            match (got, want_width) {
                (None, None) => {}
                (Some(label), Some(w)) => {
                    let got_range = ranges.iter().find(|r| r.2 == label).unwrap();
                    prop_assert!(got_range.0 <= q && q <= got_range.1, "label covers query");
                    prop_assert_eq!(got_range.1 - got_range.0, w, "narrowest width");
                }
                other => prop_assert!(false, "mismatch at {}: {:?}", q, other),
            }
        }
    }

    /// Dictionary: intern is a bijection between distinct values and dense
    /// labels; duplicate accounting is exact.
    #[test]
    fn dictionary_bijective(values in proptest::collection::vec(0u32..100, 1..300)) {
        let mut d = Dictionary::new();
        for &v in &values {
            d.intern(v);
        }
        let distinct: std::collections::BTreeSet<u32> = values.iter().copied().collect();
        prop_assert_eq!(d.len(), distinct.len());
        prop_assert_eq!(d.interned_total(), values.len());
        prop_assert_eq!(d.duplicates_avoided(), values.len() - distinct.len());
        // Labels are dense 0..len and invert correctly.
        for (i, v) in d.values().iter().enumerate() {
            prop_assert_eq!(d.get(v), Some(Label(i as u32)));
            prop_assert_eq!(d.value_of(Label(i as u32)), Some(v));
        }
    }

    /// TCAM range expansion covers exactly the range — every value inside
    /// matches some prefix, nothing outside does, and prefixes never
    /// overlap (each value matches exactly one).
    #[test]
    fn range_expansion_exact_and_disjoint(lo in 0u64..4096, span in 0u64..4096) {
        let hi = (lo + span).min(4095);
        let prefixes = range_to_prefixes(lo, hi, 12);
        prop_assert!(prefixes.len() <= 2 * 12 - 2 + 1, "at most 2w-2 prefixes: {}", prefixes.len());
        for v in 0u64..4096 {
            let hits = prefixes.iter().filter(|&&(p, care)| v & care == p & care).count();
            if (lo..=hi).contains(&v) {
                prop_assert_eq!(hits, 1, "value {} should match exactly once", v);
            } else {
                prop_assert_eq!(hits, 0, "value {} outside range matched", v);
            }
        }
    }
}
