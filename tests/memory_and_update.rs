//! Cross-crate consistency of the memory and update models: report
//! arithmetic, BRAM mapping sanity, characterization-file coverage, and
//! the label method's monotone savings.

use mtl_core::{MtlSwitch, SwitchConfig, SwitchMemoryReport, UpdatePlan};
use offilter::synth::{generate_mac, generate_routing, MacTargets, RoutingTargets};
use offilter::FilterKind;
use ofmem::bram::{BRAM18K, M20K};
use ofmem::{MemoryBlock, MemoryReport};
use proptest::prelude::*;

fn small_switch(seed: u64) -> MtlSwitch {
    let mac = generate_mac(
        &MacTargets {
            name: "m".into(),
            rules: 250,
            vlan_unique: 10,
            eth_partitions: [6, 50, 170],
            ports: 8,
        },
        seed,
    );
    let routing = generate_routing(
        &RoutingTargets {
            name: "r".into(),
            rules: 300,
            port_unique: 9,
            ip_partitions: [25, 190],
            short_prefixes: 3,
            out_ports: 8,
        },
        seed + 1,
    );
    MtlSwitch::build(&SwitchConfig::mac_routing_preset(), &[&mac, &routing])
}

#[test]
fn switch_report_covers_every_structure() {
    let sw = small_switch(1);
    let r = SwitchMemoryReport::of(&sw);
    // Every table contributes field engines, an index and actions.
    for t in 0..4u8 {
        assert!(r.report.bits_under(&format!("t{t}/index")) > 0, "t{t} index");
        assert!(r.report.bits_under(&format!("t{t}/actions")) > 0, "t{t} actions");
    }
    // The trie groups exist with all three levels.
    for level in ["L1", "L2", "L3"] {
        assert!(r.report.bits_under(&format!("t1/eth_dst/lower/{level}")) > 0, "{level}");
    }
    // Ancestor tables are accounted.
    assert!(r.report.bits_under("t1/eth_dst/lower/parents") > 0);
    // Class totals partition the total.
    assert_eq!(
        r.mbt_bits + r.lut_bits + r.range_bits + r.index_bits + r.action_bits,
        r.report.total_bits()
    );
}

#[test]
fn update_plan_matches_structures() {
    let sw = small_switch(2);
    let plan = UpdatePlan::from_switch(&sw);
    // Table file covers exactly the index entries + action rows.
    let expected_table_records: usize =
        sw.apps.iter().flat_map(|a| &a.tables).map(|t| t.index.len() + t.actions.len()).sum();
    assert_eq!(plan.table_file.len(), expected_table_records);
    // The algorithm file characterizes the *final* occupied entries; the
    // ledger additionally counts intermediate writes (prefix-expansion
    // overwrites, range-segment rewrites), so it bounds the file from
    // above and the unique-value count from below.
    assert!(plan.algorithm_file.len() <= sw.ledger.algorithm_label_records);
    let unique_values: usize = sw
        .apps
        .iter()
        .flat_map(|a| &a.tables)
        .flat_map(|t| &t.engines)
        .map(|(_, e)| match e {
            mtl_core::FieldEngine::Em { dict, .. } => dict.len(),
            mtl_core::FieldEngine::Trie(pt) => pt.dictionaries().iter().map(|d| d.len()).sum(),
            mtl_core::FieldEngine::Range { ranges, .. } => ranges.len(),
        })
        .sum();
    assert!(plan.algorithm_file.len() >= unique_values);
    assert_eq!(plan.stats().cycles(), 2 * plan.total_records());
}

#[test]
fn label_savings_grow_with_duplication() {
    // Same rule count, shrinking unique-value budget -> larger savings.
    let mut last_reduction = -1.0f64;
    for uniques in [200usize, 100, 40, 12] {
        let set = generate_mac(
            &MacTargets {
                name: "dup".into(),
                rules: 400,
                vlan_unique: uniques.min(400) / 2,
                eth_partitions: [6, uniques, uniques],
                ports: 8,
            },
            7,
        );
        let sw = MtlSwitch::build(&SwitchConfig::single_app(FilterKind::MacLearning, 0), &[&set]);
        let reduction = sw.ledger.reduction();
        assert!(
            reduction > last_reduction,
            "reduction should grow as uniques shrink: {reduction} after {last_reduction}"
        );
        last_reduction = reduction;
    }
    assert!(last_reduction > 0.5, "heavy duplication should save >50%: {last_reduction}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Report arithmetic: totals are sums; prefix queries partition.
    #[test]
    fn report_arithmetic(blocks in proptest::collection::vec(
        ("[ab]/[cd]", 0usize..5000, 1u32..64), 0..20)
    ) {
        let mut report = MemoryReport::new();
        let mut by_hand: u64 = 0;
        for (name, entries, bits) in &blocks {
            report.push(MemoryBlock::new(name.clone(), *entries, *bits));
            by_hand += *entries as u64 * u64::from(*bits);
        }
        prop_assert_eq!(report.total_bits(), by_hand);
        // Group queries partition the total (names are a/c..b/d shaped).
        let groups: u64 = ["a", "b"].iter().map(|g| report.bits_under(g)).sum();
        prop_assert_eq!(groups, by_hand);
    }

    /// BRAM mapping: never fewer blocks than capacity requires, always
    /// enough provisioned bits, and monotone in entry count.
    #[test]
    fn bram_mapping_sane(entries in 0usize..100_000, bits in 1u32..128) {
        let block = MemoryBlock::new("x", entries, bits);
        for kind in [&M20K, &BRAM18K] {
            let m = kind.map_block(&block);
            if entries == 0 {
                prop_assert_eq!(m.brams, 0);
                continue;
            }
            prop_assert!(m.provisioned_bits >= m.used_bits,
                "{}: provisioned {} < used {}", kind.name, m.provisioned_bits, m.used_bits);
            let lower_bound = block.bits().div_ceil(u64::from(kind.capacity_bits));
            prop_assert!(u64::from(m.brams) >= lower_bound);
            // Monotonicity: one more entry never needs fewer BRAMs.
            let bigger = MemoryBlock::new("x", entries + 1, bits);
            prop_assert!(kind.map_block(&bigger).brams >= m.brams);
        }
    }
}
