//! Flow-cache consistency under incremental updates.
//!
//! The cache memoises `header → action row` with an epoch stamp; every
//! `add_rule` / `remove_rule` bumps the switch epoch, so a cached entry
//! can never outlive the rule set it was computed against. These tests
//! drive random interleavings of updates and cached classification and
//! assert, after **every** update, that cache-enabled classification ==
//! cache-disabled classification == the reference oracle — exactly the
//! bug class (serving stale rows) an epoch mistake would produce. Both
//! admission policies are driven: TinyLFU (the default — its rejections
//! and sketch-guided evictions must never change *what* is served, only
//! *whether* it is memoised) and blind replacement.

use classifier_api::reference_classify;
use mtl_core::{FlowCache, MtlSwitch, SwitchConfig};
use offilter::{FilterKind, FilterSet, Rule, RuleAction};
use oflow::{FlowMatch, HeaderValues, MatchFieldKind};
use proptest::prelude::*;

fn route(id: u32, port: u32, value: u32, len: u32, out: u32) -> Rule {
    Rule::new(
        id,
        len as u16,
        FlowMatch::any()
            .with_exact(MatchFieldKind::InPort, u128::from(port))
            .unwrap()
            .with_prefix(MatchFieldKind::Ipv4Dst, u128::from(value), len)
            .unwrap(),
        RuleAction::Forward(out),
    )
}

fn header(port: u32, dst: u32) -> HeaderValues {
    HeaderValues::new()
        .with(MatchFieldKind::InPort, u128::from(port))
        .with(MatchFieldKind::Ipv4Dst, u128::from(dst))
}

/// A pool of nested/overlapping routing rules for update sequences.
fn rule_pool() -> Vec<Rule> {
    let mut pool = Vec::new();
    let mut id = 0;
    for port in 1..=2u32 {
        for (value, len) in [
            (0x0000_0000, 0),
            (0x0A00_0000, 8),
            (0x0A01_0000, 16),
            (0x0A01_8000, 17),
            (0x0A01_0200, 24),
            (0x0A01_0280, 25),
            (0x0B00_0000, 8),
            (0x0B0B_0000, 16),
        ] {
            pool.push(route(id, port, value, len, id + 100));
            id += 1;
        }
    }
    pool
}

/// Probe headers hitting the pool's nesting structure plus misses.
fn probes() -> Vec<HeaderValues> {
    let mut out = Vec::new();
    for port in 1..=3u32 {
        for dst in [
            0x0A01_0203u32,
            0x0A01_0281,
            0x0A01_8001,
            0x0A01_FFFF,
            0x0A02_0000,
            0x0B0B_0001,
            0x0BFF_0000,
            0xDEAD_BEEF,
        ] {
            out.push(header(port, dst));
        }
    }
    out
}

/// Asserts the three-way agreement on every probe header, through the
/// single-packet and batch cached surfaces.
fn assert_consistent(
    sw: &MtlSwitch,
    rules: &[Rule],
    cache: &mut FlowCache,
    headers: &[HeaderValues],
    ctx: &str,
) {
    let app = sw.app(FilterKind::Routing).expect("routing app");
    for h in headers {
        let uncached_row = sw.classify_row(FilterKind::Routing, h);
        let cached_row = sw.classify_cached(FilterKind::Routing, h, cache);
        assert_eq!(cached_row, uncached_row, "{ctx}: cached row differs on {h}");
        let got_id = uncached_row.and_then(|row| app.rule_id_of_row(row));
        let want_id = reference_classify(rules, h);
        assert_eq!(got_id, want_id, "{ctx}: oracle disagrees on {h}");
    }
    // The batch surface must agree element-wise too (and is served
    // almost entirely from the now-warm cache).
    let uncached = sw.classify_batch_rows(FilterKind::Routing, headers);
    let cached = sw.classify_batch_rows_cached(FilterKind::Routing, headers, cache);
    assert_eq!(cached, uncached, "{ctx}: cached batch differs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleavings of add_rule / remove_rule with cached
    /// classification: after every update, caches under **both**
    /// admission policies must agree with the uncached path and the
    /// oracle (no stale rows survive an epoch, and TinyLFU's admission
    /// decisions never alter served results).
    #[test]
    fn cached_classification_survives_random_updates(
        seed_mask in 1u32..0xFFFF,
        ops in proptest::collection::vec((any::<bool>(), any::<prop::sample::Index>()), 1..12)
    ) {
        let pool = rule_pool();
        // Seed switch: the pool rules whose bit is set in seed_mask
        // (at least one — rule 0 is always included).
        let seeded: Vec<Rule> = pool
            .iter()
            .enumerate()
            .filter(|&(i, _)| i == 0 || seed_mask & (1 << (i % 16)) != 0)
            .map(|(_, r)| r.clone())
            .collect();
        let set = FilterSet::preserving_ids("fc", FilterKind::Routing, seeded.clone());
        let config = SwitchConfig::single_app(FilterKind::Routing, 0);
        let mut sw = MtlSwitch::build(&config, &[&set]);
        let mut live: Vec<Rule> = seeded;
        // A deliberately tiny TinyLFU cache (constant admission
        // pressure) and a blind cache.
        let mut tinylfu = FlowCache::new(16);
        let mut blind = FlowCache::blind(64);
        let headers = probes();

        // Warm the caches on the seed state (entries that MUST not be
        // served stale after the updates below).
        assert_consistent(&sw, &live, &mut tinylfu, &headers, "seed (tinylfu)");
        assert_consistent(&sw, &live, &mut blind, &headers, "seed (blind)");

        for (i, (add, which)) in ops.iter().enumerate() {
            if *add {
                // Add a pool rule not currently live (if any).
                let missing: Vec<&Rule> =
                    pool.iter().filter(|r| !live.iter().any(|l| l.id == r.id)).collect();
                if missing.is_empty() {
                    continue;
                }
                let rule = missing[which.index(missing.len())].clone();
                sw.add_rule(FilterKind::Routing, rule.clone());
                live.push(rule);
            } else {
                if live.len() <= 1 {
                    continue;
                }
                let victim = live[which.index(live.len())].id;
                sw.remove_rule(FilterKind::Routing, victim).expect("victim is live");
                live.retain(|r| r.id != victim);
            }
            assert_consistent(&sw, &live, &mut tinylfu, &headers, &format!("op {i} (tinylfu)"));
            assert_consistent(&sw, &live, &mut blind, &headers, &format!("op {i} (blind)"));
        }
    }
}

#[test]
fn epoch_advances_on_every_mutation() {
    let pool = rule_pool();
    let set = FilterSet::preserving_ids("fc", FilterKind::Routing, vec![pool[0].clone()]);
    let config = SwitchConfig::single_app(FilterKind::Routing, 0);
    let mut sw = MtlSwitch::build(&config, &[&set]);
    let e0 = sw.epoch();
    sw.add_rule(FilterKind::Routing, pool[1].clone());
    let e1 = sw.epoch();
    assert!(e1 > e0, "add_rule must bump the epoch");
    sw.remove_rule(FilterKind::Routing, pool[1].id).expect("rule exists");
    let e2 = sw.epoch();
    assert!(e2 > e1, "remove_rule must bump the epoch");
}

/// A baseline engine behind `CachedClassifier` (the unified cache-aware
/// surface) stays oracle-consistent across dynamic updates forwarded
/// through the wrapper — TSS bumps its generation on in-place inserts,
/// and the wrapper's bump counter covers the rest.
#[test]
fn cached_tss_stays_consistent_under_updates() {
    use classifier_api::{CachedClassifier, Classifier, ClassifierBuilder, DynamicClassifier};
    use ofbaseline::tss::TupleSpaceSearch;
    let pool = rule_pool();
    let seed: Vec<Rule> = pool[..8].to_vec();
    let set = FilterSet::preserving_ids("fc", FilterKind::Routing, seed.clone());
    let mut cached = CachedClassifier::new(TupleSpaceSearch::try_build(&set).unwrap(), 64);
    let mut live = seed;
    let headers = probes();
    let check = |cached: &CachedClassifier<TupleSpaceSearch>, live: &[Rule], ctx: &str| {
        // Twice: the second pass is served from the (now warm) cache.
        for pass in 0..2 {
            for h in &headers {
                assert_eq!(
                    cached.classify(h),
                    reference_classify(live, h),
                    "{ctx} pass {pass}: {h}"
                );
            }
        }
    };
    check(&cached, &live, "seed");
    cached.insert_rule(pool[10].clone()).expect("tss insert works");
    live.push(pool[10].clone());
    check(&cached, &live, "after insert");
    let victim = live[2].id;
    cached.remove_rule(victim).expect("rule exists");
    live.retain(|r| r.id != victim);
    check(&cached, &live, "after remove");
    assert!(cached.stats().hits > 0, "warm passes must be served from the cache");
}

#[test]
fn cache_aware_parallel_batch_agrees() {
    let pool = rule_pool();
    let set = FilterSet::preserving_ids("fc", FilterKind::Routing, pool.clone());
    let config = SwitchConfig::single_app(FilterKind::Routing, 0);
    let sw = MtlSwitch::build(&config, &[&set]);
    // A trace with repeats (cache hits) across shard boundaries.
    let headers: Vec<HeaderValues> =
        (0..500).map(|i| probes()[i % probes().len()].clone()).collect();
    let want = sw.classify_batch_rows(FilterKind::Routing, &headers);
    for workers in [1usize, 2, 3, 7] {
        let mut caches: Vec<FlowCache> = (0..workers).map(|_| FlowCache::new(64)).collect();
        let got = sw.par_classify_batch_cached(FilterKind::Routing, &headers, &mut caches);
        assert_eq!(got, want, "workers = {workers}");
        // Re-running with warm caches stays identical.
        let again = sw.par_classify_batch_cached(FilterKind::Routing, &headers, &mut caches);
        assert_eq!(again, want, "warm workers = {workers}");
        assert!(
            caches.iter().map(FlowCache::hits).sum::<u64>() > 0,
            "warm rerun must serve hits (workers = {workers})"
        );
    }
    assert!(sw
        .par_classify_batch_cached(FilterKind::Routing, &[], &mut [FlowCache::new(16)])
        .is_empty());
}
