//! Generalization beyond the paper's evaluation: the same architecture
//! over 128-bit IPv6 destinations — eight parallel 16-bit partition tries
//! instead of two. The paper's Table II lists the IPv6 fields as LPM;
//! nothing in the design is IPv4-specific, and this test proves it.

use openflow_mtl::prelude::*;

fn v6_rule(id: u32, port: u32, value: u128, len: u32, out: u32) -> Rule {
    Rule::new(
        id,
        len as u16,
        FlowMatch::any()
            .with_exact(MatchFieldKind::InPort, u128::from(port))
            .unwrap()
            .with_prefix(MatchFieldKind::Ipv6Dst, value, len)
            .unwrap(),
        RuleAction::Forward(out),
    )
}

fn v6(s: &str) -> u128 {
    u128::from_be_bytes(s.parse::<std::net::Ipv6Addr>().unwrap().octets())
}

fn config() -> SwitchConfig {
    // Two tables: port LUT chained into the IPv6 partitioned tries.
    use mtl_core::{FieldConfig, TableConfig};
    SwitchConfig {
        name: "ipv6".into(),
        apps: vec![(
            FilterKind::Routing,
            vec![
                TableConfig {
                    table_id: 0,
                    fields: vec![FieldConfig::auto(MatchFieldKind::InPort)],
                    uses_metadata: false,
                    goto: Some(1),
                },
                TableConfig {
                    table_id: 1,
                    fields: vec![FieldConfig::auto(MatchFieldKind::Ipv6Dst)],
                    uses_metadata: true,
                    goto: None,
                },
            ],
        )],
    }
}

#[test]
fn ipv6_lpm_through_eight_partitions() {
    let rules = vec![
        v6_rule(0, 1, v6("2001:db8::"), 32, 10),
        v6_rule(1, 1, v6("2001:db8:aaaa::"), 48, 20),
        v6_rule(2, 1, v6("2001:db8:aaaa:bbbb::"), 64, 30),
        v6_rule(3, 1, v6("2001:db8:aaaa:bbbb::1"), 128, 40), // host route
        v6_rule(4, 2, v6("fd00::"), 8, 50),
        v6_rule(5, 1, 0, 0, 1), // default
    ];
    let set = FilterSet::new("v6", FilterKind::Routing, rules);
    let sw = MtlSwitch::build(&config(), &[&set]);

    let classify = |port: u32, dst: &str| {
        sw.classify(
            &HeaderValues::new()
                .with(MatchFieldKind::InPort, u128::from(port))
                .with(MatchFieldKind::Ipv6Dst, v6(dst)),
        )
        .verdict
    };

    // Longest prefix wins across all eight partitions.
    assert_eq!(classify(1, "2001:db8:aaaa:bbbb::1"), Verdict::Output(40));
    assert_eq!(classify(1, "2001:db8:aaaa:bbbb::2"), Verdict::Output(30));
    assert_eq!(classify(1, "2001:db8:aaaa:cccc::1"), Verdict::Output(20));
    assert_eq!(classify(1, "2001:db8:ffff::1"), Verdict::Output(10));
    assert_eq!(classify(1, "2002::1"), Verdict::Output(1)); // default
    assert_eq!(classify(2, "fd12:3456::1"), Verdict::Output(50));
    // Port 2 has no default route.
    assert_eq!(classify(2, "2001:db8::1"), Verdict::ToController);
}

#[test]
fn ipv6_engine_has_eight_tries_with_l1_anchor() {
    let set =
        FilterSet::new("v6", FilterKind::Routing, vec![v6_rule(0, 1, v6("2001:db8::"), 32, 1)]);
    let sw = MtlSwitch::build(&config(), &[&set]);
    let m = SwitchMemoryReport::of(&sw);
    // Eight partition tries exist (higher, six middles, lower); each L1
    // is the 32-entry root block.
    assert!(m.report.bits_under("t1/ipv6_dst/higher/L1") > 0);
    assert!(m.report.bits_under("t1/ipv6_dst/middle/L1") > 0);
    assert!(m.report.bits_under("t1/ipv6_dst/lower/L1") > 0);
    assert_eq!(m.report.entries_under("t1/ipv6_dst/higher/L1"), 32);
    // A /32 rule populates the first two partitions and wildcards the
    // remaining six; total stored nodes stay tiny.
    let nodes = m.report.entries_under("t1/ipv6_dst");
    assert!(nodes < 2_000, "IPv6 tries should stay small here: {nodes}");
}

#[test]
fn ipv6_incremental_add() {
    let set = FilterSet::new("v6", FilterKind::Routing, vec![v6_rule(0, 1, 0, 0, 1)]);
    let mut sw = MtlSwitch::build(&config(), &[&set]);
    let out = sw.add_rule(FilterKind::Routing, v6_rule(1, 1, v6("2001:db8::"), 32, 9));
    assert_eq!(out.mode, mtl_core::UpdateMode::Incremental);
    let h = HeaderValues::new()
        .with(MatchFieldKind::InPort, 1)
        .with(MatchFieldKind::Ipv6Dst, v6("2001:db8::42"));
    assert_eq!(sw.classify(&h).verdict, Verdict::Output(9));
}
