//! OpenFlow multi-table semantics of the reference pipeline: goto
//! monotonicity, metadata flow, action-set accumulation and table-miss
//! behaviour under arbitrary table programs.

use oflow::actions::port;
use oflow::{
    Action, FlowEntry, FlowMatch, HeaderValues, Instruction, MatchFieldKind, Pipeline, Verdict,
};
use proptest::prelude::*;

/// A small random table program: per table, entries matching a VLAN value
/// and either writing an output or jumping forward.
#[derive(Debug, Clone)]
struct ProgramEntry {
    table: u8,
    vlan: u16,
    priority: u16,
    output: u32,
    goto_next: bool,
}

fn entries() -> impl Strategy<Value = Vec<ProgramEntry>> {
    proptest::collection::vec(
        (0u8..3, 0u16..8, 1u16..6, 1u32..100, any::<bool>()).prop_map(
            |(table, vlan, priority, output, goto_next)| ProgramEntry {
                table,
                vlan,
                priority,
                output,
                goto_next,
            },
        ),
        0..24,
    )
}

fn build(program: &[ProgramEntry]) -> Pipeline {
    let mut p = Pipeline::with_tables(3);
    for e in program {
        let mut instructions = vec![Instruction::WriteActions(vec![Action::Output(e.output)])];
        if e.goto_next && e.table < 2 {
            instructions.push(Instruction::GotoTable(e.table + 1));
        }
        p.add_flow(
            e.table,
            FlowEntry::new(
                e.priority,
                FlowMatch::any().with_exact(MatchFieldKind::VlanVid, u128::from(e.vlan)).unwrap(),
                instructions,
            ),
        )
        .expect("forward-only program is valid");
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The visited path is strictly increasing in table id and starts at 0.
    #[test]
    fn path_strictly_increases(program in entries(), vlan in 0u16..10) {
        let mut p = build(&program);
        let r = p.process(&HeaderValues::new().with(MatchFieldKind::VlanVid, u128::from(vlan)));
        prop_assert!(!r.path.is_empty());
        prop_assert_eq!(r.path[0].table, 0);
        for w in r.path.windows(2) {
            prop_assert!(w[1].table > w[0].table, "path must move forward: {:?}", r.path);
        }
    }

    /// A match ending without goto executes the LAST written output (the
    /// action-set replacement semantics); a miss anywhere punts to the
    /// controller.
    #[test]
    fn verdict_follows_action_set_semantics(program in entries(), vlan in 0u16..10) {
        let mut p = build(&program);
        let header = HeaderValues::new().with(MatchFieldKind::VlanVid, u128::from(vlan));
        let r = p.process(&header);

        // Simulate the spec by hand. Priority ties inside a table are
        // resolved by insertion order in the pipeline; skip those
        // ambiguous programs rather than re-encode the tiebreak.
        let mut table = 0u8;
        let verdict = loop {
            let candidates: Vec<_> = program
                .iter()
                .filter(|e| e.table == table && e.vlan == vlan)
                .collect();
            let top = candidates.iter().map(|e| e.priority).max();
            if candidates.iter().filter(|e| Some(e.priority) == top).count() > 1 {
                return Ok(());
            }
            match candidates.into_iter().max_by_key(|e| e.priority) {
                None => break Verdict::ToController,
                Some(e) => {
                    if e.goto_next && e.table < 2 {
                        table += 1;
                    } else {
                        break Verdict::Output(e.output);
                    }
                }
            }
        };
        prop_assert_eq!(r.verdict, verdict, "header vlan={}", vlan);
    }

    /// Metadata written in one table is matchable in later tables,
    /// masked writes compose.
    #[test]
    fn metadata_masked_writes(v1 in any::<u64>(), m1 in any::<u64>(), v2 in any::<u64>(), m2 in any::<u64>()) {
        let mut p = Pipeline::with_tables(3);
        p.add_flow(0, FlowEntry::new(1, FlowMatch::any(), vec![
            Instruction::WriteMetadata { value: v1, mask: m1 },
            Instruction::GotoTable(1),
        ])).unwrap();
        p.add_flow(1, FlowEntry::new(1, FlowMatch::any(), vec![
            Instruction::WriteMetadata { value: v2, mask: m2 },
            Instruction::GotoTable(2),
        ])).unwrap();
        let expected = {
            let after1 = v1 & m1;
            (after1 & !m2) | (v2 & m2)
        };
        p.add_flow(2, FlowEntry::new(1,
            FlowMatch::any().with_exact(MatchFieldKind::Metadata, u128::from(expected)).unwrap(),
            vec![Instruction::WriteActions(vec![Action::Output(42)])],
        )).unwrap();
        let r = p.process(&HeaderValues::new());
        prop_assert_eq!(r.verdict, Verdict::Output(42));
        prop_assert_eq!(r.metadata, expected);
    }

    /// Clear-Actions always empties the set regardless of prior writes.
    #[test]
    fn clear_actions_wins(outputs in proptest::collection::vec(1u32..50, 1..5)) {
        let mut p = Pipeline::with_tables(2);
        let actions: Vec<Action> = outputs.iter().map(|&o| Action::Output(o)).collect();
        p.add_flow(0, FlowEntry::new(1, FlowMatch::any(), vec![
            Instruction::WriteActions(actions),
            Instruction::GotoTable(1),
        ])).unwrap();
        p.add_flow(1, FlowEntry::new(1, FlowMatch::any(), vec![Instruction::ClearActions]))
            .unwrap();
        let r = p.process(&HeaderValues::new());
        prop_assert_eq!(r.verdict, Verdict::Drop);
    }
}

/// Explicit CONTROLLER output and table-miss entries behave per spec.
#[test]
fn controller_punt_paths() {
    let mut p = Pipeline::with_tables(2);
    // Table 0: known VLANs jump; unknown miss (no table-miss entry).
    p.add_flow(
        0,
        FlowEntry::new(
            5,
            FlowMatch::any().with_exact(MatchFieldKind::VlanVid, 1).unwrap(),
            vec![Instruction::GotoTable(1)],
        ),
    )
    .unwrap();
    // Table 1: everything to controller explicitly.
    p.add_flow(
        1,
        FlowEntry::new(
            0,
            FlowMatch::any(),
            vec![Instruction::WriteActions(vec![Action::Output(port::CONTROLLER)])],
        ),
    )
    .unwrap();

    let hit = p.process(&HeaderValues::new().with(MatchFieldKind::VlanVid, 1));
    assert_eq!(hit.verdict, Verdict::ToController);
    assert_eq!(hit.path.len(), 2);

    let miss = p.process(&HeaderValues::new().with(MatchFieldKind::VlanVid, 9));
    assert_eq!(miss.verdict, Verdict::ToController);
    assert_eq!(miss.path.len(), 1);
    assert_eq!(miss.path[0].matched_priority, None);
}
