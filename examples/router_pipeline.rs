//! Full router pipeline: the paper's 4-table MAC + Routing configuration,
//! cross-checked against a reference OpenFlow pipeline built from the
//! same flow entries.
//!
//! Demonstrates that the decomposition architecture implements genuine
//! OpenFlow multi-table semantics: the same `Goto-Table` +
//! `Write-Metadata` wiring, expressed as flow entries in the
//! linear-search `oflow::Pipeline`, produces identical verdicts.
//!
//! ```sh
//! cargo run --example router_pipeline
//! ```

use offilter::synth::{generate_mac, generate_routing, MacTargets, RoutingTargets};
use oflow::{Action, FieldMatch};
use openflow_mtl::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // 1. Two applications at reduced scale.
    let mac_set = generate_mac(
        &MacTargets {
            name: "demo".into(),
            rules: 400,
            vlan_unique: 16,
            eth_partitions: [12, 90, 280],
            ports: 8,
        },
        1,
    );
    let routing_set = generate_routing(
        &RoutingTargets {
            name: "demo".into(),
            rules: 600,
            port_unique: 12,
            ip_partitions: [40, 380],
            short_prefixes: 4,
            out_ports: 8,
        },
        2,
    );

    // 2. The paper's 4-table architecture.
    let config = SwitchConfig::mac_routing_preset();
    let switch = MtlSwitch::build(&config, &[&mac_set, &routing_set]);
    println!("built: {}", switch.name);
    for app in &switch.apps {
        for te in &app.tables {
            println!(
                "  table {}: fields {:?}, {} index entries, {} action rows",
                te.config.table_id,
                te.config.fields.iter().map(|f| f.field.name()).collect::<Vec<_>>(),
                te.index.len(),
                te.actions.len()
            );
        }
    }

    // 3. A reference OpenFlow pipeline for the MAC application: table 0
    //    matches VLAN and jumps; table 1 matches (metadata, eth_dst).
    //    Metadata carries the VLAN's dense label, mirroring the
    //    architecture's label chaining.
    let mut pipeline = Pipeline::with_tables(2);
    let mut vlan_labels: Vec<u128> = Vec::new();
    for r in &mac_set.rules {
        let FieldMatch::Exact(vlan) = r.field(MatchFieldKind::VlanVid) else { unreachable!() };
        let FieldMatch::Exact(mac) = r.field(MatchFieldKind::EthDst) else { unreachable!() };
        let label = match vlan_labels.iter().position(|&v| v == vlan) {
            Some(i) => i as u64,
            None => {
                vlan_labels.push(vlan);
                let label = (vlan_labels.len() - 1) as u64;
                pipeline
                    .add_flow(
                        0,
                        FlowEntry::new(
                            1,
                            FlowMatch::any().with_exact(MatchFieldKind::VlanVid, vlan).unwrap(),
                            vec![
                                Instruction::WriteMetadata { value: label, mask: u64::MAX },
                                Instruction::GotoTable(1),
                            ],
                        ),
                    )
                    .expect("valid flow");
                label
            }
        };
        pipeline
            .add_flow(
                1,
                FlowEntry::new(
                    1,
                    FlowMatch::any()
                        .with_exact(MatchFieldKind::Metadata, u128::from(label))
                        .unwrap()
                        .with_exact(MatchFieldKind::EthDst, mac)
                        .unwrap(),
                    vec![Instruction::WriteActions(vec![Action::Output(r.action.port().unwrap())])],
                ),
            )
            .expect("valid flow");
    }
    println!(
        "\nreference pipeline: table0 {} entries, table1 {} entries",
        pipeline.table(0).unwrap().len(),
        pipeline.table(1).unwrap().len()
    );

    // 4. Drive both with the same headers and compare verdicts.
    let mut rng = StdRng::seed_from_u64(3);
    let mut compared = 0;
    for _ in 0..3_000 {
        let (vlan, mac) = if rng.gen_bool(0.6) {
            let r = &mac_set.rules[rng.gen_range(0..mac_set.len())];
            let FieldMatch::Exact(v) = r.field(MatchFieldKind::VlanVid) else { unreachable!() };
            let FieldMatch::Exact(m) = r.field(MatchFieldKind::EthDst) else { unreachable!() };
            (v, m)
        } else {
            (u128::from(rng.gen::<u16>() & 0xFFF), u128::from(rng.gen::<u64>() & 0xFFFF_FFFF_FFFF))
        };
        let header = HeaderValues::new()
            .with(MatchFieldKind::VlanVid, vlan)
            .with(MatchFieldKind::EthDst, mac);
        let fast = switch.classify_app(FilterKind::MacLearning, &header).verdict;
        let slow = pipeline.process(&header).verdict;
        assert_eq!(fast, slow, "divergence on {header}");
        compared += 1;
    }
    println!("verdicts agree on {compared} headers (decomposition == OpenFlow pipeline)");

    // 5. Routing side spot checks through its own app chain (ingress
    //    ports drawn from the set's real port population).
    let ports: Vec<u128> = routing_set
        .rules
        .iter()
        .filter_map(|r| match r.field(MatchFieldKind::InPort) {
            FieldMatch::Exact(p) => Some(p),
            _ => None,
        })
        .collect();
    let mut forwarded = 0;
    for _ in 0..3_000 {
        let header = HeaderValues::new()
            .with(MatchFieldKind::InPort, ports[rng.gen_range(0..ports.len())])
            .with(MatchFieldKind::Ipv4Dst, u128::from(rng.gen::<u32>()));
        if matches!(switch.classify_app(FilterKind::Routing, &header).verdict, Verdict::Output(_)) {
            forwarded += 1;
        }
    }
    println!("routing app: {forwarded}/3000 random headers matched a route");

    let memory = SwitchMemoryReport::of(&switch);
    println!("\ntotal memory of the 4-table prototype: {}", memory.total());
}
