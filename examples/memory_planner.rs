//! Memory planner: the paper's core question, asked as a tool.
//!
//! Given target rule-set statistics (rules, unique values per partition),
//! how much embedded memory will the multi-table architecture need, how
//! does it split across structures and trie levels, and how many
//! Stratix-V M20K blocks does it occupy? The planner sweeps rule counts
//! and stride schedules — the ablation the paper's §V.A references from
//! [22] ("the distribution of 3-level trie is optimal").
//!
//! ```sh
//! cargo run --release --example memory_planner
//! ```

use ofalgo::trie::TrieSizing;
use ofalgo::Mbt;
use offilter::synth::{generate_routing, RoutingTargets};
use oflow::MatchFieldKind;
use ofmem::bram::M20K;
use openflow_mtl::prelude::*;

fn main() {
    // 1. Sweep rule-set size for a fixed shape (Table IV-like ratios).
    println!("== memory vs rule count (routing application) ==");
    println!(
        "{:>8}  {:>12}  {:>10}  {:>10}  {:>6}",
        "rules", "total Kbits", "MBT Kbits", "idx Kbits", "M20K"
    );
    for rules in [500usize, 1_000, 2_000, 4_000, 8_000, 16_000] {
        let set = generate_routing(
            &RoutingTargets {
                name: format!("sweep{rules}"),
                rules,
                port_unique: (rules / 40).clamp(4, 77),
                ip_partitions: [(rules / 25).max(4), (rules * 2 / 3).max(4)],
                short_prefixes: (rules / 300).clamp(1, 12),
                out_ports: 32,
            },
            9,
        );
        let switch = MtlSwitch::build(&SwitchConfig::single_app(FilterKind::Routing, 0), &[&set]);
        let m = SwitchMemoryReport::of(&switch);
        println!(
            "{:>8}  {:>12.1}  {:>10.1}  {:>10.1}  {:>6}",
            rules,
            m.total().kbits(),
            m.mbt_bits as f64 / 1e3,
            m.index_bits as f64 / 1e3,
            m.m20k_blocks()
        );
    }

    // 2. Stride-schedule ablation on one 16-bit partition trie: the
    //    tradeoff behind the paper's 3-level choice.
    println!("\n== stride-schedule ablation (one 16-bit trie, 2000 prefixes) ==");
    let set = generate_routing(
        &RoutingTargets {
            name: "ablation".into(),
            rules: 3_000,
            port_unique: 16,
            ip_partitions: [80, 2_000],
            short_prefixes: 4,
            out_ports: 16,
        },
        10,
    );
    // Lower-partition entries of the rules.
    let entries: Vec<(u64, u32)> = {
        let mut pt = PartitionedTrie::new(32);
        for r in &set.rules {
            let (v, len) = r.field_as_prefix(MatchFieldKind::Ipv4Dst).unwrap();
            pt.insert(v, len);
        }
        pt.dictionaries()[1].values().to_vec()
    };
    println!(
        "{:>10}  {:>7}  {:>8}  {:>12}  {:>6}",
        "schedule", "levels", "nodes", "total Kbits", "M20K"
    );
    for strides in [
        vec![16],
        vec![8, 8],
        vec![5, 5, 6],
        vec![6, 5, 5],
        vec![4, 4, 4, 4],
        vec![2, 2, 2, 2, 2, 2, 2, 2],
    ] {
        let schedule = StrideSchedule::new(strides);
        let mut trie = Mbt::new(schedule.clone());
        let mut sorted = entries.clone();
        sorted.sort_by_key(|&(_, len)| len);
        for (i, &(v, len)) in sorted.iter().enumerate() {
            trie.insert(v, len, Label(i as u32));
        }
        let report = trie.memory_report(&TrieSizing::default());
        println!(
            "{:>10}  {:>7}  {:>8}  {:>12.1}  {:>6}",
            schedule.to_string(),
            schedule.levels(),
            trie.stored_nodes(),
            report.total_kbits(),
            M20K.total_brams(&report)
        );
    }
    println!(
        "\nThe 3-level schedules balance lookup depth (pipeline stages)\n\
         against expansion waste — the tradeoff behind the paper's 5-5-6\n\
         choice; 1-level explodes in memory, 8-level doubles the stages\n\
         for little saving."
    );
}
