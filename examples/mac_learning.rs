//! MAC-learning scenario: the paper's first use case, end to end.
//!
//! Generates a MAC-learning filter set with the published statistics of a
//! Stanford backbone router, compiles it into the two-table architecture
//! (VLAN LUT -> Ethernet partition tries), classifies real packet *bytes*
//! through header extraction, and compares the decomposition engine
//! against the linear-search OpenFlow oracle on every packet.
//!
//! ```sh
//! cargo run --example mac_learning [router]
//! ```

use offilter::paper_data::mac_stats;
use offilter::synth::{generate_mac, MacTargets};
use oflow::FieldMatch;
use openflow_mtl::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let router = std::env::args().nth(1).unwrap_or_else(|| "bbra".to_owned());
    let stats = mac_stats(&router).unwrap_or_else(|| {
        eprintln!("unknown router {router}; try bbra, gozb, coza ...");
        std::process::exit(2);
    });

    // 1. Synthesize the router's MAC table with its published statistics.
    let set = generate_mac(&MacTargets::from_paper(stats), 42);
    println!(
        "{}: {} rules, {} VLANs, eth partitions {}/{}/{} unique",
        set.full_name(),
        set.len(),
        stats.vlan_unique,
        stats.eth_hi,
        stats.eth_mid,
        stats.eth_lo
    );

    // 2. Compile into the two-table architecture.
    let config = SwitchConfig::single_app(FilterKind::MacLearning, 0);
    let switch = MtlSwitch::build(&config, &[&set]);
    let memory = SwitchMemoryReport::of(&switch);
    println!("\nmemory: {}", memory.total());
    println!(
        "  eth tries: {} stored nodes, {:.1} Kbits",
        memory.report.entries_under("t1/eth_dst"),
        memory.report.bits_under("t1/eth_dst") as f64 / 1e3
    );

    // 3. Classify real frames: build packet bytes for a sample of rules,
    //    parse them back, extract header values, classify, and check the
    //    oracle agrees.
    let mut rng = StdRng::seed_from_u64(7);
    let mut agreements = 0;
    let mut hits = 0;
    let samples = 2_000;
    for _ in 0..samples {
        // Half known MACs, half random (unknown -> controller).
        let (vlan, mac) = if rng.gen_bool(0.5) {
            let r = &set.rules[rng.gen_range(0..set.len())];
            let FieldMatch::Exact(v) = r.field(MatchFieldKind::VlanVid) else { unreachable!() };
            let FieldMatch::Exact(m) = r.field(MatchFieldKind::EthDst) else { unreachable!() };
            (v as u16, m as u64)
        } else {
            (rng.gen::<u16>() & 0xFFF, rng.gen::<u64>() & 0xFFFF_FFFF_FFFF)
        };
        let frame =
            PacketBuilder::ethernet(MacAddr::from_u64(0x0200_0000_00AA), MacAddr::from_u64(mac))
                .vlan(vlan, 0)
                .ipv4("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
                .udp(4000, 4000)
                .build();

        // Header extraction note: OpenFlow's vlan_vid carries a presence
        // bit; the MAC rules match the raw 12-bit VID, so mask it off.
        let parsed = parse_packet(&frame).expect("self-built frame parses");
        let mut header = parsed.header_values(1);
        if let Some(v) = header.get(MatchFieldKind::VlanVid) {
            header.set(MatchFieldKind::VlanVid, v & 0xFFF);
        }

        let got = switch.classify(&header);
        let want = set
            .rules
            .iter()
            .find(|r| r.flow_match.matches(&header))
            .map(|r| Verdict::Output(r.action.port().unwrap()))
            .unwrap_or(Verdict::ToController);
        if got.verdict == want {
            agreements += 1;
        }
        if matches!(got.verdict, Verdict::Output(_)) {
            hits += 1;
        }
    }
    println!(
        "\nclassified {samples} frames from raw bytes: {hits} forwarded, \
         {} punted to controller",
        samples - hits
    );
    println!("oracle agreement: {agreements}/{samples}");
    assert_eq!(agreements, samples, "decomposition must match the oracle");

    // 4. The label method's effect on updates (the Fig. 5 story).
    println!(
        "\nupdate records: label method {} vs original {} ({:.1}% fewer cycles)",
        switch.ledger.algorithm_label_records,
        switch.ledger.algorithm_original_records,
        100.0 * switch.ledger.reduction()
    );
}
