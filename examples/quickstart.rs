//! Quickstart: build the paper's multi-table lookup architecture over a
//! small hand-written rule population, classify packets, and print the
//! memory report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use openflow_mtl::prelude::*;

fn main() {
    // 1. A small routing application: IPv4 prefixes behind ingress ports.
    let rules = vec![
        route(0, 1, "10.1.2.0", 24, 7),
        route(1, 1, "10.1.0.0", 16, 5),
        route(2, 2, "10.0.0.0", 8, 3),
        route(3, 1, "0.0.0.0", 0, 1), // default route
    ];
    let set = FilterSet::new("quickstart", FilterKind::Routing, rules);
    println!("rule set: {set}");
    for r in &set.rules {
        println!("  {r}");
    }

    // 2. Compile it into the paper's architecture: one OpenFlow table per
    //    field — an exact-match LUT for the ingress port chained by
    //    Goto-Table into two parallel 16-bit multi-bit tries for the
    //    address, combined through label index tables.
    let config = SwitchConfig::single_app(FilterKind::Routing, 0);
    let switch = MtlSwitch::build(&config, &[&set]);

    // 3. Classify a few headers.
    println!("\nclassification:");
    for (port, dst) in [
        (1u32, "10.1.2.77"),
        (1, "10.1.9.9"),
        (2, "10.200.1.1"),
        (1, "192.168.0.1"),
        (9, "10.1.2.77"),
    ] {
        let header = HeaderValues::new()
            .with(MatchFieldKind::InPort, u128::from(port))
            .with(MatchFieldKind::Ipv4Dst, ip(dst));
        let result = switch.classify(&header);
        println!(
            "  in_port={port} dst={dst:<12} -> {:?}  (index probes: {})",
            result.verdict, result.probes
        );
    }

    // 4. What does it cost in embedded memory?
    let memory = SwitchMemoryReport::of(&switch);
    println!("\nmemory report:\n{memory}");

    // 5. And what did installing it cost in update records?
    let label = switch.ledger.label_stats();
    let original = switch.ledger.original_stats();
    println!(
        "\nupdate cost: label method {label}, original method {original} \
         ({:.1}% reduction)",
        100.0 * switch.ledger.reduction()
    );
}

fn route(id: u32, in_port: u32, dst: &str, len: u32, out: u32) -> Rule {
    Rule::new(
        id,
        len as u16,
        FlowMatch::any()
            .with_exact(MatchFieldKind::InPort, u128::from(in_port))
            .expect("port fits")
            .with_prefix(MatchFieldKind::Ipv4Dst, ip(dst), len)
            .expect("prefix fits"),
        RuleAction::Forward(out),
    )
}

fn ip(s: &str) -> u128 {
    u128::from(u32::from(s.parse::<std::net::Ipv4Addr>().expect("valid IPv4")))
}
