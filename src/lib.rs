//! # openflow-mtl — OpenFlow multiple-table lookup, reproduced
//!
//! A from-scratch Rust reproduction of *"Memory Cost Analysis for OpenFlow
//! Multiple Table Lookup"* (Guerra Perez, Scott-Hayward, Yang, Sezer —
//! IEEE SOCC 2015): a decomposition-based multi-table packet classifier
//! with per-field algorithm selection (hash LUTs, pipelined multi-bit
//! tries, range matchers), the DCFL-style label method, bit-accurate
//! embedded-memory cost models, and the paper's complete evaluation
//! harness.
//!
//! This facade crate re-exports the workspace members:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`oflow`] | OpenFlow v1.3 match fields, flow tables, multi-table pipeline (reference oracle) |
//! | [`ofpacket`] | Byte-level packet headers, parsing, OXM extraction, traces |
//! | [`offilter`] | Rule sets, the paper's published statistics, constrained synthesis, surveys |
//! | [`ofalgo`] | Multi-bit tries, exact-match LUTs, range matchers, labels |
//! | [`ofmem`] | Memory layouts, blocks, Kbit accounting, M20K mapping |
//! | [`classifier_api`] | The unified fallible `Classifier` contract every engine implements |
//! | [`mtl_core`] | The paper's architecture: engines, index tables, action tables, update model |
//! | [`mtl_runtime`] | Sharded lock-free dataplane runtime: RCU snapshot swaps, SPSC rings, per-shard caches |
//! | [`ofbaseline`] | Linear scan, TCAM model, tuple space search, HiCuts |
//!
//! ## Quickstart
//!
//! ```
//! use openflow_mtl::prelude::*;
//!
//! // A tiny routing table: two prefixes behind ingress port 1.
//! let rules = vec![
//!     Rule::new(0, 24,
//!         FlowMatch::any()
//!             .with_exact(MatchFieldKind::InPort, 1).unwrap()
//!             .with_prefix(MatchFieldKind::Ipv4Dst, 0x0A01_0200, 24).unwrap(),
//!         RuleAction::Forward(7)),
//!     Rule::new(1, 0,
//!         FlowMatch::any()
//!             .with_exact(MatchFieldKind::InPort, 1).unwrap()
//!             .with_prefix(MatchFieldKind::Ipv4Dst, 0, 0).unwrap(),
//!         RuleAction::Forward(1)),
//! ];
//! let set = FilterSet::new("quick", FilterKind::Routing, rules);
//!
//! // Build the paper's two-table architecture (fallibly) and classify.
//! let config = SwitchConfig::single_app(FilterKind::Routing, 0);
//! let switch = MtlSwitch::try_build(&config, &[&set]).expect("valid set");
//! let header = HeaderValues::new()
//!     .with(MatchFieldKind::InPort, 1)
//!     .with(MatchFieldKind::Ipv4Dst, 0x0A01_02FF);
//! assert_eq!(switch.classify(&header).verdict, Verdict::Output(7));
//!
//! // Every engine — this architecture and all baselines — also speaks
//! // the unified `Classifier` trait (rule-id results, batch lookup):
//! let unified: &dyn Classifier = &switch;
//! assert_eq!(unified.classify(&header), Some(0));
//! assert_eq!(unified.classify_batch(&[header.clone()]), vec![Some(0)]);
//!
//! // And ask what it costs in embedded memory.
//! let memory = SwitchMemoryReport::of(&switch);
//! assert!(memory.total().bits() > 0);
//! assert_eq!(unified.memory_bits(), memory.total().bits());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use classifier_api;
pub use mtl_core;
pub use mtl_runtime;
pub use ofalgo;
pub use ofbaseline;
pub use offilter;
pub use oflow;
pub use ofmem;
pub use ofpacket;

/// The most common imports in one place.
pub mod prelude {
    pub use classifier_api::{
        reference_classify, BuildError, Classifier, ClassifierBuilder, ClassifierRegistry,
        DynamicClassifier, UpdateReport,
    };
    pub use mtl_core::{ClassifyResult, MtlSwitch, SwitchConfig, SwitchMemoryReport, UpdatePlan};
    pub use mtl_runtime::{ClassifiedBatch, Runtime, RuntimeConfig, RuntimeHandle};
    pub use ofalgo::{HashLut, Label, Mbt, PartitionedTrie, RangeMatcher, StrideSchedule};
    pub use offilter::{FilterKind, FilterSet, Rule, RuleAction};
    pub use oflow::{
        FieldMatch, FlowEntry, FlowMatch, HeaderValues, Instruction, MatchFieldKind, Pipeline,
        Verdict,
    };
    pub use ofmem::{BitSize, MemoryReport};
    pub use ofpacket::{parse_packet, MacAddr, PacketBuilder};
}
