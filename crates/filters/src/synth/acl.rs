//! ACL (5-tuple) filter-set generator, ClassBench-flavoured.
//!
//! The paper's third application family (`_rtr_config` ACL entries) matches
//! on the classic 5-tuple: source/destination IPv4 prefixes, protocol, and
//! source/destination port ranges. This generator is used by the baseline
//! comparisons (Table I quantification) and the ACL example; it is
//! statistics-shaped rather than exactly constrained, since the paper does
//! not publish ACL partition counts.

use crate::rule::{Rule, RuleAction};
use crate::set::{FilterKind, FilterSet};
use oflow::{FlowMatch, MatchFieldKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Shape parameters for a generated ACL.
#[derive(Debug, Clone, PartialEq)]
pub struct AclConfig {
    /// Set name.
    pub name: String,
    /// Number of rules.
    pub rules: usize,
    /// Number of distinct internal /24 networks rules refer to.
    pub networks: usize,
    /// Fraction of rules carrying a port range (vs. exact/any ports).
    pub range_fraction: f64,
    /// Fraction of deny rules.
    pub deny_fraction: f64,
}

impl Default for AclConfig {
    fn default() -> Self {
        Self {
            name: "acl".into(),
            rules: 1000,
            networks: 64,
            range_fraction: 0.35,
            deny_fraction: 0.30,
        }
    }
}

/// Well-known destination ports ACLs concentrate on.
const COMMON_PORTS: [u16; 12] = [22, 25, 53, 80, 110, 123, 143, 443, 445, 993, 3306, 8080];

/// Common port ranges (ephemeral, registered, RPC).
const COMMON_RANGES: [(u16, u16); 4] = [(1024, 65_535), (49_152, 65_535), (135, 139), (6000, 6063)];

/// Generates an ACL filter set.
#[must_use]
pub fn generate_acl(config: &AclConfig, seed: u64) -> FilterSet {
    assert!(config.rules > 0 && config.networks > 0);
    let mut rng = StdRng::seed_from_u64(seed);

    // Internal networks: clustered /24s under a handful of /16s.
    let mut networks: Vec<u32> = Vec::with_capacity(config.networks);
    let mut seen = HashSet::new();
    let supernets: Vec<u32> = (0..4).map(|_| u32::from(rng.gen::<u16>()) << 16).collect();
    while networks.len() < config.networks {
        let base = supernets[rng.gen_range(0..supernets.len())];
        let net = base | (u32::from(rng.gen::<u8>()) << 8);
        if seen.insert(net) {
            networks.push(net);
        }
    }

    let mut rules = Vec::with_capacity(config.rules);
    for i in 0..config.rules {
        let mut fm = FlowMatch::any();

        // Source: internal network, a host within one, or any.
        fm = match rng.gen_range(0..3) {
            0 => {
                let net = networks[rng.gen_range(0..networks.len())];
                fm.with_prefix(MatchFieldKind::Ipv4Src, u128::from(net), 24).expect("prefix")
            }
            1 => {
                let net = networks[rng.gen_range(0..networks.len())];
                let host = net | u32::from(rng.gen::<u8>());
                fm.with_exact(MatchFieldKind::Ipv4Src, u128::from(host)).expect("host")
            }
            _ => fm,
        };
        // Destination: like source but biased toward networks.
        fm = match rng.gen_range(0..4) {
            0..=1 => {
                let net = networks[rng.gen_range(0..networks.len())];
                fm.with_prefix(MatchFieldKind::Ipv4Dst, u128::from(net), 24).expect("prefix")
            }
            2 => {
                let net = networks[rng.gen_range(0..networks.len())];
                let host = net | u32::from(rng.gen::<u8>());
                fm.with_exact(MatchFieldKind::Ipv4Dst, u128::from(host)).expect("host")
            }
            _ => fm,
        };

        // Protocol: mostly TCP/UDP, some any.
        let proto = match rng.gen_range(0..10) {
            0..=5 => Some(6u8),
            6..=8 => Some(17u8),
            _ => None,
        };
        if let Some(p) = proto {
            fm = fm.with_exact(MatchFieldKind::IpProto, u128::from(p)).expect("proto");
        }

        // Destination port: range, well-known exact, or any.
        if proto.is_some() {
            if rng.gen_bool(config.range_fraction) {
                let (lo, hi) = COMMON_RANGES[rng.gen_range(0..COMMON_RANGES.len())];
                fm = fm
                    .with_range(MatchFieldKind::TcpDst, u128::from(lo), u128::from(hi))
                    .expect("range");
            } else if rng.gen_bool(0.7) {
                let p = COMMON_PORTS[rng.gen_range(0..COMMON_PORTS.len())];
                fm = fm.with_exact(MatchFieldKind::TcpDst, u128::from(p)).expect("port");
            }
        }

        let action = if rng.gen_bool(config.deny_fraction) {
            RuleAction::Deny
        } else {
            RuleAction::Forward(rng.gen_range(1..=16))
        };
        // Priority: earlier rules win, as in ordered ACLs.
        let priority = (config.rules - i) as u16;
        rules.push(Rule::new(i as u32, priority, fm, action));
    }

    FilterSet::new(config.name.clone(), FilterKind::Acl, rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oflow::FieldMatch;

    #[test]
    fn generates_requested_count() {
        let set = generate_acl(&AclConfig::default(), 1);
        assert_eq!(set.len(), 1000);
        assert_eq!(set.kind, FilterKind::Acl);
    }

    #[test]
    fn deterministic_per_seed() {
        let c = AclConfig::default();
        assert_eq!(generate_acl(&c, 2), generate_acl(&c, 2));
        assert_ne!(generate_acl(&c, 2), generate_acl(&c, 3));
    }

    #[test]
    fn priorities_strictly_ordered() {
        let set = generate_acl(&AclConfig { rules: 50, ..AclConfig::default() }, 4);
        for w in set.rules.windows(2) {
            assert!(w[0].priority > w[1].priority);
        }
    }

    #[test]
    fn contains_ranges_and_denies() {
        let set = generate_acl(&AclConfig::default(), 5);
        let ranges = set
            .rules
            .iter()
            .filter(|r| matches!(r.field(MatchFieldKind::TcpDst), FieldMatch::Range { .. }))
            .count();
        let denies = set.rules.iter().filter(|r| r.action == RuleAction::Deny).count();
        assert!(ranges > 100, "expected many ranges, got {ranges}");
        assert!(denies > 100, "expected many denies, got {denies}");
    }

    #[test]
    fn port_matches_only_with_protocol() {
        let set = generate_acl(&AclConfig::default(), 6);
        for r in &set.rules {
            if !matches!(r.field(MatchFieldKind::TcpDst), FieldMatch::Any) {
                assert!(
                    !matches!(r.field(MatchFieldKind::IpProto), FieldMatch::Any),
                    "port match without protocol in {r}"
                );
            }
        }
    }
}
