//! MAC-learning filter-set generator.
//!
//! Emits `(VLAN ID, destination Ethernet) -> output port` rules whose
//! unique-value counts per field match the targets exactly. Ethernet
//! addresses are assembled from three independently constrained 16-bit
//! partition pools, mirroring the paper's partition analysis; the pools'
//! allocation-block sampler reproduces OUI/NIC locality (few unique higher
//! partitions, many clustered lower ones).

use super::pools::UniquePool;
use crate::paper_data::MacFilterStats;
use crate::rule::{Rule, RuleAction};
use crate::set::{FilterKind, FilterSet};
use oflow::{FlowMatch, MatchFieldKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Statistical targets for a generated MAC set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacTargets {
    /// Set name (router id).
    pub name: String,
    /// Number of rules.
    pub rules: usize,
    /// Unique VLAN IDs.
    pub vlan_unique: usize,
    /// Unique values per 16-bit Ethernet partition `[hi, mid, lo]`.
    pub eth_partitions: [usize; 3],
    /// Number of distinct output ports to spread rules over.
    pub ports: usize,
}

impl MacTargets {
    /// Targets from a published Table III row.
    #[must_use]
    pub fn from_paper(s: &MacFilterStats) -> Self {
        Self {
            name: s.router.to_owned(),
            rules: s.rules,
            vlan_unique: s.vlan_unique,
            eth_partitions: [s.eth_hi, s.eth_mid, s.eth_lo],
            ports: 48,
        }
    }

    fn validate(&self) {
        assert!(self.rules > 0, "need at least one rule");
        assert!(self.vlan_unique >= 1 && self.vlan_unique <= self.rules);
        for (i, &u) in self.eth_partitions.iter().enumerate() {
            assert!(u >= 1 && u <= self.rules, "partition {i} target {u} infeasible");
        }
        // The MAC must be unique per rule, so the partition combination
        // space must cover the rule count.
        let combos = self.eth_partitions.iter().map(|&u| u as u128).product::<u128>();
        assert!(combos >= self.rules as u128, "partition targets cannot yield enough MACs");
    }
}

/// Per-partition clustering strengths: the higher partition is OUI-like
/// (modest clustering over vendor blocks), the middle and lower partitions
/// follow sequential NIC allocation (strong runs).
const CLUSTER_P: [f64; 3] = [0.55, 0.85, 0.92];

/// Generates a MAC-learning filter set meeting `targets` exactly.
#[must_use]
pub fn generate_mac(targets: &MacTargets, seed: u64) -> FilterSet {
    targets.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let n = targets.rules;

    let mut vlan_pool = UniquePool::new(targets.vlan_unique, 12, 0.30);
    let mut parts: Vec<UniquePool> = targets
        .eth_partitions
        .iter()
        .zip(CLUSTER_P)
        .map(|(&t, p)| UniquePool::new(t, 16, p))
        .collect();

    let mut used_macs: HashSet<u64> = HashSet::with_capacity(n);
    let mut rules = Vec::with_capacity(n);

    for i in 0..n {
        let remaining = n - i;
        let vlan = vlan_pool.draw(remaining, &mut rng);

        // Choose partition values; the combination must be a new MAC.
        // A draw containing a new partition value cannot collide, so only
        // all-reuse draws retry. Early in a set the reuse pools are tiny
        // and their combination space can be exhausted outright, so after
        // a few failed retries a new value is *forced* into the partition
        // with the most outstanding need (never exceeding its target —
        // pools at target keep retrying, which `validate` guarantees will
        // terminate).
        let mut new_flags: Vec<bool> =
            parts.iter().map(|p| p.decide_new(remaining, &mut rng)).collect();
        let mut mac;
        let mut attempts = 0usize;
        loop {
            let mut pieces = [0u64; 3];
            let mut any_new = false;
            for (j, part) in parts.iter_mut().enumerate() {
                if new_flags[j] && !part.is_full() {
                    pieces[j] = part.new_value(&mut rng);
                    any_new = true;
                } else {
                    pieces[j] = part.reuse(&mut rng);
                }
            }
            mac = (pieces[0] << 32) | (pieces[1] << 16) | pieces[2];
            if any_new || used_macs.insert(mac) {
                if any_new {
                    used_macs.insert(mac);
                }
                break;
            }
            attempts += 1;
            if attempts.is_multiple_of(8) {
                if let Some(j) = (0..parts.len())
                    .filter(|&j| !parts[j].is_full())
                    .max_by_key(|&j| parts[j].need())
                {
                    new_flags[j] = true;
                }
            }
        }

        let fm = FlowMatch::any()
            .with_exact(MatchFieldKind::VlanVid, u128::from(vlan))
            .expect("vlan fits field")
            .with_exact(MatchFieldKind::EthDst, u128::from(mac))
            .expect("mac fits field");
        let port = rng.gen_range(1..=targets.ports as u32);
        rules.push(Rule::new(i as u32, 1, fm, RuleAction::Forward(port)));
    }

    FilterSet::new(targets.name.clone(), FilterKind::MacLearning, rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::survey_mac;
    use crate::paper_data::mac_stats;

    fn small_targets() -> MacTargets {
        MacTargets {
            name: "test".into(),
            rules: 500,
            vlan_unique: 20,
            eth_partitions: [10, 80, 300],
            ports: 8,
        }
    }

    #[test]
    fn exact_unique_counts() {
        let set = generate_mac(&small_targets(), 1);
        let s = survey_mac(&set);
        assert_eq!(s.rules, 500);
        assert_eq!(s.vlan_unique, 20);
        assert_eq!(s.eth_partitions, [10, 80, 300]);
    }

    #[test]
    fn macs_are_unique_per_rule() {
        let set = generate_mac(&small_targets(), 2);
        let macs: HashSet<u128> = set
            .rules
            .iter()
            .map(|r| r.field_as_prefix(MatchFieldKind::EthDst).unwrap().0)
            .collect();
        assert_eq!(macs.len(), set.len());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate_mac(&small_targets(), 3), generate_mac(&small_targets(), 3));
        assert_ne!(generate_mac(&small_targets(), 3), generate_mac(&small_targets(), 4));
    }

    #[test]
    fn paper_row_bbra_exact() {
        let t = MacTargets::from_paper(mac_stats("bbra").unwrap());
        let set = generate_mac(&t, 42);
        let s = survey_mac(&set);
        assert_eq!(s.rules, 507);
        assert_eq!(s.vlan_unique, 48);
        assert_eq!(s.eth_partitions, [46, 133, 261]);
    }

    #[test]
    fn paper_row_gozb_exact() {
        // The largest MAC filter (7370 rules).
        let t = MacTargets::from_paper(mac_stats("gozb").unwrap());
        let set = generate_mac(&t, 42);
        let s = survey_mac(&set);
        assert_eq!(s.eth_partitions, [159, 1946, 6177]);
        assert_eq!(s.vlan_unique, 209);
    }

    #[test]
    fn all_rules_constrain_both_fields() {
        let set = generate_mac(&small_targets(), 5);
        for r in &set.rules {
            assert!(r.field_as_prefix(MatchFieldKind::VlanVid).is_some());
            assert!(r.field_as_prefix(MatchFieldKind::EthDst).is_some());
            assert!(r.action.port().is_some());
        }
    }

    #[test]
    #[should_panic(expected = "cannot yield enough MACs")]
    fn infeasible_combination_panics() {
        let t = MacTargets {
            name: "bad".into(),
            rules: 100,
            vlan_unique: 1,
            eth_partitions: [1, 1, 50],
            ports: 4,
        };
        let _ = generate_mac(&t, 0);
    }

    #[test]
    fn single_rule_set() {
        let t = MacTargets {
            name: "one".into(),
            rules: 1,
            vlan_unique: 1,
            eth_partitions: [1, 1, 1],
            ports: 1,
        };
        let set = generate_mac(&t, 9);
        assert_eq!(set.len(), 1);
        let s = survey_mac(&set);
        assert_eq!(s.eth_partitions, [1, 1, 1]);
    }
}
