//! Constrained synthetic filter-set generation.
//!
//! One generator per application kind. Each takes the published per-router
//! statistics (or custom targets) and a seed, and produces a
//! [`crate::FilterSet`] whose survey matches the targets **exactly** —
//! verified by the generators' own tests against [`crate::analysis`].
//!
//! See `DESIGN.md` §2 for why constrained synthesis stands in for the
//! Stanford backbone data set.

mod acl;
mod mac;
mod pools;
mod routing;
mod traffic;

pub use acl::{generate_acl, AclConfig};
pub use mac::{generate_mac, MacTargets};
pub use pools::UniquePool;
pub use routing::{generate_routing, RoutingTargets};
pub use traffic::{
    generate_flows, generate_flows_where, generate_scan_trace, generate_trace,
    generate_trace_where, TraceConfig, ZipfSampler,
};

use crate::paper_data::{MAC_FILTERS, ROUTING_FILTERS};
use crate::set::FilterSet;

/// Generates all 16 MAC-learning sets of Table III.
///
/// Each router's sub-seed is derived from `seed` and its table index so
/// sets are independent yet reproducible.
#[must_use]
pub fn all_mac_sets(seed: u64) -> Vec<FilterSet> {
    MAC_FILTERS
        .iter()
        .enumerate()
        .map(|(i, s)| generate_mac(&MacTargets::from_paper(s), seed ^ (0x6D61_6300 + i as u64)))
        .collect()
}

/// Generates all 16 routing sets of Table IV.
#[must_use]
pub fn all_routing_sets(seed: u64) -> Vec<FilterSet> {
    ROUTING_FILTERS
        .iter()
        .enumerate()
        .map(|(i, s)| {
            generate_routing(&RoutingTargets::from_paper(s), seed ^ (0x726F_7500 + i as u64))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{survey_mac, survey_routing};
    use crate::paper_data::{MAC_FILTERS, ROUTING_FILTERS};

    /// The headline guarantee: every generated MAC set reproduces its
    /// Table III row exactly. (Small routers only here; the full sweep runs
    /// in the bench harness.)
    #[test]
    fn small_mac_sets_match_paper_rows() {
        let sets = all_mac_sets(42);
        for (set, expect) in sets.iter().zip(MAC_FILTERS.iter()) {
            if expect.rules > 1000 {
                continue;
            }
            let s = survey_mac(set);
            assert_eq!(s.rules, expect.rules, "{}", expect.router);
            assert_eq!(s.vlan_unique, expect.vlan_unique, "{}", expect.router);
            assert_eq!(
                s.eth_partitions,
                [expect.eth_hi, expect.eth_mid, expect.eth_lo],
                "{}",
                expect.router
            );
        }
    }

    #[test]
    fn small_routing_sets_match_paper_rows() {
        for (i, expect) in ROUTING_FILTERS.iter().enumerate() {
            if expect.rules > 5000 {
                continue;
            }
            let set = generate_routing(&RoutingTargets::from_paper(expect), 42 ^ i as u64);
            let s = survey_routing(&set);
            assert_eq!(s.rules, expect.rules, "{}", expect.router);
            assert_eq!(s.port_unique, expect.port_unique, "{}", expect.router);
            assert_eq!(s.ip_partitions, [expect.ip_hi, expect.ip_lo], "{}", expect.router);
        }
    }
}
