//! Constrained unique-value pools.
//!
//! The generator must emit `n` rules whose field partitions contain an
//! *exact* number of unique values (the published Table III/IV counts). A
//! [`UniquePool`] does the bookkeeping: per rule it decides whether the
//! partition takes a brand-new value or reuses an existing one, such that
//! after the last rule the pool holds exactly `target` distinct values.
//!
//! The decision rule is a balanced occupancy scheme with a hard backstop:
//! with `need` new values still owed and `remaining` rules left, a new
//! value is forced when `need == remaining` and otherwise drawn with
//! probability `need / remaining`. This yields exact counts for any
//! feasible target while spreading new values evenly through the set.
//!
//! New values are produced by an *allocation-block* sampler: with
//! probability `cluster_p` the next value extends a recent allocation run
//! (previous value + 1), otherwise it opens a new run at a uniform
//! position. Real MAC tables and route tables are dominated by such runs
//! (sequential NIC allocation, subnetting), and the run structure is what
//! keeps multi-bit-trie populations far below the uniform-sampling worst
//! case — the effect the paper's node counts reflect.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// A pool issuing values with an exact final unique count.
#[derive(Debug, Clone)]
pub struct UniquePool {
    target: usize,
    values: Vec<u64>,
    seen: HashSet<u64>,
    domain_bits: u32,
    cluster_p: f64,
    run_head: Option<u64>,
}

impl UniquePool {
    /// Creates a pool that will issue exactly `target` distinct values
    /// drawn from `domain_bits`-bit space.
    ///
    /// # Panics
    /// Panics if the target exceeds the domain size.
    #[must_use]
    pub fn new(target: usize, domain_bits: u32, cluster_p: f64) -> Self {
        assert!(domain_bits <= 64, "domain too wide");
        if domain_bits < 64 {
            assert!(
                (target as u128) <= (1u128 << domain_bits),
                "target {target} exceeds {domain_bits}-bit domain"
            );
        }
        assert!((0.0..=1.0).contains(&cluster_p));
        Self {
            target,
            values: Vec::with_capacity(target),
            seen: HashSet::with_capacity(target),
            domain_bits,
            cluster_p,
            run_head: None,
        }
    }

    /// Distinct values issued so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no values have been issued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// New values still owed.
    #[must_use]
    pub fn need(&self) -> usize {
        self.target - self.values.len()
    }

    /// Whether the pool reached its target.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.need() == 0
    }

    /// The distinct values issued so far.
    #[must_use]
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Whether the next draw must introduce a new value to stay feasible.
    #[must_use]
    pub fn must_new(&self, remaining: usize) -> bool {
        self.need() >= remaining
    }

    /// Decides whether the next draw introduces a new value, given
    /// `remaining` rules (including the current one) are left.
    pub fn decide_new(&self, remaining: usize, rng: &mut StdRng) -> bool {
        debug_assert!(remaining >= 1);
        if self.is_full() {
            false
        } else if self.must_new(remaining) || self.is_empty() {
            true
        } else {
            rng.gen_bool(self.need() as f64 / remaining as f64)
        }
    }

    fn domain_mask(&self) -> u64 {
        if self.domain_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.domain_bits) - 1
        }
    }

    /// Draws a fresh (unseen) value using the allocation-block sampler and
    /// records it.
    pub fn new_value(&mut self, rng: &mut StdRng) -> u64 {
        assert!(!self.is_full(), "pool already reached its target");
        let mask = self.domain_mask();
        loop {
            let candidate = match self.run_head {
                Some(prev) if rng.gen_bool(self.cluster_p) => prev.wrapping_add(1) & mask,
                _ => rng.gen::<u64>() & mask,
            };
            self.run_head = Some(candidate);
            if self.seen.insert(candidate) {
                self.values.push(candidate);
                return candidate;
            }
            // Collision: nudge the run head so the next extension moves on.
        }
    }

    /// Draws a fresh value satisfying `pred`; falls back to uniform
    /// sampling filtered by `pred`. Returns `None` if no satisfying value
    /// is found within a sampling budget (callers then relax constraints).
    pub fn new_value_where(&mut self, rng: &mut StdRng, pred: impl Fn(u64) -> bool) -> Option<u64> {
        assert!(!self.is_full(), "pool already reached its target");
        let mask = self.domain_mask();
        for _ in 0..4096 {
            let candidate = match self.run_head {
                Some(prev) if rng.gen_bool(self.cluster_p) => prev.wrapping_add(1) & mask,
                _ => rng.gen::<u64>() & mask,
            };
            self.run_head = Some(candidate);
            if pred(candidate) && !self.seen.contains(&candidate) {
                self.seen.insert(candidate);
                self.values.push(candidate);
                return Some(candidate);
            }
        }
        None
    }

    /// Draws a fresh value whose low `align` bits are zero (a prefix-aligned
    /// partition value), clustering on the meaningful high bits. Returns
    /// `None` when the aligned sub-space is (nearly) exhausted.
    pub fn new_value_aligned(&mut self, rng: &mut StdRng, align: u32) -> Option<u64> {
        assert!(!self.is_full(), "pool already reached its target");
        assert!(align <= self.domain_bits);
        let meaningful = self.domain_bits - align;
        let base_mask = if meaningful >= 64 { u64::MAX } else { (1u64 << meaningful) - 1 };
        let attempts = 1024usize.min(2 * (base_mask as usize + 1));
        for _ in 0..attempts {
            let base = match self.run_head {
                Some(prev) if rng.gen_bool(self.cluster_p) => (prev >> align).wrapping_add(1),
                _ => rng.gen::<u64>(),
            } & base_mask;
            let candidate = base << align;
            self.run_head = Some(candidate);
            if self.seen.insert(candidate) {
                self.values.push(candidate);
                return Some(candidate);
            }
        }
        None
    }

    /// Records an externally chosen value (e.g. the all-zero value a short
    /// prefix contributes). Returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the value is new but the pool already reached its target.
    pub fn record(&mut self, value: u64) -> bool {
        if self.seen.contains(&value) {
            return false;
        }
        assert!(!self.is_full(), "recording {value:#x} would exceed the pool target");
        self.seen.insert(value);
        self.values.push(value);
        true
    }

    /// Picks an already-issued value uniformly.
    ///
    /// # Panics
    /// Panics if the pool is empty.
    pub fn reuse(&self, rng: &mut StdRng) -> u64 {
        assert!(!self.is_empty(), "nothing to reuse");
        self.values[rng.gen_range(0..self.values.len())]
    }

    /// Picks an already-issued value satisfying `pred`, if any exists.
    pub fn reuse_where(&self, rng: &mut StdRng, pred: impl Fn(u64) -> bool) -> Option<u64> {
        let candidates: Vec<u64> = self.values.iter().copied().filter(|v| pred(*v)).collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[rng.gen_range(0..candidates.len())])
        }
    }

    /// Standard draw: decide new vs reuse, then sample accordingly.
    pub fn draw(&mut self, remaining: usize, rng: &mut StdRng) -> u64 {
        if self.decide_new(remaining, rng) {
            self.new_value(rng)
        } else {
            self.reuse(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn exact_target_reached() {
        for seed in 0..5 {
            let mut r = rng(seed);
            let mut pool = UniquePool::new(100, 16, 0.5);
            let n = 1000;
            for i in 0..n {
                let _ = pool.draw(n - i, &mut r);
            }
            assert_eq!(pool.len(), 100, "seed {seed}");
        }
    }

    #[test]
    fn target_equal_to_rules_forces_all_new() {
        let mut r = rng(1);
        let mut pool = UniquePool::new(50, 16, 0.0);
        let mut out = Vec::new();
        for i in 0..50 {
            out.push(pool.draw(50 - i, &mut r));
        }
        let distinct: HashSet<_> = out.iter().collect();
        assert_eq!(distinct.len(), 50);
    }

    #[test]
    fn values_fit_domain() {
        let mut r = rng(2);
        let mut pool = UniquePool::new(200, 13, 0.3);
        for i in 0..400 {
            let v = pool.draw(400 - i, &mut r);
            assert!(v < (1 << 13));
        }
        assert_eq!(pool.len(), 200);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn infeasible_target_panics() {
        let _ = UniquePool::new(20_000, 13, 0.0);
    }

    #[test]
    fn clustering_produces_runs() {
        let mut r = rng(3);
        let mut clustered = UniquePool::new(1000, 48, 0.95);
        let mut uniform = UniquePool::new(1000, 48, 0.0);
        for _ in 0..1000 {
            clustered.new_value(&mut r);
            uniform.new_value(&mut r);
        }
        let runs = |vals: &[u64]| {
            let mut sorted = vals.to_vec();
            sorted.sort_unstable();
            sorted.windows(2).filter(|w| w[1] == w[0] + 1).count()
        };
        assert!(
            runs(clustered.values()) > 10 * runs(uniform.values()).max(1),
            "clustered {} vs uniform {}",
            runs(clustered.values()),
            runs(uniform.values())
        );
    }

    #[test]
    fn record_counts_only_new() {
        let mut pool = UniquePool::new(2, 16, 0.0);
        assert!(pool.record(7));
        assert!(!pool.record(7));
        assert_eq!(pool.len(), 1);
        assert!(pool.record(9));
        assert!(pool.is_full());
    }

    #[test]
    #[should_panic(expected = "exceed the pool target")]
    fn record_past_target_panics() {
        let mut pool = UniquePool::new(1, 16, 0.0);
        pool.record(1);
        pool.record(2);
    }

    #[test]
    fn reuse_where_filters() {
        let mut pool = UniquePool::new(3, 16, 0.0);
        pool.record(0x10);
        pool.record(0x20);
        pool.record(0x31);
        let mut r = rng(4);
        let even = pool.reuse_where(&mut r, |v| v % 2 == 0).unwrap();
        assert!(even == 0x10 || even == 0x20);
        assert!(pool.reuse_where(&mut r, |v| v > 0x100).is_none());
    }

    #[test]
    fn new_value_where_respects_predicate() {
        let mut pool = UniquePool::new(10, 16, 0.0);
        let mut r = rng(5);
        for _ in 0..10 {
            let v = pool.new_value_where(&mut r, |v| v & 0xFF == 0).unwrap();
            assert_eq!(v & 0xFF, 0);
        }
        assert!(pool.is_full());
    }

    #[test]
    fn must_new_backstop() {
        let pool = UniquePool::new(5, 16, 0.0);
        assert!(pool.must_new(5));
        assert!(pool.must_new(3));
        assert!(!pool.must_new(6));
    }

    #[test]
    fn deterministic_under_seed() {
        let gen = |seed| {
            let mut r = rng(seed);
            let mut pool = UniquePool::new(50, 16, 0.5);
            (0..200).map(|i| pool.draw(200 - i, &mut r)).collect::<Vec<_>>()
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }
}
