//! Routing filter-set generator.
//!
//! Emits `(ingress port, IPv4 destination prefix) -> output port` rules
//! whose unique-value counts (ingress ports, higher/lower 16-bit IP
//! partitions of the masked prefix) match the targets exactly.
//!
//! The interaction between prefix *length* and partition *uniqueness* is
//! the delicate part: a `/L` prefix only has `L - 16` meaningful bits in
//! the lower partition (zero for `L <= 16`), so introducing a new lower
//! partition value requires `L >= 17` and alignment to `32 - L` trailing
//! zero bits, while reusing a value constrains the length from below. The
//! generator resolves both directions: new values are sampled under the
//! alignment predicate, reused values stretch the length when needed.

use super::pools::UniquePool;
use crate::paper_data::RoutingFilterStats;
use crate::rule::{Rule, RuleAction};
use crate::set::{FilterKind, FilterSet};
use oflow::{FlowMatch, MatchFieldKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Statistical targets for a generated routing set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTargets {
    /// Set name (router id).
    pub name: String,
    /// Number of rules.
    pub rules: usize,
    /// Unique ingress-port values.
    pub port_unique: usize,
    /// Unique higher / lower 16-bit IP partition values.
    pub ip_partitions: [usize; 2],
    /// Number of short prefixes (`len < 16`, including one default route)
    /// mixed in before the main population.
    pub short_prefixes: usize,
    /// Number of distinct next-hop (output) ports.
    pub out_ports: usize,
}

impl RoutingTargets {
    /// Targets from a published Table IV row. The short-prefix count
    /// reflects the paper's note that routing filters "contain a larger
    /// number of wildcard flow entries and require larger prefix lookups
    /// (e.g. 0.0.0.0/0)".
    #[must_use]
    pub fn from_paper(s: &RoutingFilterStats) -> Self {
        Self {
            name: s.router.to_owned(),
            rules: s.rules,
            port_unique: s.port_unique,
            ip_partitions: [s.ip_hi, s.ip_lo],
            short_prefixes: (s.rules / 300).clamp(1, 12),
            out_ports: 32,
        }
    }

    fn validate(&self) {
        assert!(self.rules > 0);
        assert!(self.port_unique >= 1 && self.port_unique <= self.rules);
        let [hi, lo] = self.ip_partitions;
        assert!(hi >= 1 && hi <= self.rules, "hi target infeasible");
        assert!(lo >= 1 && lo <= self.rules, "lo target infeasible");
        assert!(self.short_prefixes < self.rules);
        // Each lower value carries one canonical prefix length, so the
        // (hi, lo) combinations must cover the rule count.
        let combos = hi as u128 * lo as u128;
        assert!(combos >= self.rules as u128, "partition targets cannot yield enough prefixes");
    }
}

/// Samples a prefix length in `16..=32` from a BGP-flavoured histogram
/// (/24 dominant, /16 common, a tail of host routes).
fn sample_len(rng: &mut StdRng) -> u32 {
    // Weights for lengths 16..=32.
    const W: [u32; 17] = [8, 2, 3, 4, 5, 6, 7, 8, 35, 2, 2, 1, 1, 1, 1, 1, 8];
    let total: u32 = W.iter().sum();
    let mut x = rng.gen_range(0..total);
    for (i, w) in W.iter().enumerate() {
        if x < *w {
            return 16 + i as u32;
        }
        x -= w;
    }
    24
}

/// Generates a routing filter set meeting `targets` exactly.
#[must_use]
pub fn generate_routing(targets: &RoutingTargets, seed: u64) -> FilterSet {
    targets.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let n = targets.rules;
    let [hi_target, lo_target] = targets.ip_partitions;

    // Clustering calibration (see DESIGN.md §5). Ordinary routers carry a
    // handful of campus networks whose higher 16-bit values are nearly
    // contiguous (very strong runs); the exception routers (hi > lo)
    // carry a wide range of networks, so their higher partitions spread
    // further. Lower partitions mix subnet alignments, spreading the most.
    let hi_cluster = if hi_target > lo_target { 0.88 } else { 0.97 };
    let mut hi_pool = UniquePool::new(hi_target, 16, hi_cluster);
    let mut lo_pool = UniquePool::new(lo_target, 16, 0.95);
    let mut port_pool = UniquePool::new(targets.port_unique, 10, 0.0);

    let mut used: HashSet<(u64, u32)> = HashSet::with_capacity(n);
    // Canonical prefix length per lower-partition value: a masked prefix
    // value appears with exactly one length, as in real route tables.
    let mut lo_lens: HashMap<u64, u32> = HashMap::with_capacity(lo_target);
    let mut rules = Vec::with_capacity(n);
    let push = |rules: &mut Vec<Rule>, value: u64, len: u32, port: u64| {
        let fm = FlowMatch::any()
            .with_exact(MatchFieldKind::InPort, u128::from(port))
            .expect("port fits")
            .with_prefix(MatchFieldKind::Ipv4Dst, u128::from(value), len)
            .expect("prefix fits");
        let out = 1 + (value.wrapping_mul(0x9E37_79B9) >> 16) % 32;
        rules.push(Rule::new(rules.len() as u32, len as u16, fm, RuleAction::Forward(out as u32)));
    };

    // Phase 1: short prefixes (len < 16), including the default route.
    // All shorts share the single lower-partition value 0, so they are
    // capped to keep `lo_target` reachable by the remaining rules; each
    // short contributes one fresh higher value, so `hi_target` stays
    // reachable too.
    let shorts = targets.short_prefixes.min(hi_target).min(n.saturating_sub(lo_target) + 1);
    for s in 0..shorts {
        let remaining = n - rules.len();
        let (value, len) = if s == 0 {
            (0u64, 0u32) // 0.0.0.0/0
        } else {
            // A /8../15 prefix; its masked hi partition must be aligned.
            let len = rng.gen_range(8..16u32);
            let align = 16 - len; // zero bits inside the hi partition
            let hi = loop {
                let v = (rng.gen::<u64>() & 0xFFFF) >> align << align;
                let fresh = hi_pool.is_full() || !hi_pool.values().contains(&v);
                if fresh && !used.contains(&(v << 16, len)) {
                    break v;
                }
            };
            (hi << 16, len)
        };
        let hi16 = value >> 16;
        if !hi_pool.is_full() {
            hi_pool.record(hi16);
        } else if !hi_pool.values().contains(&hi16) {
            // Cannot afford a new hi value; fold into an existing one by
            // using the default route's hi (0) — only reachable when the
            // hi target is tiny.
            continue;
        }
        if !lo_pool.is_full() {
            lo_pool.record(0);
            lo_lens.insert(0, 16);
        }
        used.insert((value, len));
        let port = port_pool.draw(remaining, &mut rng);
        push(&mut rules, value, len, port);
    }

    // Phase 2: main population, len >= 16.
    while rules.len() < n {
        let remaining = n - rules.len();
        let hi_new = hi_pool.decide_new(remaining, &mut rng);
        let lo_new = lo_pool.decide_new(remaining, &mut rng);

        let mut len = sample_len(&mut rng);
        let hi = if hi_new { hi_pool.new_value(&mut rng) } else { hi_pool.reuse(&mut rng) };

        let (lo, lo_len) = if lo_new {
            // A new lower value needs len >= 17; resample from the same
            // histogram conditioned on that (keeps /24 dominant and the
            // deep /27../32 tail rare, as in real route tables).
            while len < 17 {
                len = sample_len(&mut rng);
            }
            // New lower value aligned to the prefix length. When the
            // aligned sub-space is exhausted (the dense routers use every
            // /24-aligned value), fall back to host routes — real RIBs
            // with this many unique lower values are dominated by /32s,
            // which pack densely into trie blocks.
            let v = loop {
                let align = (32 - len).min(16);
                if let Some(v) = lo_pool.new_value_aligned(&mut rng, align) {
                    break v;
                }
                assert!(len < 32, "lower partition space exhausted");
                len = 32;
            };
            lo_lens.insert(v, len);
            (v, len)
        } else {
            // Reuse a lower value at its canonical length.
            let v = lo_pool.reuse(&mut rng);
            (v, lo_lens[&v])
        };

        let mut value = (hi << 16) | lo;
        let mut final_len = lo_len;
        if hi_new || lo_new {
            used.insert((value, final_len));
        } else {
            // Both reused: the (value, len) pair may already exist.
            let mut placed = used.insert((value, final_len));
            let mut attempts = 0;
            while !placed {
                attempts += 1;
                if attempts < 64 {
                    let v = lo_pool.reuse(&mut rng);
                    let h = hi_pool.reuse(&mut rng);
                    final_len = lo_lens[&v];
                    value = (h << 16) | v;
                } else {
                    // Deterministic sweep over the remaining combination
                    // space.
                    let mut found = false;
                    'sweep: for &h in hi_pool.values() {
                        for &v in lo_pool.values() {
                            let l = lo_lens[&v];
                            if !used.contains(&((h << 16) | v, l)) {
                                value = (h << 16) | v;
                                final_len = l;
                                found = true;
                                break 'sweep;
                            }
                        }
                    }
                    if !found {
                        // Early in the set the small reuse pools can be
                        // genuinely exhausted; introduce a new value in
                        // the pool with the most outstanding need (the
                        // target backstops still guarantee exact counts).
                        if !lo_pool.is_full()
                            && (hi_pool.is_full() || lo_pool.need() >= hi_pool.need())
                        {
                            let mut l = sample_len(&mut rng);
                            while l < 17 {
                                l = sample_len(&mut rng);
                            }
                            let v = loop {
                                let align = (32 - l).min(16);
                                if let Some(v) = lo_pool.new_value_aligned(&mut rng, align) {
                                    break v;
                                }
                                assert!(l < 32, "lower partition space exhausted");
                                l = 32;
                            };
                            lo_lens.insert(v, l);
                            value = (hi_pool.reuse(&mut rng) << 16) | v;
                            final_len = l;
                        } else if !hi_pool.is_full() {
                            let h = hi_pool.new_value(&mut rng);
                            let v = lo_pool.reuse(&mut rng);
                            value = (h << 16) | v;
                            final_len = lo_lens[&v];
                        } else {
                            unreachable!(
                                "validate() guarantees hi x lo combinations cover the rules"
                            );
                        }
                    }
                }
                placed = used.insert((value, final_len));
            }
        }
        let port = port_pool.draw(remaining, &mut rng);
        push(&mut rules, value, final_len, port);
    }

    FilterSet::new(targets.name.clone(), FilterKind::Routing, rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{prefix_length_histogram, survey_routing};
    use crate::paper_data::routing_stats;

    fn small_targets() -> RoutingTargets {
        RoutingTargets {
            name: "test".into(),
            rules: 800,
            port_unique: 12,
            ip_partitions: [40, 500],
            short_prefixes: 4,
            out_ports: 16,
        }
    }

    #[test]
    fn exact_unique_counts() {
        let set = generate_routing(&small_targets(), 1);
        let s = survey_routing(&set);
        assert_eq!(s.rules, 800);
        assert_eq!(s.port_unique, 12);
        assert_eq!(s.ip_partitions, [40, 500]);
    }

    #[test]
    fn prefixes_unique_per_rule() {
        let set = generate_routing(&small_targets(), 2);
        let prefixes: HashSet<(u128, u32)> =
            set.rules.iter().map(|r| r.field_as_prefix(MatchFieldKind::Ipv4Dst).unwrap()).collect();
        assert_eq!(prefixes.len(), set.len());
    }

    #[test]
    fn masked_values_respect_length() {
        let set = generate_routing(&small_targets(), 3);
        for r in &set.rules {
            let (v, len) = r.field_as_prefix(MatchFieldKind::Ipv4Dst).unwrap();
            if len < 32 {
                let low_mask = (1u128 << (32 - len)) - 1;
                assert_eq!(v & low_mask, 0, "prefix {v:#x}/{len} has bits below the mask");
            }
        }
    }

    #[test]
    fn contains_default_route_and_short_prefixes() {
        let set = generate_routing(&small_targets(), 4);
        let hist = prefix_length_histogram(&set.rules, MatchFieldKind::Ipv4Dst);
        assert!(hist[0] >= 1, "default route missing");
        let shorts: usize = hist[..16].iter().sum();
        assert!(shorts >= 2, "expected several short prefixes, got {shorts}");
    }

    #[test]
    fn priority_equals_prefix_length() {
        let set = generate_routing(&small_targets(), 5);
        for r in &set.rules {
            let (_, len) = r.field_as_prefix(MatchFieldKind::Ipv4Dst).unwrap();
            assert_eq!(u32::from(r.priority), len);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate_routing(&small_targets(), 6), generate_routing(&small_targets(), 6));
        assert_ne!(generate_routing(&small_targets(), 6), generate_routing(&small_targets(), 7));
    }

    #[test]
    fn paper_row_bbra_exact() {
        let t = RoutingTargets::from_paper(routing_stats("bbra").unwrap());
        let set = generate_routing(&t, 42);
        let s = survey_routing(&set);
        assert_eq!(s.rules, 1835);
        assert_eq!(s.port_unique, 40);
        assert_eq!(s.ip_partitions, [82, 1190]);
    }

    /// An exception-shaped set (hi >> lo, as coza/soza) at reduced scale.
    #[test]
    fn exception_shape_hi_greater_than_lo() {
        let t = RoutingTargets {
            name: "mini-coza".into(),
            rules: 20_000,
            port_unique: 43,
            ip_partitions: [2200, 800],
            short_prefixes: 8,
            out_ports: 32,
        };
        let set = generate_routing(&t, 8);
        let s = survey_routing(&set);
        assert_eq!(s.ip_partitions, [2200, 800]);
    }
}
