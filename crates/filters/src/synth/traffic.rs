//! Skewed synthetic traffic traces.
//!
//! Every benchmark before this module replayed *uniform* traffic — the
//! one distribution real switches never see. Measured packet traces are
//! heavily skewed: a small set of **elephant flows** carries most
//! packets, classically modelled as a Zipf distribution over flow ranks
//! (flow `k`'s probability ∝ `1 / k^s`). Caching-style fast paths live
//! or die by this skew, so the trace generator makes it a first-class
//! knob:
//!
//! * build a pool of distinct **flows** (headers derived from the filter
//!   set's own rules, plus a configurable fraction of random headers
//!   that match nothing — real traffic contains garbage);
//! * assign Zipf ranks to flows in shuffled order (so hot flows are not
//!   correlated with rule order);
//! * emit packets by sampling flow ranks from the Zipf CDF
//!   (`skew = 0` degenerates to uniform).

use crate::set::FilterSet;
use oflow::{FieldMatch, HeaderValues};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a synthetic traffic trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Packets to emit.
    pub packets: usize,
    /// Distinct flows in the pool.
    pub flows: usize,
    /// Zipf exponent `s` over flow ranks; `0.0` = uniform.
    pub skew: f64,
    /// Fraction of the flow pool that is fully random (usually matching
    /// no rule — exercising the miss path). These are still *flows*:
    /// they repeat per the skew distribution and are cacheable.
    pub random_fraction: f64,
    /// Fraction of **packets** that are fresh, never-repeating random
    /// headers — scan/garbage traffic. Real traces carry a steady
    /// stream of one-hit wonders; they are what blind cache admission
    /// lets pollute the resident set, so the cache experiments turn
    /// this on. `0.0` reproduces the pure flow-pool traces.
    pub oneshot_fraction: f64,
}

impl TraceConfig {
    /// A trace of `packets` packets over 1024 flows at the given skew,
    /// with 1/8 of the flows random and no one-shot scan traffic.
    #[must_use]
    pub fn with_skew(packets: usize, skew: f64) -> Self {
        Self { packets, flows: 1024, skew, random_fraction: 0.125, oneshot_fraction: 0.0 }
    }
}

/// A cumulative Zipf distribution over `n` ranks with exponent `s`.
///
/// Sampling is inverse-CDF: one uniform draw, one binary search. `s = 0`
/// is the uniform distribution.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the CDF for `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n` is zero or `s` is negative/non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "skew must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Samples a rank in `0..n`.
    #[inline]
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        // partition_point: first rank whose cumulative mass exceeds u.
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has no ranks (never true — construction
    /// requires at least one).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// `bits` uniformly random low bits (0 yields 0, 128 yields a full
/// word); safe across the whole 0..=128 range IPv6-wide fields need.
fn random_bits(rng: &mut StdRng, bits: u32) -> u128 {
    if bits == 0 {
        return 0;
    }
    let word = u128::from(rng.gen::<u64>()) | (u128::from(rng.gen::<u64>()) << 64);
    if bits >= 128 {
        word
    } else {
        word & ((1u128 << bits) - 1)
    }
}

/// A header matching `rule` on every field of its kind, free bits drawn
/// from `rng` (prefix tails, in-range points), so distinct draws give
/// distinct flows under the same rule.
fn header_for_rule(set: &FilterSet, rule_idx: usize, rng: &mut StdRng) -> HeaderValues {
    let rule = &set.rules[rule_idx];
    let mut h = HeaderValues::new();
    for &field in set.kind.fields() {
        match rule.field(field) {
            FieldMatch::Exact(v) => {
                h.set(field, v);
            }
            FieldMatch::Prefix { value, len } => {
                h.set(field, value | random_bits(rng, field.bit_width() - len));
            }
            FieldMatch::Range { lo, hi } => {
                h.set(field, lo + u128::from(rng.gen::<u64>()) % (hi - lo + 1));
            }
            FieldMatch::Any => {
                h.set(field, random_bits(rng, field.bit_width()));
            }
        }
    }
    h
}

/// A fully random header over the kind's fields (usually matching no
/// rule).
fn random_header(set: &FilterSet, rng: &mut StdRng) -> HeaderValues {
    let mut h = HeaderValues::new();
    for &field in set.kind.fields() {
        h.set(field, random_bits(rng, field.bit_width()));
    }
    h
}

/// Generates the distinct flow pool of a trace: headers derived from the
/// set's rules (round-robin, randomized free bits) interleaved with
/// `random_fraction` fully random headers, in shuffled rank order.
///
/// # Panics
/// Panics if the set has no rules or `cfg.flows` is zero.
#[must_use]
pub fn generate_flows(set: &FilterSet, cfg: &TraceConfig, seed: u64) -> Vec<HeaderValues> {
    assert!(!set.rules.is_empty(), "flow pool needs rules to derive headers from");
    assert!(cfg.flows > 0, "need at least one flow");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7472_6166);
    let mut flows: Vec<HeaderValues> = (0..cfg.flows)
        .map(|i| {
            if rng.gen_bool(cfg.random_fraction) {
                random_header(set, &mut rng)
            } else {
                header_for_rule(set, i % set.rules.len(), &mut rng)
            }
        })
        .collect();
    // Fisher-Yates: decorrelate Zipf rank (index) from rule order.
    for i in (1..flows.len()).rev() {
        let j = rng.gen_range(0..=i);
        flows.swap(i, j);
    }
    flows
}

/// Generates a trace of `cfg.packets` headers over the flow pool of
/// [`generate_flows`], flow ranks sampled Zipf(`cfg.skew`), with
/// `cfg.oneshot_fraction` of the packets replaced by fresh
/// never-repeating random headers (scan/garbage traffic).
///
/// # Panics
/// Panics if the set has no rules, or `cfg.flows`/`cfg.packets` is zero.
#[must_use]
pub fn generate_trace(set: &FilterSet, cfg: &TraceConfig, seed: u64) -> Vec<HeaderValues> {
    assert!(cfg.packets > 0, "need at least one packet");
    let flows = generate_flows(set, cfg, seed);
    let sampler = ZipfSampler::new(flows.len(), cfg.skew);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7061_636B);
    (0..cfg.packets)
        .map(|_| {
            if cfg.oneshot_fraction > 0.0 && rng.gen_bool(cfg.oneshot_fraction) {
                random_header(set, &mut rng)
            } else {
                flows[sampler.sample(&mut rng)].clone()
            }
        })
        .collect()
}

/// Rejection-sampling attempts per flow before concluding the predicate
/// is unsatisfiable over the generator's header space.
const PIN_ATTEMPTS: usize = 10_000;

/// [`generate_flows`], restricted to headers the `accept` predicate
/// admits (rejection sampling). This is the adversarial-traffic
/// primitive: a caller that knows the runtime's RSS hash can pass
/// "lands on shard 0" and pin an entire trace onto one shard — the
/// software analogue of an RSS-collision attack — while the headers
/// still derive from real rules. As attempts grow the generator walks
/// other rules too (an all-exact rule admits exactly one header, which
/// the predicate may reject for good).
///
/// # Panics
/// Panics if the set has no rules, `cfg.flows` is zero, or the
/// predicate rejects [`PIN_ATTEMPTS`] consecutive candidates.
#[must_use]
pub fn generate_flows_where(
    set: &FilterSet,
    cfg: &TraceConfig,
    seed: u64,
    accept: &dyn Fn(&HeaderValues) -> bool,
) -> Vec<HeaderValues> {
    assert!(!set.rules.is_empty(), "flow pool needs rules to derive headers from");
    assert!(cfg.flows > 0, "need at least one flow");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7472_6166);
    let mut flows = Vec::with_capacity(cfg.flows);
    for i in 0..cfg.flows {
        let random = rng.gen_bool(cfg.random_fraction);
        let mut attempt = 0usize;
        let header = loop {
            let candidate = if random {
                random_header(set, &mut rng)
            } else {
                header_for_rule(set, (i + attempt) % set.rules.len(), &mut rng)
            };
            if accept(&candidate) {
                break candidate;
            }
            attempt += 1;
            assert!(
                attempt < PIN_ATTEMPTS,
                "predicate accepted none of {PIN_ATTEMPTS} candidate flows"
            );
        };
        flows.push(header);
    }
    // Fisher-Yates: decorrelate Zipf rank (index) from rule order.
    for i in (1..flows.len()).rev() {
        let j = rng.gen_range(0..=i);
        flows.swap(i, j);
    }
    flows
}

/// [`generate_trace`] over a predicate-restricted flow pool
/// ([`generate_flows_where`]); one-shot scan packets are rejection-
/// sampled against the same predicate, so *every* packet of the trace
/// satisfies it (a pinned trace stays pinned).
///
/// # Panics
/// As [`generate_flows_where`], plus if `cfg.packets` is zero.
#[must_use]
pub fn generate_trace_where(
    set: &FilterSet,
    cfg: &TraceConfig,
    seed: u64,
    accept: &dyn Fn(&HeaderValues) -> bool,
) -> Vec<HeaderValues> {
    assert!(cfg.packets > 0, "need at least one packet");
    let flows = generate_flows_where(set, cfg, seed, accept);
    let sampler = ZipfSampler::new(flows.len(), cfg.skew);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7061_636B);
    (0..cfg.packets)
        .map(|_| {
            if cfg.oneshot_fraction > 0.0 && rng.gen_bool(cfg.oneshot_fraction) {
                let mut attempt = 0usize;
                loop {
                    let candidate = random_header(set, &mut rng);
                    if accept(&candidate) {
                        break candidate;
                    }
                    attempt += 1;
                    assert!(
                        attempt < PIN_ATTEMPTS,
                        "predicate accepted none of {PIN_ATTEMPTS} scan headers"
                    );
                }
            } else {
                flows[sampler.sample(&mut rng)].clone()
            }
        })
        .collect()
}

/// A pure cache-busting scan: `packets` fresh random headers that
/// (almost surely) never repeat — the worst case for any flow cache,
/// since no entry is ever reused. Deterministic per seed.
///
/// # Panics
/// Panics if the set has no rules or `packets` is zero.
#[must_use]
pub fn generate_scan_trace(set: &FilterSet, packets: usize, seed: u64) -> Vec<HeaderValues> {
    let cfg =
        TraceConfig { packets, flows: 1, skew: 0.0, random_fraction: 0.0, oneshot_fraction: 1.0 };
    generate_trace_where(set, &cfg, seed, &|_| true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_routing, RoutingTargets};
    use std::collections::HashMap;

    fn routing_set() -> FilterSet {
        generate_routing(
            &RoutingTargets {
                name: "t".into(),
                rules: 200,
                port_unique: 8,
                ip_partitions: [20, 120],
                short_prefixes: 3,
                out_ports: 8,
            },
            5,
        )
    }

    #[test]
    fn zipf_mass_concentrates_with_skew() {
        let mut rng = StdRng::seed_from_u64(1);
        let uniform = ZipfSampler::new(1000, 0.0);
        let skewed = ZipfSampler::new(1000, 1.1);
        let head_share = |sampler: &ZipfSampler, rng: &mut StdRng| {
            let n = 20_000;
            let head = (0..n).filter(|_| sampler.sample(rng) < 10).count();
            head as f64 / n as f64
        };
        let u = head_share(&uniform, &mut rng);
        let s = head_share(&skewed, &mut rng);
        // Top-10 of 1000 flows: ~1% uniform, dominant under s=1.1.
        assert!(u < 0.05, "uniform head share {u}");
        assert!(s > 0.4, "skewed head share {s}");
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let sampler = ZipfSampler::new(8, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..16_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((1600..=2400).contains(&c), "rank {i} count {c}");
        }
    }

    #[test]
    fn trace_respects_flow_pool_and_packet_count() {
        let set = routing_set();
        let cfg = TraceConfig {
            packets: 5000,
            flows: 64,
            skew: 1.1,
            random_fraction: 0.1,
            oneshot_fraction: 0.0,
        };
        let trace = generate_trace(&set, &cfg, 7);
        assert_eq!(trace.len(), 5000);
        let mut counts: HashMap<String, usize> = HashMap::new();
        for h in &trace {
            *counts.entry(format!("{h}")).or_default() += 1;
        }
        assert!(counts.len() <= 64, "at most `flows` distinct headers");
        assert!(counts.len() > 10, "skew must not collapse the pool entirely");
        // The hottest flow dominates under s=1.1.
        let max = counts.values().max().copied().unwrap();
        assert!(max > 5000 / 64 * 3, "hottest flow carries {max} packets");
    }

    #[test]
    fn oneshot_packets_are_fresh_headers() {
        let set = routing_set();
        let cfg = TraceConfig {
            packets: 2000,
            flows: 16,
            skew: 0.0,
            random_fraction: 0.0,
            oneshot_fraction: 0.5,
        };
        let trace = generate_trace(&set, &cfg, 9);
        let mut counts: HashMap<String, usize> = HashMap::new();
        for h in &trace {
            *counts.entry(format!("{h}")).or_default() += 1;
        }
        // Half the packets are one-shot scan headers: they (almost
        // surely) appear exactly once, on top of the 16-flow pool.
        let singles = counts.values().filter(|&&c| c == 1).count();
        assert!((800..=1200).contains(&singles), "~1000 one-shot headers expected, got {singles}");
        assert!(counts.len() > 16 + 800, "distinct headers: {}", counts.len());
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let set = routing_set();
        let cfg = TraceConfig::with_skew(256, 0.8);
        let a = generate_trace(&set, &cfg, 11);
        let b = generate_trace(&set, &cfg, 11);
        assert_eq!(a, b);
        let c = generate_trace(&set, &cfg, 12);
        assert_ne!(a, c, "different seeds give different traces");
    }

    /// A toy RSS-style predicate over the header's field values (the
    /// bench uses the runtime's real shard hash; any deterministic
    /// header → bool function exercises the same machinery).
    fn lands_even(h: &HeaderValues) -> bool {
        h.fields().iter().map(|&(_, v)| v as u64 ^ (v >> 64) as u64).sum::<u64>() % 2 == 0
    }

    #[test]
    fn predicate_pinned_flows_all_satisfy_and_still_derive_from_rules() {
        let set = routing_set();
        let cfg = TraceConfig {
            packets: 1,
            flows: 128,
            skew: 0.0,
            random_fraction: 0.0,
            oneshot_fraction: 0.0,
        };
        let flows = generate_flows_where(&set, &cfg, 3, &lands_even);
        assert_eq!(flows.len(), 128);
        assert!(flows.iter().all(lands_even), "every pinned flow satisfies the predicate");
        assert!(
            flows.iter().all(|h| set.rules.iter().any(|r| r.flow_match.matches(h))),
            "pinned flows still derive from (and match) real rules"
        );
        // Unrestricted generation would violate the predicate somewhere.
        let free = generate_flows(&set, &cfg, 3);
        assert!(free.iter().any(|h| !lands_even(h)), "the predicate is non-trivial");
    }

    #[test]
    fn predicate_pinned_trace_pins_scan_packets_too() {
        let set = routing_set();
        let cfg = TraceConfig {
            packets: 2000,
            flows: 32,
            skew: 1.1,
            random_fraction: 0.1,
            oneshot_fraction: 0.3,
        };
        let trace = generate_trace_where(&set, &cfg, 5, &lands_even);
        assert_eq!(trace.len(), 2000);
        assert!(trace.iter().all(lands_even), "every packet (flows and scans) stays pinned");
        let distinct: HashMap<String, usize> = trace.iter().fold(HashMap::new(), |mut m, h| {
            *m.entry(format!("{h}")).or_default() += 1;
            m
        });
        assert!(distinct.len() > 32, "one-shot scan packets add fresh headers");
    }

    #[test]
    fn scan_trace_never_repeats_and_is_deterministic() {
        let set = routing_set();
        let a = generate_scan_trace(&set, 2000, 13);
        assert_eq!(a.len(), 2000);
        let distinct: std::collections::HashSet<String> =
            a.iter().map(|h| format!("{h}")).collect();
        assert_eq!(distinct.len(), 2000, "a scan never reuses a header");
        assert_eq!(a, generate_scan_trace(&set, 2000, 13), "deterministic per seed");
        assert_ne!(a, generate_scan_trace(&set, 2000, 14));
    }

    #[test]
    fn rule_derived_flows_match_their_rule() {
        let set = routing_set();
        let cfg = TraceConfig {
            packets: 1,
            flows: 128,
            skew: 0.0,
            random_fraction: 0.0,
            oneshot_fraction: 0.0,
        };
        let flows = generate_flows(&set, &cfg, 3);
        // Every non-random flow must match the rule it was derived from
        // (some rule — the derivation guarantees at least one match).
        for h in &flows {
            assert!(
                set.rules.iter().any(|r| r.flow_match.matches(h)),
                "derived flow {h} matches no rule"
            );
        }
    }
}
