//! Filter sets: named collections of rules for one application.

use crate::rule::Rule;
use oflow::MatchFieldKind;
use std::fmt;

/// The application a filter set serves, mirroring the Stanford backbone
/// suffixes the paper lists (§III.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterKind {
    /// MAC learning (`_rtr_mac_table`): VLAN ID + destination Ethernet.
    MacLearning,
    /// Routing / packet forwarding (`_rtr_route`): ingress port + IPv4
    /// destination prefix.
    Routing,
    /// Access control lists (`_rtr_config` ACL entries): 5-tuple.
    Acl,
    /// ARP (`_rtr_arp`): target protocol address.
    Arp,
}

impl FilterKind {
    /// The fields this application's rules constrain, in table order.
    #[must_use]
    pub fn fields(self) -> &'static [MatchFieldKind] {
        match self {
            FilterKind::MacLearning => &[MatchFieldKind::VlanVid, MatchFieldKind::EthDst],
            FilterKind::Routing => &[MatchFieldKind::InPort, MatchFieldKind::Ipv4Dst],
            FilterKind::Acl => &[
                MatchFieldKind::Ipv4Src,
                MatchFieldKind::Ipv4Dst,
                MatchFieldKind::IpProto,
                MatchFieldKind::TcpSrc,
                MatchFieldKind::TcpDst,
            ],
            FilterKind::Arp => &[MatchFieldKind::InPort, MatchFieldKind::ArpTpa],
        }
    }

    /// Stanford-backbone style suffix.
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            FilterKind::MacLearning => "mac_table",
            FilterKind::Routing => "route",
            FilterKind::Acl => "config",
            FilterKind::Arp => "arp",
        }
    }
}

impl fmt::Display for FilterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// A named rule collection for one application on one router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterSet {
    /// Router name (`bbra`, `coza`, ...).
    pub name: String,
    /// Application kind.
    pub kind: FilterKind,
    /// The rules, ids `0..len`.
    pub rules: Vec<Rule>,
}

impl FilterSet {
    /// Creates a filter set, renumbering rule ids to `0..len`.
    #[must_use]
    pub fn new(name: impl Into<String>, kind: FilterKind, mut rules: Vec<Rule>) -> Self {
        for (i, r) in rules.iter_mut().enumerate() {
            r.id = i as u32;
        }
        Self { name: name.into(), kind, rules }
    }

    /// Creates a filter set keeping the rules' existing ids — for callers
    /// that regenerate a structure from rules whose ids are already
    /// referenced elsewhere (incremental update rebuilds).
    #[must_use]
    pub fn preserving_ids(name: impl Into<String>, kind: FilterKind, rules: Vec<Rule>) -> Self {
        Self { name: name.into(), kind, rules }
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set has no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Stanford-style identifier, e.g. `bbra_rtr_route`.
    #[must_use]
    pub fn full_name(&self) -> String {
        format!("{}_rtr_{}", self.name, self.kind.suffix())
    }
}

impl fmt::Display for FilterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} rules)", self.full_name(), self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleAction;
    use oflow::FlowMatch;

    #[test]
    fn kinds_expose_fields() {
        assert_eq!(FilterKind::MacLearning.fields().len(), 2);
        assert_eq!(FilterKind::Routing.fields().len(), 2);
        assert_eq!(FilterKind::Acl.fields().len(), 5);
        assert_eq!(FilterKind::MacLearning.fields()[0], MatchFieldKind::VlanVid);
    }

    #[test]
    fn new_renumbers_ids() {
        let rules = vec![
            Rule::new(99, 1, FlowMatch::any(), RuleAction::Deny),
            Rule::new(99, 1, FlowMatch::any(), RuleAction::Deny),
        ];
        let s = FilterSet::new("bbra", FilterKind::Routing, rules);
        assert_eq!(s.rules[0].id, 0);
        assert_eq!(s.rules[1].id, 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn preserving_ids_keeps_them() {
        let rules = vec![
            Rule::new(7, 1, FlowMatch::any(), RuleAction::Deny),
            Rule::new(99, 1, FlowMatch::any(), RuleAction::Deny),
        ];
        let s = FilterSet::preserving_ids("bbra", FilterKind::Routing, rules);
        assert_eq!(s.rules[0].id, 7);
        assert_eq!(s.rules[1].id, 99);
    }

    #[test]
    fn full_name_matches_stanford_convention() {
        let s = FilterSet::new("coza", FilterKind::MacLearning, vec![]);
        assert_eq!(s.full_name(), "coza_rtr_mac_table");
        assert!(s.is_empty());
        assert_eq!(s.to_string(), "coza_rtr_mac_table (0 rules)");
    }
}
