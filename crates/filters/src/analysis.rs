//! Filter-set surveys: unique field values per k-bit partition.
//!
//! The paper's Tables III and IV count, for each filter set, the number of
//! *unique values* each field contributes per 16-bit partition — the
//! quantity that determines label-dictionary sizes and trie populations.
//! For prefix fields the masked value is used (wildcard bits zeroed), so a
//! `/8` and a `/16` rule sharing leading bits collapse into fewer partition
//! values, exactly as the label method would store them.

use crate::rule::Rule;
use crate::set::{FilterKind, FilterSet};
use oflow::MatchFieldKind;
use std::collections::BTreeSet;

/// Unique-value counts for one field split into `k`-bit partitions
/// (partition 0 is the most significant — the paper's "higher").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSurvey {
    /// The surveyed field.
    pub field: MatchFieldKind,
    /// Partition width in bits.
    pub partition_bits: u32,
    /// Unique values per partition, most significant first.
    pub unique: Vec<usize>,
}

impl PartitionSurvey {
    /// Number of partitions.
    #[must_use]
    pub fn partitions(&self) -> usize {
        self.unique.len()
    }
}

/// Splits a full-width value into `k`-bit partitions, most significant
/// first. The field width is rounded up to a whole number of partitions
/// (only exact multiples occur in the paper's fields: 48 = 3x16, 32 = 2x16).
#[must_use]
pub fn partitions_of(value: u128, width: u32, k: u32) -> Vec<u64> {
    assert!(k > 0 && k <= 64, "partition width must be 1..=64");
    let n = width.div_ceil(k);
    (0..n)
        .map(|i| {
            let shift = width.saturating_sub(k * (i + 1));
            let mask = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
            ((value >> shift) as u64) & mask
        })
        .collect()
}

/// Surveys unique values of `field` per `k`-bit partition over the rules.
/// Prefix/exact matches contribute their masked value; wildcards and ranges
/// are skipped (they carry no concrete partition value).
#[must_use]
pub fn partition_survey(rules: &[Rule], field: MatchFieldKind, k: u32) -> PartitionSurvey {
    let width = field.bit_width();
    let n = width.div_ceil(k) as usize;
    let mut sets: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); n];
    for r in rules {
        if let Some((value, _len)) = r.field_as_prefix(field) {
            for (i, p) in partitions_of(value, width, k).into_iter().enumerate() {
                sets[i].insert(p);
            }
        }
    }
    PartitionSurvey { field, partition_bits: k, unique: sets.iter().map(BTreeSet::len).collect() }
}

/// Counts distinct concrete values of a (narrow) exact-match field.
#[must_use]
pub fn unique_values(rules: &[Rule], field: MatchFieldKind) -> usize {
    rules
        .iter()
        .filter_map(|r| r.field_as_prefix(field).map(|(v, _)| v))
        .collect::<BTreeSet<_>>()
        .len()
}

/// A regenerated Table III row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacSurvey {
    /// Router / set name.
    pub name: String,
    /// Rule count.
    pub rules: usize,
    /// Unique VLAN IDs.
    pub vlan_unique: usize,
    /// Unique Ethernet partition values: `[higher, middle, lower]`.
    pub eth_partitions: [usize; 3],
}

/// Surveys a MAC-learning filter set (regenerates a Table III row).
///
/// # Panics
/// Panics if the set is not [`FilterKind::MacLearning`].
#[must_use]
pub fn survey_mac(set: &FilterSet) -> MacSurvey {
    assert_eq!(set.kind, FilterKind::MacLearning, "survey_mac needs a MAC filter set");
    let eth = partition_survey(&set.rules, MatchFieldKind::EthDst, 16);
    MacSurvey {
        name: set.name.clone(),
        rules: set.len(),
        vlan_unique: unique_values(&set.rules, MatchFieldKind::VlanVid),
        eth_partitions: [eth.unique[0], eth.unique[1], eth.unique[2]],
    }
}

/// A regenerated Table IV row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingSurvey {
    /// Router / set name.
    pub name: String,
    /// Rule count.
    pub rules: usize,
    /// Unique ingress ports.
    pub port_unique: usize,
    /// Unique IP partition values: `[higher, lower]`.
    pub ip_partitions: [usize; 2],
}

/// Surveys a routing filter set (regenerates a Table IV row).
///
/// # Panics
/// Panics if the set is not [`FilterKind::Routing`].
#[must_use]
pub fn survey_routing(set: &FilterSet) -> RoutingSurvey {
    assert_eq!(set.kind, FilterKind::Routing, "survey_routing needs a routing filter set");
    let ip = partition_survey(&set.rules, MatchFieldKind::Ipv4Dst, 16);
    RoutingSurvey {
        name: set.name.clone(),
        rules: set.len(),
        port_unique: unique_values(&set.rules, MatchFieldKind::InPort),
        ip_partitions: [ip.unique[0], ip.unique[1]],
    }
}

/// Histogram of prefix lengths of `field` over the rules (index = length).
/// Wildcards count as length 0; exact matches as full width.
#[must_use]
pub fn prefix_length_histogram(rules: &[Rule], field: MatchFieldKind) -> Vec<usize> {
    let mut hist = vec![0usize; field.bit_width() as usize + 1];
    for r in rules {
        match r.field_as_prefix(field) {
            Some((_, len)) => hist[len as usize] += 1,
            None => {
                if r.field(field).is_wildcard() {
                    hist[0] += 1;
                }
            }
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleAction;
    use oflow::FlowMatch;

    fn mac_rule(id: u32, vlan: u128, mac: u128) -> Rule {
        Rule::new(
            id,
            1,
            FlowMatch::any()
                .with_exact(MatchFieldKind::VlanVid, vlan)
                .unwrap()
                .with_exact(MatchFieldKind::EthDst, mac)
                .unwrap(),
            RuleAction::Forward(1),
        )
    }

    fn route_rule(id: u32, port: u128, value: u128, len: u32) -> Rule {
        Rule::new(
            id,
            len as u16,
            FlowMatch::any()
                .with_exact(MatchFieldKind::InPort, port)
                .unwrap()
                .with_prefix(MatchFieldKind::Ipv4Dst, value, len)
                .unwrap(),
            RuleAction::Forward(port as u32),
        )
    }

    #[test]
    fn partitions_of_splits_msb_first() {
        assert_eq!(partitions_of(0xAABB_CCDD_EEFF, 48, 16), vec![0xAABB, 0xCCDD, 0xEEFF]);
        assert_eq!(partitions_of(0x0A01_0203, 32, 16), vec![0x0A01, 0x0203]);
        assert_eq!(partitions_of(0xFF, 8, 16), vec![0xFF]);
    }

    #[test]
    fn mac_survey_counts_unique_partitions() {
        let set = FilterSet::new(
            "t",
            FilterKind::MacLearning,
            vec![
                mac_rule(0, 1, 0xAAAA_0001_0001),
                mac_rule(1, 1, 0xAAAA_0001_0002),
                mac_rule(2, 2, 0xAAAA_0002_0001),
            ],
        );
        let s = survey_mac(&set);
        assert_eq!(s.rules, 3);
        assert_eq!(s.vlan_unique, 2);
        assert_eq!(s.eth_partitions, [1, 2, 2]);
    }

    #[test]
    fn routing_survey_uses_masked_prefix_values() {
        // 10.1.0.0/16 and 10.1.2.0/24 share hi partition 0x0A01; the /16 has
        // lo 0x0000 and the /24 lo 0x0200.
        let set = FilterSet::new(
            "t",
            FilterKind::Routing,
            vec![
                route_rule(0, 1, 0x0A01_0000, 16),
                route_rule(1, 1, 0x0A01_0200, 24),
                route_rule(2, 2, 0x0A01_0000, 16), // duplicate values, new port
            ],
        );
        let s = survey_routing(&set);
        assert_eq!(s.port_unique, 2);
        assert_eq!(s.ip_partitions, [1, 2]);
    }

    #[test]
    fn short_prefix_contributes_zeroed_low_partition() {
        let set = FilterSet::new(
            "t",
            FilterKind::Routing,
            vec![route_rule(0, 1, 0x0A00_0000, 8), route_rule(1, 1, 0, 0)],
        );
        let s = survey_routing(&set);
        // /8 masked is 0x0A00_0000 -> hi 0x0A00, lo 0x0000.
        // /0 masked is 0 -> hi 0, lo 0.
        assert_eq!(s.ip_partitions, [2, 1]);
    }

    #[test]
    fn wildcard_and_range_fields_skipped() {
        let r = Rule::new(
            0,
            1,
            FlowMatch::any().with_range(MatchFieldKind::TcpDst, 1, 5).unwrap(),
            RuleAction::Deny,
        );
        let s = partition_survey(&[r], MatchFieldKind::TcpDst, 16);
        assert_eq!(s.unique, vec![0]);
    }

    #[test]
    fn prefix_histogram_buckets_by_length() {
        let rules = vec![
            route_rule(0, 1, 0x0A000000, 8),
            route_rule(1, 1, 0x0B000000, 8),
            route_rule(2, 1, 0x0A010000, 16),
            route_rule(3, 1, 0, 0),
        ];
        let h = prefix_length_histogram(&rules, MatchFieldKind::Ipv4Dst);
        assert_eq!(h[8], 2);
        assert_eq!(h[16], 1);
        assert_eq!(h[0], 1);
        assert_eq!(h.iter().sum::<usize>(), 4);
    }

    #[test]
    #[should_panic(expected = "survey_mac needs")]
    fn survey_mac_rejects_wrong_kind() {
        let set = FilterSet::new("t", FilterKind::Routing, vec![]);
        let _ = survey_mac(&set);
    }
}
