//! # offilter — filter sets, published statistics and constrained synthesis
//!
//! The SOCC'15 paper analyses the *Stanford backbone* filter sets [21]:
//! per-router MAC-learning tables (VLAN ID + destination Ethernet) and
//! routing tables (ingress port + destination IPv4 prefix). That data set is
//! not redistributable here, but the paper publishes the exact statistics
//! its analysis depends on — rule counts and unique-value counts per 16-bit
//! field partition for all 16 routers (Tables III and IV).
//!
//! This crate therefore provides:
//!
//! * [`rule`] / [`set`] — rules (built on [`oflow::FlowMatch`]) and filter
//!   sets with application kinds.
//! * [`paper_data`] — Tables III and IV embedded verbatim.
//! * [`synth`] — a seeded generator that produces filter sets whose
//!   statistics match the published numbers **exactly** (unique counts per
//!   partition are reproduced by constrained sampling, not approximated).
//! * [`analysis`] — the unique-value surveys that regenerate Tables III and
//!   IV from any filter set, synthetic or parsed.
//! * [`parse`] — text formats (MAC tables, route tables, ClassBench-like
//!   5-tuple ACLs) with round-tripping writers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod paper_data;
pub mod parse;
pub mod rule;
pub mod set;
pub mod synth;

pub use analysis::{survey_mac, survey_routing, PartitionSurvey};
pub use paper_data::{MacFilterStats, RoutingFilterStats, ROUTERS};
pub use rule::{Rule, RuleAction};
pub use set::{FilterKind, FilterSet};
