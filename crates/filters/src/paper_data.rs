//! The paper's published filter statistics, embedded verbatim.
//!
//! Tables III and IV of the paper report, for each of the 16 Stanford
//! backbone routers, the rule count and the number of unique field values
//! per 16-bit partition. These numbers are the *targets* the synthetic
//! generator ([`crate::synth`]) reproduces exactly, and the *expected rows*
//! the Table III / Table IV experiments compare against.

/// The 16 router names, in the tables' order.
pub const ROUTERS: [&str; 16] = [
    "bbra", "bbrb", "boza", "bozb", "coza", "cozb", "goza", "gozb", "poza", "pozb", "roza", "rozb",
    "soza", "sozb", "yoza", "yozb",
];

/// One row of Table III (MAC-learning filter survey).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacFilterStats {
    /// Router name.
    pub router: &'static str,
    /// Number of rules.
    pub rules: usize,
    /// Unique VLAN ID values.
    pub vlan_unique: usize,
    /// Unique higher 16-bit Ethernet partition values.
    pub eth_hi: usize,
    /// Unique middle 16-bit Ethernet partition values.
    pub eth_mid: usize,
    /// Unique lower 16-bit Ethernet partition values.
    pub eth_lo: usize,
}

/// Table III: "Number of unique field values of flow-based MAC filter".
pub const MAC_FILTERS: [MacFilterStats; 16] = [
    MacFilterStats {
        router: "bbra",
        rules: 507,
        vlan_unique: 48,
        eth_hi: 46,
        eth_mid: 133,
        eth_lo: 261,
    },
    MacFilterStats {
        router: "bbrb",
        rules: 151,
        vlan_unique: 16,
        eth_hi: 26,
        eth_mid: 38,
        eth_lo: 55,
    },
    MacFilterStats {
        router: "boza",
        rules: 3664,
        vlan_unique: 139,
        eth_hi: 136,
        eth_mid: 3276,
        eth_lo: 2664,
    },
    MacFilterStats {
        router: "bozb",
        rules: 4454,
        vlan_unique: 139,
        eth_hi: 137,
        eth_mid: 1338,
        eth_lo: 3440,
    },
    MacFilterStats {
        router: "coza",
        rules: 3295,
        vlan_unique: 32,
        eth_hi: 225,
        eth_mid: 1578,
        eth_lo: 2824,
    },
    MacFilterStats {
        router: "cozb",
        rules: 2129,
        vlan_unique: 32,
        eth_hi: 194,
        eth_mid: 1101,
        eth_lo: 1861,
    },
    MacFilterStats {
        router: "goza",
        rules: 6687,
        vlan_unique: 208,
        eth_hi: 172,
        eth_mid: 2579,
        eth_lo: 5480,
    },
    MacFilterStats {
        router: "gozb",
        rules: 7370,
        vlan_unique: 209,
        eth_hi: 159,
        eth_mid: 1946,
        eth_lo: 6177,
    },
    MacFilterStats {
        router: "poza",
        rules: 4533,
        vlan_unique: 153,
        eth_hi: 195,
        eth_mid: 2165,
        eth_lo: 3786,
    },
    MacFilterStats {
        router: "pozb",
        rules: 4999,
        vlan_unique: 155,
        eth_hi: 169,
        eth_mid: 1759,
        eth_lo: 4170,
    },
    MacFilterStats {
        router: "roza",
        rules: 3851,
        vlan_unique: 114,
        eth_hi: 136,
        eth_mid: 2389,
        eth_lo: 3264,
    },
    MacFilterStats {
        router: "rozb",
        rules: 3711,
        vlan_unique: 113,
        eth_hi: 140,
        eth_mid: 1920,
        eth_lo: 3175,
    },
    MacFilterStats {
        router: "soza",
        rules: 3153,
        vlan_unique: 41,
        eth_hi: 187,
        eth_mid: 1115,
        eth_lo: 2682,
    },
    MacFilterStats {
        router: "sozb",
        rules: 2399,
        vlan_unique: 39,
        eth_hi: 161,
        eth_mid: 821,
        eth_lo: 2132,
    },
    MacFilterStats {
        router: "yoza",
        rules: 3944,
        vlan_unique: 112,
        eth_hi: 178,
        eth_mid: 1655,
        eth_lo: 3180,
    },
    MacFilterStats {
        router: "yozb",
        rules: 2944,
        vlan_unique: 101,
        eth_hi: 162,
        eth_mid: 1298,
        eth_lo: 2351,
    },
];

/// One row of Table IV (Routing filter survey).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingFilterStats {
    /// Router name.
    pub router: &'static str,
    /// Number of rules.
    pub rules: usize,
    /// Unique ingress-port values.
    pub port_unique: usize,
    /// Unique higher 16-bit IP address partition values.
    pub ip_hi: usize,
    /// Unique lower 16-bit IP address partition values.
    pub ip_lo: usize,
}

/// Table IV: "Number of unique field values of flow-based Routing filter".
pub const ROUTING_FILTERS: [RoutingFilterStats; 16] = [
    RoutingFilterStats { router: "bbra", rules: 1835, port_unique: 40, ip_hi: 82, ip_lo: 1190 },
    RoutingFilterStats { router: "bbrb", rules: 1678, port_unique: 20, ip_hi: 82, ip_lo: 1015 },
    RoutingFilterStats { router: "boza", rules: 1614, port_unique: 26, ip_hi: 53, ip_lo: 1084 },
    RoutingFilterStats { router: "bozb", rules: 1455, port_unique: 26, ip_hi: 53, ip_lo: 952 },
    RoutingFilterStats {
        router: "coza",
        rules: 184_909,
        port_unique: 43,
        ip_hi: 20_214,
        ip_lo: 7062,
    },
    RoutingFilterStats {
        router: "cozb",
        rules: 183_376,
        port_unique: 39,
        ip_hi: 20_212,
        ip_lo: 5575,
    },
    RoutingFilterStats { router: "goza", rules: 1767, port_unique: 21, ip_hi: 57, ip_lo: 1216 },
    RoutingFilterStats { router: "gozb", rules: 1669, port_unique: 22, ip_hi: 57, ip_lo: 1138 },
    RoutingFilterStats { router: "poza", rules: 1489, port_unique: 18, ip_hi: 54, ip_lo: 976 },
    RoutingFilterStats { router: "pozb", rules: 1434, port_unique: 20, ip_hi: 54, ip_lo: 932 },
    RoutingFilterStats { router: "roza", rules: 1567, port_unique: 17, ip_hi: 52, ip_lo: 1053 },
    RoutingFilterStats { router: "rozb", rules: 1483, port_unique: 16, ip_hi: 52, ip_lo: 988 },
    RoutingFilterStats {
        router: "soza",
        rules: 184_682,
        port_unique: 48,
        ip_hi: 20_212,
        ip_lo: 6723,
    },
    RoutingFilterStats {
        router: "sozb",
        rules: 180_944,
        port_unique: 36,
        ip_hi: 20_212,
        ip_lo: 3168,
    },
    RoutingFilterStats { router: "yoza", rules: 4746, port_unique: 77, ip_hi: 58, ip_lo: 3610 },
    RoutingFilterStats { router: "yozb", rules: 2592, port_unique: 48, ip_hi: 55, ip_lo: 1955 },
];

/// The four Table-IV exception routers the paper highlights: their *higher*
/// 16-bit IP partition has more unique values than the lower one,
/// "indicating a wider range of network addresses in these filter sets".
pub const ROUTING_EXCEPTIONS: [&str; 4] = ["coza", "cozb", "soza", "sozb"];

/// Looks up the Table III row for a router.
#[must_use]
pub fn mac_stats(router: &str) -> Option<&'static MacFilterStats> {
    MAC_FILTERS.iter().find(|s| s.router == router)
}

/// Looks up the Table IV row for a router.
#[must_use]
pub fn routing_stats(router: &str) -> Option<&'static RoutingFilterStats> {
    ROUTING_FILTERS.iter().find(|s| s.router == router)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_rows_each() {
        assert_eq!(MAC_FILTERS.len(), 16);
        assert_eq!(ROUTING_FILTERS.len(), 16);
        assert_eq!(ROUTERS.len(), 16);
        for (i, r) in ROUTERS.iter().enumerate() {
            assert_eq!(MAC_FILTERS[i].router, *r);
            assert_eq!(ROUTING_FILTERS[i].router, *r);
        }
    }

    /// Paper §III.C: "there are no more than 209 different VLAN ID values
    /// (gozb filter)".
    #[test]
    fn worst_case_vlan_is_gozb_209() {
        let max = MAC_FILTERS.iter().map(|s| s.vlan_unique).max().unwrap();
        assert_eq!(max, 209);
        assert_eq!(mac_stats("gozb").unwrap().vlan_unique, 209);
    }

    /// Paper §III.C: "the number of unique ingress port fields achieves a
    /// maximum of 77 different values (yoza filter)" and "the largest flow
    /// filter for routing (coza with 184909 entries) only has 43 unique
    /// ingress port values".
    #[test]
    fn ingress_port_extremes() {
        let max = ROUTING_FILTERS.iter().map(|s| s.port_unique).max().unwrap();
        assert_eq!(max, 77);
        assert_eq!(routing_stats("yoza").unwrap().port_unique, 77);
        let coza = routing_stats("coza").unwrap();
        assert_eq!(coza.rules, 184_909);
        assert_eq!(coza.port_unique, 43);
    }

    /// Paper §III.C: coza "reaches a maximum of 20214 unique address values
    /// corresponding to 11% of the total flow entries".
    #[test]
    fn coza_hi_is_11_percent_of_rules() {
        let coza = routing_stats("coza").unwrap();
        assert_eq!(coza.ip_hi, 20_214);
        let pct = coza.ip_hi as f64 / coza.rules as f64;
        assert!((pct - 0.11).abs() < 0.005, "got {pct}");
    }

    /// The exception filters are exactly those where hi > lo.
    #[test]
    fn exceptions_have_hi_greater_than_lo() {
        for s in &ROUTING_FILTERS {
            let is_exception = ROUTING_EXCEPTIONS.contains(&s.router);
            assert_eq!(s.ip_hi > s.ip_lo, is_exception, "router {}", s.router);
        }
    }

    /// In the MAC survey, higher partitions always have the fewest unique
    /// values (OUI structure).
    #[test]
    fn mac_hi_partition_smallest() {
        for s in &MAC_FILTERS {
            assert!(s.eth_hi <= s.eth_mid, "router {}", s.router);
            assert!(s.eth_hi <= s.eth_lo, "router {}", s.router);
        }
    }

    #[test]
    fn lookups_by_name() {
        assert!(mac_stats("bbra").is_some());
        assert!(mac_stats("nope").is_none());
        assert!(routing_stats("sozb").is_some());
        assert!(routing_stats("").is_none());
    }

    /// Unique counts can never exceed rule counts.
    #[test]
    fn unique_counts_bounded_by_rules() {
        for s in &MAC_FILTERS {
            for u in [s.vlan_unique, s.eth_hi, s.eth_mid, s.eth_lo] {
                assert!(u <= s.rules, "router {}", s.router);
            }
        }
        for s in &ROUTING_FILTERS {
            for u in [s.port_unique, s.ip_hi, s.ip_lo] {
                assert!(u <= s.rules, "router {}", s.router);
            }
        }
    }
}
