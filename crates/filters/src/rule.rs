//! Rules: a flow match plus the forwarding decision it encodes.
//!
//! The terms *filter* and *rule* are interchangeable (paper §III). A rule
//! wraps an [`oflow::FlowMatch`] with an identifier, priority and the action
//! its application assigns — for the paper's use cases, an output port
//! (`Write-Actions: output`) with the pipeline wiring (`Goto-Table`) added
//! by the architecture, not the rule.

use oflow::{FieldMatch, FlowMatch, MatchFieldKind};
use std::fmt;

/// The forwarding decision a rule encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleAction {
    /// Forward out of a port.
    Forward(u32),
    /// Drop (ACL deny).
    Deny,
    /// Punt to the controller.
    Controller,
}

impl RuleAction {
    /// The output port if this is a `Forward`.
    #[must_use]
    pub fn port(self) -> Option<u32> {
        match self {
            RuleAction::Forward(p) => Some(p),
            _ => None,
        }
    }
}

impl fmt::Display for RuleAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleAction::Forward(p) => write!(f, "fwd:{p}"),
            RuleAction::Deny => write!(f, "deny"),
            RuleAction::Controller => write!(f, "controller"),
        }
    }
}

/// A classification rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Stable identifier within its filter set (also the action-table row).
    pub id: u32,
    /// Priority for overlap resolution; higher wins (prefix rules typically
    /// use the prefix length).
    pub priority: u16,
    /// The match.
    pub flow_match: FlowMatch,
    /// The decision.
    pub action: RuleAction,
}

impl Rule {
    /// Creates a rule.
    #[must_use]
    pub fn new(id: u32, priority: u16, flow_match: FlowMatch, action: RuleAction) -> Self {
        Self { id, priority, flow_match, action }
    }

    /// The constraint this rule places on `field`.
    #[must_use]
    pub fn field(&self, field: MatchFieldKind) -> FieldMatch {
        self.flow_match.field(field)
    }

    /// The masked value and prefix length of `field`, treating exact
    /// matches as full-width prefixes. Returns `None` for ranges and
    /// wildcards.
    #[must_use]
    pub fn field_as_prefix(&self, field: MatchFieldKind) -> Option<(u128, u32)> {
        match self.field(field) {
            FieldMatch::Exact(v) => Some((v, field.bit_width())),
            FieldMatch::Prefix { value, len } => Some((value, len)),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} prio={} [{}] -> {}", self.id, self.priority, self.flow_match, self.action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oflow::MatchFieldKind::*;

    #[test]
    fn field_as_prefix_normalises_exact() {
        let fm = FlowMatch::any()
            .with_exact(VlanVid, 5)
            .unwrap()
            .with_prefix(Ipv4Dst, 0x0A000000, 8)
            .unwrap()
            .with_range(TcpDst, 1, 10)
            .unwrap();
        let r = Rule::new(0, 1, fm, RuleAction::Forward(1));
        assert_eq!(r.field_as_prefix(VlanVid), Some((5, 13)));
        assert_eq!(r.field_as_prefix(Ipv4Dst), Some((0x0A000000, 8)));
        assert_eq!(r.field_as_prefix(TcpDst), None);
        assert_eq!(r.field_as_prefix(UdpDst), None); // Any
    }

    #[test]
    fn action_port() {
        assert_eq!(RuleAction::Forward(9).port(), Some(9));
        assert_eq!(RuleAction::Deny.port(), None);
        assert_eq!(RuleAction::Forward(9).to_string(), "fwd:9");
    }

    #[test]
    fn display_mentions_id_and_action() {
        let r = Rule::new(17, 3, FlowMatch::any(), RuleAction::Controller);
        let s = r.to_string();
        assert!(s.contains("#17"));
        assert!(s.contains("controller"));
    }
}
