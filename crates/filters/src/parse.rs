//! Text formats for filter sets, with round-tripping writers.
//!
//! Three line-oriented formats cover the paper's applications:
//!
//! * **MAC tables** — `vlan <vid> mac <aa:bb:cc:dd:ee:ff> port <n>`
//! * **Route tables** — `route <a.b.c.d>/<len> in <port> out <port>`
//! * **ClassBench-like ACLs** — `@<src>/<len> <dst>/<len> <lo> : <hi> <lo> : <hi> <proto>/<mask>`
//!
//! Lines starting with `#` and blank lines are ignored. Writers emit
//! exactly what the parsers accept, so `parse(write(set)) == set` for the
//! supported field shapes (the round-trip property tests rely on this).

use crate::rule::{Rule, RuleAction};
use crate::set::{FilterKind, FilterSet};
use oflow::{FieldMatch, FlowMatch, MatchFieldKind};
use std::fmt;
use std::net::Ipv4Addr;

/// Error parsing a filter-set file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for FilterParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for FilterParseError {}

fn err(line: usize, reason: impl Into<String>) -> FilterParseError {
    FilterParseError { line, reason: reason.into() }
}

// ---------------------------------------------------------------- MAC tables

/// Parses a MAC table file.
pub fn parse_mac_table(name: &str, text: &str) -> Result<FilterSet, FilterParseError> {
    let mut rules = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let [kw_vlan, vid, kw_mac, mac, kw_port, port] = tokens[..] else {
            return Err(err(lineno, "expected 'vlan V mac M port P'"));
        };
        if kw_vlan != "vlan" || kw_mac != "mac" || kw_port != "port" {
            return Err(err(lineno, "expected 'vlan V mac M port P'"));
        }
        let vid: u16 = vid.parse().map_err(|_| err(lineno, "bad vlan id"))?;
        let mac: u64 = parse_mac(mac).ok_or_else(|| err(lineno, "bad mac"))?;
        let port: u32 = port.parse().map_err(|_| err(lineno, "bad port"))?;
        let fm = FlowMatch::any()
            .with_exact(MatchFieldKind::VlanVid, u128::from(vid))
            .map_err(|e| err(lineno, e.to_string()))?
            .with_exact(MatchFieldKind::EthDst, u128::from(mac))
            .map_err(|e| err(lineno, e.to_string()))?;
        rules.push(Rule::new(0, 1, fm, RuleAction::Forward(port)));
    }
    Ok(FilterSet::new(name, FilterKind::MacLearning, rules))
}

/// Writes a MAC table file.
#[must_use]
pub fn write_mac_table(set: &FilterSet) -> String {
    let mut out = format!("# {} ({} rules)\n", set.full_name(), set.len());
    for r in &set.rules {
        let vid = match r.field(MatchFieldKind::VlanVid) {
            FieldMatch::Exact(v) => v,
            _ => continue,
        };
        let mac = match r.field(MatchFieldKind::EthDst) {
            FieldMatch::Exact(v) => v as u64,
            _ => continue,
        };
        let port = r.action.port().unwrap_or(0);
        out.push_str(&format!("vlan {vid} mac {} port {port}\n", fmt_mac(mac)));
    }
    out
}

// Minimal MAC helpers, kept local: offilter does not depend on ofpacket.
fn parse_mac(s: &str) -> Option<u64> {
    let mut v: u64 = 0;
    let mut n = 0;
    for part in s.split(':') {
        if n == 6 || part.len() > 2 {
            return None;
        }
        v = (v << 8) | u64::from(u8::from_str_radix(part, 16).ok()?);
        n += 1;
    }
    (n == 6).then_some(v)
}

fn fmt_mac(v: u64) -> String {
    let b = v.to_be_bytes();
    format!("{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", b[2], b[3], b[4], b[5], b[6], b[7])
}

// --------------------------------------------------------------- route tables

/// Parses a route table file.
pub fn parse_route_table(name: &str, text: &str) -> Result<FilterSet, FilterParseError> {
    let mut rules = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let [kw_route, prefix, kw_in, in_port, kw_out, out_port] = tokens[..] else {
            return Err(err(lineno, "expected 'route A.B.C.D/L in P out Q'"));
        };
        if kw_route != "route" || kw_in != "in" || kw_out != "out" {
            return Err(err(lineno, "expected 'route A.B.C.D/L in P out Q'"));
        }
        let (addr, len) = prefix.split_once('/').ok_or_else(|| err(lineno, "bad prefix"))?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| err(lineno, "bad address"))?;
        let len: u32 = len.parse().map_err(|_| err(lineno, "bad prefix length"))?;
        let in_port: u32 = in_port.parse().map_err(|_| err(lineno, "bad in port"))?;
        let out_port: u32 = out_port.parse().map_err(|_| err(lineno, "bad out port"))?;
        let fm = FlowMatch::any()
            .with_exact(MatchFieldKind::InPort, u128::from(in_port))
            .map_err(|e| err(lineno, e.to_string()))?
            .with_prefix(MatchFieldKind::Ipv4Dst, u128::from(u32::from(addr)), len)
            .map_err(|e| err(lineno, e.to_string()))?;
        rules.push(Rule::new(0, len as u16, fm, RuleAction::Forward(out_port)));
    }
    Ok(FilterSet::new(name, FilterKind::Routing, rules))
}

/// Writes a route table file.
#[must_use]
pub fn write_route_table(set: &FilterSet) -> String {
    let mut out = format!("# {} ({} rules)\n", set.full_name(), set.len());
    for r in &set.rules {
        let in_port = match r.field(MatchFieldKind::InPort) {
            FieldMatch::Exact(v) => v,
            _ => continue,
        };
        let (value, len) = match r.field(MatchFieldKind::Ipv4Dst) {
            FieldMatch::Prefix { value, len } => (value, len),
            FieldMatch::Exact(value) => (value, 32),
            _ => continue,
        };
        let addr = Ipv4Addr::from(value as u32);
        let out_port = r.action.port().unwrap_or(0);
        out.push_str(&format!("route {addr}/{len} in {in_port} out {out_port}\n"));
    }
    out
}

// ------------------------------------------------------------ ClassBench ACLs

/// Parses a ClassBench-like ACL file.
///
/// Format per line:
/// `@srcIP/len dstIP/len loPort : hiPort loPort : hiPort proto/mask`
/// An action suffix `deny` or `fwd N` may follow; default is `fwd 1`.
pub fn parse_classbench(name: &str, text: &str) -> Result<FilterSet, FilterParseError> {
    let mut rules = Vec::new();
    let mut lines: Vec<&str> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.is_empty() && !line.starts_with('#') {
            lines.push(line);
        }
    }
    let total = lines.len();
    for (i, line) in lines.into_iter().enumerate() {
        let lineno = i + 1;
        let line = line.strip_prefix('@').ok_or_else(|| err(lineno, "missing '@'"))?;
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() < 9 {
            return Err(err(lineno, "expected 9+ tokens"));
        }
        let mut fm = FlowMatch::any();
        for (field, tok) in
            [(MatchFieldKind::Ipv4Src, tokens[0]), (MatchFieldKind::Ipv4Dst, tokens[1])]
        {
            let (addr, len) = tok.split_once('/').ok_or_else(|| err(lineno, "bad prefix"))?;
            let addr: Ipv4Addr = addr.parse().map_err(|_| err(lineno, "bad address"))?;
            let len: u32 = len.parse().map_err(|_| err(lineno, "bad length"))?;
            if len == 32 {
                // Full-width prefixes are canonically exact matches.
                fm = fm
                    .with_exact(field, u128::from(u32::from(addr)))
                    .map_err(|e| err(lineno, e.to_string()))?;
            } else if len > 0 {
                fm = fm
                    .with_prefix(field, u128::from(u32::from(addr)), len)
                    .map_err(|e| err(lineno, e.to_string()))?;
            }
        }
        for (field, lo_tok, hi_tok) in [
            (MatchFieldKind::TcpSrc, tokens[2], tokens[4]),
            (MatchFieldKind::TcpDst, tokens[5], tokens[7]),
        ] {
            if tokens[3] != ":" || tokens[6] != ":" {
                return Err(err(lineno, "expected ':' between ports"));
            }
            let lo: u16 = lo_tok.parse().map_err(|_| err(lineno, "bad port"))?;
            let hi: u16 = hi_tok.parse().map_err(|_| err(lineno, "bad port"))?;
            if lo == hi {
                // Singleton ranges are canonically exact matches.
                fm =
                    fm.with_exact(field, u128::from(lo)).map_err(|e| err(lineno, e.to_string()))?;
            } else if (lo, hi) != (0, 65_535) {
                fm = fm
                    .with_range(field, u128::from(lo), u128::from(hi))
                    .map_err(|e| err(lineno, e.to_string()))?;
            }
        }
        let (proto, mask) = tokens[8].split_once('/').ok_or_else(|| err(lineno, "bad proto"))?;
        let proto = u8::from_str_radix(proto.trim_start_matches("0x"), 16)
            .map_err(|_| err(lineno, "bad proto"))?;
        let mask = u8::from_str_radix(mask.trim_start_matches("0x"), 16)
            .map_err(|_| err(lineno, "bad proto mask"))?;
        if mask == 0xFF {
            fm = fm
                .with_exact(MatchFieldKind::IpProto, u128::from(proto))
                .map_err(|e| err(lineno, e.to_string()))?;
        }
        let action = match tokens.get(9) {
            Some(&"deny") => RuleAction::Deny,
            Some(&"fwd") => RuleAction::Forward(
                tokens
                    .get(10)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "bad fwd port"))?,
            ),
            None => RuleAction::Forward(1),
            Some(other) => return Err(err(lineno, format!("unknown action '{other}'"))),
        };
        // ClassBench order: first rule wins.
        rules.push(Rule::new(0, (total - i) as u16, fm, action));
    }
    Ok(FilterSet::new(name, FilterKind::Acl, rules))
}

/// Writes a ClassBench-like ACL file.
#[must_use]
pub fn write_classbench(set: &FilterSet) -> String {
    let mut out = String::new();
    for r in &set.rules {
        let prefix = |field| match r.field(field) {
            FieldMatch::Prefix { value, len } => (Ipv4Addr::from(value as u32), len),
            FieldMatch::Exact(value) => (Ipv4Addr::from(value as u32), 32),
            _ => (Ipv4Addr::UNSPECIFIED, 0),
        };
        let range = |field| match r.field(field) {
            FieldMatch::Range { lo, hi } => (lo, hi),
            FieldMatch::Exact(v) => (v, v),
            _ => (0, 65_535),
        };
        let (sa, sl) = prefix(MatchFieldKind::Ipv4Src);
        let (da, dl) = prefix(MatchFieldKind::Ipv4Dst);
        let (splo, sphi) = range(MatchFieldKind::TcpSrc);
        let (dplo, dphi) = range(MatchFieldKind::TcpDst);
        let (proto, mask) = match r.field(MatchFieldKind::IpProto) {
            FieldMatch::Exact(p) => (p, 0xFFu8),
            _ => (0, 0),
        };
        let action = match r.action {
            RuleAction::Deny => " deny".to_owned(),
            RuleAction::Forward(p) => format!(" fwd {p}"),
            RuleAction::Controller => String::new(),
        };
        out.push_str(&format!(
            "@{sa}/{sl} {da}/{dl} {splo} : {sphi} {dplo} : {dphi} {proto:#04x}/{mask:#04x}{action}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{
        generate_acl, generate_mac, generate_routing, AclConfig, MacTargets, RoutingTargets,
    };

    #[test]
    fn mac_round_trip() {
        let t = MacTargets {
            name: "rt".into(),
            rules: 100,
            vlan_unique: 10,
            eth_partitions: [5, 30, 80],
            ports: 8,
        };
        let set = generate_mac(&t, 1);
        let text = write_mac_table(&set);
        let parsed = parse_mac_table("rt", &text).unwrap();
        assert_eq!(parsed.rules.len(), set.rules.len());
        for (a, b) in parsed.rules.iter().zip(set.rules.iter()) {
            assert_eq!(a.flow_match, b.flow_match);
            assert_eq!(a.action, b.action);
        }
    }

    #[test]
    fn route_round_trip_preserves_matches() {
        let t = RoutingTargets {
            name: "rt".into(),
            rules: 200,
            port_unique: 8,
            ip_partitions: [20, 120],
            short_prefixes: 3,
            out_ports: 8,
        };
        let set = generate_routing(&t, 2);
        let text = write_route_table(&set);
        let parsed = parse_route_table("rt", &text).unwrap();
        assert_eq!(parsed.rules.len(), set.rules.len());
        for (a, b) in parsed.rules.iter().zip(set.rules.iter()) {
            assert_eq!(a.flow_match, b.flow_match);
        }
    }

    #[test]
    fn classbench_round_trip_preserves_matches() {
        let set = generate_acl(&AclConfig { rules: 150, ..AclConfig::default() }, 3);
        let text = write_classbench(&set);
        let parsed = parse_classbench("acl", &text).unwrap();
        assert_eq!(parsed.rules.len(), set.rules.len());
        for (a, b) in parsed.rules.iter().zip(set.rules.iter()) {
            assert_eq!(a.flow_match, b.flow_match, "{a} vs {b}");
            assert_eq!(a.action, b.action);
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\nvlan 5 mac 00:11:22:33:44:55 port 3\n";
        let set = parse_mac_table("x", text).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.rules[0].action, RuleAction::Forward(3));
    }

    #[test]
    fn bad_lines_report_position() {
        let text = "vlan 5 mac 00:11:22:33:44:55 port 3\nvlan nope mac 00:11:22:33:44:55 port 1\n";
        let e = parse_mac_table("x", text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn route_parses_default() {
        let set = parse_route_table("x", "route 0.0.0.0/0 in 1 out 2\n").unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(
            set.rules[0].field(MatchFieldKind::Ipv4Dst),
            FieldMatch::Prefix { value: 0, len: 0 }
        );
    }

    #[test]
    fn classbench_rejects_missing_at() {
        assert!(parse_classbench("x", "1.2.3.4/32 ...\n").is_err());
    }

    #[test]
    fn classbench_parses_wildcards_as_any() {
        let text = "@0.0.0.0/0 10.0.0.0/8 0 : 65535 80 : 80 0x06/0xff deny\n";
        let set = parse_classbench("x", text).unwrap();
        let r = &set.rules[0];
        assert_eq!(r.field(MatchFieldKind::Ipv4Src), FieldMatch::Any);
        assert_eq!(r.field(MatchFieldKind::TcpSrc), FieldMatch::Any);
        assert_eq!(r.field(MatchFieldKind::TcpDst), FieldMatch::Exact(80));
        assert_eq!(r.field(MatchFieldKind::IpProto), FieldMatch::Exact(6));
        assert_eq!(r.action, RuleAction::Deny);
    }
}
