//! HiCuts-style decision tree (the paper's Table I "Trie-Geometric" row).
//!
//! HiCuts/HyperCuts partition the multi-dimensional match space with
//! equal-width cuts along one dimension per node, descending until at most
//! `binth` rules remain, then scanning them linearly. Its defining cost is
//! **rule replication**: "HyperCuts requires that the same rule be stored
//! in several trie nodes, which leads to inefficient memory use" (paper
//! §III.B) — the effect the label method is designed to avoid. The tree
//! tracks replication explicitly so experiments can compare it against the
//! decomposition architecture's completion-entry overhead.

use crate::{BuildError, Classifier, ClassifierBuilder};
use offilter::{FilterSet, Rule};
use oflow::{FieldMatch, HeaderValues, MatchFieldKind};

/// Build parameters.
#[derive(Debug, Clone, Copy)]
pub struct HiCutsParams {
    /// Maximum rules in a leaf before cutting.
    pub binth: usize,
    /// Cuts per node (power of two).
    pub cuts: usize,
    /// Maximum tree depth (safety bound against unsplittable overlaps).
    pub max_depth: usize,
}

impl Default for HiCutsParams {
    fn default() -> Self {
        Self { binth: 8, cuts: 4, max_depth: 24 }
    }
}

/// A node's cut region in one dimension.
#[derive(Debug, Clone, Copy)]
struct Region {
    lo: u128,
    hi: u128,
}

#[derive(Debug)]
enum Node {
    Internal {
        field: MatchFieldKind,
        /// Region covered in the cut dimension.
        region: Region,
        children: Vec<Node>,
    },
    /// Rule *positions* (indices into `HiCutsTree::rules`, not rule ids).
    Leaf(Vec<u32>),
}

/// Rule projection onto a field as a range.
fn rule_range(rule: &Rule, field: MatchFieldKind) -> Region {
    let width = field.bit_width();
    let full = field.value_mask();
    match rule.flow_match.field(field) {
        FieldMatch::Any => Region { lo: 0, hi: full },
        FieldMatch::Exact(v) => Region { lo: v, hi: v },
        FieldMatch::Prefix { value, len } => {
            let mask = oflow::flow_match::prefix_mask(width, len);
            Region { lo: value & mask, hi: (value & mask) | (full & !mask) }
        }
        FieldMatch::Range { lo, hi } => Region { lo, hi },
    }
}

fn overlaps(a: Region, b: Region) -> bool {
    a.lo <= b.hi && b.lo <= a.hi
}

/// A HiCuts-style classifier.
#[derive(Debug)]
pub struct HiCutsTree {
    rules: Vec<Rule>,
    root: Node,
    fields: Vec<MatchFieldKind>,
    stored_rule_refs: usize,
    nodes: usize,
    max_depth_seen: usize,
}

impl HiCutsTree {
    /// Builds the tree.
    #[must_use]
    pub fn new(rules: Vec<Rule>, params: HiCutsParams) -> Self {
        let mut fields: Vec<MatchFieldKind> = Vec::new();
        for r in &rules {
            for (f, m) in r.flow_match.parts() {
                if !m.is_wildcard() && !fields.contains(f) {
                    fields.push(*f);
                }
            }
        }
        fields.sort();
        // The tree stores rule positions, so arbitrary (non-dense) rule
        // ids are fine; ids only reappear at classify time.
        let ids: Vec<u32> = (0..rules.len() as u32).collect();
        let mut stored_rule_refs = 0;
        let mut nodes = 0;
        let mut max_depth_seen = 0;
        let regions: Vec<Region> =
            fields.iter().map(|&f| Region { lo: 0, hi: f.value_mask() }).collect();
        let root = build(
            &rules,
            &ids,
            &fields,
            &regions,
            &params,
            0,
            &mut stored_rule_refs,
            &mut nodes,
            &mut max_depth_seen,
        );
        Self { rules, root, fields, stored_rule_refs, nodes, max_depth_seen }
    }

    /// Total rule references stored in leaves (≥ rule count; the excess is
    /// replication).
    #[must_use]
    pub fn stored_rule_refs(&self) -> usize {
        self.stored_rule_refs
    }

    /// Replication factor (stored refs / rules).
    #[must_use]
    pub fn replication_factor(&self) -> f64 {
        if self.rules.is_empty() {
            1.0
        } else {
            self.stored_rule_refs as f64 / self.rules.len() as f64
        }
    }

    /// Tree nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Deepest leaf.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.max_depth_seen
    }

    /// The dimensions the tree cuts on.
    #[must_use]
    pub fn fields(&self) -> &[MatchFieldKind] {
        &self.fields
    }
}

#[allow(clippy::too_many_arguments)]
fn build(
    rules: &[Rule],
    ids: &[u32],
    fields: &[MatchFieldKind],
    regions: &[Region],
    params: &HiCutsParams,
    depth: usize,
    stored: &mut usize,
    nodes: &mut usize,
    max_depth: &mut usize,
) -> Node {
    *nodes += 1;
    *max_depth = (*max_depth).max(depth);
    if ids.len() <= params.binth || depth >= params.max_depth || fields.is_empty() {
        *stored += ids.len();
        return Node::Leaf(ids.to_vec());
    }

    // Pick the dimension whose cut spreads rules best (fewest max-child
    // rules), the classic HiCuts heuristic.
    let mut best: Option<(usize, Vec<Vec<u32>>, usize)> = None;
    for (fi, &field) in fields.iter().enumerate() {
        let region = regions[fi];
        let span = region.hi - region.lo + 1;
        if span < params.cuts as u128 {
            continue;
        }
        let slice = span / params.cuts as u128;
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); params.cuts];
        for &id in ids {
            let rr = rule_range(&rules[id as usize], field);
            for (ci, bucket) in buckets.iter_mut().enumerate() {
                let c_lo = region.lo + slice * ci as u128;
                let c_hi = if ci + 1 == params.cuts { region.hi } else { c_lo + slice - 1 };
                if overlaps(rr, Region { lo: c_lo, hi: c_hi }) {
                    bucket.push(id);
                }
            }
        }
        let worst = buckets.iter().map(Vec::len).max().unwrap_or(0);
        if best.as_ref().is_none_or(|(_, _, w)| worst < *w) {
            best = Some((fi, buckets, worst));
        }
    }

    let Some((fi, buckets, worst)) = best else {
        *stored += ids.len();
        return Node::Leaf(ids.to_vec());
    };
    // Cutting must make progress; otherwise leaf out.
    if worst == ids.len() {
        *stored += ids.len();
        return Node::Leaf(ids.to_vec());
    }

    let field = fields[fi];
    let region = regions[fi];
    let span = region.hi - region.lo + 1;
    let slice = span / params.cuts as u128;
    let children = buckets
        .into_iter()
        .enumerate()
        .map(|(ci, bucket)| {
            let c_lo = region.lo + slice * ci as u128;
            let c_hi = if ci + 1 == params.cuts { region.hi } else { c_lo + slice - 1 };
            let mut child_regions = regions.to_vec();
            child_regions[fi] = Region { lo: c_lo, hi: c_hi };
            build(
                rules,
                &bucket,
                fields,
                &child_regions,
                params,
                depth + 1,
                stored,
                nodes,
                max_depth,
            )
        })
        .collect();
    Node::Internal { field, region, children }
}

impl ClassifierBuilder for HiCutsTree {
    fn try_build(set: &FilterSet) -> Result<Self, BuildError> {
        Ok(Self::new(set.rules.clone(), HiCutsParams::default()))
    }
}

impl Classifier for HiCutsTree {
    fn name(&self) -> &str {
        "hicuts"
    }

    fn classify(&self, header: &HeaderValues) -> Option<u32> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(positions) => {
                    return positions
                        .iter()
                        .map(|&pos| &self.rules[pos as usize])
                        .filter(|r| r.flow_match.matches(header))
                        .max_by_key(|r| (r.priority, r.flow_match.specificity()))
                        .map(|r| r.id);
                }
                Node::Internal { field, region, children } => {
                    let v = header.get(*field).unwrap_or(0);
                    let span = region.hi - region.lo + 1;
                    let slice = span / children.len() as u128;
                    let ci = if v < region.lo {
                        0
                    } else {
                        (((v - region.lo) / slice) as usize).min(children.len() - 1)
                    };
                    node = &children[ci];
                }
            }
        }
    }

    fn memory_bits(&self) -> u64 {
        // Node header (field selector + child pointer + cut geometry) per
        // node plus one rule pointer per stored ref.
        let node_bits = 48u64;
        let ref_bits = 20u64;
        self.nodes as u64 * node_bits + self.stored_rule_refs as u64 * ref_bits
    }

    fn build_records(&self) -> usize {
        // Every tree node plus every (replicated) leaf rule reference.
        self.nodes + self.stored_rule_refs
    }

    fn lookup_accesses(&self, header: &HeaderValues) -> usize {
        // Nodes visited + leaf rules scanned.
        let mut node = &self.root;
        let mut accesses = 0;
        loop {
            accesses += 1;
            match node {
                Node::Leaf(positions) => return accesses + positions.len(),
                Node::Internal { field, region, children } => {
                    let v = header.get(*field).unwrap_or(0);
                    let span = region.hi - region.lo + 1;
                    let slice = span / children.len() as u128;
                    let ci = if v < region.lo {
                        0
                    } else {
                        (((v - region.lo) / slice) as usize).min(children.len() - 1)
                    };
                    node = &children[ci];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference_classify;
    use offilter::synth::{generate_acl, generate_routing, AclConfig, RoutingTargets};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn acl_rules(n: usize, seed: u64) -> Vec<Rule> {
        generate_acl(&AclConfig { rules: n, ..AclConfig::default() }, seed).rules
    }

    #[test]
    fn agrees_with_reference_on_acl() {
        let rules = acl_rules(300, 41);
        let tree = HiCutsTree::new(rules.clone(), HiCutsParams::default());
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..500 {
            let h = HeaderValues::new()
                .with(MatchFieldKind::Ipv4Src, u128::from(rng.gen::<u32>()))
                .with(MatchFieldKind::Ipv4Dst, u128::from(rng.gen::<u32>()))
                .with(MatchFieldKind::IpProto, 6)
                .with(MatchFieldKind::TcpDst, u128::from(rng.gen::<u16>()))
                .with(MatchFieldKind::TcpSrc, u128::from(rng.gen::<u16>()));
            assert_eq!(tree.classify(&h), reference_classify(&rules, &h), "header {h}");
        }
    }

    #[test]
    fn agrees_with_reference_on_routing() {
        let rules = generate_routing(
            &RoutingTargets {
                name: "t".into(),
                rules: 300,
                port_unique: 8,
                ip_partitions: [25, 180],
                short_prefixes: 3,
                out_ports: 8,
            },
            42,
        )
        .rules;
        let tree = HiCutsTree::new(rules.clone(), HiCutsParams::default());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let h = HeaderValues::new()
                .with(MatchFieldKind::InPort, u128::from(rng.gen_range(0..40u32)))
                .with(MatchFieldKind::Ipv4Dst, u128::from(rng.gen::<u32>()));
            assert_eq!(tree.classify(&h), reference_classify(&rules, &h), "header {h}");
        }
    }

    #[test]
    fn replication_factor_at_least_one() {
        let rules = acl_rules(200, 43);
        let tree = HiCutsTree::new(rules, HiCutsParams::default());
        assert!(tree.replication_factor() >= 1.0);
        assert!(tree.stored_rule_refs() >= 200);
        assert!(tree.nodes() >= 1);
    }

    #[test]
    fn wildcard_heavy_rules_replicate() {
        // Rules with wildcards in the cut dimension land in many children.
        let rules = acl_rules(400, 44);
        let tree = HiCutsTree::new(rules, HiCutsParams { binth: 4, cuts: 8, max_depth: 20 });
        assert!(
            tree.replication_factor() > 1.1,
            "expected visible replication, got {}",
            tree.replication_factor()
        );
    }

    #[test]
    fn deeper_cuts_shrink_leaves() {
        let rules = acl_rules(300, 45);
        let shallow =
            HiCutsTree::new(rules.clone(), HiCutsParams { binth: 64, cuts: 4, max_depth: 20 });
        let deep = HiCutsTree::new(rules, HiCutsParams { binth: 4, cuts: 4, max_depth: 24 });
        assert!(deep.depth() >= shallow.depth());
        assert!(deep.nodes() >= shallow.nodes());
    }

    #[test]
    fn empty_rules() {
        let tree = HiCutsTree::new(vec![], HiCutsParams::default());
        assert_eq!(tree.classify(&HeaderValues::new()), None);
        assert_eq!(tree.nodes(), 1);
    }
}
