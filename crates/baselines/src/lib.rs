//! # ofbaseline — baseline classifiers and cost models
//!
//! One representative implementation per category of the paper's Table I,
//! so the qualitative comparison can be made quantitative on the same
//! filter sets:
//!
//! | Table I category | Here |
//! |---|---|
//! | Hardware-based (TCAM) | [`tcam::TcamModel`] — ternary conversion with range expansion, all-row-search cost model |
//! | Trie-Geometric | [`hicuts::HiCutsTree`] — HiCuts-style decision tree with rule replication |
//! | Hashing-based | [`tss::TupleSpaceSearch`] — tuple space search over mask signatures |
//! | (reference) | [`linear::LinearClassifier`] — priority-ordered linear scan |
//!
//! All implement the shared [`classifier_api::Classifier`] trait —
//! reporting matched rule ids, memory bits and a per-lookup work metric —
//! and build fallibly through [`classifier_api::ClassifierBuilder`], so
//! `mtl-bench` can tabulate them side by side with the decomposition
//! architecture through one `Box<dyn Classifier>` registry.
//! [`tss::TupleSpaceSearch`] additionally implements
//! [`classifier_api::DynamicClassifier`] (in-tuple incremental inserts).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hicuts;
pub mod linear;
pub mod tcam;
pub mod tss;

pub use classifier_api::{
    reference_classify, BuildError, Classifier, ClassifierBuilder, ClassifierRegistry,
    DynamicClassifier, RegistryEntry, UpdateReport,
};
