//! # ofbaseline — baseline classifiers and cost models
//!
//! One representative implementation per category of the paper's Table I,
//! so the qualitative comparison can be made quantitative on the same
//! filter sets:
//!
//! | Table I category | Here |
//! |---|---|
//! | Hardware-based (TCAM) | [`tcam::TcamModel`] — ternary conversion with range expansion, all-row-search cost model |
//! | Trie-Geometric | [`hicuts::HiCutsTree`] — HiCuts-style decision tree with rule replication |
//! | Hashing-based | [`tss::TupleSpaceSearch`] — tuple space search over mask signatures |
//! | (reference) | [`linear::LinearClassifier`] — priority-ordered linear scan |
//!
//! All implement [`Classifier`], reporting matched rule ids, memory bits
//! and a per-lookup work metric, so `mtl-bench` can tabulate them side by
//! side with the decomposition architecture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hicuts;
pub mod linear;
pub mod tcam;
pub mod tss;

use offilter::Rule;
use oflow::HeaderValues;

/// A rule-set classifier that can be compared across categories.
pub trait Classifier {
    /// Short display name.
    fn name(&self) -> &'static str;

    /// The id of the highest-priority matching rule, if any.
    fn classify(&self, header: &HeaderValues) -> Option<u32>;

    /// Modeled memory footprint in bits.
    fn memory_bits(&self) -> u64;

    /// Work performed by the last-issued `classify` expressed as memory
    /// accesses (the lookup-speed proxy Table I ranks by). Implementations
    /// return the *expected/structural* cost, not a timed measurement.
    fn lookup_accesses(&self, header: &HeaderValues) -> usize;
}

/// Reference decision for a rule set: highest priority, then specificity.
#[must_use]
pub fn reference_classify(rules: &[Rule], header: &HeaderValues) -> Option<u32> {
    rules
        .iter()
        .filter(|r| r.flow_match.matches(header))
        .max_by_key(|r| (r.priority, r.flow_match.specificity()))
        .map(|r| r.id)
}
