//! Tuple Space Search (the paper's Table I "Hashing-based" row).
//!
//! TSS [12] groups rules by their *mask tuple* (per-field prefix length /
//! constraint shape); within a tuple every rule is an exact match on the
//! masked key, so a hash table serves it. A lookup probes every tuple and
//! keeps the best hit — fast when tuples are few, degrading as mask
//! diversity grows (the "collision issue / memory explosion" of Table I).
//!
//! Range fields are handled as in Open vSwitch: each distinct range is a
//! tuple dimension value of its own (staged lookup keeps exactness).

use crate::{BuildError, Classifier, ClassifierBuilder, DynamicClassifier, UpdateReport};
use offilter::{FilterSet, Rule};
use oflow::{FieldMatch, HeaderValues, MatchFieldKind};
use std::collections::HashMap;

/// The mask signature of a rule: per field, how it constrains.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Dim {
    /// Prefix of a given length (exact = full width).
    Prefix(u32),
    /// A specific range (ranges hash by identity).
    Range(u64, u64),
    /// Unconstrained.
    Any,
}

type Signature = Vec<(MatchFieldKind, Dim)>;

/// One tuple: rules sharing a signature, hashed by masked key.
#[derive(Debug, Clone)]
struct Tuple {
    signature: Signature,
    /// masked key -> (priority, specificity, rule id)
    table: HashMap<Vec<u128>, (u16, u32, u32)>,
}

impl Tuple {
    fn key_of(&self, header: &HeaderValues) -> Option<Vec<u128>> {
        self.signature
            .iter()
            .map(|(field, dim)| {
                let v = header.get(*field);
                match dim {
                    Dim::Any => Some(0),
                    Dim::Prefix(len) => {
                        v.map(|v| v & oflow::flow_match::prefix_mask(field.bit_width(), *len))
                    }
                    Dim::Range(lo, hi) => match v {
                        Some(v) if u64::try_from(v).is_ok_and(|v| *lo <= v && v <= *hi) => Some(0),
                        _ => None,
                    },
                }
            })
            .collect()
    }
}

/// A tuple-space-search classifier.
#[derive(Debug, Clone)]
pub struct TupleSpaceSearch {
    tuples: Vec<Tuple>,
    fields: Vec<MatchFieldKind>,
    /// The stored rules (needed for incremental removal, which rebuilds
    /// the tuple space from the survivors, and for field-set extensions).
    rules: Vec<Rule>,
    /// Rule-set generation, bumped by every incremental update so
    /// epoch-stamped caches fronting this engine invalidate in O(1)
    /// (the [`Classifier::generation`] hook).
    generation: u64,
}

/// The signature and masked key of a rule over a fixed field list.
fn signature_of(rule: &Rule, fields: &[MatchFieldKind]) -> (Signature, Vec<u128>) {
    let mut signature: Signature = Vec::with_capacity(fields.len());
    let mut key: Vec<u128> = Vec::with_capacity(fields.len());
    for &field in fields {
        let width = field.bit_width();
        match rule.flow_match.field(field) {
            FieldMatch::Any => {
                signature.push((field, Dim::Any));
                key.push(0);
            }
            FieldMatch::Exact(v) => {
                signature.push((field, Dim::Prefix(width)));
                key.push(v);
            }
            FieldMatch::Prefix { value, len } => {
                signature.push((field, Dim::Prefix(len)));
                key.push(value);
            }
            FieldMatch::Range { lo, hi } => {
                signature.push((field, Dim::Range(lo as u64, hi as u64)));
                key.push(0);
            }
        }
    }
    (signature, key)
}

/// Merges one rule into a tuple's hash table (best priority wins a key).
fn merge_entry(tuple: &mut Tuple, key: Vec<u128>, rule: &Rule) {
    let candidate = (rule.priority, rule.flow_match.specificity(), rule.id);
    tuple
        .table
        .entry(key)
        .and_modify(|slot| {
            if (slot.0, slot.1) < (candidate.0, candidate.1) {
                *slot = candidate;
            }
        })
        .or_insert(candidate);
}

impl TupleSpaceSearch {
    /// Builds the tuple space from rules.
    #[must_use]
    pub fn new(rules: &[Rule]) -> Self {
        Self::from_rules(rules.to_vec())
    }

    /// Builds the tuple space, taking ownership of the rules (the rebuild
    /// paths use this to avoid re-cloning a rule set they already own).
    fn from_rules(rules: Vec<Rule>) -> Self {
        let mut fields: Vec<MatchFieldKind> = Vec::new();
        for r in &rules {
            for (f, m) in r.flow_match.parts() {
                if !m.is_wildcard() && !fields.contains(f) {
                    fields.push(*f);
                }
            }
        }
        fields.sort();

        let mut by_sig: HashMap<Signature, Tuple> = HashMap::new();
        for r in &rules {
            let (signature, key) = signature_of(r, &fields);
            let tuple = by_sig
                .entry(signature.clone())
                .or_insert_with(|| Tuple { signature, table: HashMap::new() });
            merge_entry(tuple, key, r);
        }
        Self { tuples: by_sig.into_values().collect(), fields, rules, generation: 0 }
    }

    /// Number of tuples (hash tables probed per lookup).
    #[must_use]
    pub fn num_tuples(&self) -> usize {
        self.tuples.len()
    }

    /// The fields the tuple space covers.
    #[must_use]
    pub fn fields(&self) -> &[MatchFieldKind] {
        &self.fields
    }
}

impl ClassifierBuilder for TupleSpaceSearch {
    fn try_build(set: &FilterSet) -> Result<Self, BuildError> {
        Ok(Self::new(&set.rules))
    }
}

impl DynamicClassifier for TupleSpaceSearch {
    /// Inserts in place when the rule only constrains fields the tuple
    /// space already covers — one hash-table write into the (possibly
    /// fresh) tuple of its mask signature, the TSS fast path. A rule
    /// constraining a *new* field changes every signature, so the space
    /// is rebuilt.
    fn insert_rule(&mut self, rule: Rule) -> Result<UpdateReport, BuildError> {
        let extends_fields = rule
            .flow_match
            .parts()
            .iter()
            .any(|(f, m)| !m.is_wildcard() && !self.fields.contains(f));
        if extends_fields {
            let generation = self.generation;
            let mut rules = std::mem::take(&mut self.rules);
            rules.push(rule);
            let records = rules.len();
            *self = Self::from_rules(rules);
            self.generation = generation + 1;
            return Ok(UpdateReport { records, rebuilt: true });
        }
        let (signature, key) = signature_of(&rule, &self.fields);
        let tuple = match self.tuples.iter_mut().find(|t| t.signature == signature) {
            Some(t) => t,
            None => {
                self.tuples.push(Tuple { signature, table: HashMap::new() });
                self.tuples.last_mut().expect("just pushed")
            }
        };
        merge_entry(tuple, key, &rule);
        self.rules.push(rule);
        self.generation += 1;
        Ok(UpdateReport { records: 1, rebuilt: false })
    }

    /// Removes by rebuilding from the surviving rules (several rules can
    /// collapse onto one masked key, so in-place deletion would need
    /// per-key shadow lists).
    fn remove_rule(&mut self, rule_id: u32) -> Option<UpdateReport> {
        if !self.rules.iter().any(|r| r.id == rule_id) {
            return None;
        }
        let generation = self.generation;
        let mut survivors = std::mem::take(&mut self.rules);
        survivors.retain(|r| r.id != rule_id);
        let records = survivors.len();
        *self = Self::from_rules(survivors);
        self.generation = generation + 1;
        Some(UpdateReport { records, rebuilt: true })
    }
}

impl Classifier for TupleSpaceSearch {
    fn name(&self) -> &str {
        "tss"
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn classify(&self, header: &HeaderValues) -> Option<u32> {
        let mut best: Option<(u16, u32, u32)> = None;
        for t in &self.tuples {
            let Some(key) = t.key_of(header) else { continue };
            if let Some(&hit) = t.table.get(&key) {
                if best.is_none_or(|b| (b.0, b.1) < (hit.0, hit.1)) {
                    best = Some(hit);
                }
            }
        }
        best.map(|(_, _, id)| id)
    }

    fn memory_bits(&self) -> u64 {
        // Per tuple: a hash table at 50% load of masked keys + payload.
        self.tuples
            .iter()
            .map(|t| {
                let key_bits: u64 = t.signature.iter().map(|(f, _)| u64::from(f.bit_width())).sum();
                let capacity = (2 * t.table.len().max(1)).next_power_of_two() as u64;
                capacity * (1 + key_bits + 16 + 32)
            })
            .sum()
    }

    fn lookup_accesses(&self, _header: &HeaderValues) -> usize {
        // One hash probe per tuple.
        self.tuples.len()
    }

    fn build_records(&self) -> usize {
        // One hash-table write per rule.
        self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference_classify;
    use offilter::synth::{generate_acl, generate_routing, AclConfig, RoutingTargets};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn agrees_with_reference_on_acl() {
        let rules = generate_acl(&AclConfig { rules: 300, ..AclConfig::default() }, 31).rules;
        let tss = TupleSpaceSearch::new(&rules);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..500 {
            let h = HeaderValues::new()
                .with(MatchFieldKind::Ipv4Src, u128::from(rng.gen::<u32>()))
                .with(MatchFieldKind::Ipv4Dst, u128::from(rng.gen::<u32>()))
                .with(MatchFieldKind::IpProto, 6)
                .with(MatchFieldKind::TcpDst, u128::from(rng.gen::<u16>()))
                .with(MatchFieldKind::TcpSrc, u128::from(rng.gen::<u16>()));
            assert_eq!(tss.classify(&h), reference_classify(&rules, &h), "header {h}");
        }
    }

    #[test]
    fn agrees_with_reference_on_routing() {
        let rules = generate_routing(
            &RoutingTargets {
                name: "t".into(),
                rules: 400,
                port_unique: 8,
                ip_partitions: [30, 250],
                short_prefixes: 3,
                out_ports: 8,
            },
            32,
        )
        .rules;
        let tss = TupleSpaceSearch::new(&rules);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let h = HeaderValues::new()
                .with(MatchFieldKind::InPort, u128::from(rng.gen_range(0..40u32)))
                .with(MatchFieldKind::Ipv4Dst, u128::from(rng.gen::<u32>()));
            assert_eq!(tss.classify(&h), reference_classify(&rules, &h), "header {h}");
        }
    }

    #[test]
    fn tuple_count_tracks_mask_diversity() {
        // Routing: one tuple per distinct prefix length (plus port dim).
        let rules = generate_routing(
            &RoutingTargets {
                name: "t".into(),
                rules: 300,
                port_unique: 5,
                ip_partitions: [20, 180],
                short_prefixes: 2,
                out_ports: 4,
            },
            33,
        )
        .rules;
        let tss = TupleSpaceSearch::new(&rules);
        assert!(tss.num_tuples() >= 2);
        assert!(tss.num_tuples() <= 33, "one per prefix length at most: {}", tss.num_tuples());
        // Probes per lookup = tuples.
        assert_eq!(tss.lookup_accesses(&HeaderValues::new()), tss.num_tuples());
    }

    #[test]
    fn empty_rules() {
        let tss = TupleSpaceSearch::new(&[]);
        assert_eq!(tss.classify(&HeaderValues::new()), None);
        assert_eq!(tss.num_tuples(), 0);
    }

    #[test]
    fn dynamic_updates_track_fresh_build() {
        let rules = generate_acl(&AclConfig { rules: 120, ..AclConfig::default() }, 35).rules;
        let (seed_rules, added_rules) = rules.split_at(80);
        let mut tss = TupleSpaceSearch::new(seed_rules);
        // Same field universe: every insert takes the in-place fast path.
        for r in added_rules {
            let report = tss.insert_rule(r.clone()).expect("insert works");
            assert!(!report.rebuilt, "rule {} forced a rebuild", r.id);
            assert_eq!(report.records, 1);
        }
        let fresh = TupleSpaceSearch::new(&rules);
        let mut rng = StdRng::seed_from_u64(36);
        for _ in 0..300 {
            let h = HeaderValues::new()
                .with(MatchFieldKind::Ipv4Src, u128::from(rng.gen::<u32>()))
                .with(MatchFieldKind::Ipv4Dst, u128::from(rng.gen::<u32>()))
                .with(MatchFieldKind::IpProto, 6)
                .with(MatchFieldKind::TcpDst, u128::from(rng.gen::<u16>()))
                .with(MatchFieldKind::TcpSrc, u128::from(rng.gen::<u16>()));
            assert_eq!(tss.classify(&h), fresh.classify(&h), "header {h}");
        }
        // A rule over a brand-new field rebuilds the space.
        let widener = Rule::new(
            9_000,
            u16::MAX,
            oflow::FlowMatch::any().with_exact(MatchFieldKind::VlanVid, 7).unwrap(),
            offilter::RuleAction::Deny,
        );
        let report = tss.insert_rule(widener).expect("insert works");
        assert!(report.rebuilt);
        let h = HeaderValues::new().with(MatchFieldKind::VlanVid, 7);
        assert_eq!(tss.classify(&h), Some(9_000));
        // Removal rebuilds from survivors: the widener no longer matches,
        // only whatever catch-all the ACL set itself contains.
        let report = tss.remove_rule(9_000).expect("rule exists");
        assert!(report.rebuilt);
        assert_eq!(tss.classify(&h), reference_classify(&rules, &h));
        assert_ne!(tss.classify(&h), Some(9_000));
        assert!(tss.remove_rule(9_000).is_none());
    }
}
