//! TCAM cost model (the paper's Table I "Hardware-based" row).
//!
//! A TCAM stores one *ternary* word per entry (each bit 0/1/don't-care)
//! and searches all rows in parallel. The model captures the two costs the
//! paper holds against TCAMs:
//!
//! * **storage expansion** — ranges have no ternary form, so each range is
//!   split into covering prefixes (worst case `2w - 2` per range), and the
//!   ternary word doubles the stored bits (value + care mask);
//! * **power** — every lookup activates all rows; we report
//!   searched-bits-per-lookup as the power proxy.
//!
//! Functionally the model matches lowest-index-wins TCAM semantics, with
//! entries ordered by rule priority.

use crate::{BuildError, Classifier, ClassifierBuilder};
use offilter::{FilterSet, Rule};
use oflow::{FieldMatch, HeaderValues, MatchFieldKind};

/// One ternary entry: per-field value and care mask.
#[derive(Debug, Clone)]
struct TernaryEntry {
    fields: Vec<(MatchFieldKind, u128, u128)>, // (field, value, care mask)
    rule_id: u32,
}

impl TernaryEntry {
    fn matches(&self, header: &HeaderValues) -> bool {
        self.fields.iter().all(|&(field, value, care)| {
            if care == 0 {
                return true;
            }
            match header.get(field) {
                Some(v) => v & care == value & care,
                None => false,
            }
        })
    }
}

/// Splits an inclusive range into covering (value, prefix-care) pairs —
/// the classic range-to-prefix expansion.
#[must_use]
pub fn range_to_prefixes(lo: u64, hi: u64, width: u32) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let full = if width == 64 { u64::MAX } else { (1 << width) - 1 };
    let mut lo = lo;
    loop {
        // Largest aligned block starting at lo that stays within hi.
        let max_align = if lo == 0 { width } else { lo.trailing_zeros().min(width) };
        let mut size = 1u64 << max_align;
        while size > 1 && (lo + size - 1) > hi {
            size >>= 1;
        }
        let care = full & !(size - 1);
        out.push((lo, care));
        let end = lo + size - 1;
        if end >= hi {
            break;
        }
        lo = end + 1;
    }
    out
}

/// A modeled TCAM.
#[derive(Debug, Clone)]
pub struct TcamModel {
    entries: Vec<TernaryEntry>,
    word_bits: u32,
    original_rules: usize,
}

impl TcamModel {
    /// Builds the TCAM from rules. The word covers every field any rule
    /// constrains; ranges expand into prefixes (entry replication).
    #[must_use]
    pub fn new(rules: &[Rule]) -> Self {
        // Word layout: union of constrained fields.
        let mut word_fields: Vec<MatchFieldKind> = Vec::new();
        for r in rules {
            for (f, m) in r.flow_match.parts() {
                if !m.is_wildcard() && !word_fields.contains(f) {
                    word_fields.push(*f);
                }
            }
        }
        word_fields.sort();
        let word_bits: u32 = word_fields.iter().map(|f| f.bit_width()).sum();

        let mut ordered: Vec<&Rule> = rules.iter().collect();
        ordered.sort_by_key(|r| std::cmp::Reverse((r.priority, r.flow_match.specificity())));

        let mut entries = Vec::new();
        for r in &ordered {
            // Cartesian expansion over range fields.
            let mut partial: Vec<Vec<(MatchFieldKind, u128, u128)>> = vec![Vec::new()];
            for &field in &word_fields {
                let width = field.bit_width();
                let full = field.value_mask();
                match r.flow_match.field(field) {
                    FieldMatch::Any => {
                        for p in &mut partial {
                            p.push((field, 0, 0));
                        }
                    }
                    FieldMatch::Exact(v) => {
                        for p in &mut partial {
                            p.push((field, v, full));
                        }
                    }
                    FieldMatch::Prefix { value, len } => {
                        let care = oflow::flow_match::prefix_mask(width, len);
                        for p in &mut partial {
                            p.push((field, value, care));
                        }
                    }
                    FieldMatch::Range { lo, hi } => {
                        let expansions = range_to_prefixes(lo as u64, hi as u64, width);
                        let mut next = Vec::with_capacity(partial.len() * expansions.len());
                        for p in &partial {
                            for &(v, care) in &expansions {
                                let mut q = p.clone();
                                q.push((field, u128::from(v), u128::from(care)));
                                next.push(q);
                            }
                        }
                        partial = next;
                    }
                }
            }
            for fields in partial {
                entries.push(TernaryEntry { fields, rule_id: r.id });
            }
        }
        Self { entries, word_bits, original_rules: rules.len() }
    }

    /// Physical TCAM entries after range expansion.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// Expansion factor over the original rule count.
    #[must_use]
    pub fn expansion_factor(&self) -> f64 {
        if self.original_rules == 0 {
            1.0
        } else {
            self.entries.len() as f64 / self.original_rules as f64
        }
    }

    /// Ternary word width in bits (values only; masks double it in
    /// storage).
    #[must_use]
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Bits activated per lookup — the power proxy (all rows searched).
    #[must_use]
    pub fn searched_bits_per_lookup(&self) -> u64 {
        self.entries.len() as u64 * u64::from(self.word_bits)
    }
}

impl ClassifierBuilder for TcamModel {
    fn try_build(set: &FilterSet) -> Result<Self, BuildError> {
        Ok(Self::new(&set.rules))
    }
}

impl Classifier for TcamModel {
    fn name(&self) -> &str {
        "tcam"
    }

    fn classify(&self, header: &HeaderValues) -> Option<u32> {
        // Lowest index wins (entries are in priority order).
        self.entries.iter().find(|e| e.matches(header)).map(|e| e.rule_id)
    }

    fn memory_bits(&self) -> u64 {
        // Value + care mask per entry.
        2 * self.entries.len() as u64 * u64::from(self.word_bits)
    }

    fn lookup_accesses(&self, _header: &HeaderValues) -> usize {
        // Parallel search: a single access cycle regardless of size...
        1
    }

    fn build_records(&self) -> usize {
        // One ternary row per entry, range expansion included.
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference_classify;
    use offilter::synth::{generate_acl, AclConfig};
    use offilter::RuleAction;
    use oflow::FlowMatch;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn range_to_prefix_examples() {
        // [0, 65535] over 16 bits is a single don't-care word.
        assert_eq!(range_to_prefixes(0, 65_535, 16), vec![(0, 0xFFFF & !0xFFFF)]);
        // [1024, 2047] is one aligned block.
        assert_eq!(range_to_prefixes(1024, 2047, 16).len(), 1);
        // The classic worst case [1, 65534] needs 2w - 2 = 30 prefixes.
        assert_eq!(range_to_prefixes(1, 65_534, 16).len(), 30);
        // A singleton is exact.
        assert_eq!(range_to_prefixes(80, 80, 16), vec![(80, 0xFFFF)]);
    }

    #[test]
    fn covering_is_exact() {
        // Every expansion covers exactly the range.
        for (lo, hi) in [(1u64, 10u64), (100, 227), (0, 1), (5, 5), (1, 65_534)] {
            let prefixes = range_to_prefixes(lo, hi, 16);
            for v in 0..=65_535u64 {
                let covered = prefixes.iter().any(|&(p, care)| v & care == p & care);
                assert_eq!(covered, (lo..=hi).contains(&v), "v={v} range=[{lo},{hi}]");
            }
        }
    }

    #[test]
    fn agrees_with_reference_on_acl() {
        let rules = generate_acl(&AclConfig { rules: 200, ..AclConfig::default() }, 21).rules;
        let tcam = TcamModel::new(&rules);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let h = HeaderValues::new()
                .with(MatchFieldKind::Ipv4Src, u128::from(rng.gen::<u32>()))
                .with(MatchFieldKind::Ipv4Dst, u128::from(rng.gen::<u32>()))
                .with(MatchFieldKind::IpProto, 6)
                .with(MatchFieldKind::TcpDst, u128::from(rng.gen::<u16>()))
                .with(MatchFieldKind::TcpSrc, u128::from(rng.gen::<u16>()));
            assert_eq!(tcam.classify(&h), reference_classify(&rules, &h), "header {h}");
        }
    }

    #[test]
    fn range_rules_expand_entries() {
        let rule = Rule::new(
            0,
            1,
            FlowMatch::any().with_range(MatchFieldKind::TcpDst, 1, 65_534).unwrap(),
            RuleAction::Deny,
        );
        let tcam = TcamModel::new(&[rule]);
        assert_eq!(tcam.entries(), 30);
        assert!((tcam.expansion_factor() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn power_proxy_scales_with_entries() {
        let rules = generate_acl(&AclConfig { rules: 100, ..AclConfig::default() }, 5).rules;
        let tcam = TcamModel::new(&rules);
        assert_eq!(
            tcam.searched_bits_per_lookup(),
            tcam.entries() as u64 * u64::from(tcam.word_bits())
        );
        assert_eq!(tcam.memory_bits(), 2 * tcam.searched_bits_per_lookup());
    }

    #[test]
    fn empty_rules() {
        let tcam = TcamModel::new(&[]);
        assert_eq!(tcam.entries(), 0);
        assert_eq!(tcam.classify(&HeaderValues::new()), None);
    }
}
