//! Priority-ordered linear search — the semantic reference.
//!
//! Every other classifier is validated against this one. Its memory model
//! stores each rule's full match data (value + mask per constrained
//! field), i.e. the storage a naive software table would need.

use crate::{BuildError, Classifier, ClassifierBuilder};
use offilter::{FilterSet, Rule};
use oflow::{FieldMatch, HeaderValues};

/// A linear-scan classifier over rules sorted by priority.
#[derive(Debug, Clone)]
pub struct LinearClassifier {
    rules: Vec<Rule>,
}

impl LinearClassifier {
    /// Builds from rules (sorted internally by descending priority, then
    /// specificity).
    #[must_use]
    pub fn new(mut rules: Vec<Rule>) -> Self {
        rules.sort_by_key(|r| std::cmp::Reverse((r.priority, r.flow_match.specificity())));
        Self { rules }
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl ClassifierBuilder for LinearClassifier {
    fn try_build(set: &FilterSet) -> Result<Self, BuildError> {
        Ok(Self::new(set.rules.clone()))
    }
}

impl Classifier for LinearClassifier {
    fn name(&self) -> &str {
        "linear"
    }

    fn classify(&self, header: &HeaderValues) -> Option<u32> {
        self.rules.iter().find(|r| r.flow_match.matches(header)).map(|r| r.id)
    }

    fn memory_bits(&self) -> u64 {
        self.rules
            .iter()
            .map(|r| {
                r.flow_match
                    .parts()
                    .iter()
                    .map(|(f, m)| match m {
                        // Value + mask (prefix/exact) or two bounds (range).
                        FieldMatch::Any => 0,
                        _ => 2 * u64::from(f.bit_width()),
                    })
                    .sum::<u64>()
                    + 16 // priority
                    + 32 // action
            })
            .sum()
    }

    fn lookup_accesses(&self, header: &HeaderValues) -> usize {
        // Rules inspected until the first match (all on miss).
        match self.rules.iter().position(|r| r.flow_match.matches(header)) {
            Some(i) => i + 1,
            None => self.rules.len(),
        }
    }

    fn build_records(&self) -> usize {
        // One stored row per rule.
        self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference_classify;
    use offilter::synth::{generate_acl, AclConfig};
    use oflow::MatchFieldKind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn acl() -> Vec<Rule> {
        generate_acl(&AclConfig { rules: 300, ..AclConfig::default() }, 9).rules
    }

    fn random_headers(n: usize, seed: u64) -> Vec<HeaderValues> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                HeaderValues::new()
                    .with(MatchFieldKind::Ipv4Src, u128::from(rng.gen::<u32>()))
                    .with(MatchFieldKind::Ipv4Dst, u128::from(rng.gen::<u32>()))
                    .with(MatchFieldKind::IpProto, if rng.gen_bool(0.7) { 6 } else { 17 })
                    .with(MatchFieldKind::TcpDst, u128::from(rng.gen::<u16>()))
                    .with(MatchFieldKind::TcpSrc, u128::from(rng.gen::<u16>()))
            })
            .collect()
    }

    #[test]
    fn agrees_with_reference() {
        let rules = acl();
        let c = LinearClassifier::new(rules.clone());
        for h in random_headers(500, 1) {
            assert_eq!(c.classify(&h), reference_classify(&rules, &h), "header {h}");
        }
    }

    #[test]
    fn memory_counts_constrained_fields_only() {
        let rules = acl();
        let c = LinearClassifier::new(rules);
        assert!(c.memory_bits() > 0);
        let empty = LinearClassifier::new(vec![]);
        assert_eq!(empty.memory_bits(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn accesses_bounded_by_rule_count() {
        let rules = acl();
        let n = rules.len();
        let c = LinearClassifier::new(rules);
        for h in random_headers(100, 2) {
            let a = c.lookup_accesses(&h);
            assert!(a >= 1 && a <= n);
        }
    }
}
