//! Per-entry field layouts.
//!
//! Every stored entry in the architecture — a trie node entry, a LUT slot, an
//! index-table row, an action-table row — is a fixed-width word composed of
//! named fields. [`EntryLayout`] captures that composition so memory blocks
//! can report both their total size and how the bits break down.

use crate::width::bits_for_index;
use std::fmt;

/// A named bit-field inside an entry word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldBits {
    /// Human-readable field name (`"flag"`, `"label"`, `"child_ptr"`, ...).
    pub name: String,
    /// Width of the field in bits.
    pub bits: u32,
}

/// Fixed-width layout of one stored entry.
///
/// The paper's trie entry is the motivating example: *"The trie node data is
/// composed of the child pointer, the label and a flag bit."* Build that
/// layout with [`EntryLayout::trie_entry`].
///
/// ```
/// use ofmem::EntryLayout;
/// // L1 entry of the paper's worst-case trie: 26 bits.
/// let l1 = EntryLayout::trie_entry(15, 10);
/// assert_eq!(l1.total_bits(), 26);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryLayout {
    fields: Vec<FieldBits>,
}

impl EntryLayout {
    /// Creates an empty layout; add fields with [`EntryLayout::with_field`].
    #[must_use]
    pub fn new() -> Self {
        Self { fields: Vec::new() }
    }

    /// Adds a named field of `bits` bits and returns the layout.
    #[must_use]
    pub fn with_field(mut self, name: &str, bits: u32) -> Self {
        self.fields.push(FieldBits { name: name.to_owned(), bits });
        self
    }

    /// The paper's multi-bit-trie entry: 1 flag bit + a label + a child
    /// pointer.
    #[must_use]
    pub fn trie_entry(label_bits: u32, child_ptr_bits: u32) -> Self {
        Self::new()
            .with_field("flag", 1)
            .with_field("label", label_bits)
            .with_field("child_ptr", child_ptr_bits)
    }

    /// A trie entry sized from structure counts rather than explicit widths:
    /// the label must distinguish `max_labels` values and the child pointer
    /// `max_next_level_blocks` blocks (the paper sizes pointers by the
    /// worst-case / lower trie).
    #[must_use]
    pub fn trie_entry_for(max_labels: usize, max_next_level_blocks: usize) -> Self {
        Self::trie_entry(bits_for_index(max_labels), bits_for_index(max_next_level_blocks))
    }

    /// An exact-match LUT slot: 1 valid bit + the stored key + a label.
    #[must_use]
    pub fn lut_entry(key_bits: u32, label_bits: u32) -> Self {
        Self::new()
            .with_field("valid", 1)
            .with_field("key", key_bits)
            .with_field("label", label_bits)
    }

    /// An action-table row: an instruction word of `instr_bits` plus a
    /// next-table id of `table_id_bits` (the `Goto-Table` target).
    #[must_use]
    pub fn action_entry(instr_bits: u32, table_id_bits: u32) -> Self {
        Self::new().with_field("instructions", instr_bits).with_field("goto_table", table_id_bits)
    }

    /// Total width of the entry word in bits.
    #[must_use]
    pub fn total_bits(&self) -> u32 {
        self.fields.iter().map(|f| f.bits).sum()
    }

    /// The individual fields, in declaration order.
    #[must_use]
    pub fn fields(&self) -> &[FieldBits] {
        &self.fields
    }

    /// Width of the named field, if present.
    #[must_use]
    pub fn field_bits(&self, name: &str) -> Option<u32> {
        self.fields.iter().find(|f| f.name == name).map(|f| f.bits)
    }
}

impl Default for EntryLayout {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for EntryLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for field in &self.fields {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}[{}]", field.name, field.bits)?;
            first = false;
        }
        write!(f, " = {} bits", self.total_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_sum_of_fields() {
        let l = EntryLayout::new().with_field("a", 3).with_field("b", 7);
        assert_eq!(l.total_bits(), 10);
        assert_eq!(l.field_bits("a"), Some(3));
        assert_eq!(l.field_bits("b"), Some(7));
        assert_eq!(l.field_bits("c"), None);
    }

    #[test]
    fn trie_entry_has_flag_label_pointer() {
        let l = EntryLayout::trie_entry(12, 13);
        assert_eq!(l.total_bits(), 26);
        assert_eq!(l.field_bits("flag"), Some(1));
        assert_eq!(l.field_bits("label"), Some(12));
        assert_eq!(l.field_bits("child_ptr"), Some(13));
    }

    #[test]
    fn trie_entry_for_sizes_from_counts() {
        // 4096 labels -> 12 bits; 8192 blocks -> 13 bits; + flag = 26.
        let l = EntryLayout::trie_entry_for(4096, 8192);
        assert_eq!(l.total_bits(), 26);
    }

    #[test]
    fn lut_entry_contains_key() {
        let l = EntryLayout::lut_entry(13, 8);
        assert_eq!(l.total_bits(), 22);
    }

    #[test]
    fn display_is_readable() {
        let l = EntryLayout::trie_entry(12, 13);
        let s = l.to_string();
        assert!(s.contains("flag[1]"), "{s}");
        assert!(s.contains("26 bits"), "{s}");
    }

    #[test]
    fn empty_layout_is_zero_bits() {
        assert_eq!(EntryLayout::default().total_bits(), 0);
    }
}
