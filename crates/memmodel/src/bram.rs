//! Mapping logical memory blocks onto physical FPGA block RAMs.
//!
//! The paper synthesizes on a Stratix V (5SGXMB6R3F43C4), whose embedded
//! memory is organised as **M20K** blocks: 20 480 bits each, configurable as
//! 512×40, 1K×20, 2K×10, 4K×5, 8K×2 or 16K×1. A logical block of
//! `entries × entry_bits` is tiled over M20Ks by choosing the geometry that
//! minimises the number of physical blocks (depth tiles × width tiles).
//!
//! The mapping matters for the headline result: the 5 Mbit total is only
//! meaningful if it fits the device (the 5SGXMB6R3F43C4 offers 2 640 M20K
//! blocks ≈ 52 Mbit).

use crate::block::{MemoryBlock, MemoryReport};

/// A physical BRAM kind with its configurable geometries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BramKind {
    /// Human-readable name, e.g. `"M20K"`.
    pub name: &'static str,
    /// Raw capacity of one block in bits.
    pub capacity_bits: u32,
    /// Available (depth, width) configurations.
    pub geometries: &'static [(u32, u32)],
}

/// Stratix-V M20K block (20 480 bits, six geometries).
pub const M20K: BramKind = BramKind {
    name: "M20K",
    capacity_bits: 20_480,
    geometries: &[(512, 40), (1_024, 20), (2_048, 10), (4_096, 5), (8_192, 2), (16_384, 1)],
};

/// Xilinx-style 18 Kbit BRAM for cross-device what-ifs.
pub const BRAM18K: BramKind = BramKind {
    name: "BRAM18K",
    capacity_bits: 18_432,
    geometries: &[(512, 36), (1_024, 18), (2_048, 9), (4_096, 4), (8_192, 2), (16_384, 1)],
};

/// Result of mapping one logical block onto physical BRAMs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BramMapping {
    /// Name of the logical block mapped.
    pub block_name: String,
    /// Chosen geometry (depth, width).
    pub geometry: (u32, u32),
    /// Number of physical BRAMs used.
    pub brams: u32,
    /// Bits actually required by the logical block.
    pub used_bits: u64,
    /// Bits provisioned by the physical blocks (`brams × capacity`).
    pub provisioned_bits: u64,
}

impl BramMapping {
    /// Fraction of provisioned bits actually used (0..=1).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.provisioned_bits == 0 {
            0.0
        } else {
            self.used_bits as f64 / self.provisioned_bits as f64
        }
    }
}

impl BramKind {
    /// Number of physical blocks needed for `entries × entry_bits` under a
    /// fixed geometry.
    #[must_use]
    pub fn blocks_for_geometry(
        &self,
        entries: usize,
        entry_bits: u32,
        geometry: (u32, u32),
    ) -> u32 {
        if entries == 0 || entry_bits == 0 {
            return 0;
        }
        let (depth, width) = geometry;
        let depth_tiles = entries.div_ceil(depth as usize) as u32;
        let width_tiles = entry_bits.div_ceil(width);
        depth_tiles * width_tiles
    }

    /// Maps a logical block onto this BRAM kind, choosing the geometry that
    /// minimises physical block count (ties broken toward wider words, which
    /// minimises output multiplexing).
    #[must_use]
    pub fn map_block(&self, block: &MemoryBlock) -> BramMapping {
        let mut best: Option<((u32, u32), u32)> = None;
        for &geom in self.geometries {
            let n = self.blocks_for_geometry(block.entries, block.entry_bits, geom);
            match best {
                Some((_, bn)) if bn <= n => {}
                _ => best = Some((geom, n)),
            }
        }
        let (geometry, brams) = best.unwrap_or(((0, 0), 0));
        BramMapping {
            block_name: block.name.clone(),
            geometry,
            brams,
            used_bits: block.bits(),
            provisioned_bits: u64::from(brams) * u64::from(self.capacity_bits),
        }
    }

    /// Maps every block of a report; returns per-block mappings.
    #[must_use]
    pub fn map_report(&self, report: &MemoryReport) -> Vec<BramMapping> {
        report.blocks().iter().map(|b| self.map_block(b)).collect()
    }

    /// Total physical blocks for a whole report.
    #[must_use]
    pub fn total_brams(&self, report: &MemoryReport) -> u32 {
        self.map_report(report).iter().map(|m| m.brams).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_block_needs_no_brams() {
        let b = MemoryBlock::new("x", 0, 26);
        assert_eq!(M20K.map_block(&b).brams, 0);
    }

    #[test]
    fn small_block_fits_one_bram() {
        // The paper's L1: 32 entries x 26 bits = 832 bits.
        let b = MemoryBlock::new("L1", 32, 26);
        let m = M20K.map_block(&b);
        assert_eq!(m.brams, 1);
        assert_eq!(m.used_bits, 832);
        assert!(m.utilization() < 0.05);
    }

    #[test]
    fn geometry_choice_minimises_blocks() {
        // 4096 entries x 5 bits fits exactly one M20K in 4096x5 mode; the
        // 512x40 mode would need 8 depth tiles.
        let b = MemoryBlock::new("narrow", 4096, 5);
        let m = M20K.map_block(&b);
        assert_eq!(m.brams, 1);
        assert_eq!(m.geometry, (4_096, 5));
    }

    #[test]
    fn wide_deep_block_tiles_in_both_dimensions() {
        // 2000 entries x 50 bits: using 512x40 -> 4 depth x 2 width = 8;
        // using 1024x20 -> 2 x 3 = 6; 2048x10 -> 1 x 5 = 5.
        let b = MemoryBlock::new("big", 2_000, 50);
        let m = M20K.map_block(&b);
        assert_eq!(m.brams, 5);
        assert_eq!(m.geometry, (2_048, 10));
    }

    #[test]
    fn report_totals_sum_blocks() {
        let mut r = MemoryReport::new();
        r.push(MemoryBlock::new("a", 32, 26));
        r.push(MemoryBlock::new("b", 4096, 5));
        assert_eq!(M20K.total_brams(&r), 2);
    }

    #[test]
    fn blocks_for_geometry_rounds_up() {
        assert_eq!(M20K.blocks_for_geometry(513, 40, (512, 40)), 2);
        assert_eq!(M20K.blocks_for_geometry(512, 41, (512, 40)), 2);
        assert_eq!(M20K.blocks_for_geometry(513, 41, (512, 40)), 4);
    }

    #[test]
    fn bram18k_differs_from_m20k() {
        let b = MemoryBlock::new("x", 1024, 20);
        assert_eq!(M20K.map_block(&b).brams, 1);
        // 18K BRAM in 1024x18 mode needs 2 width tiles for 20-bit words,
        // or 2048x9 -> 3 width tiles x 1 depth... best is 2.
        assert_eq!(BRAM18K.map_block(&b).brams, 2);
    }
}
