//! Bit-width calculators.
//!
//! Hardware lookup structures size their fields by worst-case occupancy: a
//! child pointer that must distinguish `n` blocks needs `ceil(log2(n))` bits,
//! a label that must distinguish `n` unique field values likewise. The paper
//! applies this rule per trie level ("each level node requires different
//! child pointer sizes... determined by the worst case").

/// Number of bits needed to *index* one of `count` distinct items
/// (`ceil(log2(count))`).
///
/// By convention a zero- or one-entry structure still consumes one address
/// bit: hardware cannot have a zero-width bus, and the paper's smallest
/// structures are likewise accounted with non-zero widths.
///
/// ```
/// use ofmem::bits_for_index;
/// assert_eq!(bits_for_index(0), 1);
/// assert_eq!(bits_for_index(1), 1);
/// assert_eq!(bits_for_index(2), 1);
/// assert_eq!(bits_for_index(3), 2);
/// assert_eq!(bits_for_index(256), 8);
/// assert_eq!(bits_for_index(257), 9);
/// ```
#[must_use]
pub fn bits_for_index(count: usize) -> u32 {
    if count <= 2 {
        1
    } else {
        usize::BITS - (count - 1).leading_zeros()
    }
}

/// Number of bits needed to *count* up to `count` items inclusive
/// (`ceil(log2(count + 1))`), i.e. to store any value in `0..=count`.
///
/// ```
/// use ofmem::bits_for_count;
/// assert_eq!(bits_for_count(0), 1);
/// assert_eq!(bits_for_count(1), 1);
/// assert_eq!(bits_for_count(2), 2);
/// assert_eq!(bits_for_count(255), 8);
/// assert_eq!(bits_for_count(256), 9);
/// ```
#[must_use]
pub fn bits_for_count(count: usize) -> u32 {
    if count <= 1 {
        1
    } else {
        usize::BITS - count.leading_zeros()
    }
}

/// Number of bits needed to store the specific value `value`
/// (`floor(log2(value)) + 1`, with 1 for zero).
///
/// ```
/// use ofmem::bits_for_value;
/// assert_eq!(bits_for_value(0), 1);
/// assert_eq!(bits_for_value(1), 1);
/// assert_eq!(bits_for_value(2), 2);
/// assert_eq!(bits_for_value(0xFFFF), 16);
/// ```
#[must_use]
pub fn bits_for_value(value: u128) -> u32 {
    if value == 0 {
        1
    } else {
        128 - value.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_widths_track_powers_of_two() {
        for p in 1..20u32 {
            let n = 1usize << p;
            assert_eq!(bits_for_index(n), p, "2^{p} items need {p} bits");
            assert_eq!(bits_for_index(n + 1), p + 1);
        }
    }

    #[test]
    fn count_widths_track_powers_of_two() {
        for p in 1..20u32 {
            let n = 1usize << p;
            assert_eq!(bits_for_count(n - 1), p);
            assert_eq!(bits_for_count(n), p + 1);
        }
    }

    #[test]
    fn minimum_width_is_one_bit() {
        assert_eq!(bits_for_index(0), 1);
        assert_eq!(bits_for_index(1), 1);
        assert_eq!(bits_for_count(0), 1);
        assert_eq!(bits_for_value(0), 1);
    }

    #[test]
    fn value_width_is_position_of_msb() {
        assert_eq!(bits_for_value(u128::MAX), 128);
        assert_eq!(bits_for_value(1 << 47), 48);
        assert_eq!(bits_for_value((1 << 47) - 1), 47);
    }

    /// The paper's anchor: a 32-entry L1 block with 26-bit entries is
    /// 832 bits; 26 = 1 flag + label + pointer widths realistically sized.
    #[test]
    fn paper_l1_anchor_widths() {
        // 32 L1 entries (stride 5).
        assert_eq!(bits_for_index(32), 5);
        // A pointer into <= 1024 L2 blocks needs 10 bits; a label for
        // <= 32768 unique values needs 15 bits; 1 + 10 + 15 = 26.
        assert_eq!(1 + bits_for_index(1024) + bits_for_index(32768), 26);
    }
}
