//! # ofmem — bit-accurate embedded-memory cost model
//!
//! The SOCC'15 paper reports every result as *bits of embedded FPGA memory*:
//! trie levels, exact-match LUTs and action tables are each mapped to a
//! dedicated memory block whose size is `entries × entry_width`, and entry
//! widths are derived from the data stored per entry (a flag bit, a label and
//! a child pointer whose width is sized by the worst-case next-level
//! occupancy).
//!
//! This crate provides the pieces of that model:
//!
//! * [`width`] — bit-width calculators (`bits_for_count`, `bits_for_index`).
//! * [`layout`] — per-entry field layouts ([`layout::EntryLayout`]).
//! * [`block`] — memory blocks and aggregated reports
//!   ([`block::MemoryBlock`], [`block::MemoryReport`]).
//! * [`bram`] — mapping of logical blocks onto Stratix-V style M20K BRAMs.
//! * [`units`] — formatting helpers (bits → Kbit/Mbit, paper-style).
//!
//! The model is deliberately independent of any particular data structure so
//! that tries, LUTs, index tables and action tables can all account their
//! storage through one code path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod bram;
pub mod layout;
pub mod units;
pub mod width;

pub use block::{MemoryBlock, MemoryReport};
pub use bram::{BramKind, BramMapping};
pub use layout::EntryLayout;
pub use units::{kbits, mbits, BitSize};
pub use width::{bits_for_count, bits_for_index, bits_for_value};
