//! Unit conversions and formatting.
//!
//! The paper reports memory in decimal units: "832 bits", "983.7 Kbits",
//! "5 Mbits". We therefore use 1 Kbit = 1000 bits and 1 Mbit = 10^6 bits
//! (not the binary Ki/Mi variants) so reproduced numbers are comparable.

use std::fmt;

/// Converts bits to Kbits (1 Kbit = 1000 bits).
#[must_use]
pub fn kbits(bits: u64) -> f64 {
    bits as f64 / 1_000.0
}

/// Converts bits to Mbits (1 Mbit = 1 000 000 bits).
#[must_use]
pub fn mbits(bits: u64) -> f64 {
    bits as f64 / 1_000_000.0
}

/// A bit quantity that formats itself the way the paper does: bits below
/// 1 Kbit, Kbits below 1 Mbit, Mbits above.
///
/// ```
/// use ofmem::BitSize;
/// assert_eq!(BitSize(832).to_string(), "832 bits");
/// assert_eq!(BitSize(983_700).to_string(), "983.70 Kbits");
/// assert_eq!(BitSize(5_000_000).to_string(), "5.000 Mbits");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitSize(pub u64);

impl BitSize {
    /// The raw number of bits.
    #[must_use]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// In Kbits.
    #[must_use]
    pub fn kbits(self) -> f64 {
        kbits(self.0)
    }

    /// In Mbits.
    #[must_use]
    pub fn mbits(self) -> f64 {
        mbits(self.0)
    }
}

impl fmt::Display for BitSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{} bits", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2} Kbits", self.kbits())
        } else {
            write!(f, "{:.3} Mbits", self.mbits())
        }
    }
}

impl std::ops::Add for BitSize {
    type Output = BitSize;
    fn add(self, rhs: BitSize) -> BitSize {
        BitSize(self.0 + rhs.0)
    }
}

impl std::iter::Sum for BitSize {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        BitSize(iter.map(|b| b.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_units() {
        assert!((kbits(983_700) - 983.7).abs() < 1e-9);
        assert!((mbits(5_000_000) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(BitSize(0).to_string(), "0 bits");
        assert_eq!(BitSize(999).to_string(), "999 bits");
        assert_eq!(BitSize(1_000).to_string(), "1.00 Kbits");
        assert_eq!(BitSize(999_999).to_string(), "1000.00 Kbits");
        assert_eq!(BitSize(1_000_000).to_string(), "1.000 Mbits");
    }

    #[test]
    fn arithmetic() {
        assert_eq!(BitSize(1) + BitSize(2), BitSize(3));
        let s: BitSize = [BitSize(10), BitSize(20)].into_iter().sum();
        assert_eq!(s, BitSize(30));
    }
}
