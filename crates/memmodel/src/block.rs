//! Memory blocks and aggregated reports.
//!
//! The architecture maps every lookup structure onto its own embedded memory
//! block ("each lookup algorithm is implemented in a separate memory block,
//! and each node level of the multi-bit trie is searched in a different
//! pipeline stage"). A [`MemoryBlock`] is `entries × entry_bits`; a
//! [`MemoryReport`] aggregates blocks with hierarchical names so experiments
//! can slice totals by structure, trie, or level.

use crate::layout::EntryLayout;
use crate::units::{kbits, mbits};
use std::fmt;

/// One logical embedded-memory block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryBlock {
    /// Hierarchical name, `/`-separated (e.g. `"mac/eth_dst/lower/L3"`).
    pub name: String,
    /// Number of stored entries (the paper's "stored nodes" for tries).
    pub entries: usize,
    /// Width of one entry in bits.
    pub entry_bits: u32,
    /// Entry layout the width was derived from, if known.
    pub layout: Option<EntryLayout>,
}

impl MemoryBlock {
    /// Creates a block from an explicit entry count and width.
    #[must_use]
    pub fn new(name: impl Into<String>, entries: usize, entry_bits: u32) -> Self {
        Self { name: name.into(), entries, entry_bits, layout: None }
    }

    /// Creates a block whose entry width comes from `layout`.
    #[must_use]
    pub fn with_layout(name: impl Into<String>, entries: usize, layout: EntryLayout) -> Self {
        Self { name: name.into(), entries, entry_bits: layout.total_bits(), layout: Some(layout) }
    }

    /// Total size of the block in bits.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.entries as u64 * u64::from(self.entry_bits)
    }

    /// Total size in Kbits (1 Kbit = 1000 bits, as the paper reports).
    #[must_use]
    pub fn kbits(&self) -> f64 {
        kbits(self.bits())
    }
}

impl fmt::Display for MemoryBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} entries x {} bits = {:.2} Kbits",
            self.name,
            self.entries,
            self.entry_bits,
            self.kbits()
        )
    }
}

/// An aggregation of [`MemoryBlock`]s with hierarchical grouping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryReport {
    blocks: Vec<MemoryBlock>,
}

impl MemoryReport {
    /// Creates an empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a block.
    pub fn push(&mut self, block: MemoryBlock) {
        self.blocks.push(block);
    }

    /// Adds every block of `other`, prefixing their names with `prefix/`.
    pub fn merge_under(&mut self, prefix: &str, other: MemoryReport) {
        for mut b in other.blocks {
            b.name = format!("{prefix}/{}", b.name);
            self.blocks.push(b);
        }
    }

    /// Adds every block of `other` unchanged.
    pub fn merge(&mut self, other: MemoryReport) {
        self.blocks.extend(other.blocks);
    }

    /// All blocks, in insertion order.
    #[must_use]
    pub fn blocks(&self) -> &[MemoryBlock] {
        &self.blocks
    }

    /// Total size of all blocks in bits.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.blocks.iter().map(MemoryBlock::bits).sum()
    }

    /// Total size in Kbits (1000 bits).
    #[must_use]
    pub fn total_kbits(&self) -> f64 {
        kbits(self.total_bits())
    }

    /// Total size in Mbits (1 000 000 bits).
    #[must_use]
    pub fn total_mbits(&self) -> f64 {
        mbits(self.total_bits())
    }

    /// Total number of stored entries across all blocks.
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.blocks.iter().map(|b| b.entries).sum()
    }

    /// Sum of bits over blocks whose name starts with `prefix`
    /// (path-component aware: `"a/b"` matches `"a/b"` and `"a/b/c"`, not
    /// `"a/bc"`).
    #[must_use]
    pub fn bits_under(&self, prefix: &str) -> u64 {
        self.blocks
            .iter()
            .filter(|b| {
                b.name == prefix
                    || b.name.strip_prefix(prefix).is_some_and(|rest| rest.starts_with('/'))
            })
            .map(MemoryBlock::bits)
            .sum()
    }

    /// Entries stored under `prefix` (same matching rule as
    /// [`MemoryReport::bits_under`]).
    #[must_use]
    pub fn entries_under(&self, prefix: &str) -> usize {
        self.blocks
            .iter()
            .filter(|b| {
                b.name == prefix
                    || b.name.strip_prefix(prefix).is_some_and(|rest| rest.starts_with('/'))
            })
            .map(|b| b.entries)
            .sum()
    }

    /// Distinct first-level group names, in first-appearance order.
    #[must_use]
    pub fn groups(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for b in &self.blocks {
            let g = b.name.split('/').next().unwrap_or(&b.name).to_owned();
            if !out.contains(&g) {
                out.push(g);
            }
        }
        out
    }
}

impl fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.blocks {
            writeln!(f, "  {b}")?;
        }
        write!(
            f,
            "  total: {} entries, {:.2} Kbits ({:.3} Mbits)",
            self.total_entries(),
            self.total_kbits(),
            self.total_mbits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MemoryReport {
        let mut r = MemoryReport::new();
        r.push(MemoryBlock::new("eth/lower/L1", 32, 26));
        r.push(MemoryBlock::new("eth/lower/L2", 1024, 26));
        r.push(MemoryBlock::new("eth/lower/L3", 4096, 16));
        r.push(MemoryBlock::new("ip/lower/L1", 32, 20));
        r
    }

    #[test]
    fn block_size_is_entries_times_width() {
        let b = MemoryBlock::new("x", 32, 26);
        assert_eq!(b.bits(), 832); // the paper's L1 anchor
        assert!((b.kbits() - 0.832).abs() < 1e-12);
    }

    #[test]
    fn layout_block_uses_layout_width() {
        let b = MemoryBlock::with_layout("x", 10, EntryLayout::trie_entry(12, 13));
        assert_eq!(b.entry_bits, 26);
        assert_eq!(b.bits(), 260);
    }

    #[test]
    fn totals_aggregate_all_blocks() {
        let r = sample();
        assert_eq!(r.total_entries(), 32 + 1024 + 4096 + 32);
        assert_eq!(r.total_bits(), 32 * 26 + 1024 * 26 + 4096 * 16 + 32 * 20);
    }

    #[test]
    fn prefix_sums_are_path_aware() {
        let r = sample();
        assert_eq!(r.bits_under("eth"), 32 * 26 + 1024 * 26 + 4096 * 16);
        assert_eq!(r.bits_under("eth/lower"), r.bits_under("eth"));
        assert_eq!(r.bits_under("eth/lower/L1"), 832);
        assert_eq!(r.bits_under("ip"), 640);
        // No false prefix matches on partial components.
        assert_eq!(r.bits_under("et"), 0);
        assert_eq!(r.entries_under("eth/lower/L2"), 1024);
    }

    #[test]
    fn merge_under_prefixes_names() {
        let mut top = MemoryReport::new();
        top.merge_under("mac", sample());
        assert_eq!(top.bits_under("mac/eth"), sample().bits_under("eth"));
        assert_eq!(top.groups(), vec!["mac".to_owned()]);
    }

    #[test]
    fn groups_are_first_level_names() {
        assert_eq!(sample().groups(), vec!["eth".to_owned(), "ip".to_owned()]);
    }
}
