//! # oflow — OpenFlow v1.3 switch-side substrate
//!
//! A software model of the parts of OpenFlow v1.3 that the SOCC'15 paper
//! builds on:
//!
//! * [`fields`] — the protocol's OXM match fields with their widths and the
//!   matching method each requires (Exact / Range / Longest-Prefix), i.e.
//!   the raw material of the paper's Table II.
//! * [`flow_match`] — per-field match specifications (exact, prefix, range,
//!   any) and multi-field flow matches.
//! * [`header`] — extracted packet header values keyed by match field.
//! * [`actions`] / [`instructions`] — OpenFlow actions and the instruction
//!   set driving multi-table processing (`Goto-Table`, `Write-Actions`, ...).
//! * [`entry`] / [`table`] — flow entries with priorities and flow tables
//!   with OpenFlow flow-mod semantics.
//! * [`pipeline`] — the multi-table pipeline introduced in OpenFlow v1.1,
//!   implemented by straightforward linear search. This is the **reference
//!   oracle** the decomposition architecture in `mtl-core` is tested
//!   against.
//!
//! Nothing in this crate is optimised for speed; it is the semantic ground
//! truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actions;
pub mod entry;
pub mod error;
pub mod fields;
pub mod flow_match;
pub mod header;
pub mod instructions;
pub mod pipeline;
pub mod table;

pub use actions::Action;
pub use entry::FlowEntry;
pub use error::OflowError;
pub use fields::{MatchFieldKind, MatchMethod};
pub use flow_match::{FieldMatch, FlowMatch};
pub use header::HeaderValues;
pub use instructions::Instruction;
pub use pipeline::{Pipeline, PipelineResult, Verdict};
pub use table::{FlowTable, TableId};
