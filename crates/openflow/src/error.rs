//! Error types for the OpenFlow substrate.

use crate::fields::MatchFieldKind;
use std::fmt;

/// Errors raised by flow-table and pipeline operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OflowError {
    /// A field value exceeds the field's bit width.
    ValueOutOfRange {
        /// The offending field.
        field: MatchFieldKind,
        /// The value supplied.
        value: u128,
    },
    /// A prefix length exceeds the field's bit width.
    PrefixTooLong {
        /// The offending field.
        field: MatchFieldKind,
        /// The prefix length supplied.
        len: u32,
    },
    /// A range with `lo > hi`.
    EmptyRange {
        /// The offending field.
        field: MatchFieldKind,
        /// Range lower bound.
        lo: u128,
        /// Range upper bound.
        hi: u128,
    },
    /// `Goto-Table` must strictly increase the table id (OpenFlow v1.3
    /// §5.1); the pipeline rejects backward or self jumps.
    BackwardGoto {
        /// Table the instruction was found in.
        from: u8,
        /// Requested destination table.
        to: u8,
    },
    /// A `Goto-Table` named a table the pipeline does not contain.
    NoSuchTable(u8),
    /// A flow-mod targeted a table the pipeline does not contain.
    TableOutOfRange(u8),
    /// Adding a flow that overlaps an existing one while `check_overlap`
    /// was requested.
    Overlap,
}

impl fmt::Display for OflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OflowError::ValueOutOfRange { field, value } => {
                write!(f, "value {value:#x} exceeds {}-bit field {field}", field.bit_width())
            }
            OflowError::PrefixTooLong { field, len } => {
                write!(f, "prefix length {len} exceeds {}-bit field {field}", field.bit_width())
            }
            OflowError::EmptyRange { field, lo, hi } => {
                write!(f, "empty range [{lo}, {hi}] on field {field}")
            }
            OflowError::BackwardGoto { from, to } => {
                write!(f, "Goto-Table must increase: table {from} -> table {to}")
            }
            OflowError::NoSuchTable(id) => write!(f, "pipeline has no table {id}"),
            OflowError::TableOutOfRange(id) => write!(f, "flow-mod targets missing table {id}"),
            OflowError::Overlap => write!(f, "overlapping entry at equal priority"),
        }
    }
}

impl std::error::Error for OflowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_context() {
        let e = OflowError::ValueOutOfRange { field: MatchFieldKind::VlanVid, value: 0x2000 };
        assert!(e.to_string().contains("13-bit"));
        let e = OflowError::BackwardGoto { from: 3, to: 1 };
        assert!(e.to_string().contains("3 -> table 1"));
    }
}
