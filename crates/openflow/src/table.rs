//! Flow tables with OpenFlow flow-mod semantics.
//!
//! A [`FlowTable`] holds entries sorted by descending priority and answers
//! lookups by linear scan — the reference semantics against which optimised
//! lookup engines are validated. Modifications follow OpenFlow v1.3
//! flow-mod rules: add (with optional overlap check), modify and delete with
//! strict / non-strict matching.

use crate::entry::FlowEntry;
use crate::error::OflowError;
use crate::flow_match::FlowMatch;
use crate::header::HeaderValues;

/// Identifier of a flow table within a pipeline.
pub type TableId = u8;

/// A single flow table.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    /// This table's id within the pipeline.
    pub id: TableId,
    // Descending priority; ties broken by match specificity then insertion
    // order (stable), so lookups are deterministic.
    entries: Vec<FlowEntry>,
}

impl FlowTable {
    /// Creates an empty table with the given id.
    #[must_use]
    pub fn new(id: TableId) -> Self {
        Self { id, entries: Vec::new() }
    }

    /// Adds a flow entry. With `check_overlap`, refuses entries that
    /// overlap an existing entry at the same priority (OpenFlow
    /// `OFPFF_CHECK_OVERLAP`).
    pub fn add(&mut self, entry: FlowEntry, check_overlap: bool) -> Result<(), OflowError> {
        if check_overlap {
            let conflict = self
                .entries
                .iter()
                .any(|e| e.priority == entry.priority && e.flow_match.overlaps(&entry.flow_match));
            if conflict {
                return Err(OflowError::Overlap);
            }
        }
        // Identical match at identical priority replaces (OpenFlow add
        // semantics).
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.priority == entry.priority && e.flow_match == entry.flow_match)
        {
            *existing = entry;
            return Ok(());
        }
        let key = (entry.priority, entry.flow_match.specificity());
        let pos = self.entries.partition_point(|e| (e.priority, e.flow_match.specificity()) >= key);
        self.entries.insert(pos, entry);
        Ok(())
    }

    /// Modifies instructions of all entries matched non-strictly by
    /// `pattern` (every entry whose match is *more specific or equal*).
    /// Returns the number of entries changed.
    pub fn modify(&mut self, pattern: &FlowMatch, instructions: Vec<crate::Instruction>) -> usize {
        let mut n = 0;
        for e in &mut self.entries {
            if pattern_subsumes(pattern, &e.flow_match) {
                e.instructions = instructions.clone();
                n += 1;
            }
        }
        n
    }

    /// Deletes entries. Strict: exact match + priority must be equal.
    /// Non-strict: deletes every entry subsumed by `pattern`.
    /// Returns the number of entries removed.
    pub fn delete(&mut self, pattern: &FlowMatch, priority: Option<u16>, strict: bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| {
            let doomed = if strict {
                priority.is_some_and(|p| p == e.priority) && e.flow_match == *pattern
            } else {
                pattern_subsumes(pattern, &e.flow_match)
            };
            !doomed
        });
        before - self.entries.len()
    }

    /// Highest-priority entry matching the header (linear reference
    /// lookup). Updates that entry's counters.
    pub fn lookup_mut(&mut self, header: &HeaderValues) -> Option<&mut FlowEntry> {
        self.entries.iter_mut().find(|e| e.flow_match.matches(header))
    }

    /// Highest-priority entry matching the header, without counter updates.
    #[must_use]
    pub fn lookup(&self, header: &HeaderValues) -> Option<&FlowEntry> {
        self.entries.iter().find(|e| e.flow_match.matches(header))
    }

    /// All entries in priority order.
    #[must_use]
    pub fn entries(&self) -> &[FlowEntry] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Whether `pattern` subsumes `m` — every header matched by `m` would also
/// be matched by `pattern`. Conservative per-field check: each pattern
/// constraint must be implied by the corresponding constraint of `m`.
fn pattern_subsumes(pattern: &FlowMatch, m: &FlowMatch) -> bool {
    use crate::flow_match::FieldMatch;
    pattern.parts().iter().all(|(field, p)| {
        if p.is_wildcard() {
            return true;
        }
        let e = m.field(*field);
        let w = field.bit_width();
        match (*p, e) {
            (FieldMatch::Exact(a), FieldMatch::Exact(b)) => a == b,
            (FieldMatch::Prefix { .. }, FieldMatch::Exact(b)) => p.matches(b, w),
            (FieldMatch::Prefix { len: pl, .. }, FieldMatch::Prefix { value, len }) => {
                len >= pl && p.matches(value, w)
            }
            (FieldMatch::Range { lo, hi }, FieldMatch::Exact(b)) => lo <= b && b <= hi,
            (FieldMatch::Range { lo: pl, hi: ph }, FieldMatch::Range { lo, hi }) => {
                pl <= lo && hi <= ph
            }
            (FieldMatch::Range { lo, hi }, FieldMatch::Prefix { value, len }) => {
                let m = crate::flow_match::prefix_mask(w, len);
                let p_lo = value & m;
                let full = crate::flow_match::prefix_mask(w, w);
                let p_hi = p_lo | (!m & full);
                lo <= p_lo && p_hi <= hi
            }
            _ => false,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::Action;
    use crate::fields::MatchFieldKind::*;

    use crate::instructions::Instruction;

    fn entry(prio: u16, vid: u128) -> FlowEntry {
        FlowEntry::new(
            prio,
            FlowMatch::any().with_exact(VlanVid, vid).unwrap(),
            vec![Instruction::WriteActions(vec![Action::Output(vid as u32)])],
        )
    }

    #[test]
    fn lookup_returns_highest_priority() {
        let mut t = FlowTable::new(0);
        t.add(entry(1, 5), false).unwrap();
        t.add(FlowEntry::new(10, FlowMatch::any(), vec![Instruction::ClearActions]), false)
            .unwrap();
        let h = HeaderValues::new().with(VlanVid, 5);
        let hit = t.lookup(&h).unwrap();
        assert_eq!(hit.priority, 10);
    }

    #[test]
    fn equal_priority_prefers_more_specific() {
        let mut t = FlowTable::new(0);
        let broad = FlowEntry::new(
            5,
            FlowMatch::any().with_prefix(Ipv4Dst, 0x0A00_0000, 8).unwrap(),
            vec![],
        );
        let narrow = FlowEntry::new(
            5,
            FlowMatch::any().with_prefix(Ipv4Dst, 0x0A01_0000, 16).unwrap(),
            vec![Instruction::GotoTable(1)],
        );
        t.add(broad, false).unwrap();
        t.add(narrow, false).unwrap();
        let h = HeaderValues::new().with(Ipv4Dst, 0x0A01_0203);
        assert_eq!(t.lookup(&h).unwrap().goto_target(), Some(1));
    }

    #[test]
    fn add_replaces_identical_match_and_priority() {
        let mut t = FlowTable::new(0);
        t.add(entry(1, 5), false).unwrap();
        let mut e2 = entry(1, 5);
        e2.cookie = 99;
        t.add(e2, false).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].cookie, 99);
    }

    #[test]
    fn overlap_check_rejects_conflicts() {
        let mut t = FlowTable::new(0);
        t.add(entry(1, 5), false).unwrap();
        // Same priority, overlapping (identical) match -> rejected when
        // the identical-replace path is bypassed by a different match that
        // still overlaps: a wildcard overlaps everything.
        let wild = FlowEntry::new(1, FlowMatch::any(), vec![]);
        assert_eq!(t.add(wild, true), Err(OflowError::Overlap));
        // Different priority is fine.
        let wild2 = FlowEntry::new(2, FlowMatch::any(), vec![]);
        assert!(t.add(wild2, true).is_ok());
    }

    #[test]
    fn strict_delete_removes_exact_entry_only() {
        let mut t = FlowTable::new(0);
        t.add(entry(1, 5), false).unwrap();
        t.add(entry(2, 5), false).unwrap();
        let pat = FlowMatch::any().with_exact(VlanVid, 5).unwrap();
        assert_eq!(t.delete(&pat, Some(1), true), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].priority, 2);
    }

    #[test]
    fn nonstrict_delete_removes_subsumed() {
        let mut t = FlowTable::new(0);
        t.add(
            FlowEntry::new(
                1,
                FlowMatch::any().with_prefix(Ipv4Dst, 0x0A010000, 16).unwrap(),
                vec![],
            ),
            false,
        )
        .unwrap();
        t.add(
            FlowEntry::new(
                1,
                FlowMatch::any().with_prefix(Ipv4Dst, 0x0B000000, 8).unwrap(),
                vec![],
            ),
            false,
        )
        .unwrap();
        // Delete everything under 10.0.0.0/8.
        let pat = FlowMatch::any().with_prefix(Ipv4Dst, 0x0A000000, 8).unwrap();
        assert_eq!(t.delete(&pat, None, false), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn modify_rewrites_instructions() {
        let mut t = FlowTable::new(0);
        t.add(entry(1, 5), false).unwrap();
        t.add(entry(1, 6), false).unwrap();
        let pat = FlowMatch::any().with_exact(VlanVid, 5).unwrap();
        let n = t.modify(&pat, vec![Instruction::ClearActions]);
        assert_eq!(n, 1);
        let h = HeaderValues::new().with(VlanVid, 5);
        assert_eq!(t.lookup(&h).unwrap().instructions, vec![Instruction::ClearActions]);
    }

    #[test]
    fn range_pattern_subsumption() {
        // Deleting [0..=100] removes exact 50 and range [10..=20].
        let mut t = FlowTable::new(0);
        t.add(FlowEntry::new(1, FlowMatch::any().with_exact(TcpDst, 50).unwrap(), vec![]), false)
            .unwrap();
        t.add(
            FlowEntry::new(1, FlowMatch::any().with_range(TcpDst, 10, 20).unwrap(), vec![]),
            false,
        )
        .unwrap();
        t.add(
            FlowEntry::new(1, FlowMatch::any().with_range(TcpDst, 90, 200).unwrap(), vec![]),
            false,
        )
        .unwrap();
        let pat = FlowMatch::any().with_range(TcpDst, 0, 100).unwrap();
        assert_eq!(t.delete(&pat, None, false), 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_table_lookup_is_none() {
        let t = FlowTable::new(3);
        assert!(t.lookup(&HeaderValues::new()).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn wildcard_field_match_subsumption() {
        // pattern 10.0.0.0/8 must NOT subsume an entry matching ANY dst.
        let pat = FlowMatch::any().with_prefix(Ipv4Dst, 0x0A000000, 8).unwrap();
        let any_entry = FlowMatch::any();
        assert!(!pattern_subsumes(&pat, &any_entry));
        assert!(pattern_subsumes(&FlowMatch::any(), &any_entry));
        // Exact pattern vs range entry: only subsumes singleton ranges.
        let pat = FlowMatch::any().with_exact(TcpDst, 7).unwrap();
        let r = FlowMatch::any().with_range(TcpDst, 7, 9).unwrap();
        assert!(!pattern_subsumes(&pat, &r));
    }
}
