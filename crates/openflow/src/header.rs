//! Extracted packet header values.
//!
//! [`HeaderValues`] is the interface between packet parsing and flow
//! matching: a sparse map from [`MatchFieldKind`] to the field's value as a
//! `u128`. A field is absent when the packet does not carry the
//! corresponding protocol layer (e.g. no `tcp_dst` on a UDP packet), which
//! models OpenFlow's match prerequisites.

use crate::fields::MatchFieldKind;
use std::fmt;

/// Sparse per-packet field values, keyed by match field.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct HeaderValues {
    // Sorted by field; packets carry ~5-15 fields so a Vec beats a map.
    values: Vec<(MatchFieldKind, u128)>,
}

impl HeaderValues {
    /// Creates an empty header (no fields present).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a field value, masking it to the field's width.
    pub fn set(&mut self, field: MatchFieldKind, value: u128) -> &mut Self {
        let v = value & field.value_mask();
        match self.values.binary_search_by_key(&field, |(f, _)| *f) {
            Ok(i) => self.values[i].1 = v,
            Err(i) => self.values.insert(i, (field, v)),
        }
        self
    }

    /// Builder-style [`HeaderValues::set`].
    #[must_use]
    pub fn with(mut self, field: MatchFieldKind, value: u128) -> Self {
        self.set(field, value);
        self
    }

    /// The value of `field`, if the packet carries it.
    #[must_use]
    pub fn get(&self, field: MatchFieldKind) -> Option<u128> {
        self.values.binary_search_by_key(&field, |(f, _)| *f).map(|i| self.values[i].1).ok()
    }

    /// Removes a field (used when popping tags).
    pub fn unset(&mut self, field: MatchFieldKind) {
        if let Ok(i) = self.values.binary_search_by_key(&field, |(f, _)| *f) {
            self.values.remove(i);
        }
    }

    /// Whether the packet carries `field`.
    #[must_use]
    pub fn contains(&self, field: MatchFieldKind) -> bool {
        self.get(field).is_some()
    }

    /// All present fields with their values, sorted by field.
    #[must_use]
    pub fn fields(&self) -> &[(MatchFieldKind, u128)] {
        &self.values
    }

    /// Number of present fields.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no fields are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for HeaderValues {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (field, v) in &self.values {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{field}={v:#x}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<(MatchFieldKind, u128)> for HeaderValues {
    fn from_iter<I: IntoIterator<Item = (MatchFieldKind, u128)>>(iter: I) -> Self {
        let mut h = HeaderValues::new();
        for (f, v) in iter {
            h.set(f, v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::MatchFieldKind::*;

    #[test]
    fn set_get_roundtrip() {
        let mut h = HeaderValues::new();
        h.set(VlanVid, 100).set(Ipv4Dst, 0x0A000001);
        assert_eq!(h.get(VlanVid), Some(100));
        assert_eq!(h.get(Ipv4Dst), Some(0x0A000001));
        assert_eq!(h.get(TcpDst), None);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn set_masks_to_field_width() {
        let mut h = HeaderValues::new();
        h.set(VlanVid, 0xFFFF); // 13-bit field
        assert_eq!(h.get(VlanVid), Some(0x1FFF));
    }

    #[test]
    fn set_overwrites() {
        let h = HeaderValues::new().with(VlanVid, 1).with(VlanVid, 2);
        assert_eq!(h.get(VlanVid), Some(2));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn unset_removes() {
        let mut h = HeaderValues::new().with(VlanVid, 1);
        assert!(h.contains(VlanVid));
        h.unset(VlanVid);
        assert!(!h.contains(VlanVid));
        h.unset(VlanVid); // idempotent
    }

    #[test]
    fn fields_sorted_and_iterable() {
        let h: HeaderValues =
            [(Ipv4Dst, 5u128), (InPort, 3u128), (VlanVid, 7u128)].into_iter().collect();
        let keys: Vec<_> = h.fields().iter().map(|(f, _)| *f).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn display_lists_fields() {
        let h = HeaderValues::new().with(VlanVid, 0x64);
        assert_eq!(h.to_string(), "vlan_vid=0x64");
    }
}
