//! The OpenFlow multi-table pipeline (reference implementation).
//!
//! Packets enter at table 0 and follow `Goto-Table` instructions forward
//! through numbered tables, accumulating an action set via `Write-Actions`
//! and metadata via `Write-Metadata`. When no `Goto-Table` fires, the action
//! set executes. A table miss without a table-miss entry punts the packet to
//! the controller — the behaviour the paper assigns to unmatched headers
//! (*"the instruction is 'Send to controller'"*).
//!
//! This implementation uses linear-search tables ([`crate::FlowTable`]) and
//! is the semantic oracle for the decomposition-based architecture in
//! `mtl-core`.

use crate::actions::{port, Action, ActionSet};
use crate::entry::FlowEntry;
use crate::error::OflowError;
use crate::fields::MatchFieldKind;
use crate::header::HeaderValues;
use crate::instructions::{in_exec_order, Instruction};
use crate::table::{FlowTable, TableId};

/// Final disposition of a processed packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Forward out of the given port.
    Output(u32),
    /// Punt to the controller (table miss or explicit CONTROLLER output).
    ToController,
    /// Dropped (empty action set or explicit drop).
    Drop,
}

/// Record of one table visited during processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableHit {
    /// Table visited.
    pub table: TableId,
    /// Priority of the matched entry, `None` on miss.
    pub matched_priority: Option<u16>,
    /// Cookie of the matched entry, `None` on miss.
    pub cookie: Option<u64>,
}

/// Outcome of pipeline processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineResult {
    /// Final disposition.
    pub verdict: Verdict,
    /// The action set as it stood when the pipeline ended.
    pub action_set: ActionSet,
    /// Tables visited, in order.
    pub path: Vec<TableHit>,
    /// Metadata value when the pipeline ended.
    pub metadata: u64,
    /// Header as rewritten by apply-actions/set-field during traversal.
    pub final_header: HeaderValues,
}

/// A multi-table OpenFlow pipeline.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    tables: Vec<FlowTable>,
}

impl Pipeline {
    /// Creates a pipeline with `n` empty tables numbered `0..n`.
    #[must_use]
    pub fn with_tables(n: u8) -> Self {
        Self { tables: (0..n).map(FlowTable::new).collect() }
    }

    /// Access a table by id.
    #[must_use]
    pub fn table(&self, id: TableId) -> Option<&FlowTable> {
        self.tables.get(id as usize)
    }

    /// Mutable access to a table by id.
    pub fn table_mut(&mut self, id: TableId) -> Option<&mut FlowTable> {
        self.tables.get_mut(id as usize)
    }

    /// Number of tables.
    #[must_use]
    pub fn num_tables(&self) -> u8 {
        self.tables.len() as u8
    }

    /// Total flow entries across tables.
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.tables.iter().map(FlowTable::len).sum()
    }

    /// Adds an entry to a table, validating any `Goto-Table` targets
    /// (must exist and be strictly greater than the entry's table).
    pub fn add_flow(&mut self, table: TableId, entry: FlowEntry) -> Result<(), OflowError> {
        if table as usize >= self.tables.len() {
            return Err(OflowError::TableOutOfRange(table));
        }
        if let Some(target) = entry.goto_target() {
            if target <= table {
                return Err(OflowError::BackwardGoto { from: table, to: target });
            }
            if target as usize >= self.tables.len() {
                return Err(OflowError::NoSuchTable(target));
            }
        }
        self.tables[table as usize].add(entry, false)
    }

    /// Processes a packet header through the pipeline, updating match
    /// counters on the entries hit.
    pub fn process(&mut self, header: &HeaderValues) -> PipelineResult {
        let mut header = header.clone();
        let mut action_set = ActionSet::new();
        let mut metadata: u64 = header.get(MatchFieldKind::Metadata).unwrap_or(0) as u64;
        let mut path = Vec::new();
        let mut next: Option<TableId> = if self.tables.is_empty() { None } else { Some(0) };

        while let Some(tid) = next {
            next = None;
            header.set(MatchFieldKind::Metadata, u128::from(metadata));
            let table = &mut self.tables[tid as usize];
            let Some(entry) = table.lookup_mut(&header) else {
                // Table miss with no table-miss entry: send to controller.
                path.push(TableHit { table: tid, matched_priority: None, cookie: None });
                return PipelineResult {
                    verdict: Verdict::ToController,
                    action_set,
                    path,
                    metadata,
                    final_header: header,
                };
            };
            entry.counters.packets += 1;
            path.push(TableHit {
                table: tid,
                matched_priority: Some(entry.priority),
                cookie: Some(entry.cookie),
            });
            let instructions = entry.instructions.clone();
            for ins in in_exec_order(&instructions) {
                match ins {
                    Instruction::Meter(_) => {}
                    Instruction::ApplyActions(acts) => {
                        for a in acts {
                            apply_immediate(a, &mut header);
                        }
                    }
                    Instruction::ClearActions => action_set.clear(),
                    Instruction::WriteActions(acts) => action_set.write_all(acts),
                    Instruction::WriteMetadata { value, mask } => {
                        metadata = (metadata & !mask) | (value & mask);
                    }
                    Instruction::GotoTable(t) => next = Some(*t),
                }
            }
        }

        // Pipeline ended: execute the action set.
        let mut verdict = Verdict::Drop;
        for a in action_set.in_order() {
            match a {
                Action::Output(p) if *p == port::CONTROLLER => {
                    verdict = Verdict::ToController;
                }
                Action::Output(p) => verdict = Verdict::Output(*p),
                Action::Drop => verdict = Verdict::Drop,
                other => apply_immediate(other, &mut header),
            }
        }
        PipelineResult { verdict, action_set, path, metadata, final_header: header }
    }
}

/// Applies a header-rewriting action immediately (apply-actions semantics or
/// action-set execution).
fn apply_immediate(action: &Action, header: &mut HeaderValues) {
    match action {
        Action::SetField { field, value } => {
            header.set(*field, *value);
        }
        Action::PushVlan(_) => {
            header.set(MatchFieldKind::VlanVid, 0);
            header.set(MatchFieldKind::VlanPcp, 0);
        }
        Action::PopVlan => {
            header.unset(MatchFieldKind::VlanVid);
            header.unset(MatchFieldKind::VlanPcp);
        }
        Action::PushMpls(_) => {
            header.set(MatchFieldKind::MplsLabel, 0);
            header.set(MatchFieldKind::MplsBos, 1);
        }
        Action::PopMpls(_) => {
            header.unset(MatchFieldKind::MplsLabel);
            header.unset(MatchFieldKind::MplsBos);
            header.unset(MatchFieldKind::MplsTc);
        }
        Action::DecNwTtl | Action::SetQueue(_) | Action::Group(_) => {}
        Action::Output(_) | Action::Drop => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::MatchFieldKind::*;
    use crate::flow_match::FlowMatch;

    /// Two-table MAC-learning style pipeline: table 0 matches VLAN and
    /// jumps to table 1; table 1 matches eth_dst and outputs.
    fn mac_pipeline() -> Pipeline {
        let mut p = Pipeline::with_tables(2);
        p.add_flow(
            0,
            FlowEntry::new(
                10,
                FlowMatch::any().with_exact(VlanVid, 100).unwrap(),
                vec![
                    Instruction::GotoTable(1),
                    Instruction::WriteMetadata { value: 7, mask: 0xFF },
                ],
            ),
        )
        .unwrap();
        p.add_flow(
            1,
            FlowEntry::new(
                10,
                FlowMatch::any().with_exact(EthDst, 0xAABB_CCDD_EEFF).unwrap(),
                vec![Instruction::WriteActions(vec![Action::Output(3)])],
            ),
        )
        .unwrap();
        p
    }

    #[test]
    fn two_table_match_outputs() {
        let mut p = mac_pipeline();
        let h = HeaderValues::new().with(VlanVid, 100).with(EthDst, 0xAABB_CCDD_EEFF);
        let r = p.process(&h);
        assert_eq!(r.verdict, Verdict::Output(3));
        assert_eq!(r.path.len(), 2);
        assert_eq!(r.metadata, 7);
        assert_eq!(r.path[0].table, 0);
        assert_eq!(r.path[1].table, 1);
    }

    #[test]
    fn miss_in_first_table_goes_to_controller() {
        let mut p = mac_pipeline();
        let h = HeaderValues::new().with(VlanVid, 999).with(EthDst, 1);
        let r = p.process(&h);
        assert_eq!(r.verdict, Verdict::ToController);
        assert_eq!(r.path.len(), 1);
        assert_eq!(r.path[0].matched_priority, None);
    }

    #[test]
    fn miss_in_second_table_goes_to_controller() {
        let mut p = mac_pipeline();
        let h = HeaderValues::new().with(VlanVid, 100).with(EthDst, 42);
        let r = p.process(&h);
        assert_eq!(r.verdict, Verdict::ToController);
        assert_eq!(r.path.len(), 2);
    }

    #[test]
    fn table_miss_entry_overrides_controller_punt() {
        let mut p = mac_pipeline();
        // Add a table-miss entry that floods instead.
        p.add_flow(
            0,
            FlowEntry::new(
                0,
                FlowMatch::any(),
                vec![Instruction::WriteActions(vec![Action::Output(port::FLOOD)])],
            ),
        )
        .unwrap();
        let h = HeaderValues::new().with(VlanVid, 999);
        let r = p.process(&h);
        assert_eq!(r.verdict, Verdict::Output(port::FLOOD));
    }

    #[test]
    fn backward_goto_rejected() {
        let mut p = Pipeline::with_tables(2);
        let e = FlowEntry::new(1, FlowMatch::any(), vec![Instruction::GotoTable(0)]);
        assert_eq!(p.add_flow(1, e,), Err(OflowError::BackwardGoto { from: 1, to: 0 }));
        let e = FlowEntry::new(1, FlowMatch::any(), vec![Instruction::GotoTable(5)]);
        assert_eq!(p.add_flow(0, e), Err(OflowError::NoSuchTable(5)));
        let e = FlowEntry::new(1, FlowMatch::any(), vec![]);
        assert_eq!(p.add_flow(9, e), Err(OflowError::TableOutOfRange(9)));
    }

    #[test]
    fn counters_increment_on_match() {
        let mut p = mac_pipeline();
        let h = HeaderValues::new().with(VlanVid, 100).with(EthDst, 0xAABB_CCDD_EEFF);
        p.process(&h);
        p.process(&h);
        assert_eq!(p.table(0).unwrap().entries()[0].counters.packets, 2);
        assert_eq!(p.table(1).unwrap().entries()[0].counters.packets, 2);
    }

    #[test]
    fn metadata_visible_to_later_tables() {
        let mut p = Pipeline::with_tables(2);
        p.add_flow(
            0,
            FlowEntry::new(
                1,
                FlowMatch::any(),
                vec![
                    Instruction::WriteMetadata { value: 0xAB, mask: 0xFF },
                    Instruction::GotoTable(1),
                ],
            ),
        )
        .unwrap();
        p.add_flow(
            1,
            FlowEntry::new(
                1,
                FlowMatch::any().with_exact(Metadata, 0xAB).unwrap(),
                vec![Instruction::WriteActions(vec![Action::Output(9)])],
            ),
        )
        .unwrap();
        let r = p.process(&HeaderValues::new());
        assert_eq!(r.verdict, Verdict::Output(9));
    }

    #[test]
    fn apply_actions_rewrite_header_mid_pipeline() {
        let mut p = Pipeline::with_tables(2);
        p.add_flow(
            0,
            FlowEntry::new(
                1,
                FlowMatch::any(),
                vec![
                    Instruction::ApplyActions(vec![Action::SetField { field: VlanVid, value: 7 }]),
                    Instruction::GotoTable(1),
                ],
            ),
        )
        .unwrap();
        p.add_flow(
            1,
            FlowEntry::new(
                1,
                FlowMatch::any().with_exact(VlanVid, 7).unwrap(),
                vec![Instruction::WriteActions(vec![Action::Output(1)])],
            ),
        )
        .unwrap();
        let r = p.process(&HeaderValues::new().with(VlanVid, 1));
        assert_eq!(r.verdict, Verdict::Output(1));
        assert_eq!(r.final_header.get(VlanVid), Some(7));
    }

    #[test]
    fn clear_actions_drops() {
        let mut p = Pipeline::with_tables(2);
        p.add_flow(
            0,
            FlowEntry::new(
                1,
                FlowMatch::any(),
                vec![Instruction::WriteActions(vec![Action::Output(1)]), Instruction::GotoTable(1)],
            ),
        )
        .unwrap();
        p.add_flow(1, FlowEntry::new(1, FlowMatch::any(), vec![Instruction::ClearActions]))
            .unwrap();
        let r = p.process(&HeaderValues::new());
        assert_eq!(r.verdict, Verdict::Drop);
        assert!(r.action_set.is_empty());
    }

    #[test]
    fn empty_pipeline_drops() {
        let mut p = Pipeline::default();
        let r = p.process(&HeaderValues::new());
        assert_eq!(r.verdict, Verdict::Drop);
        assert!(r.path.is_empty());
    }

    #[test]
    fn explicit_controller_output() {
        let mut p = Pipeline::with_tables(1);
        p.add_flow(
            0,
            FlowEntry::new(
                0,
                FlowMatch::any(),
                vec![Instruction::WriteActions(vec![Action::Output(port::CONTROLLER)])],
            ),
        )
        .unwrap();
        let r = p.process(&HeaderValues::new());
        assert_eq!(r.verdict, Verdict::ToController);
    }

    #[test]
    fn vlan_pop_unsets_fields() {
        let mut p = Pipeline::with_tables(1);
        p.add_flow(
            0,
            FlowEntry::new(
                1,
                FlowMatch::any(),
                vec![Instruction::ApplyActions(vec![Action::PopVlan])],
            ),
        )
        .unwrap();
        let r = p.process(&HeaderValues::new().with(VlanVid, 5).with(VlanPcp, 2));
        assert!(!r.final_header.contains(VlanVid));
        assert!(!r.final_header.contains(VlanPcp));
    }
}
