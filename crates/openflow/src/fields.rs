//! OpenFlow v1.3 OXM match fields.
//!
//! OpenFlow v1.3 defines 39 matchable packet header fields plus the 64-bit
//! `metadata` register the pipeline uses to pass state between tables. Each
//! field has a fixed width and, per the paper's Table II, a *matching
//! method* its lookups require: Exact Matching (EM), Range Matching (RM) or
//! Longest Prefix Matching (LPM, "wildcard matching" in the paper).

use std::fmt;

/// Matching method a field's lookup requires (paper Table II, column 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchMethod {
    /// Exact Matching: all bits of the header field must equal the entry.
    Exact,
    /// Range Matching: the header value must fall in `[lo, hi]`; the
    /// narrowest matching range wins.
    Range,
    /// Longest Prefix Matching: the entry with the most matching leading
    /// bits wins.
    Lpm,
}

impl fmt::Display for MatchMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MatchMethod::Exact => "Exact Matching (EM)",
            MatchMethod::Range => "Wildcard matching (RM)",
            MatchMethod::Lpm => "Wildcard matching (LPM)",
        };
        f.write_str(s)
    }
}

macro_rules! match_fields {
    ($( $(#[$doc:meta])* $variant:ident => ($name:literal, $bits:literal, $method:ident, $common:literal) ),+ $(,)?) => {
        /// An OXM match field of OpenFlow v1.3.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[allow(missing_docs)]
        pub enum MatchFieldKind {
            $( $(#[$doc])* $variant ),+
        }

        impl MatchFieldKind {
            /// Every match field, including `Metadata`.
            pub const ALL: &'static [MatchFieldKind] = &[ $(MatchFieldKind::$variant),+ ];

            /// Canonical lowercase name (OXM-style).
            #[must_use]
            pub fn name(self) -> &'static str {
                match self { $(MatchFieldKind::$variant => $name),+ }
            }

            /// Field width in bits.
            #[must_use]
            pub fn bit_width(self) -> u32 {
                match self { $(MatchFieldKind::$variant => $bits),+ }
            }

            /// Matching method the field's lookup requires.
            #[must_use]
            pub fn match_method(self) -> MatchMethod {
                match self { $(MatchFieldKind::$variant => MatchMethod::$method),+ }
            }

            /// Whether the field is one of the paper's 15 "common matching
            /// fields supporting applications" (Table II).
            #[must_use]
            pub fn is_common(self) -> bool {
                match self { $(MatchFieldKind::$variant => $common),+ }
            }
        }
    };
}

match_fields! {
    /// Switch ingress port.
    InPort => ("in_port", 32, Exact, true),
    /// Physical ingress port (when `in_port` is logical).
    InPhyPort => ("in_phy_port", 32, Exact, false),
    /// Pipeline metadata register (table-to-table state).
    Metadata => ("metadata", 64, Exact, false),
    /// Ethernet destination address.
    EthDst => ("eth_dst", 48, Lpm, true),
    /// Ethernet source address.
    EthSrc => ("eth_src", 48, Lpm, true),
    /// Ethernet type (after VLAN tags).
    EthType => ("eth_type", 16, Exact, true),
    /// VLAN identifier.
    VlanVid => ("vlan_vid", 13, Exact, true),
    /// VLAN priority (PCP).
    VlanPcp => ("vlan_pcp", 3, Exact, true),
    /// IP DSCP (6 bits of the ToS byte).
    IpDscp => ("ip_dscp", 6, Exact, true),
    /// IP ECN (2 bits of the ToS byte).
    IpEcn => ("ip_ecn", 2, Exact, false),
    /// IP protocol number.
    IpProto => ("ip_proto", 8, Exact, true),
    /// IPv4 source address.
    Ipv4Src => ("ipv4_src", 32, Lpm, true),
    /// IPv4 destination address.
    Ipv4Dst => ("ipv4_dst", 32, Lpm, true),
    /// TCP source port.
    TcpSrc => ("tcp_src", 16, Range, true),
    /// TCP destination port.
    TcpDst => ("tcp_dst", 16, Range, true),
    /// UDP source port.
    UdpSrc => ("udp_src", 16, Range, false),
    /// UDP destination port.
    UdpDst => ("udp_dst", 16, Range, false),
    /// SCTP source port.
    SctpSrc => ("sctp_src", 16, Range, false),
    /// SCTP destination port.
    SctpDst => ("sctp_dst", 16, Range, false),
    /// ICMPv4 type.
    Icmpv4Type => ("icmpv4_type", 8, Exact, false),
    /// ICMPv4 code.
    Icmpv4Code => ("icmpv4_code", 8, Exact, false),
    /// ARP opcode.
    ArpOp => ("arp_op", 16, Exact, false),
    /// ARP source protocol address.
    ArpSpa => ("arp_spa", 32, Lpm, false),
    /// ARP target protocol address.
    ArpTpa => ("arp_tpa", 32, Lpm, false),
    /// ARP source hardware address.
    ArpSha => ("arp_sha", 48, Exact, false),
    /// ARP target hardware address.
    ArpTha => ("arp_tha", 48, Exact, false),
    /// IPv6 source address.
    Ipv6Src => ("ipv6_src", 128, Lpm, true),
    /// IPv6 destination address.
    Ipv6Dst => ("ipv6_dst", 128, Lpm, true),
    /// IPv6 flow label.
    Ipv6Flabel => ("ipv6_flabel", 20, Exact, false),
    /// ICMPv6 type.
    Icmpv6Type => ("icmpv6_type", 8, Exact, false),
    /// ICMPv6 code.
    Icmpv6Code => ("icmpv6_code", 8, Exact, false),
    /// IPv6 neighbour-discovery target address.
    Ipv6NdTarget => ("ipv6_nd_target", 128, Exact, false),
    /// IPv6 ND source link-layer address.
    Ipv6NdSll => ("ipv6_nd_sll", 48, Exact, false),
    /// IPv6 ND target link-layer address.
    Ipv6NdTll => ("ipv6_nd_tll", 48, Exact, false),
    /// MPLS label.
    MplsLabel => ("mpls_label", 20, Exact, true),
    /// MPLS traffic class.
    MplsTc => ("mpls_tc", 3, Exact, false),
    /// MPLS bottom-of-stack bit.
    MplsBos => ("mpls_bos", 1, Exact, false),
    /// PBB I-SID.
    PbbIsid => ("pbb_isid", 24, Exact, false),
    /// Logical tunnel id.
    TunnelId => ("tunnel_id", 64, Exact, false),
    /// IPv6 extension header pseudo-field.
    Ipv6Exthdr => ("ipv6_exthdr", 9, Exact, false),
}

impl MatchFieldKind {
    /// The 39 matchable fields of OpenFlow v1.3 (everything except the
    /// internal `metadata` register) — the count the paper quotes in §III.A.
    #[must_use]
    pub fn matchable() -> Vec<MatchFieldKind> {
        Self::ALL.iter().copied().filter(|f| *f != MatchFieldKind::Metadata).collect()
    }

    /// The paper's Table II rows: the 15 common fields, in table order.
    #[must_use]
    pub fn table2_fields() -> [MatchFieldKind; 15] {
        [
            MatchFieldKind::InPort,
            MatchFieldKind::EthSrc,
            MatchFieldKind::EthDst,
            MatchFieldKind::EthType,
            MatchFieldKind::VlanVid,
            MatchFieldKind::VlanPcp,
            MatchFieldKind::MplsLabel,
            MatchFieldKind::Ipv4Src,
            MatchFieldKind::Ipv4Dst,
            MatchFieldKind::Ipv6Src,
            MatchFieldKind::Ipv6Dst,
            MatchFieldKind::IpProto,
            MatchFieldKind::IpDscp,
            MatchFieldKind::TcpSrc,
            MatchFieldKind::TcpDst,
        ]
    }

    /// Mask covering the field's width (`bit_width` low bits set).
    #[must_use]
    pub fn value_mask(self) -> u128 {
        let w = self.bit_width();
        if w >= 128 {
            u128::MAX
        } else {
            (1u128 << w) - 1
        }
    }

    /// Looks a field up by its canonical name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<MatchFieldKind> {
        Self::ALL.iter().copied().find(|f| f.name() == name)
    }
}

impl fmt::Display for MatchFieldKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_nine_matchable_fields_plus_metadata() {
        // §III.A: "The number of matching header fields ... is 39
        // (excluding metadata)".
        assert_eq!(MatchFieldKind::matchable().len(), 39);
        assert_eq!(MatchFieldKind::ALL.len(), 40);
        assert_eq!(MatchFieldKind::Metadata.bit_width(), 64);
    }

    #[test]
    fn fifteen_common_fields() {
        let common: Vec<_> = MatchFieldKind::ALL.iter().filter(|f| f.is_common()).collect();
        assert_eq!(common.len(), 15);
        assert_eq!(MatchFieldKind::table2_fields().len(), 15);
        for f in MatchFieldKind::table2_fields() {
            assert!(f.is_common(), "{f} should be common");
        }
    }

    #[test]
    fn table2_widths_and_methods_match_paper() {
        use MatchFieldKind::*;
        let expect: &[(MatchFieldKind, u32, MatchMethod)] = &[
            (InPort, 32, MatchMethod::Exact),
            (EthSrc, 48, MatchMethod::Lpm),
            (EthDst, 48, MatchMethod::Lpm),
            (EthType, 16, MatchMethod::Exact),
            (VlanVid, 13, MatchMethod::Exact),
            (VlanPcp, 3, MatchMethod::Exact),
            (MplsLabel, 20, MatchMethod::Exact),
            (Ipv4Src, 32, MatchMethod::Lpm),
            (Ipv4Dst, 32, MatchMethod::Lpm),
            (Ipv6Src, 128, MatchMethod::Lpm),
            (Ipv6Dst, 128, MatchMethod::Lpm),
            (IpProto, 8, MatchMethod::Exact),
            (IpDscp, 6, MatchMethod::Exact),
            (TcpSrc, 16, MatchMethod::Range),
            (TcpDst, 16, MatchMethod::Range),
        ];
        for &(f, bits, method) in expect {
            assert_eq!(f.bit_width(), bits, "{f} width");
            assert_eq!(f.match_method(), method, "{f} method");
        }
    }

    #[test]
    fn names_round_trip() {
        for &f in MatchFieldKind::ALL {
            assert_eq!(MatchFieldKind::from_name(f.name()), Some(f));
        }
        assert_eq!(MatchFieldKind::from_name("bogus"), None);
    }

    #[test]
    fn value_masks_cover_width() {
        assert_eq!(MatchFieldKind::VlanVid.value_mask(), 0x1FFF);
        assert_eq!(MatchFieldKind::EthDst.value_mask(), 0xFFFF_FFFF_FFFF);
        assert_eq!(MatchFieldKind::Ipv6Src.value_mask(), u128::MAX);
        assert_eq!(MatchFieldKind::MplsBos.value_mask(), 1);
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(MatchFieldKind::Ipv4Dst.to_string(), "ipv4_dst");
        assert!(MatchMethod::Lpm.to_string().contains("LPM"));
    }
}
