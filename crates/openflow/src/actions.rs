//! OpenFlow actions.
//!
//! The subset of OpenFlow v1.3 actions the paper's use cases exercise
//! (forwarding, flooding, controller punting, header rewriting, tag
//! push/pop), plus the *action set* semantics used by `Write-Actions`:
//! one action per type, applied in the specification's fixed order at the
//! end of the pipeline.

use crate::fields::MatchFieldKind;
use std::fmt;

/// Reserved OpenFlow port numbers (subset).
pub mod port {
    /// Flood to all ports except ingress.
    pub const FLOOD: u32 = 0xFFFF_FFFB;
    /// Send to all ports.
    pub const ALL: u32 = 0xFFFF_FFFC;
    /// Punt to the controller.
    pub const CONTROLLER: u32 = 0xFFFF_FFFD;
    /// Process locally on the switch.
    pub const LOCAL: u32 = 0xFFFF_FFFE;
}

/// A single OpenFlow action.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// Forward out of a port (possibly a reserved port).
    Output(u32),
    /// Drop the packet (encoded in OpenFlow as an empty action set; explicit
    /// here for clarity).
    Drop,
    /// Rewrite a header field.
    SetField {
        /// Field to rewrite.
        field: MatchFieldKind,
        /// New value (masked to field width on application).
        value: u128,
    },
    /// Push an 802.1Q VLAN tag with the given TPID (ethertype).
    PushVlan(u16),
    /// Pop the outermost VLAN tag.
    PopVlan,
    /// Push an MPLS shim with the given ethertype.
    PushMpls(u16),
    /// Pop the outermost MPLS shim.
    PopMpls(u16),
    /// Set the output queue.
    SetQueue(u32),
    /// Process through a group table entry.
    Group(u32),
    /// Decrement IP TTL.
    DecNwTtl,
}

impl Action {
    /// Action-set slot order per OpenFlow v1.3 §5.10: when the action set is
    /// executed, actions run in this fixed order regardless of write order.
    #[must_use]
    pub fn set_order(&self) -> u8 {
        match self {
            Action::PopVlan | Action::PopMpls(_) => 0,
            Action::PushMpls(_) => 1,
            Action::PushVlan(_) => 2,
            Action::DecNwTtl => 3,
            Action::SetField { .. } => 4,
            Action::SetQueue(_) => 5,
            Action::Group(_) => 6,
            Action::Output(_) => 7,
            Action::Drop => 8,
        }
    }

    /// The slot key used for "one action per type" replacement semantics.
    /// `SetField` slots are per-field.
    #[must_use]
    pub fn slot_key(&self) -> (u8, u32) {
        match self {
            Action::SetField { field, .. } => (4, *field as u32),
            other => (other.set_order(), 0),
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Output(p) if *p == port::CONTROLLER => write!(f, "output:CONTROLLER"),
            Action::Output(p) if *p == port::FLOOD => write!(f, "output:FLOOD"),
            Action::Output(p) => write!(f, "output:{p}"),
            Action::Drop => write!(f, "drop"),
            Action::SetField { field, value } => write!(f, "set_field:{field}={value:#x}"),
            Action::PushVlan(t) => write!(f, "push_vlan:{t:#x}"),
            Action::PopVlan => write!(f, "pop_vlan"),
            Action::PushMpls(t) => write!(f, "push_mpls:{t:#x}"),
            Action::PopMpls(t) => write!(f, "pop_mpls:{t:#x}"),
            Action::SetQueue(q) => write!(f, "set_queue:{q}"),
            Action::Group(g) => write!(f, "group:{g}"),
            Action::DecNwTtl => write!(f, "dec_nw_ttl"),
        }
    }
}

/// An OpenFlow *action set*: at most one action per slot, executed in
/// specification order when the pipeline ends.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActionSet {
    actions: Vec<Action>, // kept sorted by slot_key
}

impl ActionSet {
    /// Creates an empty action set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `Write-Actions` semantics: each action replaces any previous action
    /// in the same slot.
    pub fn write(&mut self, action: Action) {
        let key = action.slot_key();
        match self.actions.binary_search_by_key(&key, Action::slot_key) {
            Ok(i) => self.actions[i] = action,
            Err(i) => self.actions.insert(i, action),
        }
    }

    /// Writes every action of `actions` in order.
    pub fn write_all(&mut self, actions: &[Action]) {
        for a in actions {
            self.write(a.clone());
        }
    }

    /// `Clear-Actions` semantics.
    pub fn clear(&mut self) {
        self.actions.clear();
    }

    /// The actions in execution order.
    #[must_use]
    pub fn in_order(&self) -> &[Action] {
        &self.actions
    }

    /// The output port the set forwards to, if any.
    #[must_use]
    pub fn output_port(&self) -> Option<u32> {
        self.actions.iter().find_map(|a| match a {
            Action::Output(p) => Some(*p),
            _ => None,
        })
    }

    /// Whether the set is empty (OpenFlow: packet is dropped).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

impl fmt::Display for ActionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.actions.is_empty() {
            return write!(f, "<empty: drop>");
        }
        let mut first = true;
        for a in &self.actions {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_replaces_same_slot() {
        let mut s = ActionSet::new();
        s.write(Action::Output(1));
        s.write(Action::Output(2));
        assert_eq!(s.in_order(), &[Action::Output(2)]);
        assert_eq!(s.output_port(), Some(2));
    }

    #[test]
    fn set_field_slots_are_per_field() {
        use crate::fields::MatchFieldKind::*;
        let mut s = ActionSet::new();
        s.write(Action::SetField { field: EthDst, value: 1 });
        s.write(Action::SetField { field: EthSrc, value: 2 });
        s.write(Action::SetField { field: EthDst, value: 3 });
        assert_eq!(s.in_order().len(), 2);
    }

    #[test]
    fn execution_order_is_spec_order() {
        let mut s = ActionSet::new();
        s.write(Action::Output(7));
        s.write(Action::PopVlan);
        s.write(Action::DecNwTtl);
        let order: Vec<u8> = s.in_order().iter().map(Action::set_order).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
        assert_eq!(s.in_order().first(), Some(&Action::PopVlan));
        assert_eq!(s.in_order().last(), Some(&Action::Output(7)));
    }

    #[test]
    fn clear_empties_set() {
        let mut s = ActionSet::new();
        s.write(Action::Output(1));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.output_port(), None);
    }

    #[test]
    fn display_formats() {
        let mut s = ActionSet::new();
        assert_eq!(s.to_string(), "<empty: drop>");
        s.write(Action::Output(super::port::CONTROLLER));
        assert_eq!(s.to_string(), "output:CONTROLLER");
    }
}
