//! Flow entries.
//!
//! A [`FlowEntry`] pairs a [`FlowMatch`] with a priority, a cookie, an
//! instruction list and counters — the switch-side representation of an
//! OpenFlow flow.

use crate::flow_match::FlowMatch;
use crate::instructions::Instruction;
use std::fmt;

/// Per-entry statistics counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Packets that matched this entry.
    pub packets: u64,
    /// Bytes of those packets (when known).
    pub bytes: u64,
}

/// A flow entry in a flow table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEntry {
    /// Match priority; higher wins. Table-miss entries use priority 0 with
    /// an empty match.
    pub priority: u16,
    /// The multi-field match.
    pub flow_match: FlowMatch,
    /// Instructions executed on match.
    pub instructions: Vec<Instruction>,
    /// Controller-assigned opaque identifier.
    pub cookie: u64,
    /// Match counters.
    pub counters: Counters,
}

impl FlowEntry {
    /// Creates an entry with the given priority, match and instructions.
    #[must_use]
    pub fn new(priority: u16, flow_match: FlowMatch, instructions: Vec<Instruction>) -> Self {
        Self { priority, flow_match, instructions, cookie: 0, counters: Counters::default() }
    }

    /// Builder-style cookie assignment.
    #[must_use]
    pub fn with_cookie(mut self, cookie: u64) -> Self {
        self.cookie = cookie;
        self
    }

    /// Whether this is a table-miss entry (priority 0, match-all).
    #[must_use]
    pub fn is_table_miss(&self) -> bool {
        self.priority == 0 && self.flow_match.parts().iter().all(|(_, m)| m.is_wildcard())
    }

    /// The `GotoTable` target among this entry's instructions, if any.
    #[must_use]
    pub fn goto_target(&self) -> Option<u8> {
        self.instructions.iter().find_map(Instruction::goto_target)
    }
}

impl fmt::Display for FlowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio={} match[{}] ->", self.priority, self.flow_match)?;
        for i in &self.instructions {
            write!(f, " {i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::Action;
    use crate::fields::MatchFieldKind;

    #[test]
    fn table_miss_detection() {
        let miss = FlowEntry::new(0, FlowMatch::any(), vec![]);
        assert!(miss.is_table_miss());
        let not_miss = FlowEntry::new(1, FlowMatch::any(), vec![]);
        assert!(!not_miss.is_table_miss());
        let constrained = FlowEntry::new(
            0,
            FlowMatch::any().with_exact(MatchFieldKind::VlanVid, 1).unwrap(),
            vec![],
        );
        assert!(!constrained.is_table_miss());
    }

    #[test]
    fn goto_target_found() {
        let e = FlowEntry::new(
            5,
            FlowMatch::any(),
            vec![Instruction::WriteActions(vec![Action::Output(1)]), Instruction::GotoTable(2)],
        );
        assert_eq!(e.goto_target(), Some(2));
    }

    #[test]
    fn display_includes_priority_and_instructions() {
        let e = FlowEntry::new(7, FlowMatch::any(), vec![Instruction::GotoTable(1)]);
        let s = e.to_string();
        assert!(s.contains("prio=7"), "{s}");
        assert!(s.contains("goto_table:1"), "{s}");
    }
}
