//! Per-field match specifications and multi-field flow matches.
//!
//! A [`FieldMatch`] is the match a single flow-entry field places on one
//! header field: exact value, prefix (LPM wildcard), range, or fully
//! wildcarded. A [`FlowMatch`] combines field matches over any subset of the
//! OXM fields; fields not mentioned are wildcarded, exactly as in OpenFlow.

use crate::error::OflowError;
use crate::fields::{MatchFieldKind, MatchMethod};
use crate::header::HeaderValues;
use std::fmt;

/// Match specification for a single field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FieldMatch {
    /// All field bits must equal `value`.
    Exact(u128),
    /// The top `len` bits must equal the top `len` bits of `value`
    /// (`len == 0` matches anything; bits of `value` below the prefix are
    /// stored zeroed).
    Prefix {
        /// Prefix value, aligned to the field's full width.
        value: u128,
        /// Number of significant leading bits.
        len: u32,
    },
    /// The value must lie in `lo..=hi` (inclusive).
    Range {
        /// Inclusive lower bound.
        lo: u128,
        /// Inclusive upper bound.
        hi: u128,
    },
    /// Wildcard: matches any value.
    Any,
}

impl FieldMatch {
    /// Validates the match against a field's width and constructs the
    /// canonical form (prefix values masked, full-width prefixes kept as
    /// prefixes).
    pub fn checked(self, field: MatchFieldKind) -> Result<FieldMatch, OflowError> {
        let mask = field.value_mask();
        let width = field.bit_width();
        match self {
            FieldMatch::Exact(v) => {
                if v & !mask != 0 {
                    return Err(OflowError::ValueOutOfRange { field, value: v });
                }
                Ok(FieldMatch::Exact(v))
            }
            FieldMatch::Prefix { value, len } => {
                if len > width {
                    return Err(OflowError::PrefixTooLong { field, len });
                }
                if value & !mask != 0 {
                    return Err(OflowError::ValueOutOfRange { field, value });
                }
                Ok(FieldMatch::Prefix { value: value & prefix_mask(width, len), len })
            }
            FieldMatch::Range { lo, hi } => {
                if lo > hi {
                    return Err(OflowError::EmptyRange { field, lo, hi });
                }
                if hi & !mask != 0 {
                    return Err(OflowError::ValueOutOfRange { field, value: hi });
                }
                Ok(FieldMatch::Range { lo, hi })
            }
            FieldMatch::Any => Ok(FieldMatch::Any),
        }
    }

    /// Whether `value` (a full-width field value) satisfies this match,
    /// for a field of `width` bits.
    #[must_use]
    pub fn matches(&self, value: u128, width: u32) -> bool {
        match *self {
            FieldMatch::Exact(v) => value == v,
            FieldMatch::Prefix { value: p, len } => {
                let m = prefix_mask(width, len);
                value & m == p & m
            }
            FieldMatch::Range { lo, hi } => lo <= value && value <= hi,
            FieldMatch::Any => true,
        }
    }

    /// Whether this match places no constraint at all.
    #[must_use]
    pub fn is_wildcard(&self) -> bool {
        matches!(self, FieldMatch::Any) || matches!(self, FieldMatch::Prefix { len: 0, .. })
    }

    /// The matching method this specification needs from a lookup engine.
    #[must_use]
    pub fn needed_method(&self) -> MatchMethod {
        match self {
            FieldMatch::Exact(_) => MatchMethod::Exact,
            FieldMatch::Prefix { .. } | FieldMatch::Any => MatchMethod::Lpm,
            FieldMatch::Range { .. } => MatchMethod::Range,
        }
    }

    /// A specificity score used to order overlapping matches when
    /// priorities tie: exact > longer prefix > narrower range > any.
    #[must_use]
    pub fn specificity(&self, width: u32) -> u32 {
        match *self {
            FieldMatch::Exact(_) => width,
            FieldMatch::Prefix { len, .. } => len,
            FieldMatch::Range { lo, hi } => {
                // Log-scaled narrowness: a singleton range counts as exact.
                let span = hi - lo;
                width.saturating_sub(128 - span.leading_zeros()).min(width)
            }
            FieldMatch::Any => 0,
        }
    }

    /// Whether the two matches can both be satisfied by some value
    /// (used by overlap checking).
    #[must_use]
    pub fn overlaps(&self, other: &FieldMatch, width: u32) -> bool {
        match (*self, *other) {
            (FieldMatch::Any, _) | (_, FieldMatch::Any) => true,
            (FieldMatch::Exact(a), b) => b.matches(a, width),
            (a, FieldMatch::Exact(b)) => a.matches(b, width),
            (
                FieldMatch::Prefix { value: v1, len: l1 },
                FieldMatch::Prefix { value: v2, len: l2 },
            ) => {
                let l = l1.min(l2);
                let m = prefix_mask(width, l);
                v1 & m == v2 & m
            }
            (FieldMatch::Range { lo: a1, hi: b1 }, FieldMatch::Range { lo: a2, hi: b2 }) => {
                a1 <= b2 && a2 <= b1
            }
            (FieldMatch::Prefix { value, len }, FieldMatch::Range { lo, hi })
            | (FieldMatch::Range { lo, hi }, FieldMatch::Prefix { value, len }) => {
                let m = prefix_mask(width, len);
                let p_lo = value & m;
                let p_hi = p_lo | !m & prefix_mask(width, width);
                p_lo <= hi && lo <= p_hi
            }
        }
    }
}

/// Mask with the top `len` bits (of a `width`-bit field) set.
#[must_use]
pub fn prefix_mask(width: u32, len: u32) -> u128 {
    debug_assert!(len <= width && width <= 128);
    if len == 0 {
        0
    } else {
        let full = if width >= 128 { u128::MAX } else { (1u128 << width) - 1 };
        full & !((1u128 << (width - len)) - 1)
    }
}

impl fmt::Display for FieldMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldMatch::Exact(v) => write!(f, "={v:#x}"),
            FieldMatch::Prefix { value, len } => write!(f, "={value:#x}/{len}"),
            FieldMatch::Range { lo, hi } => write!(f, "[{lo}..={hi}]"),
            FieldMatch::Any => write!(f, "*"),
        }
    }
}

/// A multi-field match: a conjunction of [`FieldMatch`]es over distinct
/// fields. Fields not present are wildcarded.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct FlowMatch {
    // Sorted by field for canonical equality/hashing.
    parts: Vec<(MatchFieldKind, FieldMatch)>,
}

impl FlowMatch {
    /// The empty (match-all) flow match — OpenFlow's table-miss match.
    #[must_use]
    pub fn any() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a field constraint; validates it first.
    pub fn with(mut self, field: MatchFieldKind, m: FieldMatch) -> Result<Self, OflowError> {
        let m = m.checked(field)?;
        match self.parts.binary_search_by_key(&field, |(f, _)| *f) {
            Ok(i) => self.parts[i].1 = m,
            Err(i) => self.parts.insert(i, (field, m)),
        }
        Ok(self)
    }

    /// Convenience: exact-match constraint.
    pub fn with_exact(self, field: MatchFieldKind, value: u128) -> Result<Self, OflowError> {
        self.with(field, FieldMatch::Exact(value))
    }

    /// Convenience: prefix constraint.
    pub fn with_prefix(
        self,
        field: MatchFieldKind,
        value: u128,
        len: u32,
    ) -> Result<Self, OflowError> {
        self.with(field, FieldMatch::Prefix { value, len })
    }

    /// Convenience: range constraint.
    pub fn with_range(self, field: MatchFieldKind, lo: u128, hi: u128) -> Result<Self, OflowError> {
        self.with(field, FieldMatch::Range { lo, hi })
    }

    /// The constrained fields and their matches, sorted by field.
    #[must_use]
    pub fn parts(&self) -> &[(MatchFieldKind, FieldMatch)] {
        &self.parts
    }

    /// The constraint on `field` (`Any` if unconstrained).
    #[must_use]
    pub fn field(&self, field: MatchFieldKind) -> FieldMatch {
        self.parts
            .binary_search_by_key(&field, |(f, _)| *f)
            .map(|i| self.parts[i].1)
            .unwrap_or(FieldMatch::Any)
    }

    /// Whether the header satisfies every field constraint. A header that
    /// lacks a constrained field (e.g. a non-IP packet against an
    /// `ipv4_dst` match) does not match, per OpenFlow prerequisites.
    #[must_use]
    pub fn matches(&self, header: &HeaderValues) -> bool {
        self.parts.iter().all(|(field, m)| {
            if m.is_wildcard() {
                return true;
            }
            match header.get(*field) {
                Some(v) => m.matches(v, field.bit_width()),
                None => false,
            }
        })
    }

    /// Total specificity (sum over fields) for tie-breaking.
    #[must_use]
    pub fn specificity(&self) -> u32 {
        self.parts.iter().map(|(f, m)| m.specificity(f.bit_width())).sum()
    }

    /// Whether some header could satisfy both matches.
    #[must_use]
    pub fn overlaps(&self, other: &FlowMatch) -> bool {
        for (field, m) in &self.parts {
            let o = other.field(*field);
            if !m.overlaps(&o, field.bit_width()) {
                return false;
            }
        }
        true
    }

    /// Number of constrained (non-wildcard) fields.
    #[must_use]
    pub fn constrained_fields(&self) -> usize {
        self.parts.iter().filter(|(_, m)| !m.is_wildcard()).count()
    }
}

impl fmt::Display for FlowMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parts.is_empty() {
            return write!(f, "<any>");
        }
        let mut first = true;
        for (field, m) in &self.parts {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{field}{m}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::MatchFieldKind::*;

    #[test]
    fn prefix_mask_shapes() {
        assert_eq!(prefix_mask(32, 0), 0);
        assert_eq!(prefix_mask(32, 32), 0xFFFF_FFFF);
        assert_eq!(prefix_mask(32, 8), 0xFF00_0000);
        assert_eq!(prefix_mask(16, 5), 0xF800);
        assert_eq!(prefix_mask(128, 1), 1u128 << 127);
    }

    #[test]
    fn exact_matches_only_equal_values() {
        let m = FieldMatch::Exact(42);
        assert!(m.matches(42, 32));
        assert!(!m.matches(43, 32));
    }

    #[test]
    fn prefix_matches_leading_bits() {
        let m = FieldMatch::Prefix { value: 0x0A00_0000, len: 8 }; // 10.0.0.0/8
        assert!(m.matches(0x0A01_0203, 32));
        assert!(!m.matches(0x0B01_0203, 32));
        let any = FieldMatch::Prefix { value: 0, len: 0 };
        assert!(any.matches(u128::from(u32::MAX), 32));
        assert!(any.is_wildcard());
    }

    #[test]
    fn range_matches_inclusive() {
        let m = FieldMatch::Range { lo: 1024, hi: 2047 };
        assert!(m.matches(1024, 16));
        assert!(m.matches(2047, 16));
        assert!(!m.matches(1023, 16));
        assert!(!m.matches(2048, 16));
    }

    #[test]
    fn checked_rejects_out_of_width_values() {
        assert!(FieldMatch::Exact(0x2000).checked(VlanVid).is_err()); // 13-bit field
        assert!(FieldMatch::Exact(0x1FFF).checked(VlanVid).is_ok());
        assert!(FieldMatch::Prefix { value: 0, len: 33 }.checked(Ipv4Dst).is_err());
        assert!(FieldMatch::Range { lo: 5, hi: 4 }.checked(TcpDst).is_err());
        assert!(FieldMatch::Range { lo: 0, hi: 0x1_0000 }.checked(TcpDst).is_err());
    }

    #[test]
    fn checked_canonicalises_prefix_low_bits() {
        let m = FieldMatch::Prefix { value: 0x0A01_0203, len: 8 }.checked(Ipv4Dst).unwrap();
        assert_eq!(m, FieldMatch::Prefix { value: 0x0A00_0000, len: 8 });
    }

    #[test]
    fn flow_match_requires_all_fields() {
        let fm = FlowMatch::any()
            .with_exact(VlanVid, 100)
            .unwrap()
            .with_prefix(EthDst, 0xAABB_0000_0000, 16)
            .unwrap();
        let mut h = HeaderValues::new();
        h.set(VlanVid, 100);
        h.set(EthDst, 0xAABB_1234_5678);
        assert!(fm.matches(&h));
        h.set(VlanVid, 101);
        assert!(!fm.matches(&h));
    }

    #[test]
    fn missing_header_field_fails_match() {
        let fm = FlowMatch::any().with_exact(Ipv4Dst, 1).unwrap();
        let h = HeaderValues::new(); // non-IP packet
        assert!(!fm.matches(&h));
        // ... but a pure wildcard entry matches anything.
        assert!(FlowMatch::any().matches(&h));
    }

    #[test]
    fn with_replaces_existing_constraint() {
        let fm = FlowMatch::any().with_exact(VlanVid, 1).unwrap().with_exact(VlanVid, 2).unwrap();
        assert_eq!(fm.parts().len(), 1);
        assert_eq!(fm.field(VlanVid), FieldMatch::Exact(2));
    }

    #[test]
    fn specificity_orders_prefixes() {
        let longer = FlowMatch::any().with_prefix(Ipv4Dst, 0, 24).unwrap();
        let shorter = FlowMatch::any().with_prefix(Ipv4Dst, 0, 8).unwrap();
        assert!(longer.specificity() > shorter.specificity());
        let exact = FlowMatch::any().with_exact(Ipv4Dst, 0).unwrap();
        assert!(exact.specificity() > longer.specificity());
    }

    #[test]
    fn overlap_detection() {
        let a = FlowMatch::any().with_prefix(Ipv4Dst, 0x0A00_0000, 8).unwrap();
        let b = FlowMatch::any().with_prefix(Ipv4Dst, 0x0A01_0000, 16).unwrap();
        let c = FlowMatch::any().with_prefix(Ipv4Dst, 0x0B00_0000, 8).unwrap();
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        // Different fields never conflict.
        let d = FlowMatch::any().with_exact(VlanVid, 5).unwrap();
        assert!(a.overlaps(&d));
    }

    #[test]
    fn range_prefix_overlap() {
        let r = FieldMatch::Range { lo: 10, hi: 20 };
        let p = FieldMatch::Prefix { value: 16, len: 28 }; // [16..=31] in 32-bit space? width 32, len 28 -> block of 16 starting at 16
        assert!(r.overlaps(&p, 32));
        let p2 = FieldMatch::Prefix { value: 32, len: 28 }; // [32..=47]
        assert!(!r.overlaps(&p2, 32));
    }

    #[test]
    fn display_formats() {
        let fm = FlowMatch::any()
            .with_exact(VlanVid, 100)
            .unwrap()
            .with_prefix(Ipv4Dst, 0x0A000000, 8)
            .unwrap();
        let s = fm.to_string();
        assert!(s.contains("vlan_vid"), "{s}");
        assert!(s.contains("/8"), "{s}");
        assert_eq!(FlowMatch::any().to_string(), "<any>");
    }
}
