//! OpenFlow instructions.
//!
//! Instructions are attached to flow entries and drive the multi-table
//! pipeline. The paper's architecture relies on exactly the multi-table
//! subset: *"when the packet header matches with a flow entry, there are two
//! required instructions: Goto-Table ... and Write-action"*, with table-miss
//! falling back to *"Send to controller"*.

use crate::actions::Action;
use std::fmt;

/// An OpenFlow v1.3 instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Continue processing at the given (higher-numbered) table.
    GotoTable(u8),
    /// Merge the actions into the pipeline action set.
    WriteActions(Vec<Action>),
    /// Execute the actions immediately, without touching the action set.
    ApplyActions(Vec<Action>),
    /// Empty the action set.
    ClearActions,
    /// Update the metadata register: `metadata = (metadata & !mask) |
    /// (value & mask)`.
    WriteMetadata {
        /// Metadata bits to write.
        value: u64,
        /// Which bits to touch.
        mask: u64,
    },
    /// Attach the packet to a meter (rate-limiting; modeled as a no-op tag).
    Meter(u32),
}

impl Instruction {
    /// OpenFlow v1.3 §5.9 instruction execution order.
    #[must_use]
    pub fn exec_order(&self) -> u8 {
        match self {
            Instruction::Meter(_) => 0,
            Instruction::ApplyActions(_) => 1,
            Instruction::ClearActions => 2,
            Instruction::WriteActions(_) => 3,
            Instruction::WriteMetadata { .. } => 4,
            Instruction::GotoTable(_) => 5,
        }
    }

    /// The goto target if this is a `GotoTable`.
    #[must_use]
    pub fn goto_target(&self) -> Option<u8> {
        match self {
            Instruction::GotoTable(t) => Some(*t),
            _ => None,
        }
    }
}

/// Sorts instructions into specification execution order (stable, so at most
/// one instruction per type is assumed, as OpenFlow requires).
#[must_use]
pub fn in_exec_order(instructions: &[Instruction]) -> Vec<&Instruction> {
    let mut v: Vec<&Instruction> = instructions.iter().collect();
    v.sort_by_key(|i| i.exec_order());
    v
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::GotoTable(t) => write!(f, "goto_table:{t}"),
            Instruction::WriteActions(a) => {
                write!(f, "write_actions(")?;
                for (i, act) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{act}")?;
                }
                write!(f, ")")
            }
            Instruction::ApplyActions(a) => {
                write!(f, "apply_actions(")?;
                for (i, act) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{act}")?;
                }
                write!(f, ")")
            }
            Instruction::ClearActions => write!(f, "clear_actions"),
            Instruction::WriteMetadata { value, mask } => {
                write!(f, "write_metadata:{value:#x}/{mask:#x}")
            }
            Instruction::Meter(m) => write!(f, "meter:{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goto_is_last_in_exec_order() {
        let ins = vec![
            Instruction::GotoTable(1),
            Instruction::WriteActions(vec![Action::Output(1)]),
            Instruction::Meter(9),
        ];
        let ordered = in_exec_order(&ins);
        assert!(matches!(ordered.first(), Some(Instruction::Meter(9))));
        assert!(matches!(ordered.last(), Some(Instruction::GotoTable(1))));
    }

    #[test]
    fn goto_target_extraction() {
        assert_eq!(Instruction::GotoTable(3).goto_target(), Some(3));
        assert_eq!(Instruction::ClearActions.goto_target(), None);
    }

    #[test]
    fn display_formats() {
        let i = Instruction::WriteActions(vec![Action::Output(2), Action::DecNwTtl]);
        assert_eq!(i.to_string(), "write_actions(output:2, dec_nw_ttl)");
        assert_eq!(Instruction::GotoTable(1).to_string(), "goto_table:1");
        assert_eq!(
            Instruction::WriteMetadata { value: 0xAB, mask: 0xFF }.to_string(),
            "write_metadata:0xab/0xff"
        );
    }
}
