//! [`CachedClassifier`]: any classifier behind the shared flow cache.
//!
//! The decomposition architecture wires [`FlowCache`] straight into its
//! batch pipelines, but the registry comparisons need the *other*
//! engines — TSS, HiCuts, TCAM, linear scan — behind the **identical**
//! cache so "what does caching buy" is measured on one implementation,
//! not five. [`CachedClassifier`] wraps any [`Classifier`] and fronts
//! every lookup surface with per-worker [`FlowCache`]s:
//!
//! * `classify` / `classify_batch` serve from worker cache 0;
//! * `par_classify_batch` shards the batch with one owned cache per
//!   worker (no lock contention — each worker locks a different cache);
//! * cache entries are epoch-stamped with [`Classifier::generation`]
//!   plus a local bump counter maintained by the forwarded
//!   [`DynamicClassifier`] surface, so incremental updates through the
//!   wrapper invalidate every cached result in O(1) even for engines
//!   that do not track generations themselves.
//!
//! Results are **byte-identical** to the uncached engine: a cache hit
//! replays a memoised result computed at the same generation, and the
//! conformance/bench suites assert exactly that.

use crate::cache::{Admission, CacheStats, FlowCache};
use crate::{Classifier, DynamicClassifier, UpdateReport};
use offilter::Rule;
use oflow::HeaderValues;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Worker caches a wrapper allocates by default — the shard ceiling of
/// [`Classifier::par_classify_batch`] through the wrapper.
const DEFAULT_WORKERS: usize = 8;

/// A classifier fronted by the shared flow cache. See the [module
/// docs](self).
pub struct CachedClassifier<C: Classifier> {
    inner: C,
    name: String,
    /// One cache per potential worker; `classify`/`classify_batch` use
    /// cache 0, `par_classify_batch` worker `i` uses cache `i`.
    caches: Vec<Mutex<FlowCache>>,
    /// Local generation bumps from updates forwarded through
    /// [`DynamicClassifier`] — covers wrapped engines whose own
    /// [`Classifier::generation`] is the static default.
    bumps: AtomicU64,
}

impl<C: Classifier> CachedClassifier<C> {
    /// Wraps `inner` behind TinyLFU-admission caches of (at least)
    /// `capacity` slots each (see [`FlowCache::new`] for the rounding
    /// rules), with the default worker-cache count.
    #[must_use]
    pub fn new(inner: C, capacity: usize) -> Self {
        Self::with_admission(inner, capacity, DEFAULT_WORKERS, Admission::TinyLfu)
    }

    /// Wraps `inner` with explicit worker count and admission policy.
    ///
    /// # Panics
    /// Panics if `workers` is zero or the capacity exceeds the
    /// [`FlowCache`] ceiling.
    #[must_use]
    pub fn with_admission(inner: C, capacity: usize, workers: usize, admission: Admission) -> Self {
        assert!(workers > 0, "need at least one worker cache");
        let name = format!("{}+cache", inner.name());
        Self {
            inner,
            name,
            caches: (0..workers)
                .map(|_| Mutex::new(FlowCache::with_admission(capacity, admission)))
                .collect(),
            bumps: AtomicU64::new(0),
        }
    }

    /// The wrapped classifier.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwraps the classifier, dropping the caches.
    #[must_use]
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// The epoch entries are stamped with: the inner engine's generation
    /// plus the wrapper's local update bumps.
    fn epoch(&self) -> u64 {
        self.inner.generation().wrapping_add(self.bumps.load(Ordering::Relaxed))
    }

    /// Aggregated counters across all worker caches.
    ///
    /// # Panics
    /// Panics if a worker cache's lock was poisoned.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.caches
            .iter()
            .map(|c| c.lock().expect("cache lock poisoned").stats())
            .fold(CacheStats::default(), CacheStats::merged)
    }

    /// Zeroes every worker cache's counters.
    ///
    /// # Panics
    /// Panics if a worker cache's lock was poisoned.
    pub fn reset_stats(&self) {
        for c in &self.caches {
            c.lock().expect("cache lock poisoned").reset_stats();
        }
    }

    /// Serves one batch through one worker cache.
    fn batch_via(&self, cache: &Mutex<FlowCache>, headers: &[HeaderValues]) -> Vec<Option<u32>> {
        let epoch = self.epoch();
        let mut cache = cache.lock().expect("cache lock poisoned");
        headers
            .iter()
            .map(|h| {
                if let Some(row) = cache.lookup(epoch, h) {
                    return row;
                }
                let row = self.inner.classify(h);
                cache.insert(epoch, h, row);
                row
            })
            .collect()
    }
}

impl<C: Classifier> Classifier for CachedClassifier<C> {
    fn name(&self) -> &str {
        &self.name
    }

    fn classify(&self, header: &HeaderValues) -> Option<u32> {
        let epoch = self.epoch();
        let mut cache = self.caches[0].lock().expect("cache lock poisoned");
        if let Some(row) = cache.lookup(epoch, header) {
            return row;
        }
        let row = self.inner.classify(header);
        cache.insert(epoch, header, row);
        row
    }

    fn classify_batch(&self, headers: &[HeaderValues]) -> Vec<Option<u32>> {
        self.batch_via(&self.caches[0], headers)
    }

    fn par_classify_batch(&self, headers: &[HeaderValues], threads: usize) -> Vec<Option<u32>> {
        let threads = threads.clamp(1, self.caches.len()).min(headers.len().max(1));
        if threads == 1 {
            return self.classify_batch(headers);
        }
        let shard = headers.len().div_ceil(threads);
        let mut out = Vec::with_capacity(headers.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = headers
                .chunks(shard)
                .zip(self.caches.iter())
                .map(|(chunk, cache)| scope.spawn(move || self.batch_via(cache, chunk)))
                .collect();
            for handle in handles {
                out.extend(handle.join().expect("classification worker panicked"));
            }
        });
        out
    }

    fn generation(&self) -> u64 {
        self.epoch()
    }

    fn memory_bits(&self) -> u64 {
        let cache_bits: u64 =
            self.caches.iter().map(|c| c.lock().expect("cache lock poisoned").memory_bits()).sum();
        self.inner.memory_bits() + cache_bits
    }

    fn lookup_accesses(&self, header: &HeaderValues) -> usize {
        // One cache probe, plus the inner engine's structural cost on
        // the miss path (hits stop after the probe).
        1 + self.inner.lookup_accesses(header)
    }

    fn build_records(&self) -> usize {
        self.inner.build_records()
    }
}

impl<C: DynamicClassifier> DynamicClassifier for CachedClassifier<C> {
    fn insert_rule(&mut self, rule: Rule) -> Result<UpdateReport, crate::BuildError> {
        let report = self.inner.insert_rule(rule)?;
        self.bumps.fetch_add(1, Ordering::Relaxed);
        Ok(report)
    }

    fn remove_rule(&mut self, rule_id: u32) -> Option<UpdateReport> {
        let report = self.inner.remove_rule(rule_id)?;
        self.bumps.fetch_add(1, Ordering::Relaxed);
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reference_classify, ClassifierBuilder};
    use offilter::{FilterSet, RuleAction};
    use oflow::{FlowMatch, MatchFieldKind};

    /// A tiny linear-scan engine for wrapper tests (the real baselines
    /// live downstream of this crate).
    struct Scan(Vec<Rule>);

    impl Classifier for Scan {
        fn name(&self) -> &str {
            "scan"
        }
        fn classify(&self, header: &HeaderValues) -> Option<u32> {
            reference_classify(&self.0, header)
        }
        fn memory_bits(&self) -> u64 {
            1
        }
        fn lookup_accesses(&self, _header: &HeaderValues) -> usize {
            self.0.len()
        }
        fn build_records(&self) -> usize {
            self.0.len()
        }
    }

    impl ClassifierBuilder for Scan {
        fn try_build(set: &FilterSet) -> Result<Self, crate::BuildError> {
            Ok(Self(set.rules.clone()))
        }
    }

    impl DynamicClassifier for Scan {
        fn insert_rule(&mut self, rule: Rule) -> Result<UpdateReport, crate::BuildError> {
            self.0.push(rule);
            Ok(UpdateReport { records: 1, rebuilt: false })
        }
        fn remove_rule(&mut self, rule_id: u32) -> Option<UpdateReport> {
            let before = self.0.len();
            self.0.retain(|r| r.id != rule_id);
            (self.0.len() < before).then_some(UpdateReport { records: 1, rebuilt: false })
        }
    }

    fn rules() -> Vec<Rule> {
        vec![
            Rule::new(
                0,
                8,
                FlowMatch::any()
                    .with_exact(MatchFieldKind::InPort, 1)
                    .unwrap()
                    .with_prefix(MatchFieldKind::Ipv4Dst, 0x0A00_0000, 8)
                    .unwrap(),
                RuleAction::Forward(1),
            ),
            Rule::new(
                1,
                24,
                FlowMatch::any()
                    .with_exact(MatchFieldKind::InPort, 1)
                    .unwrap()
                    .with_prefix(MatchFieldKind::Ipv4Dst, 0x0A01_0200, 24)
                    .unwrap(),
                RuleAction::Forward(2),
            ),
        ]
    }

    fn headers() -> Vec<HeaderValues> {
        (0..64u128)
            .map(|i| {
                HeaderValues::new()
                    .with(MatchFieldKind::InPort, 1 + (i % 3))
                    .with(MatchFieldKind::Ipv4Dst, 0x0A01_0200 + (i % 7))
            })
            .collect()
    }

    #[test]
    fn cached_results_are_byte_identical() {
        let bare = Scan(rules());
        let cached = CachedClassifier::new(Scan(rules()), 64);
        assert_eq!(cached.name(), "scan+cache");
        let hs = headers();
        let want = bare.classify_batch(&hs);
        // Cold pass, warm pass, parallel pass: all identical.
        assert_eq!(cached.classify_batch(&hs), want);
        assert_eq!(cached.classify_batch(&hs), want);
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(cached.par_classify_batch(&hs, threads), want, "threads={threads}");
        }
        for h in &hs {
            assert_eq!(cached.classify(h), bare.classify(h));
        }
        // The warm passes actually hit.
        assert!(cached.stats().hits > 0);
        assert!(cached.memory_bits() > bare.memory_bits());
        assert!(cached.lookup_accesses(&hs[0]) > bare.lookup_accesses(&hs[0]) - 1);
    }

    #[test]
    fn forwarded_updates_invalidate() {
        let mut cached = CachedClassifier::new(Scan(rules()), 64);
        let h = HeaderValues::new()
            .with(MatchFieldKind::InPort, 1)
            .with(MatchFieldKind::Ipv4Dst, 0x0A01_0203u128);
        assert_eq!(cached.classify(&h), Some(1));
        assert_eq!(cached.classify(&h), Some(1), "served from cache");
        let g0 = cached.generation();
        // A higher-priority rule through the wrapper must take effect
        // immediately — no stale cached row.
        cached
            .insert_rule(Rule::new(
                9,
                99,
                FlowMatch::any()
                    .with_exact(MatchFieldKind::InPort, 1)
                    .unwrap()
                    .with_prefix(MatchFieldKind::Ipv4Dst, 0x0A01_0200, 24)
                    .unwrap(),
                RuleAction::Forward(9),
            ))
            .unwrap();
        assert!(cached.generation() != g0, "update must advance the generation");
        assert_eq!(cached.classify(&h), Some(9));
        cached.remove_rule(9).expect("rule exists");
        assert_eq!(cached.classify(&h), Some(1));
        assert!(cached.remove_rule(123).is_none());
        assert_eq!(cached.inner().0.len(), rules().len());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = CachedClassifier::with_admission(Scan(rules()), 16, 0, Admission::Blind);
    }
}
