//! # classifier-api — the unified classifier contract
//!
//! The paper's whole evaluation (Table I, Figs. 2–5) is a head-to-head
//! comparison of the decomposition-based multiple-table-lookup
//! architecture against linear scan, TCAM, tuple space search and
//! HiCuts. This crate extracts the contract all of those engines share so
//! the comparison is written once, against one trait, instead of being
//! hand-rolled per engine:
//!
//! * [`Classifier`] — the lookup surface: `name`, per-packet
//!   [`Classifier::classify`], vectorised [`Classifier::classify_batch`]
//!   (overridable so engines can amortise per-packet dispatch), modeled
//!   [`Classifier::memory_bits`] and the structural
//!   [`Classifier::lookup_accesses`] cost proxy.
//! * [`ClassifierBuilder`] — fallible construction from a
//!   [`FilterSet`], returning [`BuildError`] instead of panicking.
//! * [`DynamicClassifier`] — incremental insert/remove for engines with
//!   an update path (the architecture's label-method updates, TSS's
//!   in-tuple inserts).
//! * [`ClassifierRegistry`] — a named collection of boxed classifiers the
//!   bench harness iterates.
//! * [`reference_classify`] — the highest-priority-match oracle every
//!   implementation is validated against.
//! * [`cache`] — the shared epoch-stamped [`FlowCache`] (TinyLFU
//!   admission) and [`cached`] — the [`CachedClassifier`] wrapper that
//!   puts *any* engine behind it, so registry comparisons measure every
//!   baseline through the identical cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cached;

pub use cache::{Admission, CacheStats, FlowCache, FxHasher, MAX_CACHED_FIELDS};
pub use cached::CachedClassifier;

use offilter::{FilterKind, FilterSet, Rule};
use oflow::{HeaderValues, MatchFieldKind};
use std::fmt;

/// Why a classifier could not be built.
///
/// These replace the `panic!` paths that used to live in the
/// architecture's engine intern/shadow logic: every condition a rule set
/// or configuration can trigger is reported as a typed error instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The configuration names an application kind no provided filter set
    /// matches.
    MissingFilterSet {
        /// The application kind without data.
        kind: FilterKind,
    },
    /// An application was configured with zero tables.
    EmptyApplication {
        /// The application kind.
        kind: FilterKind,
    },
    /// An intermediate table has no `Goto-Table` target.
    MissingGoto {
        /// The offending table.
        table_id: u8,
    },
    /// A table keys on metadata but no previous table produces it (for
    /// example the application's first table sets `uses_metadata`).
    DanglingMetadata {
        /// The offending table.
        table_id: u8,
    },
    /// A rule constrains a field in a way its assigned single-field
    /// algorithm cannot store (e.g. a port range handed to an exact-match
    /// LUT).
    UnsupportedConstraint {
        /// The field whose constraint was rejected.
        field: MatchFieldKind,
        /// The algorithm that rejected it.
        algorithm: &'static str,
        /// Display form of the rejected constraint.
        constraint: String,
    },
    /// A multi-bit-trie stride schedule does not tile the configured
    /// partition width, or the partition width does not tile the field.
    InvalidSchedule {
        /// The field the schedule was configured for.
        field: MatchFieldKind,
        /// What exactly does not add up.
        detail: String,
    },
    /// Anything else structural.
    InvalidConfig {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingFilterSet { kind } => {
                write!(f, "no filter set of kind {kind} was provided")
            }
            BuildError::EmptyApplication { kind } => {
                write!(f, "application {kind} is configured with zero tables")
            }
            BuildError::MissingGoto { table_id } => {
                write!(f, "intermediate table {table_id} has no Goto-Table target")
            }
            BuildError::DanglingMetadata { table_id } => {
                write!(f, "table {table_id} keys on metadata no previous table produces")
            }
            BuildError::UnsupportedConstraint { field, algorithm, constraint } => {
                write!(f, "{algorithm} engine on field {field} cannot store {constraint}")
            }
            BuildError::InvalidSchedule { field, detail } => {
                write!(f, "invalid trie schedule for field {field}: {detail}")
            }
            BuildError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// A rule-set classifier that can be measured and compared across
/// categories.
///
/// Classification is a `&self` operation on every engine, so the trait
/// requires `Send + Sync`: any classifier can be shared across worker
/// threads, and [`Classifier::par_classify_batch`] shards a batch over a
/// scoped thread pool for free.
pub trait Classifier: Send + Sync {
    /// Short display name ("linear", "tcam", "mtl", ...).
    fn name(&self) -> &str;

    /// The id of the highest-priority matching rule, if any.
    fn classify(&self, header: &HeaderValues) -> Option<u32>;

    /// Classifies a batch of headers; element `i` of the result is
    /// `classify(&headers[i])`.
    ///
    /// The default forwards to [`Classifier::classify`] per packet.
    /// Engines with per-lookup dispatch overhead (the decomposition
    /// architecture walks every field engine of every table) override
    /// this to amortise that work across the vector.
    fn classify_batch(&self, headers: &[HeaderValues]) -> Vec<Option<u32>> {
        headers.iter().map(|h| self.classify(h)).collect()
    }

    /// Classifies a batch across `threads` worker threads; element `i` of
    /// the result is `classify(&headers[i])`.
    ///
    /// The default shards the batch into `threads` contiguous chunks and
    /// runs [`Classifier::classify_batch`] on each inside
    /// [`std::thread::scope`], so every engine — including batch-optimised
    /// overrides — scales across cores without any per-engine code.
    /// `threads <= 1` (or a batch too small to shard) degrades to the
    /// single-threaded batch path.
    fn par_classify_batch(&self, headers: &[HeaderValues], threads: usize) -> Vec<Option<u32>> {
        sharded(headers, threads, |chunk| self.classify_batch(chunk))
    }

    /// Modeled memory footprint in bits.
    fn memory_bits(&self) -> u64;

    /// Work performed by one `classify` expressed as memory accesses (the
    /// lookup-speed proxy the paper's Table I ranks by). Implementations
    /// return the *expected/structural* cost, not a timed measurement.
    fn lookup_accesses(&self, header: &HeaderValues) -> usize;

    /// Stored datums written to install the current rule set — the
    /// update-cost proxy the paper's Table I ranks by (lower = simpler
    /// update). Rule replication (HiCuts), range expansion (TCAM) and
    /// completion entries (decomposition) all surface here.
    fn build_records(&self) -> usize;

    /// Monotone rule-set generation counter for epoch-stamped caching:
    /// any observable change to classification results must be preceded
    /// by a change of this value. Flow caches ([`FlowCache`],
    /// [`CachedClassifier`]) stamp entries with it, so one counter bump
    /// invalidates every memoised result in O(1).
    ///
    /// The default returns 0 — correct for engines that are never
    /// mutated behind the shared reference (classification is `&self`;
    /// `&mut self` updates through [`DynamicClassifier`] on a *wrapped*
    /// engine are covered by the wrapper's own bump counter). Engines
    /// that track updates natively (the decomposition switch's epoch,
    /// TSS's in-place inserts) override it.
    fn generation(&self) -> u64 {
        0
    }
}

/// Forwarding impls: shared and owning smart pointers classify exactly
/// like the classifier they point at, so a runtime can hold `Arc<C>`
/// snapshots (one per worker shard, swapped RCU-style) and still hand
/// them to any code written against `impl Classifier` — no unwrapping,
/// no trait-object detour.
macro_rules! forward_classifier {
    ($ptr:ident) => {
        impl<C: Classifier + ?Sized> Classifier for $ptr<C> {
            fn name(&self) -> &str {
                (**self).name()
            }
            fn classify(&self, header: &HeaderValues) -> Option<u32> {
                (**self).classify(header)
            }
            fn classify_batch(&self, headers: &[HeaderValues]) -> Vec<Option<u32>> {
                (**self).classify_batch(headers)
            }
            fn par_classify_batch(
                &self,
                headers: &[HeaderValues],
                threads: usize,
            ) -> Vec<Option<u32>> {
                (**self).par_classify_batch(headers, threads)
            }
            fn memory_bits(&self) -> u64 {
                (**self).memory_bits()
            }
            fn lookup_accesses(&self, header: &HeaderValues) -> usize {
                (**self).lookup_accesses(header)
            }
            fn build_records(&self) -> usize {
                (**self).build_records()
            }
            fn generation(&self) -> u64 {
                (**self).generation()
            }
        }
    };
}

use std::sync::Arc;
forward_classifier!(Arc);
forward_classifier!(Box);

/// Shards `items` into `threads` contiguous chunks, runs `f` on each
/// inside [`std::thread::scope`], and concatenates the results in input
/// order. The backbone of [`Classifier::par_classify_batch`] — also used
/// by engines exposing richer parallel batch surfaces (the decomposition
/// switch's full-result batches). `threads <= 1` (or a single-item batch)
/// degrades to calling `f` inline.
///
/// # Panics
/// Panics if a worker thread panics.
pub fn sharded<I: Sync, T: Send>(
    items: &[I],
    threads: usize,
    f: impl Fn(&[I]) -> Vec<T> + Sync,
) -> Vec<T> {
    // Cap the worker count at the item count and at a multiple of the
    // hardware parallelism (floor 64 so modest oversubscription sweeps
    // still run as asked): an absurd `threads` argument must not
    // translate into one OS thread per packet.
    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    let threads = threads.clamp(1, items.len().max(1)).min((4 * hw).max(64));
    if threads == 1 {
        return f(items);
    }
    let shard = items.len().div_ceil(threads);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items.chunks(shard).map(|chunk| scope.spawn(|| f(chunk))).collect();
        for handle in handles {
            out.extend(handle.join().expect("classification worker panicked"));
        }
    });
    out
}

/// Fallible construction of a classifier from one filter set.
///
/// Every engine in the workspace builds through this entry point so the
/// bench harness and the conformance tests can instantiate them
/// uniformly. Construction failures surface as [`BuildError`]; nothing
/// panics on malformed rule data.
pub trait ClassifierBuilder: Classifier + Sized {
    /// Builds the classifier over `set`'s rules.
    fn try_build(set: &FilterSet) -> Result<Self, BuildError>;
}

/// Cost accounting for one incremental update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateReport {
    /// Stored datums written to apply the update.
    pub records: usize,
    /// Whether the engine fell back to a full regeneration instead of an
    /// in-place edit.
    pub rebuilt: bool,
}

/// Classifiers supporting incremental rule insertion and removal.
pub trait DynamicClassifier: Classifier {
    /// Adds one rule. Returns what the update cost, or a [`BuildError`]
    /// when the rule cannot be represented by this engine.
    fn insert_rule(&mut self, rule: Rule) -> Result<UpdateReport, BuildError>;

    /// Removes a rule by id. Returns `None` when no such rule is stored.
    fn remove_rule(&mut self, rule_id: u32) -> Option<UpdateReport>;
}

/// One registered comparison entry.
pub struct RegistryEntry {
    /// The Table I category the implementation represents
    /// ("Hardware", "Trie-Geometric", "Hashing", "Decomposition", ...).
    pub category: String,
    /// The classifier itself.
    pub classifier: Box<dyn Classifier>,
}

/// A named collection of classifiers measured side by side.
///
/// The bench harness builds one registry per workload and then runs every
/// experiment generically over `Box<dyn Classifier>` instead of
/// duplicating per-type code.
#[derive(Default)]
pub struct ClassifierRegistry {
    entries: Vec<RegistryEntry>,
}

impl ClassifierRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a classifier under a category label.
    pub fn register(&mut self, category: impl Into<String>, classifier: Box<dyn Classifier>) {
        self.entries.push(RegistryEntry { category: category.into(), classifier });
    }

    /// Registered entries in insertion order.
    #[must_use]
    pub fn entries(&self) -> &[RegistryEntry] {
        &self.entries
    }

    /// Iterates `(category, classifier)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &dyn Classifier)> {
        self.entries.iter().map(|e| (e.category.as_str(), e.classifier.as_ref()))
    }

    /// The entry of a category, if registered.
    #[must_use]
    pub fn get(&self, category: &str) -> Option<&dyn Classifier> {
        self.entries.iter().find(|e| e.category == category).map(|e| e.classifier.as_ref())
    }

    /// Number of registered classifiers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<'a> IntoIterator for &'a ClassifierRegistry {
    type Item = &'a RegistryEntry;
    type IntoIter = std::slice::Iter<'a, RegistryEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// Reference decision for a rule set: highest priority, then specificity.
///
/// Every [`Classifier`] implementation must agree with this oracle on
/// every header (the conformance suite checks exactly that).
#[must_use]
pub fn reference_classify(rules: &[Rule], header: &HeaderValues) -> Option<u32> {
    rules
        .iter()
        .filter(|r| r.flow_match.matches(header))
        .max_by_key(|r| (r.priority, r.flow_match.specificity()))
        .map(|r| r.id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use offilter::RuleAction;
    use oflow::FlowMatch;

    struct Fixed(Option<u32>);

    impl Classifier for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn classify(&self, _header: &HeaderValues) -> Option<u32> {
            self.0
        }
        fn memory_bits(&self) -> u64 {
            1
        }
        fn lookup_accesses(&self, _header: &HeaderValues) -> usize {
            1
        }
        fn build_records(&self) -> usize {
            0
        }
    }

    #[test]
    fn default_batch_matches_per_packet() {
        let c = Fixed(Some(7));
        let headers = vec![HeaderValues::new(), HeaderValues::new()];
        assert_eq!(c.classify_batch(&headers), vec![Some(7), Some(7)]);
        assert_eq!(c.classify_batch(&[]), Vec::<Option<u32>>::new());
    }

    #[test]
    fn default_par_batch_matches_batch() {
        let c = Fixed(Some(3));
        let headers = vec![HeaderValues::new(); 37];
        let want = c.classify_batch(&headers);
        // More threads than packets, equal, fewer, one, zero: all agree.
        for threads in [0, 1, 2, 5, 37, 64] {
            assert_eq!(c.par_classify_batch(&headers, threads), want, "threads={threads}");
        }
        assert!(c.par_classify_batch(&[], 4).is_empty());
        // Trait objects can shard too (Classifier is Send + Sync).
        let boxed: Box<dyn Classifier> = Box::new(Fixed(None));
        assert_eq!(boxed.par_classify_batch(&headers, 3), vec![None; 37]);
    }

    #[test]
    fn smart_pointers_forward_the_whole_surface() {
        let shared: Arc<Fixed> = Arc::new(Fixed(Some(5)));
        let boxed: Box<dyn Classifier> = Box::new(Fixed(Some(6)));
        let h = HeaderValues::new();
        assert_eq!(shared.name(), "fixed");
        assert_eq!(Classifier::classify(&shared, &h), Some(5));
        assert_eq!(boxed.classify(&h), Some(6));
        assert_eq!(Classifier::classify_batch(&shared, &[h.clone(), h.clone()]), vec![Some(5); 2]);
        assert_eq!(shared.par_classify_batch(&vec![h.clone(); 8], 3), vec![Some(5); 8]);
        assert_eq!(shared.memory_bits(), 1);
        assert_eq!(boxed.lookup_accesses(&h), 1);
        assert_eq!(shared.generation(), 0);
        // An Arc'd trait object forwards too (the runtime's snapshots
        // over dynamic classifiers).
        let dynamic: Arc<dyn Classifier> = Arc::new(Fixed(None));
        assert_eq!(Classifier::classify(&dynamic, &h), None);
        // And still satisfies `impl Classifier` bounds generically.
        fn takes_classifier(c: &impl Classifier, h: &HeaderValues) -> Option<u32> {
            c.classify(h)
        }
        assert_eq!(takes_classifier(&shared, &h), Some(5));
        assert_eq!(takes_classifier(&dynamic, &h), None);
    }

    #[test]
    fn registry_roundtrip() {
        let mut r = ClassifierRegistry::new();
        assert!(r.is_empty());
        r.register("A", Box::new(Fixed(Some(1))));
        r.register("B", Box::new(Fixed(None)));
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("A").unwrap().classify(&HeaderValues::new()), Some(1));
        assert!(r.get("C").is_none());
        let names: Vec<&str> = r.iter().map(|(c, _)| c).collect();
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    fn reference_prefers_priority_then_specificity() {
        let rules = vec![
            Rule::new(
                0,
                1,
                FlowMatch::any().with_exact(MatchFieldKind::InPort, 1).unwrap(),
                RuleAction::Forward(1),
            ),
            Rule::new(
                1,
                2,
                FlowMatch::any().with_exact(MatchFieldKind::InPort, 1).unwrap(),
                RuleAction::Forward(2),
            ),
        ];
        let h = HeaderValues::new().with(MatchFieldKind::InPort, 1);
        assert_eq!(reference_classify(&rules, &h), Some(1));
        let h = HeaderValues::new().with(MatchFieldKind::InPort, 2);
        assert_eq!(reference_classify(&rules, &h), None);
    }

    #[test]
    fn build_error_displays() {
        let e = BuildError::UnsupportedConstraint {
            field: MatchFieldKind::VlanVid,
            algorithm: "EM-LUT",
            constraint: "Range(1, 2)".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("EM-LUT"), "{msg}");
        assert!(msg.contains("Range"), "{msg}");
        let e = BuildError::MissingGoto { table_id: 3 };
        assert!(e.to_string().contains("table 3"));
    }
}
