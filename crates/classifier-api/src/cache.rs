//! Flow/result cache: memoised classification for elephant flows.
//!
//! Real switch traffic is heavily skewed — a small set of elephant flows
//! carries most packets — so the fast path front-loads a **flow cache**
//! ahead of any engine's lookup: a fixed-capacity, open-addressed,
//! set-associative table memoising `header → result`. A hit skips the
//! engine entirely; a miss falls through and installs the result.
//!
//! The cache lives in `classifier-api` (it moved here from `mtl-core`)
//! so *every* engine can sit behind it: the decomposition architecture
//! wires it directly into its batch pipelines, and any boxed
//! [`Classifier`](crate::Classifier) can be fronted by the identical
//! cache via [`CachedClassifier`](crate::CachedClassifier).
//!
//! ## Consistency with incremental updates
//!
//! Entries are **epoch-stamped**: every mutation of the rule set bumps
//! the owner's generation counter ([`crate::Classifier::generation`],
//! `MtlSwitch::epoch` in `mtl-core`), and a cached entry is only served
//! when its stamp equals the current epoch. Invalidation is therefore
//! O(1) — one integer increment — with no cache walking; stale entries
//! die lazily as they are re-probed or overwritten.
//!
//! ## Frequency-aware admission (TinyLFU)
//!
//! Blind replacement lets every miss evict a live entry, so cold flows
//! and one-shot scan garbage continuously flush the elephants — the
//! uniform-skew thrash measured by the `cache` bench experiment. The
//! default admission policy is therefore **TinyLFU-style**
//! ([`Admission::TinyLfu`]): a compact 4-bit counting sketch
//! ([`FrequencySketch`], four hashed counters per key, periodically
//! halved so history ages out) tracks access frequency, and when an
//! insert finds its whole probe window live, the candidate only replaces
//! the window's *least-frequent* entry if the sketch says the candidate
//! is accessed strictly more often. One-hit wonders are rejected instead
//! of admitted, so the resident set converges on the flows that actually
//! carry traffic. [`Admission::Blind`] keeps the always-replace policy
//! for comparison.
//!
//! ## Recency window (W-TinyLFU)
//!
//! Pure TinyLFU has a blind spot: a *brand-new* flow has no sketch
//! history, so its first packets are rejected until enough frequency
//! accrues — a recency burst (a new elephant ramping up) pays the full
//! miss cost while the filter warms to it. The fix is Caffeine's
//! **W-TinyLFU** shape: a small LRU **window segment** (~1 % of
//! capacity, see [`FlowCache::window_capacity`]) sits in front of the
//! frequency-guarded main region. New flows land in the window
//! unconditionally, so a burst is served from cache immediately; when
//! the window is full its least-recently-used entry is evicted and
//! *that* entry — now carrying whatever frequency it earned — competes
//! for main-region admission under the TinyLFU rule. Scan garbage
//! therefore churns only the tiny window and still cannot flush the
//! elephants. The window is a fully-associative linear scan, so the
//! default sizing caps it at 64 slots however large the main region
//! grows; [`FlowCache::with_window`] pins an explicit window size
//! (0 restores pure TinyLFU, the A/B baseline in the `cache` bench
//! experiment).
//!
//! ## Allocation behaviour
//!
//! Entries are plain `Copy` data: a header's fields are stored in a
//! fixed inline array (headers with more than [`MAX_CACHED_FIELDS`]
//! fields bypass the cache), and the sketch is a flat word array, so
//! lookups *and* inserts perform **zero heap allocations**. The cache is
//! not shared: each worker thread owns one, so there are no locks on the
//! hot path.

use oflow::{HeaderValues, MatchFieldKind};
use std::hash::Hasher;

/// Multiply-rotate hasher (the FxHash construction) for short,
/// attacker-free keys.
///
/// Used by the flow cache (header field tuples) and by `mtl-core`'s
/// label-combination index (dense label ids): neither input is
/// traffic-controlled in an exploitable way, so SipHash's flooding
/// resistance buys nothing while dominating the per-probe cost. A
/// two-multiply hash keeps each probe a handful of cycles.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher(u64);

impl FxHasher {
    const SEED: u64 = 0x517c_c1b7_2722_0a95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// Most header fields a cacheable flow key may carry. Headers with more
/// fields (none of the paper's applications produce them) bypass the
/// cache rather than forcing heap-allocated keys.
pub const MAX_CACHED_FIELDS: usize = 8;

/// Associativity: slots probed per lookup/insert from the hash's home
/// slot (linear window, wrap-around).
const WAYS: usize = 4;

/// Hard ceiling on requested capacity (2^28 slots ≈ tens of GiB of
/// entries): anything larger is a unit error, not a cache.
const MAX_CAPACITY: usize = 1 << 28;

/// Vacancy sentinel for [`Entry::hash`].
const EMPTY: u64 = u64::MAX;

/// How the cache decides, on a conflict miss, whether the new flow may
/// evict a resident entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Always admit: the probe window's first slot is replaced. Simple,
    /// but cold flows and scan garbage continuously evict elephants.
    Blind,
    /// TinyLFU-style: admit only if the candidate's sketched access
    /// frequency strictly exceeds the least-frequent window entry's.
    TinyLfu,
}

/// Counters the cache accumulates between [`FlowCache::reset_stats`]
/// calls — exposed as one `Copy` struct so bench harnesses read (and
/// serialise) them directly instead of recomputing hit rates externally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through (including uncacheable headers).
    pub misses: u64,
    /// Results installed (vacant/stale slots filled, same-key
    /// overwrites, and admitted evictions).
    pub insertions: u64,
    /// Live entries overwritten by a different flow.
    pub evictions: u64,
    /// Candidates the admission filter turned away (TinyLFU only).
    pub rejections: u64,
    /// Effective slot count of the main region.
    pub capacity: usize,
    /// Slots of the LRU recency window in front of the main region
    /// (0 = pure TinyLFU / blind cache).
    pub window_capacity: usize,
    /// Lookups served from the recency window (a subset of `hits`).
    pub window_hits: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another stats block (for aggregating per-worker
    /// caches); capacities add.
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        Self {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            insertions: self.insertions + other.insertions,
            evictions: self.evictions + other.evictions,
            rejections: self.rejections + other.rejections,
            capacity: self.capacity + other.capacity,
            window_capacity: self.window_capacity + other.window_capacity,
            window_hits: self.window_hits + other.window_hits,
        }
    }
}

/// A compact 4-bit counting sketch (count-min with conservative update)
/// over flow-key hashes — the frequency memory behind
/// [`Admission::TinyLfu`].
///
/// Sixteen 4-bit counters per 64-bit word; each key maps to four
/// counters through independently seeded hashes and its estimate is
/// their minimum. After `sample` increments every counter is halved, so
/// frequency is a sliding estimate, not an all-time count — flows that
/// go cold age out of the filter.
#[derive(Debug, Clone)]
struct FrequencySketch {
    table: Vec<u64>,
    mask: usize,
    additions: u32,
    sample: u32,
}

impl FrequencySketch {
    /// Counter saturation value (4 bits).
    const MAX_COUNT: u64 = 15;
    const SEEDS: [u64; 4] = [
        0xc3a5_c85c_97cb_3127,
        0xb492_b66f_be98_f273,
        0x9ae1_6a3b_2f90_404f,
        0xcbf2_9ce4_8422_2325,
    ];

    /// A sketch sized for a cache of `capacity` slots: 16 counters per
    /// slot, sample period 10x capacity (the classical TinyLFU window).
    fn new(capacity: usize) -> Self {
        let words = capacity.next_power_of_two().max(8);
        Self {
            table: vec![0; words],
            mask: words - 1,
            additions: 0,
            sample: (capacity.max(1) as u32).saturating_mul(10),
        }
    }

    /// The i-th counter position of a key hash.
    #[inline]
    fn slot(&self, hash: u64, i: usize) -> (usize, u32) {
        let h = hash.wrapping_add(Self::SEEDS[i]).wrapping_mul(Self::SEEDS[i]);
        let h = h ^ (h >> 32);
        ((h as usize) & self.mask, ((h >> 32) as u32 & 15) * 4)
    }

    /// Estimated access frequency of a key (min over its counters).
    #[inline]
    fn estimate(&self, hash: u64) -> u64 {
        (0..4)
            .map(|i| {
                let (word, shift) = self.slot(hash, i);
                (self.table[word] >> shift) & 0xF
            })
            .min()
            .unwrap_or(0)
    }

    /// Records one access: conservative update (only counters at the
    /// current minimum grow), halving all counters each sample period.
    #[inline]
    fn increment(&mut self, hash: u64) {
        let min = self.estimate(hash);
        if min >= Self::MAX_COUNT {
            return;
        }
        for i in 0..4 {
            let (word, shift) = self.slot(hash, i);
            if (self.table[word] >> shift) & 0xF == min {
                self.table[word] += 1 << shift;
            }
        }
        self.additions += 1;
        if self.additions >= self.sample {
            self.halve();
        }
    }

    /// Ages the history: every counter loses half its weight.
    fn halve(&mut self) {
        for word in &mut self.table {
            *word = (*word >> 1) & 0x7777_7777_7777_7777;
        }
        self.additions /= 2;
    }

    /// Modeled size in bits (the counter array).
    fn memory_bits(&self) -> u64 {
        self.table.len() as u64 * 64
    }
}

/// One cached flow: the full header key inline, the epoch it was
/// installed at, and the memoised result (a final-table action row, or
/// `None` for a to-controller miss — misses are results too).
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Full key hash; [`EMPTY`] marks a vacant slot.
    hash: u64,
    /// Owner epoch the result was computed at.
    epoch: u64,
    /// Number of valid `fields` slots.
    len: u8,
    /// The header's `(field, value)` pairs, in header (sorted) order.
    fields: [(MatchFieldKind, u128); MAX_CACHED_FIELDS],
    /// Memoised classification result.
    row: Option<u32>,
}

impl Entry {
    const VACANT: Self = Self {
        hash: EMPTY,
        epoch: 0,
        len: 0,
        fields: [(MatchFieldKind::InPort, 0); MAX_CACHED_FIELDS],
        row: None,
    };
}

/// A fixed-capacity, open-addressed flow/result cache with
/// frequency-aware admission.
///
/// See the [module docs](self) for the design. Create one per worker
/// thread (or per pipeline) and pass it to the owner's cached lookup
/// surface (`MtlSwitch::classify_cached` in `mtl-core`, or wrap any
/// engine in [`crate::CachedClassifier`]); counters accumulate until
/// [`FlowCache::reset_stats`] and are read via [`FlowCache::stats`].
#[derive(Debug, Clone)]
pub struct FlowCache {
    entries: Vec<Entry>,
    mask: usize,
    sketch: Option<FrequencySketch>,
    /// W-TinyLFU recency window: a small fully-associative LRU segment
    /// probed before the main region. Empty for blind caches and for
    /// [`FlowCache::with_window`]`(_, 0)`.
    window: Vec<Entry>,
    /// Last-touch stamp per window slot ([`FlowCache::tick`] time).
    window_stamp: Vec<u64>,
    /// Monotone access clock driving the window's LRU order.
    tick: u64,
    stats: CacheStats,
}

impl FlowCache {
    /// Creates a cache with W-TinyLFU admission (the default policy):
    /// TinyLFU frequency admission for the main region, fronted by the
    /// default recency window (~1 % of capacity, minimum 2 slots; see
    /// the [module docs](self)).
    ///
    /// The requested `capacity` is **rounded up to the next power of
    /// two** (minimum 4 — the probe-window width) so the slot index is a
    /// mask instead of a modulo; [`FlowCache::capacity`] returns the
    /// effective main-region slot count actually allocated (the recency
    /// window's slots, [`FlowCache::window_capacity`], come on top).
    ///
    /// # Panics
    /// Panics if `capacity` exceeds 2^28 slots (a unit error, not a
    /// plausible cache size).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_admission(capacity, Admission::TinyLfu)
    }

    /// Creates a cache with blind always-admit replacement (the policy
    /// to beat — kept for A/B measurement; no recency window, blind
    /// caches admit everything anyway). Same capacity rounding as
    /// [`FlowCache::new`].
    ///
    /// # Panics
    /// Panics if `capacity` exceeds 2^28 slots.
    #[must_use]
    pub fn blind(capacity: usize) -> Self {
        Self::with_admission(capacity, Admission::Blind)
    }

    /// Creates a cache with an explicit admission policy
    /// ([`Admission::TinyLfu`] gets the default recency window). Same
    /// capacity rounding as [`FlowCache::new`].
    ///
    /// # Panics
    /// Panics if `capacity` exceeds 2^28 slots.
    #[must_use]
    pub fn with_admission(capacity: usize, admission: Admission) -> Self {
        let window = match admission {
            Admission::Blind => 0,
            // ~1 % of the main region, floor 2: large enough to absorb a
            // short recency burst, small enough that scan garbage churn
            // stays negligible. Ceiling 64: the window is probed by
            // linear scan on every lookup, so its size must stay O(1)
            // however large the main region grows.
            Admission::TinyLfu => (capacity / 100).clamp(2, 64),
        };
        Self::build(capacity, admission, window)
    }

    /// Creates a TinyLFU cache with an **explicit** recency-window size
    /// (`window_slots == 0` restores pure window-less TinyLFU — the A/B
    /// baseline of the `cache` bench experiment). Same capacity rounding
    /// as [`FlowCache::new`]; the window slots are allocated on top.
    /// The window is probed by linear scan on every lookup and insert,
    /// so a large explicit window trades hit latency for burst
    /// absorption (the default policy caps itself at 64 slots).
    ///
    /// # Panics
    /// Panics if `capacity` exceeds 2^28 slots or `window_slots` exceeds
    /// the rounded main capacity.
    #[must_use]
    pub fn with_window(capacity: usize, window_slots: usize) -> Self {
        Self::build(capacity, Admission::TinyLfu, window_slots)
    }

    fn build(capacity: usize, admission: Admission, window: usize) -> Self {
        assert!(
            capacity <= MAX_CAPACITY,
            "cache capacity {capacity} exceeds the 2^28-slot ceiling"
        );
        let cap = capacity.next_power_of_two().max(WAYS);
        assert!(window <= cap, "window of {window} slots exceeds the {cap}-slot main region");
        Self {
            entries: vec![Entry::VACANT; cap],
            mask: cap - 1,
            sketch: match admission {
                Admission::Blind => None,
                Admission::TinyLfu => Some(FrequencySketch::new(cap)),
            },
            window: vec![Entry::VACANT; window],
            window_stamp: vec![0; window],
            tick: 0,
            stats: CacheStats { capacity: cap, window_capacity: window, ..CacheStats::default() },
        }
    }

    /// The active admission policy.
    #[must_use]
    pub fn admission(&self) -> Admission {
        if self.sketch.is_some() {
            Admission::TinyLfu
        } else {
            Admission::Blind
        }
    }

    /// Hashes a header's field set; `None` when the header carries too
    /// many fields to cache.
    #[inline]
    fn hash_header(header: &HeaderValues) -> Option<u64> {
        let fields = header.fields();
        if fields.len() > MAX_CACHED_FIELDS {
            return None;
        }
        let mut h = FxHasher::default();
        for &(field, value) in fields {
            h.write_u32(field as u32);
            h.write_u64(value as u64);
            h.write_u64((value >> 64) as u64);
        }
        let v = h.finish();
        Some(if v == EMPTY { 0 } else { v })
    }

    /// Whether `e` memoises exactly this flow key.
    #[inline]
    fn same_key(e: &Entry, hash: u64, fields: &[(MatchFieldKind, u128)]) -> bool {
        e.hash == hash && usize::from(e.len) == fields.len() && &e.fields[..fields.len()] == fields
    }

    /// Looks up a header's memoised result under the given owner epoch.
    /// `Some(row)` is a cache hit (the memoised classification, which may
    /// itself be `None` = to-controller); `None` means the caller must
    /// classify and [`FlowCache::insert`] the result. The recency window
    /// is probed before the main region; a window hit refreshes the
    /// entry's LRU stamp.
    ///
    /// Every cacheable lookup — hit or miss — also feeds the TinyLFU
    /// frequency sketch, so admission decisions reflect true access
    /// frequency, not just miss frequency.
    #[inline]
    pub fn lookup(&mut self, epoch: u64, header: &HeaderValues) -> Option<Option<u32>> {
        let Some(hash) = Self::hash_header(header) else {
            self.stats.misses += 1;
            return None;
        };
        if let Some(sketch) = &mut self.sketch {
            sketch.increment(hash);
        }
        let fields = header.fields();
        for i in 0..self.window.len() {
            let e = &self.window[i];
            if e.epoch == epoch && Self::same_key(e, hash, fields) {
                let row = e.row;
                self.tick += 1;
                self.window_stamp[i] = self.tick;
                self.stats.hits += 1;
                self.stats.window_hits += 1;
                return Some(row);
            }
        }
        let base = (hash as usize) & self.mask;
        for way in 0..WAYS {
            let e = &self.entries[(base + way) & self.mask];
            if e.epoch == epoch && Self::same_key(e, hash, fields) {
                self.stats.hits += 1;
                return Some(e.row);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Installs a classification result under the given epoch.
    ///
    /// With a recency window (the W-TinyLFU default) the candidate lands
    /// in the window first: same-key refreshes update in place (window
    /// or live main slot), vacant/stale window slots are reused, and a
    /// full window evicts its LRU entry — which then competes for
    /// main-region admission carrying its earned sketch frequency.
    /// Window-less caches install straight into the main region: a
    /// vacant or stale (old-epoch) slot in the probe window is always
    /// used, as is the flow's own slot on a re-install; when the whole
    /// probe window is live, the admission policy decides — blind caches
    /// replace the home slot unconditionally, TinyLFU replaces the
    /// window's least-frequent entry only if the candidate's sketched
    /// frequency is strictly higher, and otherwise rejects the candidate
    /// (see [`CacheStats::rejections`]). Headers too wide to cache are
    /// skipped. Allocation-free.
    pub fn insert(&mut self, epoch: u64, header: &HeaderValues, row: Option<u32>) {
        let Some(hash) = Self::hash_header(header) else {
            return;
        };
        let fields = header.fields();
        let mut entry = Entry::VACANT;
        entry.hash = hash;
        entry.epoch = epoch;
        entry.len = fields.len() as u8;
        entry.fields[..fields.len()].copy_from_slice(fields);
        entry.row = row;
        if self.window.is_empty() {
            self.install_main(entry);
        } else {
            self.insert_windowed(entry);
        }
    }

    /// The windowed (W-TinyLFU) insert path; see [`FlowCache::insert`].
    fn insert_windowed(&mut self, entry: Entry) {
        let fields = &entry.fields[..usize::from(entry.len)];
        // Same key already in the window (any epoch): refresh in place.
        if let Some(i) = self.window.iter().position(|e| Self::same_key(e, entry.hash, fields)) {
            self.window[i] = entry;
            self.tick += 1;
            self.window_stamp[i] = self.tick;
            self.stats.insertions += 1;
            return;
        }
        // Same key live in the main region: overwrite in place — the
        // flow is already a resident, routing it through the window
        // would duplicate it.
        let base = (entry.hash as usize) & self.mask;
        for way in 0..WAYS {
            let i = (base + way) & self.mask;
            let e = &self.entries[i];
            if e.epoch == entry.epoch && Self::same_key(e, entry.hash, fields) {
                self.entries[i] = entry;
                self.stats.insertions += 1;
                return;
            }
        }
        // New flow: take a vacant/stale window slot, else displace the
        // LRU window entry and let it compete for the main region.
        let slot = self
            .window
            .iter()
            .position(|e| e.hash == EMPTY || e.epoch != entry.epoch)
            .unwrap_or_else(|| {
                let lru = (0..self.window.len())
                    .min_by_key(|&i| self.window_stamp[i])
                    .expect("window is non-empty");
                let victim = self.window[lru];
                // The victim is live (stale slots were preferred above);
                // promote-or-reject under the TinyLFU rule.
                self.install_main(victim);
                lru
            });
        self.window[slot] = entry;
        self.tick += 1;
        self.window_stamp[slot] = self.tick;
        self.stats.insertions += 1;
    }

    /// Installs `entry` into the main region, applying the admission
    /// policy on a genuine conflict; see [`FlowCache::insert`].
    fn install_main(&mut self, entry: Entry) {
        let fields = &entry.fields[..usize::from(entry.len)];
        let base = (entry.hash as usize) & self.mask;
        let mut victim = None;
        for way in 0..WAYS {
            let i = (base + way) & self.mask;
            let e = &self.entries[i];
            if e.hash == EMPTY || e.epoch != entry.epoch || Self::same_key(e, entry.hash, fields) {
                victim = Some(i);
                break;
            }
        }
        let victim = match victim {
            Some(i) => i,
            // The probe window is full of live current-epoch entries: a
            // genuine conflict, admission decides.
            None => match &self.sketch {
                None => {
                    self.stats.evictions += 1;
                    base
                }
                Some(sketch) => {
                    let candidate = sketch.estimate(entry.hash);
                    let (coldest, coldest_freq) = (0..WAYS)
                        .map(|way| {
                            let i = (base + way) & self.mask;
                            (i, sketch.estimate(self.entries[i].hash))
                        })
                        .min_by_key(|&(_, freq)| freq)
                        .expect("probe window is non-empty");
                    if candidate > coldest_freq {
                        self.stats.evictions += 1;
                        coldest
                    } else {
                        self.stats.rejections += 1;
                        return;
                    }
                }
            },
        };
        self.entries[victim] = entry;
        self.stats.insertions += 1;
    }

    /// Allocated main-region slots — the *effective* capacity after the
    /// constructor's power-of-two rounding (the recency window's slots,
    /// [`FlowCache::window_capacity`], come on top).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Slots of the LRU recency window fronting the main region (0 for
    /// blind caches and pure window-less TinyLFU).
    #[must_use]
    pub fn window_capacity(&self) -> usize {
        self.window.len()
    }

    /// Lookups served from the cache since the last
    /// [`FlowCache::reset_stats`].
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.stats.hits
    }

    /// Lookups that fell through (including uncacheable headers).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.stats.misses
    }

    /// Hit fraction over all lookups since the last stats reset (0 when
    /// nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }

    /// All counters since the last [`FlowCache::reset_stats`], as one
    /// copyable block.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes every counter (entries, window order and frequency history
    /// are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats {
            capacity: self.entries.len(),
            window_capacity: self.window.len(),
            ..CacheStats::default()
        };
    }

    /// Modeled memory footprint in bits: the main entry array, the
    /// recency window (entries plus a 64-bit LRU stamp each) and the
    /// admission sketch. An entry holds the key hash (64), epoch stamp
    /// (64), field count (8), the inline field array and the memoised
    /// row (1 + 32).
    #[must_use]
    pub fn memory_bits(&self) -> u64 {
        let entry_bits = 64 + 64 + 8 + (MAX_CACHED_FIELDS as u64) * (8 + 128) + 33;
        (self.entries.len() as u64 + self.window.len() as u64) * entry_bits
            + self.window.len() as u64 * 64
            + self.sketch.as_ref().map_or(0, FrequencySketch::memory_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(port: u128, dst: u128) -> HeaderValues {
        HeaderValues::new().with(MatchFieldKind::InPort, port).with(MatchFieldKind::Ipv4Dst, dst)
    }

    #[test]
    fn miss_then_hit_roundtrip() {
        let mut c = FlowCache::new(64);
        let h = header(1, 0x0A01_0203);
        assert_eq!(c.lookup(0, &h), None);
        c.insert(0, &h, Some(7));
        assert_eq!(c.lookup(0, &h), Some(Some(7)));
        // A memoised "no match" is a hit too.
        let miss = header(2, 0xDEAD_BEEF);
        assert_eq!(c.lookup(0, &miss), None);
        c.insert(0, &miss, None);
        assert_eq!(c.lookup(0, &miss), Some(None));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
        let stats = c.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.insertions, 2);
        assert_eq!(stats.capacity, 64);
    }

    #[test]
    fn epoch_bump_invalidates_in_o1() {
        let mut c = FlowCache::new(64);
        let h = header(1, 0x0A01_0203);
        c.insert(0, &h, Some(7));
        assert_eq!(c.lookup(0, &h), Some(Some(7)));
        // New epoch: the entry is stale without any cache walk.
        assert_eq!(c.lookup(1, &h), None);
        c.insert(1, &h, Some(9));
        assert_eq!(c.lookup(1, &h), Some(Some(9)));
    }

    #[test]
    fn distinct_headers_do_not_alias() {
        for mut c in [FlowCache::blind(16), FlowCache::new(16)] {
            for i in 0..200u128 {
                c.insert(0, &header(i, i * 3), Some(i as u32));
            }
            // Whatever survived the capacity pressure must be correct.
            for i in 0..200u128 {
                if let Some(row) = c.lookup(0, &header(i, i * 3)) {
                    assert_eq!(row, Some(i as u32), "flow {i}");
                }
            }
        }
    }

    #[test]
    fn too_wide_headers_bypass() {
        let mut c = FlowCache::new(16);
        let mut h = HeaderValues::new();
        for (i, &f) in MatchFieldKind::ALL.iter().take(MAX_CACHED_FIELDS + 1).enumerate() {
            h.set(f, i as u128);
        }
        assert!(h.len() > MAX_CACHED_FIELDS);
        c.insert(0, &h, Some(1));
        assert_eq!(c.lookup(0, &h), None, "uncacheable header must not be served");
    }

    #[test]
    fn stats_reset() {
        let mut c = FlowCache::new(16);
        let h = header(1, 2);
        let _ = c.lookup(0, &h);
        c.insert(0, &h, None);
        let _ = c.lookup(0, &h);
        assert!(c.hits() + c.misses() > 0);
        c.reset_stats();
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.hit_rate(), 0.0);
        assert_eq!(c.stats().insertions, 0);
        assert_eq!(c.stats().capacity, 16, "capacity survives a reset");
        // Entries survive a stats reset.
        assert_eq!(c.lookup(0, &h), Some(None));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        // The effective capacity is the rounded size, observable both
        // through capacity() and stats().
        for (requested, effective) in [(0, 4), (3, 4), (100, 128), (128, 128), (129, 256)] {
            let c = FlowCache::new(requested);
            assert_eq!(c.capacity(), effective, "requested {requested}");
            assert_eq!(c.stats().capacity, effective, "requested {requested}");
        }
    }

    #[test]
    #[should_panic(expected = "ceiling")]
    fn absurd_capacity_panics() {
        let _ = FlowCache::new(MAX_CAPACITY + 1);
    }

    /// The TinyLFU property this PR exists for: a hot working set is not
    /// evicted by a stream of one-hit wonders, while blind admission
    /// flushes it.
    #[test]
    fn tinylfu_protects_hot_flows_from_scan_garbage() {
        let run = |mut c: FlowCache| -> f64 {
            let hot: Vec<HeaderValues> = (0..24u128).map(|i| header(i, 0xAA00 + i)).collect();
            // Warm the hot set with several rounds so its frequency
            // dominates.
            for _ in 0..8 {
                for h in &hot {
                    if c.lookup(0, h).is_none() {
                        c.insert(0, h, Some(1));
                    }
                }
            }
            c.reset_stats();
            // Interleave hot traffic with a one-shot scan.
            let mut scan = 10_000u128;
            for _ in 0..64 {
                for h in &hot {
                    if c.lookup(0, h).is_none() {
                        c.insert(0, h, Some(1));
                    }
                    scan += 1;
                    let s = header(7, scan);
                    if c.lookup(0, &s).is_none() {
                        c.insert(0, &s, None);
                    }
                }
            }
            // Hit rate over the mixed stream (hot flows are half of it).
            c.hit_rate()
        };
        let blind = run(FlowCache::blind(32));
        let tiny = run(FlowCache::new(32));
        assert!(tiny > blind + 0.1, "TinyLFU ({tiny:.2}) must beat blind admission ({blind:.2})");
        assert!(tiny > 0.45, "hot flows must stay resident under TinyLFU ({tiny:.2})");
    }

    /// The W-TinyLFU property the window exists for: a brand-new flow
    /// bursting right after the cache filled with frequent residents is
    /// served from the window immediately, while pure TinyLFU rejects it
    /// until the sketch warms to it.
    #[test]
    fn window_admits_recency_bursts() {
        let run = |mut c: FlowCache| -> (u64, u64) {
            // Saturate the main region with residents carrying sketch
            // history (3x capacity, so every probe window is full of
            // live, frequent entries) — sized to stay under the sketch's
            // halving period so the history is not aged away mid-test.
            let hot: Vec<HeaderValues> = (0..48u128).map(|i| header(i, 0xBB00 + i)).collect();
            for _ in 0..3 {
                for h in &hot {
                    if c.lookup(0, h).is_none() {
                        c.insert(0, h, Some(1));
                    }
                }
            }
            // A brand-new flow bursts: insert once, then re-access.
            c.reset_stats();
            let fresh = header(99, 0xF00D);
            for _ in 0..5 {
                if c.lookup(0, &fresh).is_none() {
                    c.insert(0, &fresh, Some(7));
                }
            }
            (c.stats().hits, c.stats().window_hits)
        };
        let (windowed_hits, from_window) = run(FlowCache::new(16));
        let (pure_hits, _) = run(FlowCache::with_window(16, 0));
        assert_eq!(windowed_hits, 4, "burst served from the window after the first miss");
        assert_eq!(from_window, 4, "every burst hit comes from the window segment");
        assert!(
            pure_hits <= 1,
            "pure TinyLFU must reject the historyless flow until the sketch warms \
             ({pure_hits} hits)"
        );
        assert!(windowed_hits > pure_hits, "the window must beat pure TinyLFU on the burst");
    }

    #[test]
    fn window_capacity_is_reported_and_bounded() {
        let c = FlowCache::new(512);
        assert_eq!(c.window_capacity(), 5, "~1% of 512");
        assert_eq!(c.stats().window_capacity, 5);
        let c = FlowCache::new(16);
        assert_eq!(c.window_capacity(), 2, "floor of 2 slots");
        // The default window is a linear scan, so it is capped however
        // large the main region grows.
        assert_eq!(FlowCache::new(1 << 20).window_capacity(), 64, "ceiling of 64 slots");
        assert_eq!(FlowCache::blind(512).window_capacity(), 0);
        assert_eq!(FlowCache::with_window(64, 0).window_capacity(), 0);
        assert_eq!(FlowCache::with_window(64, 8).window_capacity(), 8);
        // Stats survive a reset; memory accounting includes the window.
        let mut c = FlowCache::with_window(64, 8);
        c.reset_stats();
        assert_eq!(c.stats().window_capacity, 8);
        assert!(c.memory_bits() > FlowCache::with_window(64, 0).memory_bits());
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn oversized_window_panics() {
        let _ = FlowCache::with_window(16, 17);
    }

    #[test]
    fn window_respects_epochs_and_updates_in_place() {
        let mut c = FlowCache::new(16);
        let h = header(1, 2);
        c.insert(0, &h, Some(3));
        assert_eq!(c.lookup(0, &h), Some(Some(3)), "window serves the fresh flow");
        // Epoch bump: the window entry is stale too.
        assert_eq!(c.lookup(1, &h), None);
        c.insert(1, &h, Some(9));
        assert_eq!(c.lookup(1, &h), Some(Some(9)));
        // Same-key re-insert refreshes in place: no duplicate copies, so
        // a subsequent lookup sees the newest row.
        c.insert(1, &h, Some(11));
        assert_eq!(c.lookup(1, &h), Some(Some(11)));
    }

    #[test]
    fn sketch_estimates_and_ages() {
        let mut s = FrequencySketch::new(64);
        assert_eq!(s.estimate(42), 0);
        for _ in 0..5 {
            s.increment(42);
        }
        assert_eq!(s.estimate(42), 5);
        // Saturates at 15.
        for _ in 0..40 {
            s.increment(42);
        }
        assert_eq!(s.estimate(42), 15);
        // Halving ages every counter.
        s.halve();
        assert_eq!(s.estimate(42), 7);
        // Unrelated keys are (almost surely) unaffected by one hot key.
        assert!(s.estimate(43) <= 7);
    }

    #[test]
    fn rejections_are_counted() {
        let mut c = FlowCache::new(4); // one window
                                       // Fill the window with flows that have history.
        for i in 0..16u128 {
            for _ in 0..4 {
                let h = header(i, i);
                if c.lookup(0, &h).is_none() {
                    c.insert(0, &h, Some(i as u32));
                }
            }
        }
        // A cold one-shot candidate must be rejected somewhere along the
        // way once the window filled with higher-frequency residents.
        assert!(c.stats().rejections > 0, "stats: {:?}", c.stats());
    }
}
