//! RCU-style snapshot cell: lock-free readers, single-writer swaps.
//!
//! The dataplane problem: N worker shards classify packets against a
//! lookup table that the control plane occasionally replaces. Readers
//! must **never block** — a rule insert on the control plane cannot
//! stall packet service — and the writer must publish a whole new table
//! image in O(1) (one pointer swap), never mutating the image readers
//! are walking. That is read-copy-update, and [`SnapshotCell`] is the
//! workspace's dependency-free implementation: an `ArcSwap` equivalent
//! built on one [`AtomicPtr`] plus **epoch-based reclamation**.
//!
//! ## Protocol
//!
//! * The cell owns one strong reference to the current
//!   [`Snapshot`] (an `Arc` leaked into the `AtomicPtr`), and a
//!   monotonically increasing **version** bumped on every publish.
//! * A registered reader ([`SnapshotReader::load`]) *announces* the
//!   version it observed in its own atomic slot, loads the pointer,
//!   takes its own strong reference ([`Arc::increment_strong_count`]),
//!   and returns to quiescent. No locks, no waiting, no unbounded
//!   loops: three atomic operations per load.
//! * The writer ([`SnapshotCell::publish`]) swaps the pointer, bumps
//!   the version, and moves the old pointer to a retire list. A retired
//!   pointer's reference is dropped only once every reader slot is
//!   quiescent or has announced a version at least as new as the
//!   retirement — the window in which a stalled reader could still be
//!   between "loaded the pointer" and "took its reference" is provably
//!   closed (see the safety argument on [`SnapshotCell::collect`]).
//!
//! Reclamation is *deferred, never blocking*: a stalled reader delays
//! the drop of an old table image (bounded by the number of unreclaimed
//! publishes), it never delays the writer's swap or other readers.
//!
//! ## Reclamation safety argument
//!
//! This is the argument every `unsafe` block in this module rides on.
//! It is machine-checked twice in the standalone `proofs/` workspace:
//! the **`snapshot_reclamation`** Kani harness drives the protocol
//! below with a symbolic reader/writer schedule and asserts no
//! use-after-free and no double-free, and the bounded model checker's
//! `publish_load_collect` / `reader_stall` scenarios exhaustively
//! replay every interleaving of the same ops over modeled atomics.
//!
//! All the protocol's atomics are `SeqCst`, so there is one total order
//! over: a reader's announce store (**A**), its pointer load (**L**),
//! the writer's swap (**W**), the version bump, and a collect scan's
//! slot reads (**S**). A pointer `p` retired at version `R` was swapped
//! out by some W before this scan. Suppose a reader's L returned `p`
//! and the reader has not yet taken its reference:
//!
//! * L must precede W (after W, `current` no longer holds `p` —
//!   retired pointers are never re-published);
//! * the reader's A precedes its L, so A precedes W precedes S: the
//!   scan **sees the announcement**, and the announced version was read
//!   before the bump to `R`, hence `< R`.
//!
//! The scan therefore keeps `p` whenever any slot announces a version
//! `< R`. Conversely, a slot that is quiescent either never held `p` or
//! has already taken its own strong reference (readers return to
//! quiescent only after `increment_strong_count`), so dropping the
//! cell's reference is a plain refcount decrement. A stale announcement
//! (reader observed an old version, then stalled before loading) only
//! *under*-estimates, which delays reclamation — never unsoundness.
//! Double-frees cannot occur because entries leave the retire list
//! exactly once, and each entry owns exactly one deferred reference.

#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering a poisoned guard: a panic on some other thread
/// (e.g. a worker dying mid-batch) must not cascade into the
/// publish/reclamation machinery. Every registry the cell guards is
/// kept consistent by the code holding the guard, not by intermediate
/// states a panic could expose, so recovery is always sound here.
fn recovered<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Announced-slot value meaning "not currently loading".
const QUIESCENT: u64 = u64::MAX;

/// One published table image: the value plus the version it was
/// published at (version 1 is the image the cell was created with).
///
/// Carrying the version *inside* the snapshot is load-bearing: a reader
/// learns "which generation am I serving" from the same atomic load
/// that hands it the table, so results can be attributed to an exact
/// rule-set generation with no torn (pointer, version) pair.
#[derive(Debug)]
pub struct Snapshot<T> {
    /// Publish sequence number of this image.
    pub version: u64,
    /// The published value.
    pub value: T,
}

/// A retired pointer awaiting reclamation: it stopped being current
/// when `version` was published.
struct Retired<T> {
    ptr: *const Snapshot<T>,
    version: u64,
}

// SAFETY: a `Retired` is just a deferred `Arc` reference owned by the
// cell; it is only dereferenced (dropped) under the cell's writer lock,
// and `T: Send + Sync` makes the underlying `Arc<Snapshot<T>>`
// transferable.
unsafe impl<T: Send + Sync> Send for Retired<T> {}

/// The RCU cell. See the [module docs](self) for the protocol.
pub struct SnapshotCell<T> {
    /// `Arc::into_raw` of the current snapshot. Never null.
    current: AtomicPtr<Snapshot<T>>,
    /// Mirror of `current`'s version for cheap "did anything change"
    /// polls (the worker's per-batch staleness check).
    version: AtomicU64,
    /// Registered reader slots: the version a reader announced before
    /// touching `current`, or [`QUIESCENT`].
    readers: Mutex<Vec<Arc<AtomicU64>>>,
    /// Swapped-out pointers whose references have not been dropped yet.
    retired: Mutex<Vec<Retired<T>>>,
    /// Single-writer guard: publishes are serialised, and `latest` rides
    /// on it to read without a reader slot.
    writer: Mutex<()>,
}

// SAFETY: the raw pointer in `current` is an owned `Arc` reference;
// all shared mutation goes through atomics and mutexes.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
// SAFETY: as above — concurrent access is mediated entirely by the
// `SeqCst` atomics and the mutex-guarded registries.
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T: Send + Sync> SnapshotCell<T> {
    /// Creates a cell holding `value` as version 1.
    #[must_use]
    pub fn new(value: T) -> Self {
        let first = Arc::new(Snapshot { version: 1, value });
        Self {
            current: AtomicPtr::new(Arc::into_raw(first).cast_mut()),
            version: AtomicU64::new(1),
            readers: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
            writer: Mutex::new(()),
        }
    }

    /// The current publish version (monotone; starts at 1).
    #[inline]
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version.load(SeqCst)
    }

    /// Publishes `value` as the new current snapshot and returns its
    /// version. O(1) for readers: one pointer swap; the old image is
    /// retired and reclaimed once no reader can still be acquiring it.
    /// Callers may race — publishes serialise on the writer lock — but
    /// the intended topology is a single control-plane writer. A writer
    /// lock poisoned by a dead publisher is recovered, not propagated.
    pub fn publish(&self, value: T) -> u64 {
        let guard = recovered(&self.writer);
        let version = self.version.load(SeqCst) + 1;
        let next = Arc::new(Snapshot { version, value });
        let old = self.current.swap(Arc::into_raw(next).cast_mut(), SeqCst);
        self.version.store(version, SeqCst);
        recovered(&self.retired).push(Retired { ptr: old, version });
        self.collect();
        drop(guard);
        version
    }

    /// The current snapshot, via the writer lock (control-plane /
    /// telemetry path — a registered [`SnapshotReader`] is the lock-free
    /// way). Holding the writer lock excludes any concurrent retire or
    /// collect, so the loaded pointer cannot be reclaimed mid-acquire.
    #[must_use]
    pub fn latest(&self) -> Arc<Snapshot<T>> {
        let _guard = recovered(&self.writer);
        let ptr = self.current.load(SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and the cell still owns
        // a strong reference to it; reclamation only happens in
        // `collect`, which runs under the writer lock we hold.
        unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        }
    }

    /// Registers a lock-free reader. Each worker shard registers once
    /// and calls [`SnapshotReader::load`] whenever
    /// [`SnapshotCell::version`] says its replica is stale.
    #[must_use]
    pub fn register(self: &Arc<Self>, name: &str) -> SnapshotReader<T> {
        let _ = name;
        let slot = Arc::new(AtomicU64::new(QUIESCENT));
        recovered(&self.readers).push(Arc::clone(&slot));
        SnapshotReader { cell: Arc::clone(self), slot }
    }

    /// Drops every retired reference that no reader can still be
    /// acquiring. Runs under the writer lock (from `publish`).
    ///
    /// Why this is sound is the module-level
    /// [Reclamation safety argument](self#reclamation-safety-argument):
    /// the scan keeps a pointer retired at version `R` whenever any
    /// reader slot announces a version `< R`, and that announcement is
    /// guaranteed visible to the scan for any reader still inside its
    /// load window. The `proofs/` workspace checks the argument
    /// mechanically (`snapshot_reclamation` harness, the
    /// `publish_load_collect` and `reader_stall` model-checker
    /// scenarios).
    fn collect(&self) {
        let mut readers = recovered(&self.readers);
        // Prune slots whose reader handle is gone (worker exited): only
        // the registry holds them, and an exited reader is quiescent.
        readers.retain(|slot| Arc::strong_count(slot) > 1);
        let min_active = readers.iter().map(|s| s.load(SeqCst)).filter(|&v| v != QUIESCENT).min();
        drop(readers);
        let mut retired = recovered(&self.retired);
        retired.retain(|r| {
            let reclaimable = match min_active {
                None => true,
                Some(min) => r.version <= min,
            };
            if reclaimable {
                // SAFETY: the pointer came from `Arc::into_raw` when it
                // was published, the cell's reference has not been
                // dropped before (entries leave the retire list exactly
                // once), and per the module-level reclamation safety
                // argument no reader is still acquiring it.
                drop(unsafe { Arc::from_raw(r.ptr) });
            }
            !reclaimable
        });
    }

    /// Retired-but-unreclaimed snapshots (observability / tests).
    #[must_use]
    pub fn retired_len(&self) -> usize {
        recovered(&self.retired).len()
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        // No readers can exist: every `SnapshotReader` holds an
        // `Arc<SnapshotCell>`, so the cell dropping implies they are
        // gone. Reclaim the current pointer and everything retired.
        let ptr = *self.current.get_mut();
        // SAFETY: `current` always holds an owned `Arc::into_raw`
        // reference, dropped exactly once here.
        drop(unsafe { Arc::from_raw(ptr) });
        for r in self.retired.get_mut().unwrap_or_else(PoisonError::into_inner).drain(..) {
            // SAFETY: as in `collect` — each retired entry owns one
            // reference, dropped exactly once.
            drop(unsafe { Arc::from_raw(r.ptr) });
        }
    }
}

/// A registered lock-free reader of one [`SnapshotCell`].
pub struct SnapshotReader<T> {
    cell: Arc<SnapshotCell<T>>,
    slot: Arc<AtomicU64>,
}

impl<T: Send + Sync> SnapshotReader<T> {
    /// Acquires the current snapshot: announce, load, take a reference,
    /// return to quiescent. Wait-free — three atomic operations and one
    /// refcount increment, regardless of what the writer is doing.
    #[must_use]
    pub fn load(&self) -> Arc<Snapshot<T>> {
        // Announce the freshest version we can observe. A concurrent
        // publish between this load and the announce makes the
        // announcement conservatively old, which only delays
        // reclamation (see `SnapshotCell::collect`).
        let seen = self.cell.version.load(SeqCst);
        self.slot.store(seen, SeqCst);
        let ptr = self.cell.current.load(SeqCst);
        // SAFETY: the announce above happened-before this load in the
        // SeqCst total order, so per the reclamation argument the writer
        // cannot drop the cell's reference to `ptr` until this reader
        // returns to quiescent — the pointee is alive while we take our
        // own strong reference.
        let snapshot = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        self.slot.store(QUIESCENT, SeqCst);
        snapshot
    }

    /// The cell this reader is registered with.
    #[must_use]
    pub fn cell(&self) -> &SnapshotCell<T> {
        &self.cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn load_sees_publishes_in_order() {
        let cell = Arc::new(SnapshotCell::new(10u64));
        let reader = cell.register("t");
        let s = reader.load();
        assert_eq!((s.version, s.value), (1, 10));
        assert_eq!(cell.publish(20), 2);
        assert_eq!(cell.version(), 2);
        let s = reader.load();
        assert_eq!((s.version, s.value), (2, 20));
        let s = cell.latest();
        assert_eq!((s.version, s.value), (2, 20));
    }

    #[test]
    fn old_snapshots_survive_while_held() {
        let cell = Arc::new(SnapshotCell::new(vec![1, 2, 3]));
        let reader = cell.register("t");
        let old = reader.load();
        for i in 0..10 {
            cell.publish(vec![i; 3]);
        }
        // The held snapshot is still fully readable.
        assert_eq!(old.value, vec![1, 2, 3]);
        assert_eq!(old.version, 1);
        assert_eq!(reader.load().version, 11);
    }

    #[test]
    fn reclamation_happens_once_readers_are_quiescent() {
        struct CountDrops(Arc<AtomicUsize>);
        impl Drop for CountDrops {
            fn drop(&mut self) {
                self.0.fetch_add(1, SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(SnapshotCell::new(CountDrops(Arc::clone(&drops))));
        let reader = cell.register("t");
        let _held = reader.load();
        for _ in 0..5 {
            cell.publish(CountDrops(Arc::clone(&drops)));
        }
        // All five swapped-out images are reclaimable (the reader is
        // quiescent; `_held` owns its own reference so version 1's
        // *value* lives on, but the cell's references are droppable).
        // The last publish's collect ran before the 5th retire was
        // pushed... so at most one entry may linger:
        assert!(cell.retired_len() <= 1, "retire backlog: {}", cell.retired_len());
        cell.publish(CountDrops(Arc::clone(&drops)));
        assert!(cell.retired_len() <= 1);
        // Versions 2..=5 are gone (only version 1 is pinned by _held and
        // the current version 7 plus at most one just-retired image).
        assert!(drops.load(SeqCst) >= 4, "dropped {}", drops.load(SeqCst));
    }

    #[test]
    fn concurrent_readers_and_writer_stay_consistent() {
        let cell = Arc::new(SnapshotCell::new((0u64, 0u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let reader = cell.register("t");
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut last = 0;
                    while !stop.load(SeqCst) {
                        let s = reader.load();
                        // Invariant of every published value: both halves
                        // equal (a torn image would break it), versions
                        // monotone per reader.
                        assert_eq!(s.value.0, s.value.1);
                        assert!(s.version >= last, "version went backwards");
                        last = s.version;
                    }
                });
            }
            for i in 1..=2000u64 {
                cell.publish((i, i));
            }
            stop.store(true, SeqCst);
        });
        assert_eq!(cell.version(), 2001);
        assert_eq!(cell.latest().value, (2000, 2000));
        // With every reader gone, one more publish clears the backlog.
        cell.publish((9, 9));
        assert!(cell.retired_len() <= 1);
    }

    #[test]
    fn dropped_readers_are_pruned() {
        let cell = Arc::new(SnapshotCell::new(1u8));
        let r1 = cell.register("a");
        let r2 = cell.register("b");
        drop(r1);
        cell.publish(2);
        drop(r2);
        cell.publish(3);
        assert!(cell.readers.lock().unwrap().is_empty(), "exited readers pruned");
    }
}
