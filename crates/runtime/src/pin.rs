//! Best-effort worker-thread CPU pinning.
//!
//! Run-to-completion dataplanes pin one worker per core so a shard's
//! replicated tables and flow cache stay in that core's (and NUMA
//! node's) cache hierarchy. Rust's standard library has no affinity
//! API and the workspace vendors no `libc`, so on Linux the syscall
//! wrapper is declared directly against the C library the binary links
//! anyway. Pinning is strictly best-effort: a sandbox that rejects
//! `sched_setaffinity`, a cpuset that excludes the requested CPU, or a
//! non-Linux OS all degrade to unpinned workers — reported through
//! [`pin_to_cpu`]'s return value into the runtime telemetry, never an
//! error.

#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

/// Highest CPU index the fixed-size mask can express.
const MAX_CPUS: usize = 1024;

/// Pins the calling thread to `cpu` (modulo the mask's capacity).
/// Returns whether the kernel accepted the affinity.
#[cfg(target_os = "linux")]
pub fn pin_to_cpu(cpu: usize) -> bool {
    extern "C" {
        /// `pid == 0` targets the calling thread.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let cpu = cpu % MAX_CPUS;
    let mut mask = [0u64; MAX_CPUS / 64];
    mask[cpu / 64] = 1u64 << (cpu % 64);
    // SAFETY: the mask buffer outlives the call and its length is passed
    // in bytes; the syscall only reads it.
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

/// Non-Linux fallback: never pinned.
#[cfg(not(target_os = "linux"))]
pub fn pin_to_cpu(_cpu: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_is_best_effort() {
        // Whatever the sandbox says, the call must not crash, and a
        // second pin to CPU 0 (always present) from a scratch thread
        // reports a plain boolean.
        let accepted = std::thread::spawn(|| pin_to_cpu(0)).join().unwrap();
        let _ = accepted;
        let _ = pin_to_cpu(MAX_CPUS + 5); // wraps, does not overflow
    }
}
