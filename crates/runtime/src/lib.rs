//! # mtl-runtime — the sharded lock-free dataplane runtime
//!
//! The paper evaluates its switch as a static lookup structure; the
//! ROADMAP's north star is a production system classifying at full rate
//! *while* rules are inserted and removed across many cores. This crate
//! is the subsystem that closes that gap, fronting **any**
//! [`classifier_api::Classifier`]:
//!
//! * [`snapshot`] — the RCU primitive: [`snapshot::SnapshotCell`], an
//!   `ArcSwap` equivalent on one `AtomicPtr` with epoch-based
//!   reclamation. Readers are wait-free; the single writer publishes a
//!   whole table image with one pointer swap.
//! * [`ring`] — bounded SPSC batch rings (Lamport queues) carrying jobs
//!   from the dispatcher to the shards, lock- and allocation-free.
//! * [`runtime`] — [`runtime::Runtime`]: N run-to-completion worker
//!   shards (best-effort CPU-pinned, see [`pin`]), each with its own
//!   replicated snapshot and its own
//!   [`classifier_api::FlowCache`]; an RSS-style header-hash dispatcher;
//!   and the [`runtime::RuntimeHandle`] control plane
//!   (`add_rule` / `remove_rule` / `swap_table`) applying updates to a
//!   private master copy and publishing clones — classification never
//!   blocks on updates.
//! * [`telemetry`] — per-shard throughput / hit-rate / latency-percentile
//!   counters plus fault accounting (panics, restarts, sheds, poison
//!   recoveries), exported as one JSON block.
//! * [`supervisor`](self) — an internal monitor thread: every worker
//!   runs under an unwind boundary; the supervisor detects dead or
//!   stalled shards, respawns them with a fresh ring/snapshot/cache and
//!   re-routes their recovered jobs, so a panicking classifier costs a
//!   restart — never a hung [`runtime::Ticket`] or a dead process.
//! * [`durability`] — the crash-only control plane: a
//!   [`mtl_persist::Store`] (versioned binary snapshots + write-ahead
//!   rule log) wired under the runtime so `add_rule`/`remove_rule` are
//!   durable between checkpoints, and the supervisor can tear the whole
//!   runtime down and cold-start it from the latest good checkpoint plus
//!   the WAL tail (escalation: shard respawn → runtime restore).
//! * [`fault`] *(cargo feature `fault-injection`)* — deterministic,
//!   seeded fault schedules (worker panics, stalls, dropped doorbell
//!   notifies, delayed/stormed publishes, torn WAL appends, corrupted
//!   checkpoints) threaded through the runtime's hook points; the
//!   `chaos` test suite drives them.
//!
//! Consistency contract: every served batch reports, per packet, the
//! snapshot **version** it was classified under
//! ([`runtime::ClassifiedBatch::versions`]), and the result is
//! byte-identical to what that version's table answers sequentially —
//! the `runtime` bench experiment and the `runtime_consistency` stress
//! suite assert exactly that under concurrent add/remove churn. Packets
//! the runtime chose not to serve (load shedding, expired deadlines,
//! abandoned poison jobs, shutdown) are explicit: they report
//! [`runtime::UNSERVED_VERSION`], never a fabricated answer.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod durability;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod pin;
pub mod ring;
pub mod runtime;
pub mod snapshot;
mod supervisor;
pub mod telemetry;

pub use durability::{DurabilityConfig, RestoreReport};
#[cfg(feature = "fault-injection")]
pub use fault::{resolve_seed, CheckpointFault, Fault, FaultPlan};
pub use runtime::{
    shard_of, AdmissionPolicy, ClassifiedBatch, Runtime, RuntimeConfig, RuntimeHandle, Ticket,
    WaitOutcome, MAX_REQUEUES, UNSERVED_VERSION,
};
pub use snapshot::{Snapshot, SnapshotCell, SnapshotReader};
pub use telemetry::{
    DurabilityTelemetry, RuntimeTelemetry, ShardCounters, ShardTelemetry, TraceTelemetry,
};

// Re-exported so harnesses can decode flight recordings and consume
// metric series against the exact trace types this runtime emits.
pub use mtl_trace as trace;
