//! Per-shard runtime telemetry: throughput, cache effectiveness, batch
//! latency percentiles, hot-path allocation accounting.
//!
//! Workers publish into plain atomic counters ([`ShardCounters`],
//! relaxed stores, touched once per *batch*, never per packet);
//! [`crate::RuntimeHandle::telemetry`] snapshots them into the
//! immutable [`RuntimeTelemetry`] block, which renders itself as JSON
//! ([`RuntimeTelemetry::to_json`]) so operational tooling consumes one
//! self-contained document instead of scraping counters.

use classifier_api::CacheStats;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

/// Latency histogram: power-of-two nanosecond buckets (bucket `i` holds
/// samples in `[2^i, 2^(i+1))` ns; bucket 0 holds sub-2ns samples).
const LATENCY_BUCKETS: usize = 40;

/// Lock-free counters one worker shard writes and anyone may read.
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Packets classified.
    pub packets: AtomicU64,
    /// Batch jobs served.
    pub batches: AtomicU64,
    /// Nanoseconds spent classifying (excludes idle waiting).
    pub busy_ns: AtomicU64,
    /// Snapshot refreshes (RCU re-acquisitions after a publish).
    pub snapshot_refreshes: AtomicU64,
    /// Times the worker parked on its doorbell with an empty ring.
    pub idle_parks: AtomicU64,
    /// Heap allocations observed *inside* the per-packet serve loop by
    /// the installed allocation hook (see
    /// [`crate::RuntimeConfig::alloc_counter`]); stays 0 without a hook.
    pub hot_path_allocs: AtomicU64,
    /// Whether the kernel accepted this worker's CPU pin.
    pub pinned: AtomicBool,
    /// Liveness beat: bumped once per worker-loop iteration. The
    /// supervisor reads it to tell a wedged shard from an idle one; it
    /// is not part of the telemetry snapshot.
    pub heartbeat: AtomicU64,
    /// Worker panics caught by the shard's unwind boundary (injected or
    /// organic). Each one costs the in-flight batch a re-route.
    pub panics: AtomicU64,
    /// Times the supervisor respawned this shard after its worker died.
    pub restarts: AtomicU64,
    /// Jobs the supervisor re-routed into this shard's fresh ring after
    /// a death (ring backlog + the orphaned in-flight job).
    pub requeued_jobs: AtomicU64,
    /// Stall episodes the supervisor detected (heartbeat frozen with
    /// work pending).
    pub stalls_detected: AtomicU64,
    /// Batch jobs the dispatcher shed at admission (ring occupancy over
    /// the policy's bound, or deadline unreachable).
    pub shed_jobs: AtomicU64,
    /// Packets inside those shed jobs.
    pub shed_packets: AtomicU64,
    /// Packets whose job expired (deadline passed) before the worker
    /// picked it up — shed at service rather than at admission.
    pub deadline_shed_packets: AtomicU64,
    /// Mirrors of the worker-owned flow cache's counters.
    pub cache_hits: AtomicU64,
    /// See [`ShardCounters::cache_hits`].
    pub cache_misses: AtomicU64,
    /// See [`ShardCounters::cache_hits`].
    pub cache_insertions: AtomicU64,
    /// See [`ShardCounters::cache_hits`].
    pub cache_evictions: AtomicU64,
    /// See [`ShardCounters::cache_hits`].
    pub cache_rejections: AtomicU64,
    /// See [`ShardCounters::cache_hits`].
    pub cache_window_hits: AtomicU64,
    /// Effective main-region slot count of the worker's cache (set from
    /// the cache itself, so power-of-two rounding is reflected).
    pub cache_capacity: AtomicU64,
    /// Recency-window slot count of the worker's cache.
    pub cache_window_capacity: AtomicU64,
    /// Batch service latency histogram (submit → served), log2-ns.
    pub latency: LatencyHistogram,
    /// Totals from caches destroyed by respawns (see
    /// [`ShardCounters::absorb_cache_baseline`]).
    cache_base: CacheBaseline,
}

/// Base offsets for the cumulative cache counters: the totals of every
/// cache this shard has already worn out (a supervisor respawn builds
/// the worker a fresh cache whose stats restart at zero — without the
/// base, the mirrors would silently rewind).
#[derive(Debug, Default)]
struct CacheBaseline {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    rejections: AtomicU64,
    window_hits: AtomicU64,
}

impl ShardCounters {
    /// Copies the worker's cache stats into the atomic mirrors, on top
    /// of the base carried over from caches destroyed by respawns —
    /// the cumulative counters are monotone across worker generations.
    /// The capacity fields stay absolute (they describe the current
    /// cache, not a history).
    pub fn record_cache(&self, stats: &CacheStats) {
        let base = &self.cache_base;
        self.cache_hits.store(base.hits.load(Relaxed) + stats.hits, Relaxed);
        self.cache_misses.store(base.misses.load(Relaxed) + stats.misses, Relaxed);
        self.cache_insertions.store(base.insertions.load(Relaxed) + stats.insertions, Relaxed);
        self.cache_evictions.store(base.evictions.load(Relaxed) + stats.evictions, Relaxed);
        self.cache_rejections.store(base.rejections.load(Relaxed) + stats.rejections, Relaxed);
        self.cache_window_hits.store(base.window_hits.load(Relaxed) + stats.window_hits, Relaxed);
        self.cache_capacity.store(stats.capacity as u64, Relaxed);
        self.cache_window_capacity.store(stats.window_capacity as u64, Relaxed);
    }

    /// Folds the current mirrors into the base offsets. The supervisor
    /// calls this when it replaces a dead or abandoned worker (whose
    /// fresh cache restarts at zero), so [`ShardCounters::record_cache`]
    /// keeps the cumulative view monotone.
    pub fn absorb_cache_baseline(&self) {
        let base = &self.cache_base;
        base.hits.store(self.cache_hits.load(Relaxed), Relaxed);
        base.misses.store(self.cache_misses.load(Relaxed), Relaxed);
        base.insertions.store(self.cache_insertions.load(Relaxed), Relaxed);
        base.evictions.store(self.cache_evictions.load(Relaxed), Relaxed);
        base.rejections.store(self.cache_rejections.load(Relaxed), Relaxed);
        base.window_hits.store(self.cache_window_hits.load(Relaxed), Relaxed);
    }
}

/// A lock-free log2 histogram of nanosecond durations.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl LatencyHistogram {
    /// Records one duration.
    pub fn record(&self, ns: u64) {
        let bits = 64 - ns.leading_zeros() as usize; // 0 for ns = 0
        let bucket = bits.saturating_sub(1).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Relaxed);
    }

    /// Snapshot of the bucket counts.
    fn snapshot(&self) -> [u64; LATENCY_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Relaxed))
    }
}

/// Upper bound (exclusive) of histogram bucket `i` in nanoseconds.
fn bucket_upper(i: usize) -> u64 {
    1u64 << (i + 1)
}

/// Lower bound (inclusive) of histogram bucket `i` in nanoseconds.
fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// The `q`-quantile (0..=1) of a bucketed sample set, linearly
/// interpolated within the matched log2 bucket by the rank's position
/// among that bucket's samples (the old upper-bound answer overstated
/// quantiles by up to 2x); 0 when empty.
fn quantile(buckets: &[u64; LATENCY_BUCKETS], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    #[allow(clippy::cast_sign_loss)]
    let rank = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0;
    for (i, &count) in buckets.iter().enumerate() {
        let before = seen;
        seen += count;
        if seen >= rank {
            let (lower, upper) = (bucket_lower(i), bucket_upper(i));
            let into = rank - before; // 1..=count
            #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
            #[allow(clippy::cast_sign_loss)]
            let interpolated =
                lower + (((upper - lower) as f64) * (into as f64 / count as f64)) as u64;
            return interpolated;
        }
    }
    bucket_upper(LATENCY_BUCKETS - 1)
}

/// One shard's telemetry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTelemetry {
    /// Shard index.
    pub shard: usize,
    /// Packets classified.
    pub packets: u64,
    /// Batch jobs served.
    pub batches: u64,
    /// Nanoseconds spent classifying.
    pub busy_ns: u64,
    /// Packets per second of busy time (0 when idle so far).
    pub busy_packets_per_sec: f64,
    /// Snapshot refreshes after RCU publishes.
    pub snapshot_refreshes: u64,
    /// Doorbell parks with an empty ring.
    pub idle_parks: u64,
    /// Heap allocations inside the per-packet serve loop (0 without an
    /// installed hook; required to stay 0 once warmed).
    pub hot_path_allocs: u64,
    /// Whether this worker is CPU-pinned.
    pub pinned: bool,
    /// Worker panics caught by the shard's unwind boundary.
    pub panics: u64,
    /// Supervisor respawns of this shard.
    pub restarts: u64,
    /// Jobs re-routed into this shard after a respawn.
    pub requeued_jobs: u64,
    /// Stall episodes the supervisor detected on this shard.
    pub stalls_detected: u64,
    /// Batch jobs shed at admission for this shard.
    pub shed_jobs: u64,
    /// Packets shed at admission.
    pub shed_packets: u64,
    /// Packets shed at service because their deadline expired.
    pub deadline_shed_packets: u64,
    /// Flow-cache counters, cumulative across worker generations (a
    /// respawn's fresh cache is folded onto the prior totals, see
    /// [`ShardCounters::absorb_cache_baseline`]).
    pub cache: CacheStats,
    /// Median batch latency (submit → served), ns, interpolated within
    /// its log2 bucket.
    pub latency_p50_ns: u64,
    /// 90th-percentile batch latency, ns.
    pub latency_p90_ns: u64,
    /// 99th-percentile batch latency, ns.
    pub latency_p99_ns: u64,
}

impl ShardTelemetry {
    /// Snapshots one shard's counters. `configured_capacity` is the
    /// fallback for the cache-capacity fields until the worker's first
    /// cache-stats mirror lands (the mirrors carry the cache's own
    /// effective, rounding-aware numbers).
    #[must_use]
    pub fn capture(shard: usize, c: &ShardCounters, configured_capacity: usize) -> Self {
        let packets = c.packets.load(Relaxed);
        let busy_ns = c.busy_ns.load(Relaxed);
        let hist = c.latency.snapshot();
        #[allow(clippy::cast_precision_loss)]
        let busy_packets_per_sec =
            if busy_ns == 0 { 0.0 } else { packets as f64 / (busy_ns as f64 / 1e9) };
        Self {
            shard,
            packets,
            batches: c.batches.load(Relaxed),
            busy_ns,
            busy_packets_per_sec,
            snapshot_refreshes: c.snapshot_refreshes.load(Relaxed),
            idle_parks: c.idle_parks.load(Relaxed),
            hot_path_allocs: c.hot_path_allocs.load(Relaxed),
            pinned: c.pinned.load(Relaxed),
            panics: c.panics.load(Relaxed),
            restarts: c.restarts.load(Relaxed),
            requeued_jobs: c.requeued_jobs.load(Relaxed),
            stalls_detected: c.stalls_detected.load(Relaxed),
            shed_jobs: c.shed_jobs.load(Relaxed),
            shed_packets: c.shed_packets.load(Relaxed),
            deadline_shed_packets: c.deadline_shed_packets.load(Relaxed),
            cache: CacheStats {
                hits: c.cache_hits.load(Relaxed),
                misses: c.cache_misses.load(Relaxed),
                insertions: c.cache_insertions.load(Relaxed),
                evictions: c.cache_evictions.load(Relaxed),
                rejections: c.cache_rejections.load(Relaxed),
                window_hits: c.cache_window_hits.load(Relaxed),
                capacity: match c.cache_capacity.load(Relaxed) {
                    0 => configured_capacity,
                    mirrored => mirrored as usize,
                },
                window_capacity: c.cache_window_capacity.load(Relaxed) as usize,
            },
            latency_p50_ns: quantile(&hist, 0.50),
            latency_p90_ns: quantile(&hist, 0.90),
            latency_p99_ns: quantile(&hist, 0.99),
        }
    }
}

/// Whole-runtime telemetry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeTelemetry {
    /// Current published table version.
    pub version: u64,
    /// Worker shard count.
    pub shards: usize,
    /// Poisoned-lock recoveries across the runtime: a thread panicked
    /// while holding a runtime lock and a later accessor recovered the
    /// guard instead of cascading the panic.
    pub poison_recoveries: u64,
    /// Tickets whose `wait_timeout` elapsed before every shard
    /// delivered (the batch was returned `Partial` or `Timeout`).
    pub ticket_timeouts: u64,
    /// Durable-control-plane counters; `None` on in-memory runtimes.
    pub durability: Option<DurabilityTelemetry>,
    /// Flight-recorder / metrics-sampler counters; `None` when the
    /// recorder is disabled ([`crate::RuntimeConfig::flight_recorder`]).
    pub trace: Option<TraceTelemetry>,
    /// Per-shard snapshots, shard order.
    pub per_shard: Vec<ShardTelemetry>,
}

/// Counters of the always-on flight recorder and the optional metrics
/// sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceTelemetry {
    /// Event lanes (worker shards + control, durability, supervisor).
    pub lanes: usize,
    /// Ring capacity per lane, in events.
    pub events_per_lane: usize,
    /// Events emitted across all lanes since boot.
    pub events_recorded: u64,
    /// Events the rings overwrote before any drain saw them.
    pub events_overwritten: u64,
    /// Flight-log images flushed to durable storage (checkpoint
    /// cadence, panic hook, escalation).
    pub flight_flushes: u64,
    /// Telemetry samples the cadence sampler has pushed (0 with the
    /// sampler off).
    pub sampler_samples: u64,
    /// Sample-ring retention bound (0 with the sampler off).
    pub sampler_capacity: usize,
}

/// Counters of a durable runtime's crash-only control plane
/// ([`crate::Runtime::with_durability`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityTelemetry {
    /// Rule operations durably appended to the write-ahead log.
    pub wal_appends: u64,
    /// Appends that failed (torn mid-record); each one rejected its
    /// update, so the live table and the log never diverged.
    pub wal_append_failures: u64,
    /// Checkpoints written (including injected torn/unsynced ones —
    /// whether a checkpoint *restores* is judged at recovery time).
    pub checkpoints: u64,
    /// Checkpoints that failed outright at write time.
    pub checkpoint_failures: u64,
    /// Whole-runtime restores the supervisor performed (escalations).
    pub runtime_restores: u64,
    /// Restores that found no usable checkpoint and fell back to
    /// republishing the live master.
    pub restore_fallbacks: u64,
    /// Invalid (torn / truncated / bit-flipped / unsynced) checkpoints
    /// skipped over across all restores.
    pub restore_skipped_checkpoints: u64,
    /// WAL records replayed on top of snapshots across all restores.
    pub wal_records_replayed: u64,
    /// Current run epoch (+1 per completed restore).
    pub run_epoch: u64,
    /// Total bytes across WAL segment files currently on disk.
    pub wal_bytes: u64,
    /// WAL segment files currently on disk.
    pub wal_segments: u64,
    /// Snapshot files currently on disk (valid or not).
    pub snapshots: u64,
    /// Total bytes across snapshot files currently on disk.
    pub snapshot_bytes: u64,
    /// Retention-GC passes the store ran this session.
    pub gc_runs: u64,
    /// Snapshot files GC unlinked (invalid, or older than the retained
    /// K generations).
    pub gc_snapshots_removed: u64,
    /// WAL segments GC unlinked (entirely below the retained
    /// watermark).
    pub gc_segments_removed: u64,
    /// Orphaned checkpoint `.tmp` files swept (at open and by GC).
    pub tmp_cleaned: u64,
    /// Active-WAL-segment rotations this session.
    pub segments_rotated: u64,
    /// Times the control plane entered WAL-only degraded mode (a
    /// durable checkpoint failed; serving continued on the log alone).
    pub degraded_episodes: u64,
    /// Whether the control plane is in WAL-only degraded mode right
    /// now (the last durable checkpoint attempt failed).
    pub degraded: bool,
}

impl RuntimeTelemetry {
    /// Packets classified across all shards.
    #[must_use]
    pub fn total_packets(&self) -> u64 {
        self.per_shard.iter().map(|s| s.packets).sum()
    }

    /// Aggregate cache hit rate across shards (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let merged =
            self.per_shard.iter().map(|s| s.cache).fold(CacheStats::default(), CacheStats::merged);
        merged.hit_rate()
    }

    /// Heap allocations observed on any shard's per-packet serve loop.
    #[must_use]
    pub fn hot_path_allocs(&self) -> u64 {
        self.per_shard.iter().map(|s| s.hot_path_allocs).sum()
    }

    /// Supervisor respawns across all shards.
    #[must_use]
    pub fn total_restarts(&self) -> u64 {
        self.per_shard.iter().map(|s| s.restarts).sum()
    }

    /// Worker panics caught across all shards.
    #[must_use]
    pub fn total_panics(&self) -> u64 {
        self.per_shard.iter().map(|s| s.panics).sum()
    }

    /// Packets shed across all shards, at admission or at service
    /// (deadline expiry).
    #[must_use]
    pub fn total_shed_packets(&self) -> u64 {
        self.per_shard.iter().map(|s| s.shed_packets + s.deadline_shed_packets).sum()
    }

    /// Renders the telemetry as a self-contained JSON document (compact,
    /// stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256 + 256 * self.per_shard.len());
        let _ = write!(
            out,
            "{{\"version\":{},\"shards\":{},\"total_packets\":{},\"hit_rate\":{:.6},\
             \"total_restarts\":{},\"total_panics\":{},\"total_shed_packets\":{},\
             \"poison_recoveries\":{},\"ticket_timeouts\":{},",
            self.version,
            self.shards,
            self.total_packets(),
            self.hit_rate(),
            self.total_restarts(),
            self.total_panics(),
            self.total_shed_packets(),
            self.poison_recoveries,
            self.ticket_timeouts,
        );
        match &self.durability {
            Some(d) => {
                let _ = write!(
                    out,
                    "\"durability\":{{\"wal_appends\":{},\"wal_append_failures\":{},\
                     \"checkpoints\":{},\"checkpoint_failures\":{},\"runtime_restores\":{},\
                     \"restore_fallbacks\":{},\"restore_skipped_checkpoints\":{},\
                     \"wal_records_replayed\":{},\"run_epoch\":{},\
                     \"wal_bytes\":{},\"wal_segments\":{},\"snapshots\":{},\
                     \"snapshot_bytes\":{},\"gc_runs\":{},\"gc_snapshots_removed\":{},\
                     \"gc_segments_removed\":{},\"tmp_cleaned\":{},\"segments_rotated\":{},\
                     \"degraded_episodes\":{},\"degraded\":{}}},",
                    d.wal_appends,
                    d.wal_append_failures,
                    d.checkpoints,
                    d.checkpoint_failures,
                    d.runtime_restores,
                    d.restore_fallbacks,
                    d.restore_skipped_checkpoints,
                    d.wal_records_replayed,
                    d.run_epoch,
                    d.wal_bytes,
                    d.wal_segments,
                    d.snapshots,
                    d.snapshot_bytes,
                    d.gc_runs,
                    d.gc_snapshots_removed,
                    d.gc_segments_removed,
                    d.tmp_cleaned,
                    d.segments_rotated,
                    d.degraded_episodes,
                    d.degraded,
                );
            }
            None => out.push_str("\"durability\":null,"),
        }
        match &self.trace {
            Some(tr) => {
                let _ = write!(
                    out,
                    "\"trace\":{{\"lanes\":{},\"events_per_lane\":{},\"events_recorded\":{},\
                     \"events_overwritten\":{},\"flight_flushes\":{},\"sampler_samples\":{},\
                     \"sampler_capacity\":{}}},",
                    tr.lanes,
                    tr.events_per_lane,
                    tr.events_recorded,
                    tr.events_overwritten,
                    tr.flight_flushes,
                    tr.sampler_samples,
                    tr.sampler_capacity,
                );
            }
            None => out.push_str("\"trace\":null,"),
        }
        out.push_str("\"per_shard\":[");
        for (i, s) in self.per_shard.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"shard\":{},\"packets\":{},\"batches\":{},\"busy_ns\":{},\
                 \"busy_packets_per_sec\":{:.1},\"snapshot_refreshes\":{},\"idle_parks\":{},\
                 \"hot_path_allocs\":{},\"pinned\":{},\
                 \"faults\":{{\"panics\":{},\"restarts\":{},\"requeued_jobs\":{},\
                 \"stalls_detected\":{},\"shed_jobs\":{},\"shed_packets\":{},\
                 \"deadline_shed_packets\":{}}},\
                 \"cache\":{{\"hits\":{},\"misses\":{},\
                 \"hit_rate\":{:.6},\"insertions\":{},\"evictions\":{},\"rejections\":{},\
                 \"window_hits\":{},\"capacity\":{},\"window_capacity\":{}}},\
                 \"latency_ns\":{{\"p50\":{},\"p90\":{},\"p99\":{}}}}}",
                s.shard,
                s.packets,
                s.batches,
                s.busy_ns,
                s.busy_packets_per_sec,
                s.snapshot_refreshes,
                s.idle_parks,
                s.hot_path_allocs,
                s.pinned,
                s.panics,
                s.restarts,
                s.requeued_jobs,
                s.stalls_detected,
                s.shed_jobs,
                s.shed_packets,
                s.deadline_shed_packets,
                s.cache.hits,
                s.cache.misses,
                s.cache.hit_rate(),
                s.cache.insertions,
                s.cache.evictions,
                s.cache.rejections,
                s.cache.window_hits,
                s.cache.capacity,
                s.cache.window_capacity,
                s.latency_p50_ns,
                s.latency_p90_ns,
                s.latency_p99_ns,
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minijson::{parse_json, Json};

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for ns in [100u64, 100, 100, 100, 100, 100, 100, 100, 100, 100_000] {
            h.record(ns);
        }
        let snap = h.snapshot();
        let p50 = quantile(&snap, 0.50);
        let p99 = quantile(&snap, 0.99);
        assert!((64..=256).contains(&p50), "p50 {p50}");
        assert!(p99 >= 65_536, "p99 {p99}");
        assert_eq!(quantile(&LatencyHistogram::default().snapshot(), 0.5), 0);
        // Extremes do not overflow the bucket range.
        h.record(0);
        h.record(u64::MAX);
    }

    #[test]
    fn quantiles_interpolate_within_their_bucket() {
        // Six samples all in bucket [64, 128). rank(p50) = 3 of 6, so
        // the interpolated p50 sits halfway through the bucket — not at
        // its 128 upper bound (the old behaviour, up to 2x overstated).
        let h = LatencyHistogram::default();
        for ns in [70u64, 80, 90, 100, 110, 120] {
            h.record(ns);
        }
        let snap = h.snapshot();
        assert_eq!(quantile(&snap, 0.50), 96, "64 + 64 * (3/6)");
        assert_eq!(quantile(&snap, 1.0), 128, "the max rank reaches the upper bound");

        // The known set from the bracketing test: nine 100s, one 100_000.
        // rank(p50) = 5 of the 9 samples in [64, 128): 64 + 64*5/9 = 99.
        let h = LatencyHistogram::default();
        for ns in [100u64, 100, 100, 100, 100, 100, 100, 100, 100, 100_000] {
            h.record(ns);
        }
        assert_eq!(quantile(&h.snapshot(), 0.50), 99);

        // A lone sample in a bucket lands on the bucket's upper bound
        // (rank position 1 of 1), never beyond it.
        let h = LatencyHistogram::default();
        h.record(1000); // bucket [512, 1024)
        assert_eq!(quantile(&h.snapshot(), 0.50), 1024);
        // Bucket 0 interpolates from 0, not from a phantom 2^0 = 1.
        let h = LatencyHistogram::default();
        h.record(0);
        assert!(quantile(&h.snapshot(), 0.50) <= 2);
    }

    #[test]
    fn cache_counters_stay_monotone_across_respawns() {
        let counters = ShardCounters::default();
        counters.record_cache(&CacheStats {
            hits: 100,
            misses: 40,
            insertions: 30,
            evictions: 5,
            rejections: 2,
            window_hits: 9,
            capacity: 64,
            window_capacity: 4,
        });
        assert_eq!(counters.cache_hits.load(Relaxed), 100);

        // The worker dies; the supervisor folds the dead cache's totals
        // into the base before the fresh worker (whose stats restart at
        // zero) reports.
        counters.absorb_cache_baseline();
        counters.record_cache(&CacheStats {
            hits: 3,
            misses: 1,
            capacity: 64,
            window_capacity: 4,
            ..CacheStats::default()
        });
        assert_eq!(counters.cache_hits.load(Relaxed), 103, "hits accumulate across generations");
        assert_eq!(counters.cache_misses.load(Relaxed), 41);
        assert_eq!(counters.cache_insertions.load(Relaxed), 30);
        assert_eq!(counters.cache_window_hits.load(Relaxed), 9);
        assert_eq!(counters.cache_capacity.load(Relaxed), 64, "capacity stays absolute");

        // A second generation keeps compounding.
        counters.absorb_cache_baseline();
        counters.record_cache(&CacheStats { hits: 10, ..CacheStats::default() });
        assert_eq!(counters.cache_hits.load(Relaxed), 113);
    }

    /// Asserts `value` is an object whose keys are exactly `want`, in
    /// document order.
    fn assert_keys(value: &Json, want: &[&str], context: &str) {
        assert!(matches!(value, Json::Obj(_)), "{context} is not an object");
        assert_eq!(value.keys(), want, "{context} key set drifted");
    }

    fn assert_telemetry_schema(doc: &Json) {
        assert_keys(
            doc,
            &[
                "version",
                "shards",
                "total_packets",
                "hit_rate",
                "total_restarts",
                "total_panics",
                "total_shed_packets",
                "poison_recoveries",
                "ticket_timeouts",
                "durability",
                "trace",
                "per_shard",
            ],
            "document",
        );
        match doc.get("durability").expect("durability present") {
            Json::Null => {}
            d => assert_keys(
                d,
                &[
                    "wal_appends",
                    "wal_append_failures",
                    "checkpoints",
                    "checkpoint_failures",
                    "runtime_restores",
                    "restore_fallbacks",
                    "restore_skipped_checkpoints",
                    "wal_records_replayed",
                    "run_epoch",
                    "wal_bytes",
                    "wal_segments",
                    "snapshots",
                    "snapshot_bytes",
                    "gc_runs",
                    "gc_snapshots_removed",
                    "gc_segments_removed",
                    "tmp_cleaned",
                    "segments_rotated",
                    "degraded_episodes",
                    "degraded",
                ],
                "durability",
            ),
        }
        match doc.get("trace").expect("trace present") {
            Json::Null => {}
            tr => assert_keys(
                tr,
                &[
                    "lanes",
                    "events_per_lane",
                    "events_recorded",
                    "events_overwritten",
                    "flight_flushes",
                    "sampler_samples",
                    "sampler_capacity",
                ],
                "trace",
            ),
        }
        let shards = doc.get("per_shard").and_then(Json::as_arr).expect("per_shard array");
        for s in shards {
            assert_keys(
                s,
                &[
                    "shard",
                    "packets",
                    "batches",
                    "busy_ns",
                    "busy_packets_per_sec",
                    "snapshot_refreshes",
                    "idle_parks",
                    "hot_path_allocs",
                    "pinned",
                    "faults",
                    "cache",
                    "latency_ns",
                ],
                "per_shard entry",
            );
            assert_keys(
                s.get("faults").expect("faults"),
                &[
                    "panics",
                    "restarts",
                    "requeued_jobs",
                    "stalls_detected",
                    "shed_jobs",
                    "shed_packets",
                    "deadline_shed_packets",
                ],
                "faults",
            );
            assert_keys(
                s.get("cache").expect("cache"),
                &[
                    "hits",
                    "misses",
                    "hit_rate",
                    "insertions",
                    "evictions",
                    "rejections",
                    "window_hits",
                    "capacity",
                    "window_capacity",
                ],
                "cache",
            );
            assert_keys(
                s.get("latency_ns").expect("latency_ns"),
                &["p50", "p90", "p99"],
                "latency",
            );
        }
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let counters = ShardCounters::default();
        counters.packets.store(10, Relaxed);
        counters.busy_ns.store(1000, Relaxed);
        counters.record_cache(&CacheStats { hits: 7, misses: 3, ..CacheStats::default() });
        counters.latency.record(500);
        counters.panics.store(1, Relaxed);
        counters.restarts.store(1, Relaxed);
        counters.shed_packets.store(5, Relaxed);
        counters.deadline_shed_packets.store(2, Relaxed);
        let mut t = RuntimeTelemetry {
            version: 3,
            shards: 1,
            poison_recoveries: 4,
            ticket_timeouts: 1,
            durability: None,
            trace: None,
            per_shard: vec![ShardTelemetry::capture(0, &counters, 64)],
        };
        assert_eq!(t.total_packets(), 10);
        assert!((t.hit_rate() - 0.7).abs() < 1e-9);
        assert_eq!(t.total_restarts(), 1);
        assert_eq!(t.total_panics(), 1);
        assert_eq!(t.total_shed_packets(), 7);

        // In-memory runtime: durability and trace render as null.
        let doc = parse_json(&t.to_json()).expect("telemetry JSON parses");
        assert_telemetry_schema(&doc);
        assert_eq!(doc.get("version").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("total_packets").and_then(Json::as_f64), Some(10.0));
        assert_eq!(doc.get("total_shed_packets").and_then(Json::as_f64), Some(7.0));
        assert_eq!(doc.get("poison_recoveries").and_then(Json::as_f64), Some(4.0));
        assert!(matches!(doc.get("durability"), Some(Json::Null)));
        assert!(matches!(doc.get("trace"), Some(Json::Null)));
        let shard0 = &doc.get("per_shard").and_then(Json::as_arr).expect("per_shard")[0];
        assert_eq!(shard0.get("pinned").and_then(Json::as_bool), Some(false));
        assert_eq!(
            shard0.get("cache").and_then(|c| c.get("hits")).and_then(Json::as_f64),
            Some(7.0)
        );
        assert_eq!(
            shard0.get("faults").and_then(|f| f.get("shed_packets")).and_then(Json::as_f64),
            Some(5.0)
        );
        assert!(shard0
            .get("latency_ns")
            .and_then(|l| l.get("p50"))
            .and_then(Json::as_f64)
            .is_some());

        // A durable, traced runtime renders the nested blocks instead.
        t.durability = Some(DurabilityTelemetry {
            wal_appends: 12,
            wal_append_failures: 1,
            checkpoints: 2,
            runtime_restores: 1,
            wal_records_replayed: 4,
            run_epoch: 1,
            wal_bytes: 4096,
            wal_segments: 2,
            snapshots: 2,
            gc_runs: 3,
            gc_segments_removed: 5,
            segments_rotated: 6,
            degraded_episodes: 1,
            degraded: true,
            ..DurabilityTelemetry::default()
        });
        t.trace = Some(TraceTelemetry {
            lanes: 4,
            events_per_lane: 1024,
            events_recorded: 99,
            events_overwritten: 7,
            flight_flushes: 2,
            sampler_samples: 31,
            sampler_capacity: 512,
        });
        let doc = parse_json(&t.to_json()).expect("durable telemetry JSON parses");
        assert_telemetry_schema(&doc);
        let d = doc.get("durability").expect("durability block");
        assert_eq!(d.get("wal_appends").and_then(Json::as_f64), Some(12.0));
        assert_eq!(d.get("gc_segments_removed").and_then(Json::as_f64), Some(5.0));
        assert_eq!(d.get("degraded").and_then(Json::as_bool), Some(true));
        let tr = doc.get("trace").expect("trace block");
        assert_eq!(tr.get("lanes").and_then(Json::as_f64), Some(4.0));
        assert_eq!(tr.get("events_recorded").and_then(Json::as_f64), Some(99.0));
        assert_eq!(tr.get("sampler_samples").and_then(Json::as_f64), Some(31.0));
    }
}
