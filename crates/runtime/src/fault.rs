//! Deterministic fault injection for the supervised runtime
//! (compiled only with the `fault-injection` cargo feature).
//!
//! A [`FaultPlan`] is a *seeded, step-indexed* schedule of faults the
//! runtime threads consult at fixed hook points:
//!
//! * **worker panic** — the shard's worker thread panics when it picks
//!   up its `N`-th batch job (exercising the supervisor's detect →
//!   respawn → re-route path);
//! * **shard stall** — the worker wedges (busy holds the batch) for a
//!   fixed duration before serving its `N`-th job (exercising heartbeat
//!   stall detection, ticket deadlines and load shedding);
//! * **doorbell notify drop** — the dispatcher's `N`-th wakeup aimed at
//!   a shard is swallowed (exercising the park-timeout liveness
//!   backstop);
//! * **snapshot-publish delay** — the control plane sleeps before its
//!   `N`-th publish (exercising stale-replica windows under churn).
//!
//! Determinism is the point: every hook is indexed by a monotone atomic
//! counter owned by the *plan* (not the worker), so a respawned shard
//! continues the original schedule instead of replaying it — a panic
//! planned "at batch 5" fires exactly once per run. The chaos suite
//! (`tests/chaos.rs`) drives churn + traffic under seeded plans and
//! asserts the runtime degrades, counts, and recovers.

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::time::Duration;

/// One injected worker-side fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic the worker thread (the supervisor must respawn the shard
    /// and re-route the batch; the ticket must still resolve).
    WorkerPanic,
    /// Wedge the worker for the duration before serving the batch.
    Stall(Duration),
}

/// A worker fault scheduled at one (shard, batch-step) coordinate.
#[derive(Debug, Clone, Copy)]
struct WorkerEvent {
    shard: usize,
    /// 0-based index of the batch job the shard picks up.
    step: u64,
    fault: Fault,
}

/// A deterministic fault schedule. Construct with [`FaultPlan::new`] +
/// the builder methods, or [`FaultPlan::seeded`] for a randomized but
/// reproducible plan, then hand it to
/// [`crate::RuntimeConfig::fault_plan`].
#[derive(Debug)]
pub struct FaultPlan {
    worker: Vec<WorkerEvent>,
    /// `(shard, n)`: swallow the `n`-th (0-based) doorbell ring aimed at
    /// `shard`.
    notify_drops: Vec<(usize, u64)>,
    /// `(n, delay)`: sleep `delay` before the `n`-th (0-based) publish.
    publish_delays: Vec<(u64, Duration)>,
    /// Per-shard batch-step counters. Owned by the plan so a respawned
    /// worker *continues* the schedule rather than restarting it.
    steps: Vec<AtomicU64>,
    /// Per-shard doorbell-ring counters.
    rings: Vec<AtomicU64>,
    /// Control-plane publish counter.
    publishes: AtomicU64,
}

impl FaultPlan {
    /// An empty plan for a runtime with `shards` worker shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            worker: Vec::new(),
            notify_drops: Vec::new(),
            publish_delays: Vec::new(),
            steps: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            rings: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            publishes: AtomicU64::new(0),
        }
    }

    /// Panics `shard`'s worker when it picks up its `step`-th batch.
    #[must_use]
    pub fn worker_panic(mut self, shard: usize, step: u64) -> Self {
        self.worker.push(WorkerEvent { shard, step, fault: Fault::WorkerPanic });
        self
    }

    /// Stalls `shard`'s worker for `wedge` before serving its `step`-th
    /// batch.
    #[must_use]
    pub fn stall(mut self, shard: usize, step: u64, wedge: Duration) -> Self {
        self.worker.push(WorkerEvent { shard, step, fault: Fault::Stall(wedge) });
        self
    }

    /// Swallows the `nth` (0-based) doorbell notify aimed at `shard`.
    #[must_use]
    pub fn drop_notify(mut self, shard: usize, nth: u64) -> Self {
        self.notify_drops.push((shard, nth));
        self
    }

    /// Sleeps `delay` before the control plane's `nth` (0-based)
    /// snapshot publish.
    #[must_use]
    pub fn publish_delay(mut self, nth: u64, delay: Duration) -> Self {
        self.publish_delays.push((nth, delay));
        self
    }

    /// A reproducible randomized plan: guaranteed **at least one worker
    /// panic and one shard stall** within the first `horizon` batch
    /// steps, plus a seed-dependent sprinkling of dropped notifies and
    /// one publish delay. Identical `(seed, shards, horizon)` triples
    /// yield identical plans.
    ///
    /// # Panics
    /// Panics if `horizon` is zero.
    #[must_use]
    pub fn seeded(seed: u64, shards: usize, horizon: u64) -> Self {
        assert!(horizon > 0, "fault horizon must cover at least one step");
        let shards = shards.max(1);
        let mut rng = SplitMix64::new(seed);
        let mut plan = Self::new(shards);
        // The two guaranteed faults land on seed-chosen coordinates.
        let panic_shard = (rng.next() as usize) % shards;
        plan = plan.worker_panic(panic_shard, rng.next() % horizon);
        let stall_shard = (rng.next() as usize) % shards;
        // Long enough that the supervisor's stall detector (25ms of
        // heartbeat silence) is guaranteed to notice.
        let stall_ms = 40 + rng.next() % 60;
        plan = plan.stall(stall_shard, rng.next() % horizon, Duration::from_millis(stall_ms));
        // Extras: up to 2 more panics/stalls, a few dropped notifies, one
        // delayed publish.
        for _ in 0..rng.next() % 3 {
            let shard = (rng.next() as usize) % shards;
            let step = rng.next() % horizon;
            plan = if rng.next().is_multiple_of(2) {
                plan.worker_panic(shard, step)
            } else {
                plan.stall(shard, step, Duration::from_millis(10 + rng.next() % 40))
            };
        }
        for _ in 0..1 + rng.next() % 4 {
            plan = plan.drop_notify((rng.next() as usize) % shards, rng.next() % (horizon * 2));
        }
        plan.publish_delay(rng.next() % 8, Duration::from_millis(1 + rng.next() % 10))
    }

    /// Worker shards the plan was built for.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.steps.len()
    }

    /// Scheduled worker panics (observability for harnesses).
    #[must_use]
    pub fn planned_panics(&self) -> usize {
        self.worker.iter().filter(|e| e.fault == Fault::WorkerPanic).count()
    }

    /// Scheduled worker stalls.
    #[must_use]
    pub fn planned_stalls(&self) -> usize {
        self.worker.iter().filter(|e| matches!(e.fault, Fault::Stall(_))).count()
    }

    /// Hook: the worker on `shard` is about to serve its next batch.
    /// Advances the shard's step counter and returns the fault scheduled
    /// at this step, if any. Out-of-range shards (a runtime wider than
    /// the plan) never fault.
    pub(crate) fn on_batch(&self, shard: usize) -> Option<Fault> {
        let step = self.steps.get(shard)?.fetch_add(1, SeqCst);
        self.worker.iter().find(|e| e.shard == shard && e.step == step).map(|e| e.fault)
    }

    /// Hook: the dispatcher is about to ring `shard`'s doorbell. `true`
    /// means the notify must be dropped.
    pub(crate) fn on_notify(&self, shard: usize) -> bool {
        let Some(counter) = self.rings.get(shard) else { return false };
        let nth = counter.fetch_add(1, SeqCst);
        self.notify_drops.iter().any(|&(s, n)| s == shard && n == nth)
    }

    /// Hook: the control plane is about to publish. Returns the delay to
    /// apply first, if one is scheduled.
    pub(crate) fn on_publish(&self) -> Option<Duration> {
        let nth = self.publishes.fetch_add(1, SeqCst);
        self.publish_delays.iter().find(|&&(n, _)| n == nth).map(|&(_, d)| d)
    }
}

/// Sebastiano Vigna's SplitMix64 — tiny, seedable, good enough to
/// scatter fault coordinates (no external RNG dependency).
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_advance_and_fire_exactly_once() {
        let plan = FaultPlan::new(2).worker_panic(0, 2).stall(1, 0, Duration::from_millis(5));
        assert_eq!(plan.on_batch(0), None); // step 0
        assert_eq!(plan.on_batch(0), None); // step 1
        assert_eq!(plan.on_batch(0), Some(Fault::WorkerPanic)); // step 2
        assert_eq!(plan.on_batch(0), None, "fires once");
        assert_eq!(plan.on_batch(1), Some(Fault::Stall(Duration::from_millis(5))));
        assert_eq!(plan.on_batch(1), None);
        assert_eq!(plan.on_batch(99), None, "out-of-range shards never fault");
    }

    #[test]
    fn notify_and_publish_hooks_are_nth_indexed() {
        let plan = FaultPlan::new(1).drop_notify(0, 1).publish_delay(1, Duration::from_millis(3));
        assert!(!plan.on_notify(0));
        assert!(plan.on_notify(0), "second ring dropped");
        assert!(!plan.on_notify(0));
        assert_eq!(plan.on_publish(), None);
        assert_eq!(plan.on_publish(), Some(Duration::from_millis(3)));
        assert_eq!(plan.on_publish(), None);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_guarantee_core_faults() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = FaultPlan::seeded(seed, 3, 16);
            let b = FaultPlan::seeded(seed, 3, 16);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
            assert!(a.planned_panics() >= 1, "seed {seed} plans a panic");
            assert!(a.planned_stalls() >= 1, "seed {seed} plans a stall");
            assert!(
                a.worker.iter().all(|e| e.shard < 3 && e.step < 16),
                "seed {seed}: worker faults inside the horizon"
            );
        }
        let a = FaultPlan::seeded(7, 2, 8);
        let c = FaultPlan::seeded(8, 2, 8);
        assert_ne!(format!("{a:?}"), format!("{c:?}"), "different seeds differ");
    }
}
