//! Deterministic fault injection for the supervised runtime
//! (compiled only with the `fault-injection` cargo feature).
//!
//! A [`FaultPlan`] is a *seeded, step-indexed* schedule of faults the
//! runtime threads consult at fixed hook points:
//!
//! * **worker panic** — the shard's worker thread panics when it picks
//!   up its `N`-th batch job (exercising the supervisor's detect →
//!   respawn → re-route path);
//! * **shard stall** — the worker wedges (busy holds the batch) for a
//!   fixed duration before serving its `N`-th job (exercising heartbeat
//!   stall detection, ticket deadlines and load shedding);
//! * **doorbell notify drop** — the dispatcher's `N`-th wakeup aimed at
//!   a shard is swallowed (exercising the park-timeout liveness
//!   backstop);
//! * **snapshot-publish delay** — the control plane sleeps before its
//!   `N`-th publish (exercising stale-replica windows under churn);
//! * **publish storm** — the control plane republishes the same table a
//!   burst of extra times at its `N`-th publish (exercising version
//!   churn racing shard respawns and restores);
//! * **publish escalation** — the `N`-th publish raises the
//!   runtime-restore flag (exercising the supervisor's cold-start-from-
//!   checkpoint escalation path);
//! * **WAL cut** — the `N`-th write-ahead append is torn mid-record,
//!   keeping only a byte prefix (exercising torn-tail detection and the
//!   reject-the-update contract);
//! * **checkpoint fault** — the `N`-th checkpoint is written torn or
//!   with its fsync dropped (exercising fallback to the previous
//!   durable snapshot plus a longer WAL replay).
//!
//! Determinism is the point: every hook is indexed by a monotone atomic
//! counter owned by the *plan* (not the worker), so a respawned shard
//! continues the original schedule instead of replaying it — a panic
//! planned "at batch 5" fires exactly once per run. The chaos suite
//! (`tests/chaos.rs`) drives churn + traffic under seeded plans and
//! asserts the runtime degrades, counts, and recovers.

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::time::Duration;

/// One injected worker-side fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic the worker thread (the supervisor must respawn the shard
    /// and re-route the batch; the ticket must still resolve).
    WorkerPanic,
    /// Wedge the worker for the duration before serving the batch.
    Stall(Duration),
}

/// What the control plane must do around one snapshot publish. Returned
/// by the publish hook; a fault-free publish is the `Default` value.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PublishOutcome {
    /// Sleep this long before publishing.
    pub(crate) delay: Option<Duration>,
    /// Republish the same table this many *extra* times (a publish
    /// storm: every burst publish carries the new table, so versions
    /// advance but contents do not).
    pub(crate) storm: u32,
    /// Raise the runtime-restore flag after publishing.
    pub(crate) escalate: bool,
}

/// One injected checkpoint fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointFault {
    /// Write only the first `keep` bytes of the snapshot file (a torn
    /// write: the restore path must skip it and fall back).
    Torn {
        /// Bytes of the snapshot file that reach disk.
        keep: usize,
    },
    /// Write the full file but skip the fsync; a simulated crash drops
    /// it.
    SkipFsync,
}

/// A worker fault scheduled at one (shard, batch-step) coordinate.
#[derive(Debug, Clone, Copy)]
struct WorkerEvent {
    shard: usize,
    /// 0-based index of the batch job the shard picks up.
    step: u64,
    fault: Fault,
}

/// A deterministic fault schedule. Construct with [`FaultPlan::new`] +
/// the builder methods, or [`FaultPlan::seeded`] for a randomized but
/// reproducible plan, then hand it to
/// [`crate::RuntimeConfig::fault_plan`].
#[derive(Debug)]
pub struct FaultPlan {
    worker: Vec<WorkerEvent>,
    /// `(shard, n)`: swallow the `n`-th (0-based) doorbell ring aimed at
    /// `shard`.
    notify_drops: Vec<(usize, u64)>,
    /// `(n, delay)`: sleep `delay` before the `n`-th (0-based) publish.
    publish_delays: Vec<(u64, Duration)>,
    /// `(n, burst)`: republish `burst` extra times at the `n`-th publish.
    publish_storms: Vec<(u64, u32)>,
    /// Publish indices that raise the runtime-restore flag.
    publish_escalations: Vec<u64>,
    /// `(n, keep)`: tear the `n`-th WAL append after `keep` bytes.
    wal_cuts: Vec<(u64, usize)>,
    /// `(n, fault)`: corrupt the `n`-th checkpoint.
    checkpoint_faults: Vec<(u64, CheckpointFault)>,
    /// Per-shard batch-step counters. Owned by the plan so a respawned
    /// worker *continues* the schedule rather than restarting it.
    steps: Vec<AtomicU64>,
    /// Per-shard doorbell-ring counters.
    rings: Vec<AtomicU64>,
    /// Control-plane publish counter.
    publishes: AtomicU64,
    /// Write-ahead append counter.
    wal_appends: AtomicU64,
    /// Checkpoint counter.
    checkpoints: AtomicU64,
}

impl FaultPlan {
    /// An empty plan for a runtime with `shards` worker shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            worker: Vec::new(),
            notify_drops: Vec::new(),
            publish_delays: Vec::new(),
            publish_storms: Vec::new(),
            publish_escalations: Vec::new(),
            wal_cuts: Vec::new(),
            checkpoint_faults: Vec::new(),
            steps: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            rings: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            publishes: AtomicU64::new(0),
            wal_appends: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
        }
    }

    /// Panics `shard`'s worker when it picks up its `step`-th batch.
    #[must_use]
    pub fn worker_panic(mut self, shard: usize, step: u64) -> Self {
        self.worker.push(WorkerEvent { shard, step, fault: Fault::WorkerPanic });
        self
    }

    /// Stalls `shard`'s worker for `wedge` before serving its `step`-th
    /// batch.
    #[must_use]
    pub fn stall(mut self, shard: usize, step: u64, wedge: Duration) -> Self {
        self.worker.push(WorkerEvent { shard, step, fault: Fault::Stall(wedge) });
        self
    }

    /// Swallows the `nth` (0-based) doorbell notify aimed at `shard`.
    #[must_use]
    pub fn drop_notify(mut self, shard: usize, nth: u64) -> Self {
        self.notify_drops.push((shard, nth));
        self
    }

    /// Sleeps `delay` before the control plane's `nth` (0-based)
    /// snapshot publish.
    #[must_use]
    pub fn publish_delay(mut self, nth: u64, delay: Duration) -> Self {
        self.publish_delays.push((nth, delay));
        self
    }

    /// Republishes the same table `burst` extra times at the `nth`
    /// (0-based) publish — a publish storm. Every storm publish carries
    /// the *new* table, so replica versions race ahead while contents
    /// stay fixed.
    #[must_use]
    pub fn publish_storm(mut self, nth: u64, burst: u32) -> Self {
        self.publish_storms.push((nth, burst));
        self
    }

    /// Raises the runtime-restore flag at the `nth` (0-based) publish,
    /// forcing the supervisor's cold-start-from-checkpoint escalation.
    #[must_use]
    pub fn escalate_at_publish(mut self, nth: u64) -> Self {
        self.publish_escalations.push(nth);
        self
    }

    /// Tears the `nth` (0-based) write-ahead append, persisting only the
    /// first `keep` bytes of the record. The runtime must reject the
    /// update so the live table and the log never disagree.
    #[must_use]
    pub fn wal_cut(mut self, nth: u64, keep: usize) -> Self {
        self.wal_cuts.push((nth, keep));
        self
    }

    /// Tears the `nth` (0-based) checkpoint, keeping only `keep` bytes
    /// of the snapshot file.
    #[must_use]
    pub fn torn_checkpoint(mut self, nth: u64, keep: usize) -> Self {
        self.checkpoint_faults.push((nth, CheckpointFault::Torn { keep }));
        self
    }

    /// Drops the fsync of the `nth` (0-based) checkpoint; a simulated
    /// crash deletes it.
    #[must_use]
    pub fn drop_fsync(mut self, nth: u64) -> Self {
        self.checkpoint_faults.push((nth, CheckpointFault::SkipFsync));
        self
    }

    /// A reproducible randomized plan: guaranteed **at least one worker
    /// panic and one shard stall** within the first `horizon` batch
    /// steps, plus a seed-dependent sprinkling of dropped notifies and
    /// one publish delay. Identical `(seed, shards, horizon)` triples
    /// yield identical plans.
    ///
    /// # Panics
    /// Panics if `horizon` is zero.
    #[must_use]
    pub fn seeded(seed: u64, shards: usize, horizon: u64) -> Self {
        assert!(horizon > 0, "fault horizon must cover at least one step");
        let shards = shards.max(1);
        let mut rng = SplitMix64::new(seed);
        let mut plan = Self::new(shards);
        // The two guaranteed faults land on seed-chosen coordinates.
        let panic_shard = (rng.next() as usize) % shards;
        plan = plan.worker_panic(panic_shard, rng.next() % horizon);
        let stall_shard = (rng.next() as usize) % shards;
        // Long enough that the supervisor's stall detector (25ms of
        // heartbeat silence) is guaranteed to notice.
        let stall_ms = 40 + rng.next() % 60;
        plan = plan.stall(stall_shard, rng.next() % horizon, Duration::from_millis(stall_ms));
        // Extras: up to 2 more panics/stalls, a few dropped notifies, one
        // delayed publish.
        for _ in 0..rng.next() % 3 {
            let shard = (rng.next() as usize) % shards;
            let step = rng.next() % horizon;
            plan = if rng.next().is_multiple_of(2) {
                plan.worker_panic(shard, step)
            } else {
                plan.stall(shard, step, Duration::from_millis(10 + rng.next() % 40))
            };
        }
        for _ in 0..1 + rng.next() % 4 {
            plan = plan.drop_notify((rng.next() as usize) % shards, rng.next() % (horizon * 2));
        }
        plan.publish_delay(rng.next() % 8, Duration::from_millis(1 + rng.next() % 10))
    }

    /// [`FaultPlan::seeded`] plus guaranteed control-plane faults: **at
    /// least one publish storm, one torn WAL append and one corrupted
    /// checkpoint** (torn or fsync-dropped), with a seed-dependent
    /// chance of a publish-triggered runtime escalation. Identical
    /// `(seed, shards, horizon)` triples yield identical plans.
    ///
    /// # Panics
    /// Panics if `horizon` is zero.
    #[must_use]
    pub fn seeded_control(seed: u64, shards: usize, horizon: u64) -> Self {
        let mut plan = Self::seeded(seed, shards, horizon);
        // A distinct stream so control faults don't perturb the worker
        // schedule for the same seed.
        let mut rng = SplitMix64::new(seed ^ 0xC01A_B1E5_0000_0001);
        plan = plan.publish_storm(rng.next() % 8, 2 + (rng.next() % 4) as u32);
        // Cut inside the 20-byte record header about half the time, in
        // the payload otherwise — both must read back as a torn tail.
        plan = plan.wal_cut(rng.next() % horizon.max(4), (rng.next() % 24) as usize);
        plan = if rng.next().is_multiple_of(2) {
            plan.torn_checkpoint(rng.next() % 4, 1 + (rng.next() % 64) as usize)
        } else {
            plan.drop_fsync(rng.next() % 4)
        };
        if rng.next().is_multiple_of(2) {
            plan = plan.escalate_at_publish(4 + rng.next() % 12);
        }
        plan
    }

    /// Worker shards the plan was built for.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.steps.len()
    }

    /// Scheduled worker panics (observability for harnesses).
    #[must_use]
    pub fn planned_panics(&self) -> usize {
        self.worker.iter().filter(|e| e.fault == Fault::WorkerPanic).count()
    }

    /// Scheduled worker stalls.
    #[must_use]
    pub fn planned_stalls(&self) -> usize {
        self.worker.iter().filter(|e| matches!(e.fault, Fault::Stall(_))).count()
    }

    /// Scheduled publish storms.
    #[must_use]
    pub fn planned_storms(&self) -> usize {
        self.publish_storms.len()
    }

    /// Scheduled torn WAL appends.
    #[must_use]
    pub fn planned_wal_cuts(&self) -> usize {
        self.wal_cuts.len()
    }

    /// Scheduled checkpoint faults (torn or fsync-dropped).
    #[must_use]
    pub fn planned_checkpoint_faults(&self) -> usize {
        self.checkpoint_faults.len()
    }

    /// Whether any publish raises the runtime-restore flag.
    #[must_use]
    pub fn plans_escalation(&self) -> bool {
        !self.publish_escalations.is_empty()
    }

    /// Hook: the worker on `shard` is about to serve its next batch.
    /// Advances the shard's step counter and returns the fault scheduled
    /// at this step, if any. Out-of-range shards (a runtime wider than
    /// the plan) never fault.
    pub(crate) fn on_batch(&self, shard: usize) -> Option<Fault> {
        let step = self.steps.get(shard)?.fetch_add(1, SeqCst);
        self.worker.iter().find(|e| e.shard == shard && e.step == step).map(|e| e.fault)
    }

    /// Hook: the dispatcher is about to ring `shard`'s doorbell. `true`
    /// means the notify must be dropped.
    pub(crate) fn on_notify(&self, shard: usize) -> bool {
        let Some(counter) = self.rings.get(shard) else { return false };
        let nth = counter.fetch_add(1, SeqCst);
        self.notify_drops.iter().any(|&(s, n)| s == shard && n == nth)
    }

    /// Hook: the control plane is about to publish. Returns the full
    /// outcome for this publish index: an optional pre-publish delay, an
    /// extra-republish burst, and whether to raise the restore flag.
    pub(crate) fn on_publish(&self) -> PublishOutcome {
        let nth = self.publishes.fetch_add(1, SeqCst);
        PublishOutcome {
            delay: self.publish_delays.iter().find(|&&(n, _)| n == nth).map(|&(_, d)| d),
            storm: self
                .publish_storms
                .iter()
                .find(|&&(n, _)| n == nth)
                .map_or(0, |&(_, burst)| burst),
            escalate: self.publish_escalations.contains(&nth),
        }
    }

    /// Hook: a write-ahead append is about to run. `Some(keep)` tears
    /// the record after `keep` bytes.
    pub(crate) fn on_wal_append(&self) -> Option<usize> {
        let nth = self.wal_appends.fetch_add(1, SeqCst);
        self.wal_cuts.iter().find(|&&(n, _)| n == nth).map(|&(_, keep)| keep)
    }

    /// Hook: a checkpoint is about to be written. Returns the fault to
    /// apply, if one is scheduled at this index.
    pub(crate) fn on_checkpoint(&self) -> Option<CheckpointFault> {
        let nth = self.checkpoints.fetch_add(1, SeqCst);
        self.checkpoint_faults.iter().find(|&&(n, _)| n == nth).map(|&(_, f)| f)
    }
}

/// Resolves the chaos seed for a test: the `CHAOS_SEED` environment
/// variable when set (decimal, or hex with an `0x` prefix), otherwise
/// `default`. Threading every chaos test's seed through this one helper
/// is what lets the nightly soak pin a failing seed for replay.
///
/// # Panics
/// Panics when `CHAOS_SEED` is set but unparsable — a silently ignored
/// override would defeat the replay workflow.
#[must_use]
pub fn resolve_seed(default: u64) -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(raw) => {
            let parsed = raw
                .strip_prefix("0x")
                .map_or_else(|| raw.parse(), |hex| u64::from_str_radix(hex, 16));
            parsed.unwrap_or_else(|e| panic!("CHAOS_SEED={raw:?} is not a u64: {e}"))
        }
        Err(_) => default,
    }
}

/// Sebastiano Vigna's SplitMix64 — tiny, seedable, good enough to
/// scatter fault coordinates (no external RNG dependency).
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_advance_and_fire_exactly_once() {
        let plan = FaultPlan::new(2).worker_panic(0, 2).stall(1, 0, Duration::from_millis(5));
        assert_eq!(plan.on_batch(0), None); // step 0
        assert_eq!(plan.on_batch(0), None); // step 1
        assert_eq!(plan.on_batch(0), Some(Fault::WorkerPanic)); // step 2
        assert_eq!(plan.on_batch(0), None, "fires once");
        assert_eq!(plan.on_batch(1), Some(Fault::Stall(Duration::from_millis(5))));
        assert_eq!(plan.on_batch(1), None);
        assert_eq!(plan.on_batch(99), None, "out-of-range shards never fault");
    }

    #[test]
    fn notify_and_publish_hooks_are_nth_indexed() {
        let plan = FaultPlan::new(1)
            .drop_notify(0, 1)
            .publish_delay(1, Duration::from_millis(3))
            .publish_storm(2, 4)
            .escalate_at_publish(2);
        assert!(!plan.on_notify(0));
        assert!(plan.on_notify(0), "second ring dropped");
        assert!(!plan.on_notify(0));
        let first = plan.on_publish();
        assert!(first.delay.is_none() && first.storm == 0 && !first.escalate);
        assert_eq!(plan.on_publish().delay, Some(Duration::from_millis(3)));
        let third = plan.on_publish();
        assert_eq!(third.storm, 4, "storm fires at its index");
        assert!(third.escalate, "escalation fires at its index");
        let fourth = plan.on_publish();
        assert!(fourth.delay.is_none() && fourth.storm == 0 && !fourth.escalate);
    }

    #[test]
    fn wal_and_checkpoint_hooks_are_nth_indexed() {
        let plan = FaultPlan::new(1).wal_cut(1, 7).torn_checkpoint(0, 16).drop_fsync(2);
        assert_eq!(plan.on_wal_append(), None);
        assert_eq!(plan.on_wal_append(), Some(7), "second append torn");
        assert_eq!(plan.on_wal_append(), None);
        assert_eq!(plan.on_checkpoint(), Some(CheckpointFault::Torn { keep: 16 }));
        assert_eq!(plan.on_checkpoint(), None);
        assert_eq!(plan.on_checkpoint(), Some(CheckpointFault::SkipFsync));
        assert_eq!(plan.on_checkpoint(), None);
    }

    #[test]
    fn seeded_control_extends_seeded_with_control_faults() {
        for seed in [0u64, 7, 0xC0FF_EE42] {
            let a = FaultPlan::seeded_control(seed, 2, 16);
            let b = FaultPlan::seeded_control(seed, 2, 16);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
            assert!(a.planned_panics() >= 1 && a.planned_stalls() >= 1, "seed {seed}");
            assert!(a.planned_storms() >= 1, "seed {seed} plans a storm");
            assert!(a.planned_wal_cuts() >= 1, "seed {seed} plans a WAL cut");
            assert!(a.planned_checkpoint_faults() >= 1, "seed {seed} plans a checkpoint fault");
        }
    }

    #[test]
    fn seeded_plans_are_reproducible_and_guarantee_core_faults() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = FaultPlan::seeded(seed, 3, 16);
            let b = FaultPlan::seeded(seed, 3, 16);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
            assert!(a.planned_panics() >= 1, "seed {seed} plans a panic");
            assert!(a.planned_stalls() >= 1, "seed {seed} plans a stall");
            assert!(
                a.worker.iter().all(|e| e.shard < 3 && e.step < 16),
                "seed {seed}: worker faults inside the horizon"
            );
        }
        let a = FaultPlan::seeded(7, 2, 8);
        let c = FaultPlan::seeded(8, 2, 8);
        assert_ne!(format!("{a:?}"), format!("{c:?}"), "different seeds differ");
    }
}
