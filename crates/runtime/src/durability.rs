//! The crash-only control plane: durable snapshots + write-ahead log.
//!
//! A durable runtime ([`crate::Runtime::with_durability`]) owns a
//! [`mtl_persist::Store`]: every `add_rule`/`remove_rule` is appended to
//! the write-ahead rule log **before** the master table is mutated, and
//! every `checkpoint_every` logged records the control plane writes a
//! versioned binary snapshot of the whole table image. Recovery — at
//! startup or when the supervisor escalates a broken runtime to a full
//! restore — is always the same computation:
//!
//! ```text
//! state = decode(newest valid snapshot) + replay(WAL tail past its watermark)
//! ```
//!
//! Torn snapshots, fsync-dropped checkpoints and cut WAL tails are all
//! survivable by construction: the store skips invalid checkpoints
//! (falling back to an older one with a longer replay), and a torn WAL
//! append *rejects the update* so the live table and the log never
//! disagree.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

use classifier_api::DynamicClassifier;
use mtl_persist::{
    PersistError, Persistent, Storage, Store, WalOp, DEFAULT_RETAIN_SNAPSHOTS,
    DEFAULT_SEGMENT_BYTES,
};
use offilter::FilterKind;

/// Configuration for a durable runtime.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the snapshot files and the write-ahead log.
    pub dir: PathBuf,
    /// Checkpoint after this many logged records (min 1).
    pub checkpoint_every: u64,
    /// Filter-application kind stamped on logged rule additions. Replay
    /// inserts through [`DynamicClassifier::insert_rule`], which routes
    /// by the table's own primary kind, so this tag is informational.
    pub kind: FilterKind,
    /// How many shard restarts within [`Self::escalate_window`] escalate
    /// to a whole-runtime restore.
    pub escalate_after: u32,
    /// Sliding window for [`Self::escalate_after`].
    pub escalate_window: Duration,
    /// How long a restore waits for live workers to quiesce before
    /// abandoning them as zombies and respawning over fresh rings.
    pub quiesce_timeout: Duration,
    /// How many valid snapshot generations retention GC keeps (min 1).
    pub retain_snapshots: usize,
    /// WAL segment rotation threshold in bytes (min 1): once the active
    /// segment reaches this size, the next append opens a fresh one, and
    /// GC may unlink whole segments below the retained watermark.
    pub wal_segment_bytes: u64,
    /// Storage backend for the store directory. `None` uses the real
    /// filesystem; the chaos suite injects a
    /// [`mtl_persist::FaultFs`] here to make the IO layer itself
    /// hostile.
    pub storage: Option<Arc<dyn Storage>>,
}

impl DurabilityConfig {
    /// Defaults: checkpoint every 8 records, escalate after 8 restarts
    /// in 2 seconds, 200ms quiesce budget.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            checkpoint_every: 8,
            kind: FilterKind::Routing,
            escalate_after: 8,
            escalate_window: Duration::from_secs(2),
            quiesce_timeout: Duration::from_millis(200),
            retain_snapshots: DEFAULT_RETAIN_SNAPSHOTS,
            wal_segment_bytes: DEFAULT_SEGMENT_BYTES,
            storage: None,
        }
    }
}

/// The escalation knobs the supervisor consults (copied out of
/// [`DurabilityConfig`] so the generic supervisor never touches the
/// persistence types).
#[derive(Debug, Clone, Copy)]
pub(crate) struct EscalationPolicy {
    pub(crate) after: u32,
    pub(crate) window: Duration,
    pub(crate) quiesce_timeout: Duration,
}

impl Default for EscalationPolicy {
    fn default() -> Self {
        Self {
            after: u32::MAX,
            window: Duration::from_secs(2),
            quiesce_timeout: Duration::from_millis(200),
        }
    }
}

/// What a recovery actually did — returned by
/// [`crate::Runtime::with_durability`] so callers can audit the boot.
#[derive(Debug, Clone, Default)]
pub struct RestoreReport {
    /// Whether state came from disk (`false`: empty store, the fallback
    /// table was used and checkpointed as version 1).
    pub restored: bool,
    /// Snapshot version the state was decoded from (0 when fresh).
    pub version: u64,
    /// WAL records replayed on top of the snapshot.
    pub wal_replayed: usize,
    /// Replayed records the table rejected (e.g. a duplicate add) —
    /// skipped, not fatal.
    pub wal_skipped: usize,
    /// Newer-but-invalid checkpoints (torn, truncated, bit-flipped,
    /// never synced) that were skipped to reach the restored one.
    pub skipped_checkpoints: usize,
    /// Whether the WAL tail was torn (the partial record was discarded
    /// and the log healed at open).
    pub wal_torn: bool,
}

/// The store-side state of a durable runtime, guarded by its own mutex
/// inside `Shared`. Lock order: the master-table lock is always taken
/// **before** this one.
pub(crate) struct DurableState<C> {
    pub(crate) store: Store,
    /// Encodes a table image. Captured as a plain `fn` pointer where the
    /// `Persistent` bound is known (`with_durability`), so the generic
    /// update paths need no extra bounds.
    pub(crate) encode: fn(&C) -> Vec<u8>,
    /// Kind tag stamped on logged additions.
    pub(crate) kind: FilterKind,
    /// Version of the last checkpoint written (monotone).
    pub(crate) snapshot_version: u64,
    /// Records logged since that checkpoint.
    pub(crate) records_since: u64,
    /// Checkpoint cadence (min 1).
    pub(crate) checkpoint_every: u64,
}

/// Monotone durability counters, surfaced through
/// [`crate::telemetry::DurabilityTelemetry`].
#[derive(Debug, Default)]
pub(crate) struct DurabilityCounters {
    pub(crate) wal_appends: AtomicU64,
    pub(crate) wal_append_failures: AtomicU64,
    pub(crate) checkpoints: AtomicU64,
    pub(crate) checkpoint_failures: AtomicU64,
    pub(crate) restores: AtomicU64,
    pub(crate) restore_fallbacks: AtomicU64,
    pub(crate) restore_skipped_checkpoints: AtomicU64,
    pub(crate) wal_replayed: AtomicU64,
    /// Times the control plane *entered* WAL-only degraded mode (a
    /// durable checkpoint failed and the runtime kept serving on the
    /// log alone until a later checkpoint succeeded).
    pub(crate) degraded_episodes: AtomicU64,
    /// Whether the control plane is currently in WAL-only degraded
    /// mode.
    pub(crate) degraded: AtomicBool,
}

impl DurabilityCounters {
    pub(crate) fn absorb_report(&self, report: &RestoreReport) {
        self.wal_replayed.fetch_add(report.wal_replayed as u64, Relaxed);
        self.restore_skipped_checkpoints.fetch_add(report.skipped_checkpoints as u64, Relaxed);
    }
}

/// Rebuilds classifier state from the store: decodes the newest valid
/// snapshot and replays the WAL tail past its watermark. `Ok(None)`
/// means the store holds no usable checkpoint (fresh directory, or
/// every snapshot invalid).
///
/// # Errors
/// [`PersistError`] when a checkpoint passes the container checksums
/// but its image payload does not decode — a format mismatch, not a
/// torn write, so silently skipping it would mask a real bug.
pub(crate) fn recover<C>(store: &mut Store) -> Result<Option<(C, RestoreReport)>, PersistError>
where
    C: Persistent + DynamicClassifier,
{
    let Some(point) = store.restore()? else { return Ok(None) };
    let mut table = C::decode_image(&point.image)?;
    let (replayed, skipped) = replay_onto(&mut table, &point.wal_tail)?;
    let report = RestoreReport {
        restored: true,
        version: point.version,
        wal_replayed: replayed,
        wal_skipped: skipped,
        skipped_checkpoints: point.skipped_checkpoints,
        wal_torn: point.wal_torn,
    };
    Ok(Some((table, report)))
}

/// Replays decoded WAL records onto `table`, returning
/// `(replayed, skipped)`. `insert_rule` routes by the table's own
/// primary kind; a rejected replay (duplicate id, incompatible fields)
/// is counted, not fatal — crash-only recovery must always terminate
/// with a servable table.
///
/// # Errors
/// [`PersistError`] when a record's payload does not decode as a
/// [`WalOp`] — checksummed bytes that fail the op codec are a format
/// bug, not a torn write.
pub(crate) fn replay_onto<C>(
    table: &mut C,
    records: &[mtl_persist::WalRecord],
) -> Result<(usize, usize), PersistError>
where
    C: DynamicClassifier,
{
    let mut replayed = 0usize;
    let mut skipped = 0usize;
    for record in records {
        match WalOp::decode(&record.payload)? {
            WalOp::Add { rule, .. } => {
                if table.insert_rule(rule).is_ok() {
                    replayed += 1;
                } else {
                    skipped += 1;
                }
            }
            WalOp::Remove { rule_id } => {
                if table.remove_rule(rule_id).is_some() {
                    replayed += 1;
                } else {
                    skipped += 1;
                }
            }
        }
    }
    Ok((replayed, skipped))
}
