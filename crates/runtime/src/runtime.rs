//! The sharded run-to-completion runtime.
//!
//! ```text
//!                    RSS-style header hash
//!  submit(batch) ──► dispatcher ──► SPSC ring ──► shard worker 0 ──┐
//!                        │ admission                (FlowCache +   │ scatter
//!                        │ policy ──► SPSC ring ──► shard worker 1 ├──────► rows +
//!                        │ (shed?)                     replicated  │        versions
//!                        └────────► SPSC ring ──► shard worker N ──┘
//!                                       ▲              ▲    │ heartbeat
//!                       SnapshotCell ◄──┼─ publish ─ control│plane
//!                      (RCU swaps)      │                   ▼
//!                                       └──────────── supervisor
//!                                        (respawn dead shards, re-route
//!                                         their in-flight batches)
//! ```
//!
//! * **Dispatcher** ([`RuntimeHandle::submit`]): hashes each header's
//!   field tuple (the software analogue of NIC RSS) so every packet of a
//!   flow lands on the same shard — which is what makes per-shard flow
//!   caches effective — and enqueues one job per shard, subject to the
//!   configured [`AdmissionPolicy`] (block, shed over occupancy, or
//!   deadline-aware shedding).
//! * **Workers**: run-to-completion loops, one per shard, optionally
//!   CPU-pinned. Each owns its ring's consumer end, its own
//!   [`FlowCache`] and its own replicated `Arc` snapshot of the lookup
//!   table — refreshed *between* jobs when the cell's version moved, so
//!   one job is always served under exactly one table generation. The
//!   per-packet path touches no locks: cache probe (worker-owned) and
//!   table walk (immutable snapshot) only. Every worker runs under an
//!   unwind boundary: a panic is caught, counted, and handed to the
//!   supervisor instead of aborting the process.
//! * **Supervisor** ([`crate::supervisor`]): detects worker death
//!   (thread liveness + the ring's `consumer_alive` signal) and stalls
//!   (frozen heartbeat with work pending), respawns dead shards with a
//!   fresh ring / snapshot reader / cache, and re-routes the dead ring's
//!   backlog plus the orphaned in-flight job — a [`Ticket`] never hangs
//!   on a crashed shard.
//! * **Control plane** ([`RuntimeHandle::add_rule`],
//!   [`RuntimeHandle::remove_rule`], [`RuntimeHandle::swap_table`]):
//!   mutates a private master copy, then publishes a cloned snapshot
//!   through the [`SnapshotCell`] — readers never block, and the
//!   publish version *is* every worker's cache epoch (unique and
//!   strictly monotone per table image), so stale memoised results die
//!   on the next lookup without any cache walking.
//!
//! Results come back as a [`ClassifiedBatch`]: the rows in input order
//! plus, per packet, the **version** of the table that served it — the
//! hook consistency harnesses use to check every answer against a
//! sequential oracle *at the generation it was served under*. Packets
//! that were shed (admission or deadline) or lost to a repeatedly
//! crashing shard report [`UNSERVED_VERSION`] instead of a real
//! generation: delivery is explicit, never implied.
//!
//! ## Failure model
//!
//! Every lock in the runtime recovers from poisoning (a panic on one
//! thread never cascades into `PoisonError` panics on others; each
//! recovery is counted in [`RuntimeTelemetry::poison_recoveries`]).
//! A worker panic costs at most its in-flight job a re-route; a job
//! that kills its shard [`MAX_REQUEUES`] times is completed unserved
//! rather than respawning forever. Shutdown drains every ring and
//! orphan slot and completes outstanding tickets unserved, so no waiter
//! is stranded.

use classifier_api::{
    Admission, BuildError, Classifier, DynamicClassifier, FlowCache, FxHasher, UpdateReport,
};
use offilter::Rule;
use oflow::HeaderValues;
use std::hash::Hasher;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{
    AtomicBool, AtomicU64,
    Ordering::{Relaxed, SeqCst},
};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::durability::{
    recover, replay_onto, DurabilityConfig, DurabilityCounters, DurableState, EscalationPolicy,
    RestoreReport,
};
use crate::pin::pin_to_cpu;
use crate::ring::{spsc, Consumer, Producer};
use crate::snapshot::{Snapshot, SnapshotCell};
use crate::telemetry::{
    DurabilityTelemetry, RuntimeTelemetry, ShardCounters, ShardTelemetry, TraceTelemetry,
};
use mtl_persist::{CheckpointMode, PersistError, Persistent, Store, WalOp, FLIGHT_LOG_MAX_BYTES};
use mtl_trace::{
    encode_flight_log, Event, EventKind, FlightRecorder, MetricPoint, SeriesRing, SpanOp,
};

#[cfg(feature = "fault-injection")]
use crate::fault::{CheckpointFault, Fault, FaultPlan};

/// The version reported for packets that were never classified: shed at
/// admission, expired past their deadline, stranded by shutdown, or
/// abandoned after [`MAX_REQUEUES`] shard crashes. Real snapshot
/// versions start at 1, so 0 is unambiguous.
pub const UNSERVED_VERSION: u64 = 0;

/// How many times the supervisor re-routes one job whose shard died
/// serving it before declaring the job poisonous and completing it
/// unserved (otherwise a deterministically crashing batch would respawn
/// the shard forever).
pub const MAX_REQUEUES: u8 = 3;

/// Locks `m`, recovering from a poisoned guard — the thread that
/// panicked while holding the lock already paid for the failure; later
/// accessors count the recovery and move on instead of cascading it.
fn lock_count<'a, T>(m: &'a Mutex<T>, recoveries: &AtomicU64) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poisoned| {
        recoveries.fetch_add(1, Relaxed);
        poisoned.into_inner()
    })
}

/// What the dispatcher does when a shard's ring cannot take a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Back-pressure: spin (yielding) until the ring has space. No job
    /// is ever dropped; submitters absorb the overload.
    #[default]
    Block,
    /// Load shedding: a shard-job is rejected outright when its ring
    /// already holds `max_queued` jobs (clamped to ≥ 1) or is full. Shed
    /// packets resolve immediately as unserved
    /// ([`UNSERVED_VERSION`]) and are counted per shard.
    Shed {
        /// Jobs a shard's ring may hold before new ones are shed.
        max_queued: usize,
    },
    /// Deadline-aware shedding: submitters block while the deadline is
    /// reachable, then shed; workers additionally drop (as unserved) any
    /// job whose deadline already passed when they pick it up, so a
    /// stalled shard shed its queue instead of serving uselessly late.
    DeadlineShed {
        /// Per-batch service deadline, measured from `submit`.
        deadline: Duration,
    },
}

/// Shape of a [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker shards (≥ 1; clamped up from 0).
    pub shards: usize,
    /// In-flight batch jobs each shard's ring holds before the
    /// dispatcher applies the admission policy.
    pub ring_capacity: usize,
    /// Per-shard flow-cache slots (0 disables caching).
    pub cache_capacity: usize,
    /// Admission policy of the per-shard caches.
    pub cache_admission: Admission,
    /// What `submit` does when a shard's ring is saturated.
    pub admission: AdmissionPolicy,
    /// Pin worker `i` to CPU `i` (best-effort; see [`crate::pin`]).
    pub pin_workers: bool,
    /// Thread-local allocation counter the workers sample around their
    /// per-packet serve loop (e.g. the bench harness's probe); the
    /// deltas surface as `hot_path_allocs` in telemetry and are
    /// required to be zero once warmed.
    pub alloc_counter: Option<fn() -> u64>,
    /// Whether the flight recorder runs (always-on by default; the
    /// only reason to turn it off is measuring the observability tax's
    /// baseline). Off, the runtime carries zero tracing work.
    pub flight_recorder: bool,
    /// Ring capacity per recorder lane, in events (rounded up to a
    /// power of two, clamped to
    /// [`mtl_trace::EVENTS_PER_LANE_MAX`]).
    pub trace_events_per_lane: usize,
    /// Cadence of the metrics sampler thread, which snapshots the
    /// runtime telemetry into an in-memory time series; `None` (the
    /// default) spawns no sampler. Requires the flight recorder.
    pub metrics_sampler: Option<Duration>,
    /// Samples the metrics time-series ring retains.
    pub metrics_series_capacity: usize,
    /// Deterministic fault schedule the runtime threads consult
    /// (chaos/fault-injection builds only).
    #[cfg(feature = "fault-injection")]
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism().map_or(1, usize::from).min(8),
            ring_capacity: 64,
            cache_capacity: 1024,
            cache_admission: Admission::TinyLfu,
            admission: AdmissionPolicy::Block,
            pin_workers: true,
            alloc_counter: None,
            flight_recorder: true,
            trace_events_per_lane: mtl_trace::DEFAULT_EVENTS_PER_LANE,
            metrics_sampler: None,
            metrics_series_capacity: mtl_trace::DEFAULT_SERIES_CAPACITY,
            #[cfg(feature = "fault-injection")]
            fault_plan: None,
        }
    }
}

impl RuntimeConfig {
    /// The default configuration with an explicit shard count.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        Self { shards, ..Self::default() }
    }
}

/// One shard's portion of a submitted batch.
#[derive(Clone)]
pub(crate) struct Job {
    pub(crate) headers: Arc<[HeaderValues]>,
    /// Packet indices (into `headers`) this shard serves.
    pub(crate) idx: Vec<u32>,
    /// The shard this job was dispatched to (the reply dedup key: a
    /// batch has at most one job per shard).
    pub(crate) shard: u32,
    pub(crate) submitted: Instant,
    /// Service deadline under [`AdmissionPolicy::DeadlineShed`].
    pub(crate) deadline: Option<Instant>,
    /// Times the supervisor already re-routed this job after a crash.
    pub(crate) requeues: u8,
    pub(crate) reply: Arc<Reply>,
}

/// One shard's results for one batch.
pub(crate) struct Part {
    shard: u32,
    idx: Vec<u32>,
    rows: Vec<Option<u32>>,
    version: u64,
}

struct ReplyState {
    remaining: usize,
    /// Shards whose part already landed — the dedup set that makes a
    /// crash-window double completion (worker completed, died before
    /// clearing its in-flight slot, supervisor re-routed) harmless.
    done: Vec<u32>,
    parts: Vec<Part>,
}

/// Completion rendezvous between the shards serving one batch and the
/// ticket holder. Locked per *batch* (never per packet).
pub(crate) struct Reply {
    state: Mutex<ReplyState>,
    cv: Condvar,
    recoveries: Arc<AtomicU64>,
}

impl Reply {
    pub(crate) fn complete(&self, part: Part) {
        let mut st = lock_count(&self.state, &self.recoveries);
        if st.done.contains(&part.shard) {
            // A re-routed job whose original worker already completed
            // the part before dying: drop the duplicate.
            return;
        }
        st.done.push(part.shard);
        st.parts.push(part);
        st.remaining -= 1;
        if st.remaining == 0 {
            self.cv.notify_all();
        }
    }
}

/// Completes `job`'s reply part as unserved (every packet reports
/// [`UNSERVED_VERSION`]); optionally counted as shed on `counters`.
pub(crate) fn complete_unserved(counters: &ShardCounters, job: Job, count_shed: bool) {
    if count_shed {
        counters.shed_jobs.fetch_add(1, Relaxed);
        counters.shed_packets.fetch_add(job.idx.len() as u64, Relaxed);
    }
    let Job { idx, shard, reply, .. } = job;
    let rows = vec![None; idx.len()];
    reply.complete(Part { shard, idx, rows, version: UNSERVED_VERSION });
}

/// How a [`Ticket::wait_timeout`] resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitOutcome {
    /// Every shard delivered (some packets may still be unserved if
    /// they were shed — check [`ClassifiedBatch::delivered_count`]).
    Complete(ClassifiedBatch),
    /// The deadline passed with at least one shard still outstanding;
    /// the partial batch carries what arrived, missing packets report
    /// [`UNSERVED_VERSION`].
    Partial {
        /// Rows/versions for the packets that did arrive.
        batch: ClassifiedBatch,
        /// Packets whose shard had not delivered by the deadline.
        missing: usize,
    },
    /// The deadline passed before any shard delivered.
    Timeout,
}

/// An in-flight batch. [`Ticket::wait`] blocks until every shard
/// finished and reassembles the results in input order;
/// [`Ticket::wait_timeout`] bounds the wait.
#[must_use = "a ticket resolves to the batch's classifications"]
pub struct Ticket {
    reply: Arc<Reply>,
    len: usize,
    timeouts: Arc<AtomicU64>,
    recorder: Option<Arc<FlightRecorder>>,
}

impl Ticket {
    /// Waits for the batch and scatters the per-shard parts back into
    /// input order. The supervisor guarantees progress (dead shards are
    /// respawned and their jobs re-routed or completed unserved), so
    /// this resolves even across worker crashes.
    pub fn wait(self) -> ClassifiedBatch {
        let mut st = lock_count(&self.reply.state, &self.reply.recoveries);
        while st.remaining > 0 {
            st = self.reply.cv.wait(st).unwrap_or_else(|poisoned| {
                self.reply.recoveries.fetch_add(1, Relaxed);
                poisoned.into_inner()
            });
        }
        Self::assemble(&st.parts, self.len)
    }

    /// As [`Ticket::wait`], but gives up after `timeout`: the batch
    /// never blocks its consumer forever, whatever the shards are
    /// doing. A timed-out wait is counted in
    /// [`RuntimeTelemetry::ticket_timeouts`]; parts arriving after the
    /// timeout are dropped with the ticket.
    pub fn wait_timeout(self, timeout: Duration) -> WaitOutcome {
        let deadline = Instant::now() + timeout;
        let mut st = lock_count(&self.reply.state, &self.reply.recoveries);
        while st.remaining > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                self.timeouts.fetch_add(1, Relaxed);
                let missing: usize = self.len - st.parts.iter().map(|p| p.idx.len()).sum::<usize>();
                if let Some(r) = &self.recorder {
                    r.emit(r.control_lane(), EventKind::TicketTimeout, missing as u64, 0);
                }
                if st.parts.is_empty() {
                    return WaitOutcome::Timeout;
                }
                return WaitOutcome::Partial {
                    batch: Self::assemble(&st.parts, self.len),
                    missing,
                };
            }
            let (guard, _) = self.reply.cv.wait_timeout(st, left).unwrap_or_else(|poisoned| {
                self.reply.recoveries.fetch_add(1, Relaxed);
                poisoned.into_inner()
            });
            st = guard;
        }
        WaitOutcome::Complete(Self::assemble(&st.parts, self.len))
    }

    fn assemble(parts: &[Part], len: usize) -> ClassifiedBatch {
        let mut rows = vec![None; len];
        let mut versions = vec![UNSERVED_VERSION; len];
        for part in parts {
            for (k, &i) in part.idx.iter().enumerate() {
                rows[i as usize] = part.rows[k];
                versions[i as usize] = part.version;
            }
        }
        ClassifiedBatch { rows, versions }
    }
}

/// A served batch: per-packet rows (input order) and the table version
/// each packet was classified under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifiedBatch {
    /// `rows[i]` is the classification of input header `i` (the same
    /// contract as [`Classifier::classify_batch`]); `None` for both
    /// genuine no-match and unserved packets — disambiguate with
    /// [`ClassifiedBatch::delivered`].
    pub rows: Vec<Option<u32>>,
    /// `versions[i]` is the snapshot version that served header `i`, or
    /// [`UNSERVED_VERSION`] if the packet was shed / expired / lost.
    pub versions: Vec<u64>,
}

impl ClassifiedBatch {
    /// Packets in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the batch was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Whether packet `i` was actually classified (as opposed to shed,
    /// expired, or lost to a crashing shard).
    #[must_use]
    pub fn delivered(&self, i: usize) -> bool {
        self.versions[i] != UNSERVED_VERSION
    }

    /// Packets that were actually classified.
    #[must_use]
    pub fn delivered_count(&self) -> usize {
        self.versions.iter().filter(|&&v| v != UNSERVED_VERSION).count()
    }

    /// Whether every packet was classified (nothing shed or lost).
    #[must_use]
    pub fn fully_delivered(&self) -> bool {
        self.delivered_count() == self.len()
    }
}

/// Producer-side doorbell: wakes a parked worker after a push. A
/// pending counter (not a bare notify) closes the check-then-park race;
/// the worker's bounded park ([`Doorbell::park`]'s timeout) additionally
/// bounds the damage of a *lost* notify (e.g. an injected drop) to one
/// timeout period instead of a hang.
pub(crate) struct Doorbell {
    pending: Mutex<u64>,
    cv: Condvar,
    recoveries: Arc<AtomicU64>,
}

impl Doorbell {
    pub(crate) fn new(recoveries: Arc<AtomicU64>) -> Self {
        Self { pending: Mutex::new(0), cv: Condvar::new(), recoveries }
    }

    pub(crate) fn ring(&self) {
        *lock_count(&self.pending, &self.recoveries) += 1;
        self.cv.notify_one();
    }

    /// Parks until rung or `timeout`; consumes any pending rings.
    pub(crate) fn park(&self, timeout: Duration) {
        let mut p = lock_count(&self.pending, &self.recoveries);
        if *p == 0 {
            let (guard, _) = self.cv.wait_timeout(p, timeout).unwrap_or_else(|poisoned| {
                self.recoveries.fetch_add(1, Relaxed);
                poisoned.into_inner()
            });
            p = guard;
        }
        *p = 0;
    }
}

/// Per-worker knobs the supervisor needs to rebuild a shard.
#[derive(Clone)]
pub(crate) struct WorkerSettings {
    pub(crate) pin: bool,
    pub(crate) cache_capacity: usize,
    pub(crate) cache_admission: Admission,
    pub(crate) alloc_counter: Option<fn() -> u64>,
    pub(crate) ring_capacity: usize,
}

/// State shared by the handle(s), the workers, the supervisor and the
/// runtime owner.
pub(crate) struct Shared<C> {
    pub(crate) cell: Arc<SnapshotCell<C>>,
    /// Control-plane master copy (`None` for data-plane-only runtimes
    /// built with [`Runtime::new`]).
    master: Mutex<Option<C>>,
    /// One lock per shard ring's producer end: the SPSC invariant needs
    /// submitters serialised *per shard*, and per-shard locks mean a
    /// full ring (back-pressure spin) on one shard never convoys
    /// submitters whose packets target other shards. The supervisor
    /// swaps a fresh ring in here when it respawns a shard.
    pub(crate) producers: Vec<Mutex<Producer<Job>>>,
    pub(crate) doorbells: Vec<Arc<Doorbell>>,
    pub(crate) counters: Vec<Arc<ShardCounters>>,
    /// The job each worker is currently serving (set before any
    /// fallible work, cleared after the reply completes): the
    /// supervisor's re-route source when the worker dies mid-batch.
    pub(crate) inflight: Vec<Mutex<Option<Job>>>,
    pub(crate) stop: AtomicBool,
    pub(crate) shards: usize,
    cache_capacity: usize,
    pub(crate) settings: WorkerSettings,
    admission: AdmissionPolicy,
    pub(crate) poison_recoveries: Arc<AtomicU64>,
    ticket_timeouts: Arc<AtomicU64>,
    /// Store-side state of a durable runtime (`None` for in-memory
    /// runtimes). Lock order: `master` is always taken before this.
    durable: Option<Mutex<DurableState<C>>>,
    /// Durability counters (always present; all-zero when not durable).
    pub(crate) durability: Arc<DurabilityCounters>,
    /// Rebuilds + republishes the master from the store. Boxed and
    /// type-erased here because it is constructed where the
    /// `Persistent + DynamicClassifier + Clone` bounds hold
    /// ([`Runtime::with_durability`]) but called from the generic
    /// supervisor.
    pub(crate) rebuild_master: Option<RebuildMaster<C>>,
    /// Set by [`RuntimeHandle::force_restore`], a fault plan's publish
    /// escalation, or the supervisor's restart-window trigger; consumed
    /// by the supervisor, which performs the runtime restore.
    pub(crate) restore_requested: AtomicBool,
    /// Raised while a restore tears the runtime down: workers of the
    /// current epoch park out at the loop top.
    pub(crate) quiesce: AtomicBool,
    /// Bumped once per completed runtime restore. A worker whose spawn
    /// epoch is older than the current one is a *zombie*: it drains
    /// whatever remains of its (already replaced) ring, then exits.
    pub(crate) run_epoch: AtomicU64,
    /// Escalation knobs (inert defaults when not durable).
    pub(crate) escalation: EscalationPolicy,
    /// The always-on flight recorder (`None` only when the config
    /// explicitly disabled it for tax measurement).
    pub(crate) recorder: Option<Arc<FlightRecorder>>,
    /// The metrics time series the sampler thread fills (empty and
    /// unused when no sampler is configured).
    pub(crate) series: Arc<SeriesRing>,
    /// Sampler cadence, kept for telemetry (None = sampler off).
    sampler_cadence: Option<Duration>,
    /// Events already drained from the rings for flight-log flushing,
    /// accumulated across flushes (a drain is destructive, so without
    /// this journal each flushed image would hold only the events since
    /// the previous flush). Bounded to what the flight-log region fits.
    flight_journal: Mutex<Vec<Event>>,
    #[cfg(feature = "fault-injection")]
    pub(crate) fault_plan: Option<Arc<FaultPlan>>,
}

impl<C> Shared<C> {
    pub(crate) fn lock_producer(&self, shard: usize) -> MutexGuard<'_, Producer<Job>> {
        lock_count(&self.producers[shard], &self.poison_recoveries)
    }

    pub(crate) fn lock_inflight(&self, shard: usize) -> MutexGuard<'_, Option<Job>> {
        lock_count(&self.inflight[shard], &self.poison_recoveries)
    }

    fn lock_master(&self) -> MutexGuard<'_, Option<C>> {
        lock_count(&self.master, &self.poison_recoveries)
    }

    /// Emits one flight-recorder event on a worker shard's lane
    /// (no-op with the recorder off — one branch).
    #[inline]
    pub(crate) fn trace_shard(&self, shard: usize, kind: EventKind, a: u64, b: u64) {
        if let Some(r) = &self.recorder {
            r.emit(r.shard_lane(shard), kind, a, b);
        }
    }

    /// Emits on the control-plane lane.
    #[inline]
    pub(crate) fn trace_control(&self, kind: EventKind, a: u64, b: u64) {
        if let Some(r) = &self.recorder {
            r.emit(r.control_lane(), kind, a, b);
        }
    }

    /// Emits on the durability lane.
    #[inline]
    fn trace_durability(&self, kind: EventKind, a: u64, b: u64) {
        if let Some(r) = &self.recorder {
            r.emit(r.durability_lane(), kind, a, b);
        }
    }

    /// Emits on the supervisor lane.
    #[inline]
    pub(crate) fn trace_supervisor(&self, kind: EventKind, a: u64, b: u64) {
        if let Some(r) = &self.recorder {
            r.emit(r.supervisor_lane(), kind, a, b);
        }
    }

    /// Opens a control-plane span (0 with the recorder off).
    fn span_begin(&self, op: SpanOp) -> u64 {
        self.recorder.as_ref().map_or(0, |r| r.span_begin(op))
    }

    /// Closes span `id` with the version the operation produced (0 for
    /// a failed operation); no-op for the recorder-off sentinel id 0.
    fn span_end(&self, id: u64, version: u64) {
        if id != 0 {
            if let Some(r) = &self.recorder {
                r.span_end(id, version);
            }
        }
    }

    /// Current durable checkpoint version (0 on in-memory runtimes).
    pub(crate) fn durable_snapshot_version(&self) -> u64 {
        self.durable.as_ref().map_or(0, |d| lock_count(d, &self.poison_recoveries).snapshot_version)
    }

    /// Flushes the recorder's timeline into the store's bounded
    /// `flight.log` region (checkpoint cadence, panic catch, restore).
    /// Best-effort: `false` when not durable, recorder off, or the
    /// write failed — forensics never block the dataplane.
    pub(crate) fn flush_flight_log(&self) -> bool {
        let Some(durable) = &self.durable else { return false };
        if self.recorder.is_none() {
            return false;
        }
        let mut d = lock_count(durable, &self.poison_recoveries);
        self.flush_flight_locked(&mut d)
    }

    /// As [`Shared::flush_flight_log`] with the durable lock already
    /// held (the checkpoint path flushes without re-taking it).
    fn flush_flight_locked(&self, d: &mut DurableState<C>) -> bool {
        let Some(recorder) = &self.recorder else { return false };
        // Draining the rings is destructive, so fold each drain into
        // the journal: every flushed image holds the full retained
        // timeline, not just the slice since the previous flush.
        let mut journal = lock_count(&self.flight_journal, &self.poison_recoveries);
        journal.extend(recorder.snapshot());
        // Concurrent emits around a drain can straddle two chunks:
        // re-sort so the persisted timeline stays time-ordered.
        journal.sort_by_key(|e| (e.ts_ns, e.lane, e.kind as u16));
        // Keep the newest events that fit the bounded region (32 B per
        // event + header/trailer); the oldest are the ones the ring
        // would overwrite next anyway.
        let max_events = (FLIGHT_LOG_MAX_BYTES - 24) / 32;
        if journal.len() > max_events {
            let excess = journal.len() - max_events;
            journal.drain(..excess);
        }
        let image = encode_flight_log(&journal);
        let bytes = image.len() as u64;
        match d.store.put_flight_log(&image) {
            Ok(()) => {
                recorder.count_flush();
                self.trace_durability(EventKind::FlightFlush, bytes, 0);
                true
            }
            Err(_) => false,
        }
    }

    /// Rings `shard`'s doorbell — unless a fault plan swallows it.
    pub(crate) fn ring_doorbell(&self, shard: usize) {
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = &self.fault_plan {
            if plan.on_notify(shard) {
                return;
            }
        }
        self.doorbells[shard].ring();
    }

    /// Publishes through the snapshot cell, honouring any scheduled
    /// publish fault: a pre-publish delay, a publish *storm* (the same
    /// new table republished a burst of extra times, so replica versions
    /// race ahead while contents stay fixed), or a raised restore flag.
    fn publish_table(&self, table: C) -> u64
    where
        C: Clone + Send + Sync,
    {
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = &self.fault_plan {
            let outcome = plan.on_publish();
            if let Some(delay) = outcome.delay {
                std::thread::sleep(delay);
            }
            for _ in 0..outcome.storm {
                self.cell.publish(table.clone());
            }
            if outcome.escalate {
                self.restore_requested.store(true, SeqCst);
            }
        }
        let version = self.cell.publish(table);
        self.trace_control(EventKind::Publish, version, 0);
        version
    }

    /// Write-ahead: durably appends `op` to the rule log *before* the
    /// master is mutated. `Err` means nothing reached the log — the
    /// caller must reject the update so the live table and the log never
    /// disagree. No-op (always `Ok`) on non-durable runtimes.
    fn wal_append(&self, op: &LoggedOp<'_>) -> Result<(), BuildError> {
        let Some(durable) = &self.durable else { return Ok(()) };
        let mut d = lock_count(durable, &self.poison_recoveries);
        let payload = match *op {
            LoggedOp::Add(rule) => WalOp::Add { kind: d.kind, rule: rule.clone() }.encode(),
            LoggedOp::Remove(rule_id) => WalOp::Remove { rule_id }.encode(),
        };
        #[cfg(feature = "fault-injection")]
        let cut = self.fault_plan.as_ref().and_then(|plan| plan.on_wal_append());
        #[cfg(not(feature = "fault-injection"))]
        let cut: Option<usize> = None;
        let rotated_before = d.store.stats().segments_rotated;
        let appended = match cut {
            Some(keep) => d.store.append_torn(&payload, keep),
            None => d.store.append(&payload),
        };
        match appended {
            Ok(seq) => {
                d.records_since += 1;
                self.durability.wal_appends.fetch_add(1, Relaxed);
                self.trace_durability(EventKind::WalAppend, seq, payload.len() as u64);
                let rotated = d.store.stats().segments_rotated;
                if rotated != rotated_before {
                    self.trace_durability(EventKind::WalRotate, rotated, 0);
                }
                Ok(())
            }
            Err(e) => {
                self.durability.wal_append_failures.fetch_add(1, Relaxed);
                Err(BuildError::InvalidConfig {
                    detail: format!("write-ahead append failed; update rejected: {e}"),
                })
            }
        }
    }

    /// Checkpoints `table` if the cadence is due (`force` overrides).
    /// Called with the master lock held; takes the durable lock inside
    /// (the runtime-wide lock order). Checkpoint failures are counted,
    /// never propagated: the WAL already holds every record, so a failed
    /// checkpoint only means a longer replay.
    fn maybe_checkpoint(&self, table: &C, force: bool) {
        let Some(durable) = &self.durable else { return };
        let mut d = lock_count(durable, &self.poison_recoveries);
        if !force && d.records_since < d.checkpoint_every {
            return;
        }
        let image = (d.encode)(table);
        #[cfg(feature = "fault-injection")]
        let mode = match self.fault_plan.as_ref().and_then(|plan| plan.on_checkpoint()) {
            Some(CheckpointFault::Torn { keep }) => CheckpointMode::Torn { keep },
            Some(CheckpointFault::SkipFsync) => CheckpointMode::SkipFsync,
            None => CheckpointMode::Durable,
        };
        #[cfg(not(feature = "fault-injection"))]
        let mode = CheckpointMode::Durable;
        d.snapshot_version += 1;
        let version = d.snapshot_version;
        // The watermark this checkpoint covers: every WAL record below
        // the next sequence number is folded into the image.
        let watermark = d.store.next_seq().saturating_sub(1);
        let gc_before = d.store.stats();
        self.trace_durability(EventKind::CheckpointStart, version, 0);
        match d.store.checkpoint(version, &image, mode) {
            Ok(_) => {
                // A torn or unsynced checkpoint still counts here — the
                // write-side cadence advanced; whether it *restores* is
                // the store's judgement at recovery time (it falls back
                // to the previous durable one, replaying more WAL).
                d.records_since = 0;
                self.durability.checkpoints.fetch_add(1, Relaxed);
                self.trace_durability(EventKind::CheckpointSuccess, version, watermark);
                // Only a genuinely durable checkpoint ends a WAL-only
                // degraded episode: an injected torn/unsynced image
                // would not survive a power cut.
                if matches!(mode, CheckpointMode::Durable)
                    && self.durability.degraded.swap(false, Relaxed)
                {
                    self.trace_durability(EventKind::DegradedExit, version, 0);
                }
                let gc_after = d.store.stats();
                if gc_after.gc_runs != gc_before.gc_runs {
                    self.trace_durability(
                        EventKind::GcPass,
                        gc_after.gc_segments_removed - gc_before.gc_segments_removed,
                        gc_after.gc_snapshots_removed - gc_before.gc_snapshots_removed,
                    );
                }
                // Checkpoint cadence is also the flight-log flush
                // cadence: the freshest pre-crash timeline a SIGKILL
                // post-mortem can rely on.
                self.flush_flight_locked(&mut *d);
            }
            Err(_) => {
                // Graceful degradation, not an error path: the WAL
                // already holds every acked record, so the control
                // plane keeps serving log-only and retries the
                // checkpoint at the next cadence interval. Roll the
                // version back so the retry does not burn numbers while
                // the disk is hostile.
                d.snapshot_version -= 1;
                self.durability.checkpoint_failures.fetch_add(1, Relaxed);
                self.trace_durability(EventKind::CheckpointFailure, version, 0);
                if !self.durability.degraded.swap(true, Relaxed) {
                    self.durability.degraded_episodes.fetch_add(1, Relaxed);
                    self.trace_durability(EventKind::DegradedEnter, 1, 0);
                }
            }
        }
    }
}

/// A control-plane mutation about to be write-ahead logged.
enum LoggedOp<'a> {
    Add(&'a Rule),
    Remove(u32),
}

/// RSS-style shard selection: hash of the header's full field tuple, so
/// one flow always lands on the same shard (cache affinity), uniform
/// across shards for distinct flows. Public so harnesses (and the
/// adversarial trace generators) can craft RSS-colliding traffic that
/// pins every packet onto one shard.
#[must_use]
pub fn shard_of(header: &HeaderValues, shards: usize) -> usize {
    let mut hasher = FxHasher::default();
    for &(field, value) in header.fields() {
        hasher.write_u32(field as u32);
        hasher.write_u64(value as u64);
        hasher.write_u64((value >> 64) as u64);
    }
    let x = hasher.finish();
    #[allow(clippy::cast_possible_truncation)]
    let mixed = (x ^ (x >> 32)) as usize;
    mixed % shards
}

/// Cloneable control + data handle onto a running [`Runtime`].
pub struct RuntimeHandle<C> {
    shared: Arc<Shared<C>>,
}

impl<C> Clone for RuntimeHandle<C> {
    fn clone(&self) -> Self {
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<C: Classifier + 'static> RuntimeHandle<C> {
    /// The current published table version.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.shared.cell.version()
    }

    /// The current published snapshot (control-plane path).
    #[must_use]
    pub fn latest(&self) -> Arc<Snapshot<C>> {
        self.shared.cell.latest()
    }

    /// Submits a batch for classification across the shards and returns
    /// immediately; [`Ticket::wait`] / [`Ticket::wait_timeout`] collect
    /// the results. Ring saturation is handled per the configured
    /// [`AdmissionPolicy`]: blocked, shed (those packets resolve
    /// immediately as unserved), or deadline-bounded.
    ///
    /// # Panics
    /// Panics if the runtime has been shut down.
    pub fn submit(&self, headers: Arc<[HeaderValues]>) -> Ticket {
        assert!(!self.shared.stop.load(SeqCst), "runtime is shut down");
        let n = headers.len();
        let shards = self.shared.shards;
        let mut idx: Vec<Vec<u32>> = vec![Vec::new(); shards];
        if shards == 1 {
            idx[0] = (0..u32::try_from(n).expect("batch fits u32 indices")).collect();
        } else {
            for (i, h) in headers.iter().enumerate() {
                idx[shard_of(h, shards)].push(u32::try_from(i).expect("batch fits u32 indices"));
            }
        }
        let live = idx.iter().filter(|l| !l.is_empty()).count();
        let reply = Arc::new(Reply {
            state: Mutex::new(ReplyState {
                remaining: live,
                done: Vec::with_capacity(live),
                parts: Vec::with_capacity(live),
            }),
            cv: Condvar::new(),
            recoveries: Arc::clone(&self.shared.poison_recoveries),
        });
        let submitted = Instant::now();
        let deadline = match self.shared.admission {
            AdmissionPolicy::DeadlineShed { deadline } => Some(submitted + deadline),
            AdmissionPolicy::Block | AdmissionPolicy::Shed { .. } => None,
        };
        for (shard, list) in idx.into_iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            let job = Job {
                headers: Arc::clone(&headers),
                idx: list,
                shard: u32::try_from(shard).expect("shard fits u32"),
                submitted,
                deadline,
                requeues: 0,
                reply: Arc::clone(&reply),
            };
            self.dispatch(shard, job);
        }
        Ticket {
            reply,
            len: n,
            timeouts: Arc::clone(&self.shared.ticket_timeouts),
            recorder: self.shared.recorder.clone(),
        }
    }

    /// Enqueues one shard-job per the admission policy.
    fn dispatch(&self, shard: usize, mut job: Job) {
        let shared = &*self.shared;
        let packets = job.idx.len() as u64;
        if let AdmissionPolicy::Shed { max_queued } = shared.admission {
            let mut producer = shared.lock_producer(shard);
            let queued = producer.len();
            if queued >= max_queued.max(1) {
                drop(producer);
                shared.trace_shard(shard, EventKind::ShedJob, packets, queued as u64);
                complete_unserved(&shared.counters[shard], job, true);
                return;
            }
            match producer.push(job) {
                Ok(()) => {
                    let depth = producer.len();
                    drop(producer);
                    shared.trace_shard(shard, EventKind::BatchSubmit, packets, depth as u64);
                    shared.ring_doorbell(shard);
                }
                Err(back) => {
                    drop(producer);
                    shared.trace_shard(shard, EventKind::ShedJob, packets, queued as u64);
                    complete_unserved(&shared.counters[shard], back, true);
                }
            }
            return;
        }
        // Block / DeadlineShed: spin for space, releasing the producer
        // lock between attempts so the supervisor can swap the ring of a
        // dead shard out from under a spinning submitter (holding it
        // across the spin would deadlock respawn against back-pressure).
        loop {
            let mut producer = shared.lock_producer(shard);
            match producer.push(job) {
                Ok(()) => {
                    let depth = producer.len();
                    drop(producer);
                    shared.trace_shard(shard, EventKind::BatchSubmit, packets, depth as u64);
                    shared.ring_doorbell(shard);
                    return;
                }
                Err(back) => {
                    drop(producer);
                    job = back;
                    if let Some(deadline) = job.deadline {
                        if Instant::now() >= deadline {
                            shared.trace_shard(shard, EventKind::DeadlineShed, packets, 0);
                            complete_unserved(&shared.counters[shard], job, true);
                            return;
                        }
                    }
                    // Ring full: nudge the worker and retry.
                    shared.ring_doorbell(shard);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Classifies one batch synchronously: submit + wait.
    ///
    /// # Panics
    /// See [`RuntimeHandle::submit`].
    #[must_use]
    pub fn classify_batch(&self, headers: &[HeaderValues]) -> ClassifiedBatch {
        self.submit(headers.to_vec().into()).wait()
    }

    /// Classifies one batch and returns only the rows — the exact
    /// [`Classifier::classify_batch`] contract, for oracle comparisons.
    ///
    /// # Panics
    /// See [`RuntimeHandle::submit`].
    #[must_use]
    pub fn classify_rows(&self, headers: &[HeaderValues]) -> Vec<Option<u32>> {
        self.classify_batch(headers).rows
    }

    /// Publishes a brand-new table, replacing whatever is being served
    /// **and** the control-plane master (single O(1) swap for readers).
    /// Returns the new version.
    pub fn swap_table(&self, table: C) -> u64
    where
        C: Clone,
    {
        let span = self.shared.span_begin(SpanOp::SwapTable);
        let mut master = self.shared.lock_master();
        *master = Some(table.clone());
        let version = self.shared.publish_table(table);
        // A whole-table swap is not expressible as WAL records, so on a
        // durable runtime it checkpoints immediately: the snapshot's
        // watermark fences off the pre-swap WAL tail.
        if let Some(t) = master.as_ref() {
            self.shared.maybe_checkpoint(t, true);
        }
        drop(master);
        self.shared.span_end(span, version);
        version
    }

    /// Adds one rule through the control plane: mutates the master copy
    /// off the hot path, then publishes a new snapshot. Returns the
    /// update report and the version at which the rule is visible.
    /// A master lock poisoned by an earlier panic is recovered (and
    /// counted), never propagated.
    ///
    /// # Errors
    /// [`BuildError::InvalidConfig`] when the runtime was built without
    /// a control-plane master ([`Runtime::new`] instead of
    /// [`Runtime::with_control`]), or when a durable runtime's
    /// write-ahead append fails (the update is rejected *before* the
    /// master is touched, so the live table and the log always agree);
    /// otherwise whatever the classifier's
    /// [`DynamicClassifier::insert_rule`] reports.
    pub fn add_rule(&self, rule: Rule) -> Result<(UpdateReport, u64), BuildError>
    where
        C: DynamicClassifier + Clone,
    {
        let span = self.shared.span_begin(SpanOp::AddRule);
        let result = self.add_rule_inner(rule);
        self.shared.span_end(span, result.as_ref().map_or(0, |&(_, v)| v));
        result
    }

    fn add_rule_inner(&self, rule: Rule) -> Result<(UpdateReport, u64), BuildError>
    where
        C: DynamicClassifier + Clone,
    {
        let mut master = self.shared.lock_master();
        if master.is_none() {
            return Err(BuildError::InvalidConfig {
                detail: "runtime has no control-plane master (built with Runtime::new; \
                         use Runtime::with_control)"
                    .into(),
            });
        }
        // Write-ahead: the rule reaches the durable log before the
        // master mutates. A torn append rejects the whole update.
        self.shared.wal_append(&LoggedOp::Add(&rule))?;
        let table = master.as_mut().expect("checked above");
        let report = table.insert_rule(rule)?;
        let version = self.shared.publish_table(table.clone());
        self.shared.maybe_checkpoint(table, false);
        Ok((report, version))
    }

    /// Removes a rule by id through the control plane; `None` when no
    /// such rule is stored. Returns the update report and the version at
    /// which the removal is visible.
    ///
    /// On a durable runtime the removal is write-ahead logged before the
    /// master mutates; a torn append rejects the removal (returns
    /// `None`, counted in the durability telemetry as an append
    /// failure). A logged removal of an id the table does not hold is a
    /// harmless no-op on replay.
    ///
    /// # Panics
    /// Panics if the runtime was built without a control-plane master.
    pub fn remove_rule(&self, rule_id: u32) -> Option<(UpdateReport, u64)>
    where
        C: DynamicClassifier + Clone,
    {
        let span = self.shared.span_begin(SpanOp::RemoveRule);
        let result = self.remove_rule_inner(rule_id);
        self.shared.span_end(span, result.as_ref().map_or(0, |&(_, v)| v));
        result
    }

    fn remove_rule_inner(&self, rule_id: u32) -> Option<(UpdateReport, u64)>
    where
        C: DynamicClassifier + Clone,
    {
        let mut master = self.shared.lock_master();
        let table = master.as_mut().expect("runtime has no control-plane master");
        self.shared.wal_append(&LoggedOp::Remove(rule_id)).ok()?;
        let report = table.remove_rule(rule_id)?;
        let version = self.shared.publish_table(table.clone());
        self.shared.maybe_checkpoint(table, false);
        Some((report, version))
    }

    /// Snapshots every shard's counters.
    #[must_use]
    pub fn telemetry(&self) -> RuntimeTelemetry {
        let d = &self.shared.durability;
        // Brief durable-lock hold to snapshot the store's housekeeping
        // and on-disk sizes (same lock order as everywhere: no master
        // lock is held here).
        let store_view = self.shared.durable.as_ref().map(|durable| {
            let s = lock_count(durable, &self.shared.poison_recoveries);
            (s.store.stats(), s.store.disk_stats().unwrap_or_default())
        });
        RuntimeTelemetry {
            version: self.shared.cell.version(),
            shards: self.shared.shards,
            poison_recoveries: self.shared.poison_recoveries.load(Relaxed),
            ticket_timeouts: self.shared.ticket_timeouts.load(Relaxed),
            durability: store_view.map(|(stats, disk)| DurabilityTelemetry {
                wal_appends: d.wal_appends.load(Relaxed),
                wal_append_failures: d.wal_append_failures.load(Relaxed),
                checkpoints: d.checkpoints.load(Relaxed),
                checkpoint_failures: d.checkpoint_failures.load(Relaxed),
                runtime_restores: d.restores.load(Relaxed),
                restore_fallbacks: d.restore_fallbacks.load(Relaxed),
                restore_skipped_checkpoints: d.restore_skipped_checkpoints.load(Relaxed),
                wal_records_replayed: d.wal_replayed.load(Relaxed),
                run_epoch: self.shared.run_epoch.load(SeqCst),
                wal_bytes: disk.wal_bytes,
                wal_segments: disk.wal_segments,
                snapshots: disk.snapshots,
                snapshot_bytes: disk.snapshot_bytes,
                gc_runs: stats.gc_runs,
                gc_snapshots_removed: stats.gc_snapshots_removed,
                gc_segments_removed: stats.gc_segments_removed,
                tmp_cleaned: stats.tmp_cleaned,
                segments_rotated: stats.segments_rotated,
                degraded_episodes: d.degraded_episodes.load(Relaxed),
                degraded: d.degraded.load(Relaxed),
            }),
            trace: self.shared.recorder.as_ref().map(|r| TraceTelemetry {
                lanes: r.lane_count(),
                events_per_lane: r.events_per_lane(),
                events_recorded: r.events_recorded(),
                events_overwritten: r.events_overwritten(),
                flight_flushes: r.flushes(),
                sampler_samples: self.shared.series.total_samples(),
                sampler_capacity: if self.shared.sampler_cadence.is_some() {
                    self.shared.series.capacity()
                } else {
                    0
                },
            }),
            per_shard: self
                .shared
                .counters
                .iter()
                .enumerate()
                .map(|(s, c)| ShardTelemetry::capture(s, c, self.shared.cache_capacity))
                .collect(),
        }
    }

    /// Whether this runtime persists its control plane (built with
    /// [`Runtime::with_durability`]).
    #[must_use]
    pub fn durable(&self) -> bool {
        self.shared.durable.is_some()
    }

    /// The flight recorder, when enabled (the default). Shared so
    /// harnesses can drain or inspect the live timeline.
    #[must_use]
    pub fn flight_recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.shared.recorder.clone()
    }

    /// A drained, time-sorted snapshot of the flight-recorder timeline
    /// (empty with the recorder off).
    #[must_use]
    pub fn trace_events(&self) -> Vec<Event> {
        self.shared.recorder.as_ref().map_or_else(Vec::new, |r| r.snapshot())
    }

    /// The metrics time series the sampler has captured so far, oldest
    /// first (empty with the sampler off).
    #[must_use]
    pub fn metrics_series(&self) -> Vec<MetricPoint> {
        self.shared.series.snapshot()
    }

    /// Flushes the flight recorder into the store's `flight.log` region
    /// now (tests and orderly shutdowns; the runtime also flushes on
    /// checkpoint cadence, worker panics, and restores). `false` when
    /// not durable, the recorder is off, or the write failed.
    pub fn flush_flight_log(&self) -> bool {
        self.shared.flush_flight_log()
    }

    /// The current run epoch: 0 at start, +1 per completed runtime
    /// restore. Tests use the transition to await a restore.
    #[must_use]
    pub fn run_epoch(&self) -> u64 {
        self.shared.run_epoch.load(SeqCst)
    }

    /// Asks the supervisor to tear the runtime down and cold-start it
    /// from the latest good checkpoint + WAL tail (the escalation the
    /// restart-window trigger takes on its own). Returns `false` on a
    /// non-durable runtime, where there is nothing to restore from.
    /// Asynchronous: poll [`RuntimeHandle::run_epoch`] to observe
    /// completion.
    pub fn force_restore(&self) -> bool {
        if self.shared.rebuild_master.is_none() {
            return false;
        }
        self.shared.restore_requested.store(true, SeqCst);
        true
    }

    /// The master table serialized through its [`Persistent`] codec —
    /// the byte-level oracle the restore tests compare a recovered store
    /// against. `None` when the runtime is not durable or has no master.
    #[must_use]
    pub fn master_image(&self) -> Option<Vec<u8>> {
        let master = self.shared.lock_master();
        let table = master.as_ref()?;
        let durable = self.shared.durable.as_ref()?;
        let d = lock_count(durable, &self.shared.poison_recoveries);
        Some((d.encode)(table))
    }

    /// Forces a durable checkpoint of the current master now, regardless
    /// of cadence. Returns the checkpoint's version, or `None` on a
    /// non-durable runtime. Fault-plan checkpoint faults apply (that is
    /// what makes torn-checkpoint chaos scriptable).
    pub fn checkpoint_now(&self) -> Option<u64> {
        let master = self.shared.lock_master();
        let table = master.as_ref()?;
        self.shared.durable.as_ref()?;
        self.shared.maybe_checkpoint(table, true);
        let durable = self.shared.durable.as_ref()?;
        let d = lock_count(durable, &self.shared.poison_recoveries);
        Some(d.snapshot_version)
    }
}

/// The running dataplane: owns the supervisor thread, which in turn
/// owns the workers. Cheap handles ([`Runtime::handle`]) do the
/// talking; dropping the runtime stops and joins everything, and
/// completes any still-outstanding ticket as unserved so no waiter is
/// stranded.
pub struct Runtime<C: Classifier + 'static> {
    handle: RuntimeHandle<C>,
    supervisor: Option<std::thread::JoinHandle<()>>,
    sampler: Option<std::thread::JoinHandle<()>>,
}

impl<C: Classifier + 'static> Runtime<C> {
    /// Starts a data-plane-only runtime serving `classifier` (no
    /// control-plane master: [`RuntimeHandle::add_rule`] is unavailable,
    /// table replacement goes through [`SnapshotCell`]-level swaps of a
    /// runtime built [`Runtime::with_control`]).
    #[must_use]
    pub fn new(classifier: C, config: &RuntimeConfig) -> Self {
        Self::build(classifier, None, config, None)
    }

    /// Starts a runtime with a control plane: `classifier` is cloned
    /// into the published snapshot, the original becomes the mutable
    /// master behind [`RuntimeHandle::add_rule`] /
    /// [`RuntimeHandle::remove_rule`] / [`RuntimeHandle::swap_table`].
    #[must_use]
    pub fn with_control(classifier: C, config: &RuntimeConfig) -> Self
    where
        C: Clone,
    {
        let snapshot = classifier.clone();
        Self::build(snapshot, Some(classifier), config, None)
    }

    /// Starts a **durable** control-plane runtime backed by a
    /// [`Store`] in `durability.dir`: state is recovered as
    /// `decode(newest valid snapshot) + replay(WAL tail)` — `fallback`
    /// is used (and checkpointed as version 1) only when the store holds
    /// no usable checkpoint. Every subsequent
    /// [`RuntimeHandle::add_rule`] / [`RuntimeHandle::remove_rule`] is
    /// write-ahead logged before it touches the master, with a full
    /// checkpoint every [`DurabilityConfig::checkpoint_every`] records,
    /// and the supervisor escalates a broken runtime (restart storm, or
    /// an explicit [`RuntimeHandle::force_restore`]) to a whole-runtime
    /// cold start from that same recovery computation.
    ///
    /// Returns the runtime plus a [`RestoreReport`] describing what the
    /// boot recovery actually did.
    ///
    /// # Errors
    /// [`PersistError`] when the store cannot be opened, a recovered
    /// image does not decode, or the initial checkpoint of `fallback`
    /// cannot be written.
    pub fn with_durability(
        fallback: C,
        config: &RuntimeConfig,
        durability: &DurabilityConfig,
    ) -> Result<(Self, RestoreReport), PersistError>
    where
        C: DynamicClassifier + Persistent + Clone,
    {
        let mut store = match &durability.storage {
            Some(storage) => Store::open_with(&durability.dir, Arc::clone(storage))?,
            None => Store::open(&durability.dir)?,
        };
        store.set_segment_bytes(durability.wal_segment_bytes);
        store.set_retain_snapshots(durability.retain_snapshots);
        let (master, mut report) = match recover::<C>(&mut store)? {
            Some((table, report)) => (table, report),
            None => {
                // No decodable snapshot at all — but on a hostile disk
                // the WAL may still hold every acked record (every
                // checkpoint attempt failed while appends kept
                // succeeding). Replay the log onto the fallback so a
                // durably-acked rule is never lost to a missing image.
                let mut table = fallback;
                let records = store.wal_records()?;
                let (replayed, skipped) = replay_onto(&mut table, &records)?;
                let report = RestoreReport {
                    wal_replayed: replayed,
                    wal_skipped: skipped,
                    ..RestoreReport::default()
                };
                (table, report)
            }
        };
        report.wal_torn |= store.wal_was_torn_at_open();
        let mut state = DurableState {
            store,
            encode: encode_image_of::<C>,
            kind: durability.kind,
            snapshot_version: report.version,
            records_since: 0,
            checkpoint_every: durability.checkpoint_every.max(1),
        };
        // Make the boot state durable up front: a fresh store gets the
        // fallback as checkpoint 1; a store whose recovery replayed WAL
        // records gets a compacting checkpoint so the next cold start is
        // one decode with an empty tail. A *failed* boot checkpoint is
        // not fatal — the WAL (plus any older snapshot) already covers
        // the state, so the runtime comes up in WAL-only degraded mode
        // and retries at the next cadence interval.
        let mut boot_checkpoint_failed = false;
        if !report.restored || report.wal_replayed > 0 || report.wal_skipped > 0 {
            state.snapshot_version += 1;
            if state
                .store
                .checkpoint(state.snapshot_version, &master.encode_image(), CheckpointMode::Durable)
                .is_err()
            {
                state.snapshot_version -= 1;
                boot_checkpoint_failed = true;
            }
        }
        let escalation = EscalationPolicy {
            after: durability.escalate_after.max(1),
            window: durability.escalate_window,
            quiesce_timeout: durability.quiesce_timeout,
        };
        // Type-erased restore-time rebuild: constructed here, where the
        // `Persistent + DynamicClassifier + Clone` bounds hold, called
        // by the (bound-free) supervisor during a runtime restore. The
        // caller holds no runtime locks at that point.
        let rebuild: RebuildMaster<C> = Box::new(|shared| {
            let mut master = shared.lock_master();
            let Some(durable) = &shared.durable else { return };
            let mut d = lock_count(durable, &shared.poison_recoveries);
            match recover::<C>(&mut d.store) {
                Ok(Some((table, report))) => {
                    shared.durability.absorb_report(&report);
                    d.snapshot_version = d.snapshot_version.max(report.version);
                    let encode = d.encode;
                    // Write-ahead-before-mutate keeps the live master
                    // and the store in agreement, so an in-process
                    // restore normally recovers a byte-identical table:
                    // publishing it again would only burn a version on
                    // duplicate content. Publish only on divergence
                    // (i.e. the disk state moved under us) — directly
                    // through the cell (no fault-plan publish hooks)
                    // and under the master lock, which serializes every
                    // control-plane publish.
                    let identical =
                        master.as_ref().is_some_and(|live| encode(live) == encode(&table));
                    drop(d);
                    if !identical {
                        *master = Some(table.clone());
                        shared.cell.publish(table);
                    }
                    drop(master);
                }
                Ok(None) | Err(_) => {
                    // No usable checkpoint (or an undecodable image):
                    // crash-only still has to come back up, so keep the
                    // live master serving — the published snapshot is
                    // already in sync with it.
                    shared.durability.restore_fallbacks.fetch_add(1, Relaxed);
                }
            }
        });
        let snapshot = master.clone();
        let runtime = Self::build(
            snapshot,
            Some(master),
            config,
            Some(DurableParts { state, rebuild, escalation }),
        );
        runtime.handle.shared.durability.absorb_report(&report);
        runtime.handle.shared.trace_control(
            EventKind::Boot,
            report.version,
            report.wal_replayed as u64,
        );
        if boot_checkpoint_failed {
            let d = &runtime.handle.shared.durability;
            d.checkpoint_failures.fetch_add(1, Relaxed);
            d.degraded.store(true, Relaxed);
            d.degraded_episodes.fetch_add(1, Relaxed);
        }
        Ok((runtime, report))
    }

    fn build(
        classifier: C,
        master: Option<C>,
        config: &RuntimeConfig,
        durable: Option<DurableParts<C>>,
    ) -> Self {
        let shards = config.shards.max(1);
        let cell = Arc::new(SnapshotCell::new(classifier));
        let poison_recoveries = Arc::new(AtomicU64::new(0));
        let mut producers = Vec::with_capacity(shards);
        let mut consumers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = spsc::<Job>(config.ring_capacity.max(1));
            producers.push(tx);
            consumers.push(rx);
        }
        let doorbells: Vec<Arc<Doorbell>> =
            (0..shards).map(|_| Arc::new(Doorbell::new(Arc::clone(&poison_recoveries)))).collect();
        let counters: Vec<Arc<ShardCounters>> =
            (0..shards).map(|_| Arc::new(ShardCounters::default())).collect();
        let is_durable = durable.is_some();
        let (durable_state, rebuild_master, escalation) = match durable {
            Some(parts) => (Some(Mutex::new(parts.state)), Some(parts.rebuild), parts.escalation),
            None => (None, None, EscalationPolicy::default()),
        };
        let recorder = config
            .flight_recorder
            .then(|| Arc::new(FlightRecorder::new(shards, config.trace_events_per_lane)));
        let shared = Arc::new(Shared {
            cell,
            master: Mutex::new(master),
            producers: producers.into_iter().map(Mutex::new).collect(),
            doorbells,
            counters,
            inflight: (0..shards).map(|_| Mutex::new(None)).collect(),
            stop: AtomicBool::new(false),
            shards,
            cache_capacity: config.cache_capacity,
            settings: WorkerSettings {
                pin: config.pin_workers,
                cache_capacity: config.cache_capacity,
                cache_admission: config.cache_admission,
                alloc_counter: config.alloc_counter,
                ring_capacity: config.ring_capacity.max(1),
            },
            admission: config.admission,
            poison_recoveries,
            ticket_timeouts: Arc::new(AtomicU64::new(0)),
            durable: durable_state,
            durability: Arc::new(DurabilityCounters::default()),
            rebuild_master,
            restore_requested: AtomicBool::new(false),
            quiesce: AtomicBool::new(false),
            run_epoch: AtomicU64::new(0),
            escalation,
            recorder,
            series: Arc::new(SeriesRing::new(config.metrics_series_capacity)),
            sampler_cadence: config.metrics_sampler,
            flight_journal: Mutex::new(Vec::new()),
            #[cfg(feature = "fault-injection")]
            fault_plan: config.fault_plan.clone(),
        });
        // Durable boots emit their Boot event from `with_durability`,
        // where the restore report (version + replay length) is known.
        if !is_durable {
            shared.trace_control(EventKind::Boot, 0, 0);
        }
        let workers = consumers
            .into_iter()
            .enumerate()
            .map(|(shard, consumer)| spawn_worker(&shared, shard, consumer))
            .collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mtl-supervisor".into())
                .spawn(move || crate::supervisor::supervise(&shared, workers))
                .expect("spawning the supervisor")
        };
        let sampler = match (&shared.recorder, shared.sampler_cadence) {
            (Some(recorder), Some(cadence)) => {
                let recorder = Arc::clone(recorder);
                let handle = RuntimeHandle { shared: Arc::clone(&shared) };
                Some(
                    std::thread::Builder::new()
                        .name("mtl-sampler".into())
                        .spawn(move || sampler_loop(&handle, &recorder, cadence))
                        .expect("spawning the metrics sampler"),
                )
            }
            _ => None,
        };
        Self { handle: RuntimeHandle { shared }, supervisor: Some(supervisor), sampler }
    }

    /// A cloneable handle (control + data plane).
    #[must_use]
    pub fn handle(&self) -> RuntimeHandle<C> {
        self.handle.clone()
    }

    /// Stops the workers and joins them. Equivalent to dropping the
    /// runtime, as an explicit verb.
    pub fn shutdown(self) {}
}

impl<C: Classifier + 'static> std::ops::Deref for Runtime<C> {
    type Target = RuntimeHandle<C>;
    fn deref(&self) -> &Self::Target {
        &self.handle
    }
}

impl<C: Classifier + 'static> Drop for Runtime<C> {
    fn drop(&mut self) {
        let shared = &self.handle.shared;
        shared.stop.store(true, SeqCst);
        for bell in &shared.doorbells {
            bell.ring();
        }
        // The supervisor joins every worker before returning.
        if let Some(sup) = self.supervisor.take() {
            let _ = sup.join();
        }
        if let Some(sampler) = self.sampler.take() {
            let _ = sampler.join();
        }
        // Strand no waiter: complete whatever the shutdown cut off —
        // orphaned in-flight jobs and ring backlogs — as unserved.
        for shard in 0..shared.shards {
            if let Some(job) = shared.lock_inflight(shard).take() {
                complete_unserved(&shared.counters[shard], job, false);
            }
            let (dummy, _) = spsc::<Job>(1);
            let old = std::mem::replace(&mut *shared.lock_producer(shard), dummy);
            if let Ok(backlog) = old.recover() {
                for job in backlog {
                    complete_unserved(&shared.counters[shard], job, false);
                }
            }
        }
        // Orderly shutdowns leave a final flight-log image behind;
        // crashes rely on the panic/escalation/checkpoint flushes.
        shared.flush_flight_log();
    }
}

/// Restore-time master rebuild, type-erased so the bound-free
/// supervisor can call it (see [`Runtime::with_durability`]).
pub(crate) type RebuildMaster<C> = Box<dyn Fn(&Shared<C>) + Send + Sync>;

/// The durable pieces [`Runtime::with_durability`] threads into
/// [`Runtime::build`].
struct DurableParts<C> {
    state: DurableState<C>,
    rebuild: RebuildMaster<C>,
    escalation: EscalationPolicy,
}

/// [`Persistent::encode_image`] as a plain `fn` pointer — stored in
/// [`DurableState`] so the generic update paths can encode without a
/// `Persistent` bound.
fn encode_image_of<C: Persistent>(table: &C) -> Vec<u8> {
    table.encode_image()
}

/// Per-worker spawn parameters.
pub(crate) struct WorkerConfig {
    pub(crate) shard: usize,
    pub(crate) settings: WorkerSettings,
}

/// Spawns one shard worker thread (initial build and supervisor
/// respawns share this path).
pub(crate) fn spawn_worker<C: Classifier + 'static>(
    shared: &Arc<Shared<C>>,
    shard: usize,
    consumer: Consumer<Job>,
) -> std::thread::JoinHandle<()> {
    let cfg = WorkerConfig { shard, settings: shared.settings.clone() };
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("mtl-shard-{shard}"))
        .spawn(move || worker_entry(&cfg, &shared, consumer))
        .expect("spawning a shard worker")
}

/// The worker thread body: the run-to-completion loop under an unwind
/// boundary. A panic anywhere in the loop is caught and counted; the
/// thread then exits (dropping its ring consumer), which is the
/// supervisor's signal to respawn the shard and re-route whatever the
/// dead worker left behind (its recorded in-flight job + ring backlog).
fn worker_entry<C: Classifier + 'static>(
    cfg: &WorkerConfig,
    shared: &Arc<Shared<C>>,
    mut consumer: Consumer<Job>,
) {
    let result = catch_unwind(AssertUnwindSafe(|| worker_loop(cfg, shared, &mut consumer)));
    if result.is_err() {
        shared.counters[cfg.shard].panics.fetch_add(1, Relaxed);
        shared.trace_supervisor(EventKind::WorkerPanic, cfg.shard as u64, 0);
        // Crash forensics: persist the timeline that led up to the
        // panic now, while the evidence is still in the rings.
        shared.flush_flight_log();
    }
    // `consumer` drops here: `Producer::consumer_alive` turns false,
    // and `Producer::recover` becomes possible.
}

/// The metrics-sampler thread body: every `cadence` it folds a full
/// telemetry snapshot into one [`MetricPoint`] and pushes it into the
/// shared [`SeriesRing`]. Sleeps in short slices so shutdown never
/// waits out a long cadence.
fn sampler_loop<C: Classifier + 'static>(
    handle: &RuntimeHandle<C>,
    recorder: &FlightRecorder,
    cadence: Duration,
) {
    const SLICE: Duration = Duration::from_millis(20);
    let shared = &handle.shared;
    let mut ordinal = 0u64;
    let mut last = Instant::now();
    while !shared.stop.load(Relaxed) {
        std::thread::sleep(cadence.min(SLICE));
        if shared.stop.load(Relaxed) {
            break;
        }
        if last.elapsed() < cadence {
            continue;
        }
        last = Instant::now();
        let t = handle.telemetry();
        let packets: u64 = t.per_shard.iter().map(|s| s.packets).sum();
        let shed: u64 = t.per_shard.iter().map(|s| s.shed_packets).sum();
        let restarts: u64 = t.per_shard.iter().map(|s| s.restarts).sum();
        let hits: u64 = t.per_shard.iter().map(|s| s.cache.hits).sum();
        let lookups: u64 = t.per_shard.iter().map(|s| s.cache.hits + s.cache.misses).sum();
        let hit_rate = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 };
        let (wal_appends, checkpoints) =
            t.durability.map_or((0, 0), |d| (d.wal_appends, d.checkpoints));
        shared.series.push(MetricPoint {
            ts_ns: recorder.now_ns(),
            values: vec![
                ("packets", packets as f64),
                ("hit_rate", hit_rate),
                ("shed_packets", shed as f64),
                ("restarts", restarts as f64),
                ("version", t.version as f64),
                ("wal_appends", wal_appends as f64),
                ("checkpoints", checkpoints as f64),
                ("ticket_timeouts", t.ticket_timeouts as f64),
            ],
        });
        recorder.emit(recorder.control_lane(), EventKind::SamplerTick, ordinal, 0);
        ordinal += 1;
    }
}

/// The run-to-completion shard loop. Per job: record it as in-flight
/// (crash insurance), refresh the replicated snapshot if the cell
/// moved, then serve every packet through the worker-owned cache and
/// the immutable table — no locks, and (once warmed) no heap
/// allocations inside the per-packet loop.
fn worker_loop<C: Classifier + 'static>(
    cfg: &WorkerConfig,
    shared: &Shared<C>,
    jobs: &mut Consumer<Job>,
) {
    let counters = Arc::clone(&shared.counters[cfg.shard]);
    let doorbell = Arc::clone(&shared.doorbells[cfg.shard]);
    if cfg.settings.pin {
        counters.pinned.store(pin_to_cpu(cfg.shard), SeqCst);
    }
    let reader = shared.cell.register("shard");
    let mut cache = (cfg.settings.cache_capacity > 0).then(|| {
        FlowCache::with_admission(cfg.settings.cache_capacity, cfg.settings.cache_admission)
    });
    if let Some(cache) = cache.as_ref() {
        // Seed the telemetry mirrors with the cache's effective
        // (rounding-aware) capacities before any traffic arrives.
        counters.record_cache(&cache.stats());
    }
    let mut snap = reader.load();
    let mut spins = 0u32;
    // The runtime epoch this worker belongs to. A restore bumps the
    // epoch *after* swapping in fresh rings; a worker that observes a
    // newer epoch is a zombie — its ring has already been replaced, so
    // it drains what remains (completing those replies; the per-shard
    // dedup and the deadline check keep that harmless) and exits.
    let my_epoch = shared.run_epoch.load(SeqCst);
    loop {
        // Liveness beat for the supervisor's stall detector.
        counters.heartbeat.fetch_add(1, Relaxed);
        // A restore in progress quiesces current-epoch workers at a job
        // boundary: park out here, before touching the next job.
        if shared.quiesce.load(SeqCst) && shared.run_epoch.load(SeqCst) == my_epoch {
            break;
        }
        let Some(job) = jobs.pop() else {
            if shared.stop.load(SeqCst) || shared.run_epoch.load(SeqCst) != my_epoch {
                break;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                counters.idle_parks.fetch_add(1, Relaxed);
                doorbell.park(Duration::from_millis(1));
            }
            continue;
        };
        spins = 0;
        // Crash insurance: record the job before any fallible work so
        // the supervisor can re-route it if this thread dies. (Cleared
        // only *after* the reply completes; the reply's per-shard dedup
        // makes the complete-then-die window harmless.) Zombies skip
        // this: the slot belongs to the shard's *current* worker, and
        // the epoch check runs inside the slot's critical section so a
        // zombie can never clobber its replacement's record.
        {
            let mut slot = shared.lock_inflight(cfg.shard);
            if shared.run_epoch.load(SeqCst) == my_epoch {
                *slot = Some(job.clone());
            }
        }
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = &shared.fault_plan {
            match plan.on_batch(cfg.shard) {
                Some(Fault::WorkerPanic) => panic!("injected worker panic (fault plan)"),
                Some(Fault::Stall(wedge)) => std::thread::sleep(wedge),
                None => {}
            }
        }
        // Deadline-aware service: a job that already missed its
        // deadline is shed here, not served uselessly late.
        if let Some(deadline) = job.deadline {
            if Instant::now() >= deadline {
                let packets = job.idx.len() as u64;
                counters.deadline_shed_packets.fetch_add(packets, Relaxed);
                shared.trace_shard(cfg.shard, EventKind::DeadlineShed, packets, 0);
                complete_unserved(&counters, job, false);
                clear_inflight(shared, cfg.shard, my_epoch);
                continue;
            }
        }
        // Refresh the replicated snapshot between jobs only: one job =
        // one table generation.
        if reader.cell().version() != snap.version {
            let prev = snap.version;
            snap = reader.load();
            counters.snapshot_refreshes.fetch_add(1, Relaxed);
            shared.trace_shard(cfg.shard, EventKind::SnapshotRefresh, snap.version, prev);
            // The cache epoch tracks the publish version (see below),
            // so a refresh is also the shard's cache-generation bump.
            shared.trace_shard(cfg.shard, EventKind::CacheEpochBump, snap.version, 0);
        }
        let started = Instant::now();
        // The cache epoch is the snapshot's publish version, alone: it
        // is unique and strictly monotone per table image, so a cached
        // row can never be served across a publish. (Folding the
        // table's own `generation()` in would *break* this: version
        // and generation move in lockstep under add/remove, and a
        // `swap_table` to a lower-generation table could then reproduce
        // an old epoch and revive that epoch's stale entries.)
        let epoch = snap.version;
        let Job { headers, idx, shard: shard_id, submitted, reply, .. } = job;
        let mut rows: Vec<Option<u32>> = Vec::with_capacity(idx.len());
        // Sample the thread-local allocation counter strictly around the
        // per-packet loop (the rows buffer above is per-batch).
        let allocs_before = cfg.settings.alloc_counter.map(|probe| probe());
        match cache.as_mut() {
            Some(cache) => {
                for &i in &idx {
                    let header = &headers[i as usize];
                    let row = match cache.lookup(epoch, header) {
                        Some(row) => row,
                        None => {
                            let row = snap.value.classify(header);
                            cache.insert(epoch, header, row);
                            row
                        }
                    };
                    rows.push(row);
                }
            }
            None => {
                for &i in &idx {
                    rows.push(snap.value.classify(&headers[i as usize]));
                }
            }
        }
        if let (Some(probe), Some(before)) = (cfg.settings.alloc_counter, allocs_before) {
            counters.hot_path_allocs.fetch_add(probe() - before, Relaxed);
        }
        let served = idx.len() as u64;
        counters.packets.fetch_add(served, Relaxed);
        counters.batches.fetch_add(1, Relaxed);
        #[allow(clippy::cast_possible_truncation)]
        counters.busy_ns.fetch_add(started.elapsed().as_nanos() as u64, Relaxed);
        #[allow(clippy::cast_possible_truncation)]
        counters.latency.record(submitted.elapsed().as_nanos() as u64);
        if let Some(cache) = cache.as_ref() {
            counters.record_cache(&cache.stats());
        }
        shared.trace_shard(cfg.shard, EventKind::BatchServe, served, snap.version);
        reply.complete(Part { shard: shard_id, idx, rows, version: snap.version });
        clear_inflight(shared, cfg.shard, my_epoch);
        drop(headers);
    }
}

/// Clears `shard`'s in-flight slot — only if the clearing worker still
/// owns the shard (its epoch is current). The check runs inside the
/// slot's critical section, so a worker zombied by a runtime restore
/// can never erase the record of the fresh worker that replaced it.
fn clear_inflight<C>(shared: &Shared<C>, shard: usize, my_epoch: u64) {
    let mut slot = shared.lock_inflight(shard);
    if shared.run_epoch.load(SeqCst) == my_epoch {
        *slot = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classifier_api::{reference_classify, ClassifierBuilder};
    use offilter::{FilterSet, RuleAction};
    use oflow::{FlowMatch, MatchFieldKind};

    /// A tiny linear-scan dynamic classifier (the real engines live
    /// downstream; the runtime only needs the trait surface).
    #[derive(Clone)]
    struct Scan(Vec<Rule>);

    impl Classifier for Scan {
        fn name(&self) -> &str {
            "scan"
        }
        fn classify(&self, header: &HeaderValues) -> Option<u32> {
            reference_classify(&self.0, header)
        }
        fn memory_bits(&self) -> u64 {
            1
        }
        fn lookup_accesses(&self, _header: &HeaderValues) -> usize {
            self.0.len()
        }
        fn build_records(&self) -> usize {
            self.0.len()
        }
    }

    impl ClassifierBuilder for Scan {
        fn try_build(set: &FilterSet) -> Result<Self, BuildError> {
            Ok(Self(set.rules.clone()))
        }
    }

    impl DynamicClassifier for Scan {
        fn insert_rule(&mut self, rule: Rule) -> Result<UpdateReport, BuildError> {
            self.0.push(rule);
            Ok(UpdateReport { records: 1, rebuilt: false })
        }
        fn remove_rule(&mut self, rule_id: u32) -> Option<UpdateReport> {
            let before = self.0.len();
            self.0.retain(|r| r.id != rule_id);
            (self.0.len() < before).then_some(UpdateReport { records: 1, rebuilt: false })
        }
    }

    fn route(id: u32, port: u128, value: u128, len: u32, out: u32) -> Rule {
        Rule::new(
            id,
            len as u16,
            FlowMatch::any()
                .with_exact(MatchFieldKind::InPort, port)
                .unwrap()
                .with_prefix(MatchFieldKind::Ipv4Dst, value, len)
                .unwrap(),
            RuleAction::Forward(out),
        )
    }

    fn rules() -> Vec<Rule> {
        vec![
            route(0, 1, 0x0A00_0000, 8, 1),
            route(1, 1, 0x0A01_0200, 24, 2),
            route(2, 2, 0x0A00_0000, 8, 3),
            route(3, 3, 0, 0, 4),
        ]
    }

    fn headers(n: usize) -> Vec<HeaderValues> {
        (0..n as u128)
            .map(|i| {
                HeaderValues::new()
                    .with(MatchFieldKind::InPort, 1 + (i % 4))
                    .with(MatchFieldKind::Ipv4Dst, 0x0A00_0000 + (i % 61) * 0x101)
            })
            .collect()
    }

    fn quick_config(shards: usize) -> RuntimeConfig {
        RuntimeConfig {
            shards,
            ring_capacity: 8,
            cache_capacity: 64,
            pin_workers: false,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn matches_the_sequential_oracle_across_shard_counts() {
        let hs = headers(257);
        for shards in [1, 2, 3, 8] {
            let rt = Runtime::new(Scan(rules()), &quick_config(shards));
            let want: Vec<Option<u32>> =
                hs.iter().map(|h| reference_classify(&rules(), h)).collect();
            // Cold and warm (cache-served) passes are byte-identical.
            let cold = rt.classify_batch(&hs);
            assert_eq!(cold.rows, want, "{shards} shards (cold)");
            assert!(cold.versions.iter().all(|&v| v == 1), "{shards} shards: quiesced version");
            assert!(cold.fully_delivered(), "{shards} shards: nothing shed at rest");
            let warm = rt.classify_batch(&hs);
            assert_eq!(warm.rows, want, "{shards} shards (warm)");
            let t = rt.telemetry();
            assert_eq!(t.total_packets(), 2 * 257, "{shards} shards");
            assert_eq!(t.per_shard.len(), shards);
            // The cache mirrors carry the cache's own effective sizes
            // (64 main slots + the default W-TinyLFU window).
            assert!(
                t.per_shard.iter().all(|s| s.cache.capacity == 64 && s.cache.window_capacity == 2),
                "{shards} shards: telemetry must report real cache geometry"
            );
            if shards > 1 {
                let busy: Vec<u64> = t.per_shard.iter().map(|s| s.packets).collect();
                assert!(
                    busy.iter().filter(|&&p| p > 0).count() > 1,
                    "RSS dispatch uses multiple shards: {busy:?}"
                );
            }
            rt.shutdown();
        }
    }

    #[test]
    fn empty_and_tiny_batches() {
        let rt = Runtime::new(Scan(rules()), &quick_config(4));
        let out = rt.classify_batch(&[]);
        assert!(out.is_empty());
        let one = headers(1);
        let out = rt.classify_batch(&one);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0], reference_classify(&rules(), &one[0]));
    }

    #[test]
    fn pipelined_submissions_all_resolve() {
        let rt = Runtime::new(Scan(rules()), &quick_config(2));
        let hs: Arc<[HeaderValues]> = headers(64).into();
        let want: Vec<Option<u32>> = hs.iter().map(|h| reference_classify(&rules(), h)).collect();
        let tickets: Vec<Ticket> = (0..32).map(|_| rt.submit(Arc::clone(&hs))).collect();
        for t in tickets {
            assert_eq!(t.wait().rows, want);
        }
        assert_eq!(rt.telemetry().total_packets(), 32 * 64);
    }

    #[test]
    fn control_plane_updates_become_visible_with_version() {
        let rt = Runtime::with_control(Scan(rules()), &quick_config(2));
        let h = HeaderValues::new()
            .with(MatchFieldKind::InPort, 1)
            .with(MatchFieldKind::Ipv4Dst, 0x0A01_0203u128);
        assert_eq!(rt.classify_batch(std::slice::from_ref(&h)).rows, vec![Some(1)]);

        let (report, v2) = rt.add_rule(route(9, 1, 0x0A01_0200, 24, 9)).unwrap();
        assert_eq!(report.records, 1);
        assert_eq!(v2, 2);
        let out = rt.classify_batch(std::slice::from_ref(&h));
        assert_eq!(out.rows, vec![Some(9)], "higher-priority rule serves after publish");
        assert_eq!(out.versions, vec![2]);

        let (_, v3) = rt.remove_rule(9).expect("rule exists");
        assert_eq!(v3, 3);
        let out = rt.classify_batch(std::slice::from_ref(&h));
        assert_eq!(out.rows, vec![Some(1)], "removal rolls the answer back");
        assert!(rt.remove_rule(123).is_none());
        assert_eq!(rt.version(), 3, "a no-op removal publishes nothing");
    }

    #[test]
    fn swap_table_replaces_everything() {
        let rt = Runtime::with_control(Scan(rules()), &quick_config(2));
        let h = HeaderValues::new()
            .with(MatchFieldKind::InPort, 3)
            .with(MatchFieldKind::Ipv4Dst, 0x0102_0304u128);
        assert_eq!(rt.classify_batch(std::slice::from_ref(&h)).rows, vec![Some(3)]);
        let v = rt.swap_table(Scan(vec![route(77, 3, 0, 0, 7)]));
        assert_eq!(v, 2);
        assert_eq!(rt.classify_batch(std::slice::from_ref(&h)).rows, vec![Some(77)]);
        // The master moved with the swap: updates apply to the new table.
        rt.remove_rule(77).expect("new table's rule exists");
        assert_eq!(rt.classify_batch(std::slice::from_ref(&h)).rows, vec![None]);
    }

    /// Regression: the cache epoch must be the publish version alone.
    /// Folding the table's `generation()` in lets `swap_table` to a
    /// lower-generation table reproduce an earlier epoch and serve that
    /// epoch's stale cached rows.
    #[test]
    fn swap_table_to_lower_generation_does_not_revive_stale_cache() {
        /// A classifier with an arbitrary caller-chosen generation.
        #[derive(Clone)]
        struct Gen(Vec<Rule>, u64);
        impl Classifier for Gen {
            fn name(&self) -> &str {
                "gen"
            }
            fn classify(&self, header: &HeaderValues) -> Option<u32> {
                reference_classify(&self.0, header)
            }
            fn memory_bits(&self) -> u64 {
                1
            }
            fn lookup_accesses(&self, _header: &HeaderValues) -> usize {
                1
            }
            fn build_records(&self) -> usize {
                0
            }
            fn generation(&self) -> u64 {
                self.1
            }
        }

        let h = HeaderValues::new()
            .with(MatchFieldKind::InPort, 3)
            .with(MatchFieldKind::Ipv4Dst, 0x0102_0304u128);
        // Version 1, generation 2: under a version+generation epoch this
        // caches at epoch 3.
        let rt = Runtime::with_control(Gen(vec![route(0, 3, 0, 0, 1)], 2), &quick_config(1));
        assert_eq!(rt.classify_batch(std::slice::from_ref(&h)).rows, vec![Some(0)]);
        assert_eq!(rt.classify_batch(std::slice::from_ref(&h)).rows, vec![Some(0)], "warm hit");
        // Version 2, generation 1 — the old epoch arithmetic collides
        // (2 + 1 == 1 + 2) and would serve the stale Some(0) row; the
        // new table answers None for this flow.
        let v = rt.swap_table(Gen(Vec::new(), 1));
        assert_eq!(v, 2);
        assert_eq!(
            rt.classify_batch(std::slice::from_ref(&h)).rows,
            vec![None],
            "swap_table must invalidate every cached row, whatever the generations"
        );
    }

    #[test]
    fn data_plane_only_runtime_rejects_updates() {
        let rt = Runtime::new(Scan(rules()), &quick_config(1));
        let err = rt.add_rule(route(9, 1, 0, 0, 9)).unwrap_err();
        assert!(matches!(err, BuildError::InvalidConfig { .. }), "{err:?}");
    }

    #[test]
    fn concurrent_classification_and_churn_matches_versioned_oracle() {
        let rt = Runtime::with_control(Scan(rules()), &quick_config(3));
        let handle = rt.handle();
        // Version → rule set at that version.
        let log = Mutex::new(vec![(1u64, rules())]);
        let hs = headers(128);
        std::thread::scope(|scope| {
            let churn = scope.spawn(|| {
                // Single publisher: versions are predictable, and each
                // log entry is appended *before* its publish so a racing
                // worker can never serve a version the log lacks.
                let mut rs = rules();
                let mut next_version = 2u64;
                for round in 0..40u32 {
                    let rule = route(100 + round, 1 + u128::from(round % 4), 0, 0, 90 + round);
                    rs.push(rule.clone());
                    log.lock().unwrap().push((next_version, rs.clone()));
                    let (_, v) = handle.add_rule(rule).unwrap();
                    assert_eq!(v, next_version);
                    next_version += 1;
                    if round % 2 == 0 {
                        rs.retain(|r| r.id != 100 + round);
                        log.lock().unwrap().push((next_version, rs.clone()));
                        let (_, v) = handle.remove_rule(100 + round).expect("just added");
                        assert_eq!(v, next_version);
                        next_version += 1;
                    }
                    std::thread::yield_now();
                }
            });
            for _ in 0..60 {
                let out = rt.classify_batch(&hs);
                let snapshot_log = log.lock().unwrap().clone();
                for (i, (&row, &version)) in out.rows.iter().zip(&out.versions).enumerate() {
                    let rules_at = &snapshot_log
                        .iter()
                        .rev()
                        .find(|(v, _)| *v <= version)
                        .expect("every served version has a log entry")
                        .1;
                    assert_eq!(
                        row,
                        reference_classify(rules_at, &hs[i]),
                        "packet {i} at version {version}"
                    );
                }
            }
            churn.join().unwrap();
        });
    }

    // ---- fault-tolerance surface -------------------------------------

    /// A classifier that busy-holds every `classify` call while `hold`
    /// is set — the deterministic way to wedge a worker mid-batch.
    #[derive(Clone)]
    struct Gate {
        rules: Vec<Rule>,
        hold: Arc<AtomicBool>,
        entered: Arc<AtomicU64>,
    }

    impl Classifier for Gate {
        fn name(&self) -> &str {
            "gate"
        }
        fn classify(&self, header: &HeaderValues) -> Option<u32> {
            self.entered.fetch_add(1, SeqCst);
            while self.hold.load(SeqCst) {
                std::thread::yield_now();
            }
            reference_classify(&self.rules, header)
        }
        fn memory_bits(&self) -> u64 {
            1
        }
        fn lookup_accesses(&self, _header: &HeaderValues) -> usize {
            1
        }
        fn build_records(&self) -> usize {
            self.rules.len()
        }
    }

    fn wait_until(entered: &AtomicU64, at_least: u64) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while entered.load(SeqCst) < at_least {
            assert!(Instant::now() < deadline, "worker never reached the gate");
            std::thread::yield_now();
        }
    }

    #[test]
    fn doorbell_ring_before_park_returns_immediately() {
        let bell = Doorbell::new(Arc::new(AtomicU64::new(0)));
        bell.ring();
        let t = Instant::now();
        bell.park(Duration::from_secs(5));
        assert!(t.elapsed() < Duration::from_secs(1), "pending ring consumed without sleeping");
    }

    #[test]
    fn doorbell_park_times_out_without_a_ring() {
        let bell = Doorbell::new(Arc::new(AtomicU64::new(0)));
        let t = Instant::now();
        bell.park(Duration::from_millis(10));
        assert!(t.elapsed() >= Duration::from_millis(5), "park honours its timeout");
    }

    #[test]
    fn doorbell_wakes_a_parked_thread() {
        let bell = Arc::new(Doorbell::new(Arc::new(AtomicU64::new(0))));
        std::thread::scope(|scope| {
            let parked = {
                let bell = Arc::clone(&bell);
                scope.spawn(move || {
                    let t = Instant::now();
                    bell.park(Duration::from_secs(10));
                    t.elapsed()
                })
            };
            std::thread::sleep(Duration::from_millis(10));
            bell.ring();
            assert!(parked.join().unwrap() < Duration::from_secs(5), "ring wakes the parker");
        });
    }

    #[test]
    fn poisoned_master_lock_recovers_and_is_counted() {
        /// `insert_rule` panics while armed — poisoning the master lock
        /// the way a buggy table update would.
        #[derive(Clone)]
        struct FlakyInsert {
            rules: Vec<Rule>,
            armed: Arc<AtomicBool>,
        }
        impl Classifier for FlakyInsert {
            fn name(&self) -> &str {
                "flaky"
            }
            fn classify(&self, header: &HeaderValues) -> Option<u32> {
                reference_classify(&self.rules, header)
            }
            fn memory_bits(&self) -> u64 {
                1
            }
            fn lookup_accesses(&self, _header: &HeaderValues) -> usize {
                1
            }
            fn build_records(&self) -> usize {
                self.rules.len()
            }
        }
        impl DynamicClassifier for FlakyInsert {
            fn insert_rule(&mut self, rule: Rule) -> Result<UpdateReport, BuildError> {
                if self.armed.swap(false, SeqCst) {
                    panic!("injected control-plane panic");
                }
                self.rules.push(rule);
                Ok(UpdateReport { records: 1, rebuilt: false })
            }
            fn remove_rule(&mut self, _rule_id: u32) -> Option<UpdateReport> {
                None
            }
        }

        let armed = Arc::new(AtomicBool::new(true));
        let rt = Runtime::with_control(
            FlakyInsert { rules: rules(), armed: Arc::clone(&armed) },
            &quick_config(2),
        );
        let boom = catch_unwind(AssertUnwindSafe(|| rt.add_rule(route(9, 1, 0, 0, 9))));
        assert!(boom.is_err(), "the injected panic propagates to the updater");
        // The master lock is now poisoned; the next update recovers it
        // instead of cascading the failure.
        let (_, v) = rt.add_rule(route(9, 1, 0, 0, 9)).expect("recovered master accepts updates");
        assert_eq!(v, 2);
        let t = rt.telemetry();
        assert!(t.poison_recoveries >= 1, "recovery is counted: {}", t.poison_recoveries);
        assert!(t.to_json().contains("\"poison_recoveries\""));
    }

    #[test]
    fn shed_policy_drops_over_occupancy_and_resolves_unserved() {
        let hold = Arc::new(AtomicBool::new(true));
        let entered = Arc::new(AtomicU64::new(0));
        let rt = Runtime::new(
            Gate { rules: rules(), hold: Arc::clone(&hold), entered: Arc::clone(&entered) },
            &RuntimeConfig {
                shards: 1,
                ring_capacity: 8,
                cache_capacity: 0,
                admission: AdmissionPolicy::Shed { max_queued: 1 },
                pin_workers: false,
                ..RuntimeConfig::default()
            },
        );
        let one: Arc<[HeaderValues]> = headers(1).into();
        // A: picked up, wedged inside classify.
        let a = rt.submit(Arc::clone(&one));
        wait_until(&entered, 1);
        // B: sits in the ring (occupancy 1).
        let b = rt.submit(Arc::clone(&one));
        // C: over the occupancy bound — shed immediately.
        let c = rt.submit(Arc::clone(&one));
        let shed = c.wait();
        assert_eq!(shed.versions, vec![UNSERVED_VERSION], "shed packets are marked unserved");
        assert_eq!(shed.rows, vec![None]);
        assert_eq!(shed.delivered_count(), 0);
        hold.store(false, SeqCst);
        assert!(a.wait().fully_delivered(), "the wedged batch still serves");
        assert!(b.wait().fully_delivered(), "the queued batch still serves");
        let t = rt.telemetry();
        assert!(t.per_shard[0].shed_jobs >= 1, "shed jobs counted");
        assert!(t.per_shard[0].shed_packets >= 1, "shed packets counted");
        assert!(t.total_shed_packets() >= 1);
    }

    #[test]
    fn wait_timeout_times_out_instead_of_hanging() {
        let hold = Arc::new(AtomicBool::new(true));
        let entered = Arc::new(AtomicU64::new(0));
        let rt = Runtime::new(
            Gate { rules: rules(), hold: Arc::clone(&hold), entered: Arc::clone(&entered) },
            &RuntimeConfig {
                shards: 1,
                ring_capacity: 8,
                cache_capacity: 0,
                pin_workers: false,
                ..RuntimeConfig::default()
            },
        );
        let one: Arc<[HeaderValues]> = headers(1).into();
        let stuck = rt.submit(Arc::clone(&one));
        wait_until(&entered, 1);
        match stuck.wait_timeout(Duration::from_millis(20)) {
            WaitOutcome::Timeout => {}
            other => panic!("wedged shard must time out, got {other:?}"),
        }
        assert_eq!(rt.telemetry().ticket_timeouts, 1);
        hold.store(false, SeqCst);
        // A healthy runtime resolves Complete within the timeout.
        match rt.submit(one).wait_timeout(Duration::from_secs(10)) {
            WaitOutcome::Complete(batch) => assert!(batch.fully_delivered()),
            other => panic!("healthy shard completes, got {other:?}"),
        }
    }

    #[test]
    fn wait_timeout_reports_partial_delivery() {
        /// Wedges only packets whose `InPort` is 2 — so one shard
        /// delivers while another hangs.
        #[derive(Clone)]
        struct HalfGate {
            rules: Vec<Rule>,
            hold: Arc<AtomicBool>,
        }
        impl Classifier for HalfGate {
            fn name(&self) -> &str {
                "half-gate"
            }
            fn classify(&self, header: &HeaderValues) -> Option<u32> {
                let wedged =
                    header.fields().iter().any(|&(f, v)| f == MatchFieldKind::InPort && v == 2);
                while wedged && self.hold.load(SeqCst) {
                    std::thread::yield_now();
                }
                reference_classify(&self.rules, header)
            }
            fn memory_bits(&self) -> u64 {
                1
            }
            fn lookup_accesses(&self, _header: &HeaderValues) -> usize {
                1
            }
            fn build_records(&self) -> usize {
                self.rules.len()
            }
        }

        let shards = 2;
        let free = HeaderValues::new()
            .with(MatchFieldKind::InPort, 1)
            .with(MatchFieldKind::Ipv4Dst, 0x0A00_0000u128);
        // A header that (a) wedges and (b) lands on the *other* shard.
        let wedged = (0..4096u128)
            .map(|i| {
                HeaderValues::new()
                    .with(MatchFieldKind::InPort, 2)
                    .with(MatchFieldKind::Ipv4Dst, 0x0A00_0000 + i)
            })
            .find(|h| shard_of(h, shards) != shard_of(&free, shards))
            .expect("some dst hashes onto the other shard");

        let hold = Arc::new(AtomicBool::new(true));
        let rt = Runtime::new(
            HalfGate { rules: rules(), hold: Arc::clone(&hold) },
            &RuntimeConfig {
                shards,
                ring_capacity: 8,
                cache_capacity: 0,
                pin_workers: false,
                ..RuntimeConfig::default()
            },
        );
        let batch: Arc<[HeaderValues]> = vec![free.clone(), wedged].into();
        match rt.submit(batch).wait_timeout(Duration::from_millis(200)) {
            WaitOutcome::Partial { batch, missing } => {
                assert_eq!(missing, 1, "one packet's shard never delivered");
                assert_eq!(batch.delivered_count(), 1);
                assert!(batch.delivered(0), "the free shard delivered");
                assert!(!batch.delivered(1), "the wedged packet is marked unserved");
                assert_eq!(batch.rows[0], reference_classify(&rules(), &free));
            }
            other => panic!("expected partial delivery, got {other:?}"),
        }
        hold.store(false, SeqCst);
    }

    #[test]
    fn deadline_shed_drops_expired_jobs_at_the_worker() {
        let hold = Arc::new(AtomicBool::new(true));
        let entered = Arc::new(AtomicU64::new(0));
        let rt = Runtime::new(
            Gate { rules: rules(), hold: Arc::clone(&hold), entered: Arc::clone(&entered) },
            &RuntimeConfig {
                shards: 1,
                ring_capacity: 8,
                cache_capacity: 0,
                admission: AdmissionPolicy::DeadlineShed { deadline: Duration::from_millis(30) },
                pin_workers: false,
                ..RuntimeConfig::default()
            },
        );
        let one: Arc<[HeaderValues]> = headers(1).into();
        // A: picked up before its deadline, then wedged.
        let a = rt.submit(Arc::clone(&one));
        wait_until(&entered, 1);
        // B: queued behind the wedge; its deadline expires in the ring.
        let b = rt.submit(Arc::clone(&one));
        std::thread::sleep(Duration::from_millis(50));
        hold.store(false, SeqCst);
        assert!(a.wait().fully_delivered(), "a job picked up in time still serves");
        let late = b.wait();
        assert_eq!(late.versions, vec![UNSERVED_VERSION], "expired jobs are shed, not served late");
        let t = rt.telemetry();
        assert!(t.per_shard[0].deadline_shed_packets >= 1, "deadline sheds counted");
        assert!(t.total_shed_packets() >= 1);
    }

    #[test]
    fn worker_panic_is_survived_and_the_batch_still_serves() {
        /// Panics on exactly one `classify` call, then behaves.
        #[derive(Clone)]
        struct PanicOnce {
            rules: Vec<Rule>,
            armed: Arc<AtomicBool>,
        }
        impl Classifier for PanicOnce {
            fn name(&self) -> &str {
                "panic-once"
            }
            fn classify(&self, header: &HeaderValues) -> Option<u32> {
                if self.armed.swap(false, SeqCst) {
                    panic!("injected data-plane panic");
                }
                reference_classify(&self.rules, header)
            }
            fn memory_bits(&self) -> u64 {
                1
            }
            fn lookup_accesses(&self, _header: &HeaderValues) -> usize {
                1
            }
            fn build_records(&self) -> usize {
                self.rules.len()
            }
        }

        let rt = Runtime::new(
            PanicOnce { rules: rules(), armed: Arc::new(AtomicBool::new(true)) },
            &RuntimeConfig {
                shards: 2,
                ring_capacity: 8,
                cache_capacity: 0,
                pin_workers: false,
                ..RuntimeConfig::default()
            },
        );
        let hs = headers(64);
        let out = rt.classify_batch(&hs);
        let want: Vec<Option<u32>> = hs.iter().map(|h| reference_classify(&rules(), h)).collect();
        assert_eq!(out.rows, want, "the re-routed batch serves correctly");
        assert!(out.fully_delivered(), "one panic costs nothing: the shard respawns");
        let t = rt.telemetry();
        assert!(t.total_panics() >= 1, "the panic is counted");
        assert!(t.total_restarts() >= 1, "the respawn is counted");
        assert!(t.per_shard.iter().map(|s| s.requeued_jobs).sum::<u64>() >= 1);
        assert!(t.to_json().contains("\"total_restarts\""));
        // The respawned shard keeps serving.
        assert!(rt.classify_batch(&hs).fully_delivered());
    }

    #[test]
    fn a_poisonous_job_is_abandoned_instead_of_crash_looping() {
        /// Deterministically panics on `InPort == 7` headers, forever.
        #[derive(Clone)]
        struct PoisonPill {
            rules: Vec<Rule>,
        }
        impl Classifier for PoisonPill {
            fn name(&self) -> &str {
                "poison-pill"
            }
            fn classify(&self, header: &HeaderValues) -> Option<u32> {
                if header.fields().iter().any(|&(f, v)| f == MatchFieldKind::InPort && v == 7) {
                    panic!("poisonous header");
                }
                reference_classify(&self.rules, header)
            }
            fn memory_bits(&self) -> u64 {
                1
            }
            fn lookup_accesses(&self, _header: &HeaderValues) -> usize {
                1
            }
            fn build_records(&self) -> usize {
                self.rules.len()
            }
        }

        let rt = Runtime::new(
            PoisonPill { rules: rules() },
            &RuntimeConfig {
                shards: 1,
                ring_capacity: 8,
                cache_capacity: 0,
                pin_workers: false,
                ..RuntimeConfig::default()
            },
        );
        let mut hs = headers(8);
        hs.push(
            HeaderValues::new()
                .with(MatchFieldKind::InPort, 7)
                .with(MatchFieldKind::Ipv4Dst, 0x0A00_0000u128),
        );
        // The key liveness property: the ticket resolves at all, even
        // though the job kills its shard on every attempt.
        let out = rt.classify_batch(&hs);
        assert!(!out.delivered(8), "the poisonous packet is abandoned, not served");
        let t = rt.telemetry();
        assert!(t.total_panics() > u64::from(MAX_REQUEUES), "each attempt panicked");
        assert!(t.total_restarts() > u64::from(MAX_REQUEUES));
        assert!(t.per_shard[0].shed_packets >= 1, "the abandoned job counts as shed");
        // The shard is healthy again for clean traffic.
        let clean = headers(16);
        let out = rt.classify_batch(&clean);
        assert!(out.fully_delivered());
        let want: Vec<Option<u32>> =
            clean.iter().map(|h| reference_classify(&rules(), h)).collect();
        assert_eq!(out.rows, want);
    }

    // ---- durable control plane --------------------------------------

    impl Persistent for Scan {
        fn encode_image(&self) -> Vec<u8> {
            let mut w = mtl_persist::Writer::new();
            w.put_usize(self.0.len());
            for rule in &self.0 {
                mtl_persist::codec::encode_rule(&mut w, rule);
            }
            w.into_bytes()
        }
        fn decode_image(bytes: &[u8]) -> Result<Self, PersistError> {
            let mut r = mtl_persist::Reader::new(bytes, "scan image");
            let n = r.seq_len(7)?;
            let mut rules = Vec::with_capacity(n);
            for _ in 0..n {
                rules.push(mtl_persist::codec::decode_rule(&mut r)?);
            }
            r.finish()?;
            Ok(Self(rules))
        }
    }

    fn temp_store(tag: &str) -> std::path::PathBuf {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let n = NONCE.fetch_add(1, Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mtl-runtime-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn wait_epoch(rt: &RuntimeHandle<Scan>, want: u64) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while rt.run_epoch() < want {
            assert!(Instant::now() < deadline, "restore never completed");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn durable_runtime_recovers_state_across_restarts() {
        let dir = temp_store("recover");
        let durability = DurabilityConfig { checkpoint_every: 4, ..DurabilityConfig::new(&dir) };
        let hs = headers(64);
        let image_before;
        {
            let (rt, report) =
                Runtime::with_durability(Scan(rules()), &quick_config(2), &durability).unwrap();
            assert!(!report.restored, "fresh store boots from the fallback");
            // 6 adds: checkpoint at 4, records 5-6 live only in the WAL.
            for i in 0..6u32 {
                rt.add_rule(route(100 + i, 1, 0x1400_0000 + (u128::from(i) << 8), 24, 50 + i))
                    .unwrap();
            }
            rt.remove_rule(3).expect("seed rule 3 exists");
            let d = rt.telemetry().durability.expect("durable runtime reports durability");
            assert_eq!(d.wal_appends, 7);
            assert!(d.checkpoints >= 1, "cadence checkpoint happened");
            image_before = rt.master_image().expect("durable master image");
            rt.shutdown();
        }
        // Cold start with a *different* fallback: disk must win.
        let (rt, report) =
            Runtime::with_durability(Scan(Vec::new()), &quick_config(2), &durability).unwrap();
        assert!(report.restored, "second boot restores from disk");
        assert!(report.wal_replayed > 0, "the WAL tail past the watermark replays");
        assert_eq!(
            rt.master_image().expect("image"),
            image_before,
            "restored master is byte-identical to the pre-shutdown image"
        );
        let mut oracle = rules();
        oracle.retain(|r| r.id != 3);
        for i in 0..6u32 {
            oracle.push(route(100 + i, 1, 0x1400_0000 + (u128::from(i) << 8), 24, 50 + i));
        }
        let want: Vec<Option<u32>> = hs.iter().map(|h| reference_classify(&oracle, h)).collect();
        assert_eq!(rt.classify_rows(&hs), want, "recovered table serves the full rule set");
    }

    #[test]
    fn forced_restore_bumps_epoch_and_keeps_serving() {
        let dir = temp_store("force");
        let (rt, _) =
            Runtime::with_durability(Scan(rules()), &quick_config(2), &DurabilityConfig::new(&dir))
                .unwrap();
        let hs = headers(128);
        let want: Vec<Option<u32>> = hs.iter().map(|h| reference_classify(&rules(), h)).collect();
        assert_eq!(rt.classify_rows(&hs), want);
        assert!(rt.force_restore(), "durable runtimes accept the escalation");
        wait_epoch(&rt, 1);
        let d = rt.telemetry().durability.expect("durability block");
        assert_eq!(d.runtime_restores, 1);
        assert_eq!(d.restore_fallbacks, 0, "the boot checkpoint restores cleanly");
        assert_eq!(rt.classify_rows(&hs), want, "service is identical after the restore");
        // The control plane keeps working on the new epoch.
        rt.add_rule(route(200, 1, 0x3300_0000, 24, 9)).unwrap();
        assert!(rt.telemetry().durability.expect("block").wal_appends >= 1);
    }

    #[test]
    fn non_durable_runtimes_refuse_restore_and_report_nothing() {
        let rt = Runtime::with_control(Scan(rules()), &quick_config(1));
        assert!(!rt.durable());
        assert!(!rt.force_restore(), "nothing to restore from");
        assert!(rt.telemetry().durability.is_none());
        assert!(rt.master_image().is_none());
        assert!(rt.checkpoint_now().is_none());
    }

    #[test]
    fn checkpoint_now_compacts_the_replay() {
        let dir = temp_store("compact");
        let durability = DurabilityConfig { checkpoint_every: 1000, ..DurabilityConfig::new(&dir) };
        {
            let (rt, _) =
                Runtime::with_durability(Scan(rules()), &quick_config(1), &durability).unwrap();
            for i in 0..5u32 {
                rt.add_rule(route(300 + i, 2, 0x2800_0000 + (u128::from(i) << 8), 24, 70)).unwrap();
            }
            let v = rt.checkpoint_now().expect("durable checkpoint");
            assert!(v >= 2, "explicit checkpoint version advances past the boot checkpoint");
            rt.shutdown();
        }
        let (_rt, report) =
            Runtime::with_durability(Scan(Vec::new()), &quick_config(1), &durability).unwrap();
        assert!(report.restored);
        assert_eq!(report.wal_replayed, 0, "checkpoint_now left an empty tail");
    }

    #[test]
    fn swap_table_checkpoints_immediately() {
        let dir = temp_store("swap");
        let durability = DurabilityConfig { checkpoint_every: 1000, ..DurabilityConfig::new(&dir) };
        {
            let (rt, _) =
                Runtime::with_durability(Scan(rules()), &quick_config(1), &durability).unwrap();
            rt.add_rule(route(400, 1, 0x5000_0000, 8, 11)).unwrap();
            // The swap is not WAL-expressible: it must checkpoint, and
            // the watermark must fence off the pre-swap WAL tail.
            rt.swap_table(Scan(vec![route(77, 1, 0x0A00_0000, 8, 77)]));
            rt.shutdown();
        }
        let (rt, report) =
            Runtime::with_durability(Scan(Vec::new()), &quick_config(1), &durability).unwrap();
        assert!(report.restored);
        assert_eq!(report.wal_replayed, 0, "pre-swap WAL records sit below the watermark");
        let h = HeaderValues::new()
            .with(MatchFieldKind::InPort, 1)
            .with(MatchFieldKind::Ipv4Dst, 0x0A01_0203u128);
        assert_eq!(rt.classify_rows(std::slice::from_ref(&h)), vec![Some(77)]);
    }
}
