//! The sharded run-to-completion runtime.
//!
//! ```text
//!                    RSS-style header hash
//!  submit(batch) ──► dispatcher ──► SPSC ring ──► shard worker 0 ──┐
//!                        │                          (FlowCache +   │ scatter
//!                        ├────────► SPSC ring ──► shard worker 1   ├──────► rows +
//!                        │                            replicated   │        versions
//!                        └────────► SPSC ring ──► shard worker N   ┘
//!                                                      ▲
//!                       SnapshotCell ◄── publish ── control plane
//!                      (RCU swaps)       (add_rule / remove_rule /
//!                                         swap_table, single writer)
//! ```
//!
//! * **Dispatcher** ([`RuntimeHandle::submit`]): hashes each header's
//!   field tuple (the software analogue of NIC RSS) so every packet of a
//!   flow lands on the same shard — which is what makes per-shard flow
//!   caches effective — and enqueues one job per shard.
//! * **Workers**: run-to-completion loops, one per shard, optionally
//!   CPU-pinned. Each owns its ring's consumer end, its own
//!   [`FlowCache`] and its own replicated `Arc` snapshot of the lookup
//!   table — refreshed *between* jobs when the cell's version moved, so
//!   one job is always served under exactly one table generation. The
//!   per-packet path touches no locks: cache probe (worker-owned) and
//!   table walk (immutable snapshot) only.
//! * **Control plane** ([`RuntimeHandle::add_rule`],
//!   [`RuntimeHandle::remove_rule`], [`RuntimeHandle::swap_table`]):
//!   mutates a private master copy, then publishes a cloned snapshot
//!   through the [`SnapshotCell`] — readers never block, and the
//!   publish version *is* every worker's cache epoch (unique and
//!   strictly monotone per table image), so stale memoised results die
//!   on the next lookup without any cache walking.
//!
//! Results come back as a [`ClassifiedBatch`]: the rows in input order
//! plus, per packet, the **version** of the table that served it — the
//! hook consistency harnesses use to check every answer against a
//! sequential oracle *at the generation it was served under*.

use classifier_api::{
    Admission, BuildError, Classifier, DynamicClassifier, FlowCache, FxHasher, UpdateReport,
};
use offilter::Rule;
use oflow::HeaderValues;
use std::hash::Hasher;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::pin::pin_to_cpu;
use crate::ring::{spsc, Consumer, Producer};
use crate::snapshot::{Snapshot, SnapshotCell};
use crate::telemetry::{RuntimeTelemetry, ShardCounters, ShardTelemetry};

/// Shape of a [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker shards (≥ 1; clamped up from 0).
    pub shards: usize,
    /// In-flight batch jobs each shard's ring holds before the
    /// dispatcher back-pressures.
    pub ring_capacity: usize,
    /// Per-shard flow-cache slots (0 disables caching).
    pub cache_capacity: usize,
    /// Admission policy of the per-shard caches.
    pub cache_admission: Admission,
    /// Pin worker `i` to CPU `i` (best-effort; see [`crate::pin`]).
    pub pin_workers: bool,
    /// Thread-local allocation counter the workers sample around their
    /// per-packet serve loop (e.g. the bench harness's probe); the
    /// deltas surface as `hot_path_allocs` in telemetry and are
    /// required to be zero once warmed.
    pub alloc_counter: Option<fn() -> u64>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism().map_or(1, usize::from).min(8),
            ring_capacity: 64,
            cache_capacity: 1024,
            cache_admission: Admission::TinyLfu,
            pin_workers: true,
            alloc_counter: None,
        }
    }
}

impl RuntimeConfig {
    /// The default configuration with an explicit shard count.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        Self { shards, ..Self::default() }
    }
}

/// One shard's portion of a submitted batch.
struct Job {
    headers: Arc<[HeaderValues]>,
    /// Packet indices (into `headers`) this shard serves.
    idx: Vec<u32>,
    submitted: Instant,
    reply: Arc<Reply>,
}

/// One shard's results for one batch.
struct Part {
    idx: Vec<u32>,
    rows: Vec<Option<u32>>,
    version: u64,
}

struct ReplyState {
    remaining: usize,
    parts: Vec<Part>,
}

/// Completion rendezvous between the shards serving one batch and the
/// ticket holder. Locked per *batch* (never per packet).
struct Reply {
    state: Mutex<ReplyState>,
    cv: Condvar,
}

impl Reply {
    fn complete(&self, part: Part) {
        let mut st = self.state.lock().expect("reply lock poisoned");
        st.parts.push(part);
        st.remaining -= 1;
        if st.remaining == 0 {
            self.cv.notify_all();
        }
    }
}

/// An in-flight batch. [`Ticket::wait`] blocks until every shard
/// finished and reassembles the results in input order.
#[must_use = "a ticket resolves to the batch's classifications"]
pub struct Ticket {
    reply: Arc<Reply>,
    len: usize,
}

impl Ticket {
    /// Waits for the batch and scatters the per-shard parts back into
    /// input order.
    ///
    /// # Panics
    /// Panics if the reply lock was poisoned (a worker panicked).
    pub fn wait(self) -> ClassifiedBatch {
        let mut st = self.reply.state.lock().expect("reply lock poisoned");
        while st.remaining > 0 {
            st = self.reply.cv.wait(st).expect("reply lock poisoned");
        }
        let mut rows = vec![None; self.len];
        let mut versions = vec![0u64; self.len];
        for part in &st.parts {
            for (k, &i) in part.idx.iter().enumerate() {
                rows[i as usize] = part.rows[k];
                versions[i as usize] = part.version;
            }
        }
        ClassifiedBatch { rows, versions }
    }
}

/// A served batch: per-packet rows (input order) and the table version
/// each packet was classified under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifiedBatch {
    /// `rows[i]` is the classification of input header `i` (the same
    /// contract as [`Classifier::classify_batch`]).
    pub rows: Vec<Option<u32>>,
    /// `versions[i]` is the snapshot version that served header `i`.
    pub versions: Vec<u64>,
}

impl ClassifiedBatch {
    /// Packets in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the batch was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Producer-side doorbell: wakes a parked worker after a push. A
/// pending counter (not a bare notify) closes the check-then-park race.
struct Doorbell {
    pending: Mutex<u64>,
    cv: Condvar,
}

impl Doorbell {
    fn new() -> Self {
        Self { pending: Mutex::new(0), cv: Condvar::new() }
    }

    fn ring(&self) {
        *self.pending.lock().expect("doorbell lock poisoned") += 1;
        self.cv.notify_one();
    }

    /// Parks until rung or `timeout`; consumes any pending rings.
    fn park(&self, timeout: Duration) {
        let mut p = self.pending.lock().expect("doorbell lock poisoned");
        if *p == 0 {
            let (guard, _) = self.cv.wait_timeout(p, timeout).expect("doorbell lock poisoned");
            p = guard;
        }
        *p = 0;
    }
}

/// State shared by the handle(s), the workers and the runtime owner.
struct Shared<C> {
    cell: Arc<SnapshotCell<C>>,
    /// Control-plane master copy (`None` for data-plane-only runtimes
    /// built with [`Runtime::new`]).
    master: Mutex<Option<C>>,
    /// One lock per shard ring's producer end: the SPSC invariant needs
    /// submitters serialised *per shard*, and per-shard locks mean a
    /// full ring (back-pressure spin) on one shard never convoys
    /// submitters whose packets target other shards.
    producers: Vec<Mutex<Producer<Job>>>,
    doorbells: Vec<Arc<Doorbell>>,
    counters: Vec<Arc<ShardCounters>>,
    stop: AtomicBool,
    shards: usize,
    cache_capacity: usize,
}

/// RSS-style shard selection: hash of the header's full field tuple, so
/// one flow always lands on the same shard (cache affinity), uniform
/// across shards for distinct flows.
fn shard_of(header: &HeaderValues, shards: usize) -> usize {
    let mut hasher = FxHasher::default();
    for &(field, value) in header.fields() {
        hasher.write_u32(field as u32);
        hasher.write_u64(value as u64);
        hasher.write_u64((value >> 64) as u64);
    }
    let x = hasher.finish();
    #[allow(clippy::cast_possible_truncation)]
    let mixed = (x ^ (x >> 32)) as usize;
    mixed % shards
}

/// Cloneable control + data handle onto a running [`Runtime`].
pub struct RuntimeHandle<C> {
    shared: Arc<Shared<C>>,
}

impl<C> Clone for RuntimeHandle<C> {
    fn clone(&self) -> Self {
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<C: Classifier + 'static> RuntimeHandle<C> {
    /// The current published table version.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.shared.cell.version()
    }

    /// The current published snapshot (control-plane path).
    #[must_use]
    pub fn latest(&self) -> Arc<Snapshot<C>> {
        self.shared.cell.latest()
    }

    /// Submits a batch for classification across the shards and returns
    /// immediately; [`Ticket::wait`] collects the results. Back-pressures
    /// (yielding) while a shard's ring is full.
    ///
    /// # Panics
    /// Panics if the runtime has been shut down.
    pub fn submit(&self, headers: Arc<[HeaderValues]>) -> Ticket {
        assert!(!self.shared.stop.load(SeqCst), "runtime is shut down");
        let n = headers.len();
        let shards = self.shared.shards;
        let mut idx: Vec<Vec<u32>> = vec![Vec::new(); shards];
        if shards == 1 {
            idx[0] = (0..u32::try_from(n).expect("batch fits u32 indices")).collect();
        } else {
            for (i, h) in headers.iter().enumerate() {
                idx[shard_of(h, shards)].push(u32::try_from(i).expect("batch fits u32 indices"));
            }
        }
        let live = idx.iter().filter(|l| !l.is_empty()).count();
        let reply = Arc::new(Reply {
            state: Mutex::new(ReplyState { remaining: live, parts: Vec::with_capacity(live) }),
            cv: Condvar::new(),
        });
        let submitted = Instant::now();
        for (shard, list) in idx.into_iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            let mut job = Job {
                headers: Arc::clone(&headers),
                idx: list,
                submitted,
                reply: Arc::clone(&reply),
            };
            let mut producer = self.shared.producers[shard].lock().expect("producer lock poisoned");
            loop {
                match producer.push(job) {
                    Ok(()) => break,
                    Err(back) => {
                        // Ring full: nudge the worker and retry.
                        job = back;
                        self.shared.doorbells[shard].ring();
                        std::thread::yield_now();
                    }
                }
            }
            drop(producer);
            self.shared.doorbells[shard].ring();
        }
        Ticket { reply, len: n }
    }

    /// Classifies one batch synchronously: submit + wait.
    ///
    /// # Panics
    /// See [`RuntimeHandle::submit`] / [`Ticket::wait`].
    #[must_use]
    pub fn classify_batch(&self, headers: &[HeaderValues]) -> ClassifiedBatch {
        self.submit(headers.to_vec().into()).wait()
    }

    /// Classifies one batch and returns only the rows — the exact
    /// [`Classifier::classify_batch`] contract, for oracle comparisons.
    ///
    /// # Panics
    /// See [`RuntimeHandle::submit`] / [`Ticket::wait`].
    #[must_use]
    pub fn classify_rows(&self, headers: &[HeaderValues]) -> Vec<Option<u32>> {
        self.classify_batch(headers).rows
    }

    /// Publishes a brand-new table, replacing whatever is being served
    /// **and** the control-plane master (single O(1) swap for readers).
    /// Returns the new version.
    ///
    /// # Panics
    /// Panics if the master lock was poisoned.
    pub fn swap_table(&self, table: C) -> u64
    where
        C: Clone,
    {
        let mut master = self.shared.master.lock().expect("master lock poisoned");
        *master = Some(table.clone());
        let version = self.shared.cell.publish(table);
        drop(master);
        version
    }

    /// Adds one rule through the control plane: mutates the master copy
    /// off the hot path, then publishes a new snapshot. Returns the
    /// update report and the version at which the rule is visible.
    ///
    /// # Errors
    /// [`BuildError::InvalidConfig`] when the runtime was built without
    /// a control-plane master ([`Runtime::new`] instead of
    /// [`Runtime::with_control`]); otherwise whatever the classifier's
    /// [`DynamicClassifier::insert_rule`] reports.
    ///
    /// # Panics
    /// Panics if the master lock was poisoned.
    pub fn add_rule(&self, rule: Rule) -> Result<(UpdateReport, u64), BuildError>
    where
        C: DynamicClassifier + Clone,
    {
        let mut master = self.shared.master.lock().expect("master lock poisoned");
        let table = master.as_mut().ok_or_else(|| BuildError::InvalidConfig {
            detail: "runtime has no control-plane master (built with Runtime::new; \
                     use Runtime::with_control)"
                .into(),
        })?;
        let report = table.insert_rule(rule)?;
        let version = self.shared.cell.publish(table.clone());
        Ok((report, version))
    }

    /// Removes a rule by id through the control plane; `None` when no
    /// such rule is stored. Returns the update report and the version at
    /// which the removal is visible.
    ///
    /// # Panics
    /// Panics if the runtime was built without a control-plane master or
    /// the master lock was poisoned.
    pub fn remove_rule(&self, rule_id: u32) -> Option<(UpdateReport, u64)>
    where
        C: DynamicClassifier + Clone,
    {
        let mut master = self.shared.master.lock().expect("master lock poisoned");
        let table = master.as_mut().expect("runtime has no control-plane master");
        let report = table.remove_rule(rule_id)?;
        let version = self.shared.cell.publish(table.clone());
        Some((report, version))
    }

    /// Snapshots every shard's counters.
    #[must_use]
    pub fn telemetry(&self) -> RuntimeTelemetry {
        RuntimeTelemetry {
            version: self.shared.cell.version(),
            shards: self.shared.shards,
            per_shard: self
                .shared
                .counters
                .iter()
                .enumerate()
                .map(|(s, c)| ShardTelemetry::capture(s, c, self.shared.cache_capacity))
                .collect(),
        }
    }
}

/// The running dataplane: owns the worker threads. Cheap handles
/// ([`Runtime::handle`]) do the talking; dropping the runtime stops and
/// joins the workers (outstanding tickets must be resolved first).
pub struct Runtime<C: Classifier + 'static> {
    handle: RuntimeHandle<C>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<C: Classifier + 'static> Runtime<C> {
    /// Starts a data-plane-only runtime serving `classifier` (no
    /// control-plane master: [`RuntimeHandle::add_rule`] is unavailable,
    /// table replacement goes through [`SnapshotCell`]-level swaps of a
    /// runtime built [`Runtime::with_control`]).
    #[must_use]
    pub fn new(classifier: C, config: &RuntimeConfig) -> Self {
        Self::build(classifier, None, config)
    }

    /// Starts a runtime with a control plane: `classifier` is cloned
    /// into the published snapshot, the original becomes the mutable
    /// master behind [`RuntimeHandle::add_rule`] /
    /// [`RuntimeHandle::remove_rule`] / [`RuntimeHandle::swap_table`].
    #[must_use]
    pub fn with_control(classifier: C, config: &RuntimeConfig) -> Self
    where
        C: Clone,
    {
        let snapshot = classifier.clone();
        Self::build(snapshot, Some(classifier), config)
    }

    fn build(classifier: C, master: Option<C>, config: &RuntimeConfig) -> Self {
        let shards = config.shards.max(1);
        let cell = Arc::new(SnapshotCell::new(classifier));
        let mut producers = Vec::with_capacity(shards);
        let mut consumers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = spsc::<Job>(config.ring_capacity.max(1));
            producers.push(tx);
            consumers.push(rx);
        }
        let doorbells: Vec<Arc<Doorbell>> =
            (0..shards).map(|_| Arc::new(Doorbell::new())).collect();
        let counters: Vec<Arc<ShardCounters>> =
            (0..shards).map(|_| Arc::new(ShardCounters::default())).collect();
        let shared = Arc::new(Shared {
            cell,
            master: Mutex::new(master),
            producers: producers.into_iter().map(Mutex::new).collect(),
            doorbells,
            counters,
            stop: AtomicBool::new(false),
            shards,
            cache_capacity: config.cache_capacity,
        });
        let workers = consumers
            .into_iter()
            .enumerate()
            .map(|(shard, consumer)| {
                let shared = Arc::clone(&shared);
                let cfg = WorkerConfig {
                    shard,
                    pin: config.pin_workers,
                    cache_capacity: config.cache_capacity,
                    cache_admission: config.cache_admission,
                    alloc_counter: config.alloc_counter,
                };
                std::thread::Builder::new()
                    .name(format!("mtl-shard-{shard}"))
                    .spawn(move || worker_loop(&cfg, &shared, consumer))
                    .expect("spawning a shard worker")
            })
            .collect();
        Self { handle: RuntimeHandle { shared }, workers }
    }

    /// A cloneable handle (control + data plane).
    #[must_use]
    pub fn handle(&self) -> RuntimeHandle<C> {
        self.handle.clone()
    }

    /// Stops the workers and joins them. Equivalent to dropping the
    /// runtime, as an explicit verb.
    pub fn shutdown(self) {}
}

impl<C: Classifier + 'static> std::ops::Deref for Runtime<C> {
    type Target = RuntimeHandle<C>;
    fn deref(&self) -> &Self::Target {
        &self.handle
    }
}

impl<C: Classifier + 'static> Drop for Runtime<C> {
    fn drop(&mut self) {
        self.handle.shared.stop.store(true, SeqCst);
        for bell in &self.handle.shared.doorbells {
            bell.ring();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

struct WorkerConfig {
    shard: usize,
    pin: bool,
    cache_capacity: usize,
    cache_admission: Admission,
    alloc_counter: Option<fn() -> u64>,
}

/// The run-to-completion shard loop. Per job: refresh the replicated
/// snapshot if the cell moved, then serve every packet through the
/// worker-owned cache and the immutable table — no locks, and (once
/// warmed) no heap allocations inside the per-packet loop.
fn worker_loop<C: Classifier + 'static>(
    cfg: &WorkerConfig,
    shared: &Shared<C>,
    mut jobs: Consumer<Job>,
) {
    let counters = Arc::clone(&shared.counters[cfg.shard]);
    let doorbell = Arc::clone(&shared.doorbells[cfg.shard]);
    if cfg.pin {
        counters.pinned.store(pin_to_cpu(cfg.shard), SeqCst);
    }
    let reader = shared.cell.register("shard");
    let mut cache = (cfg.cache_capacity > 0)
        .then(|| FlowCache::with_admission(cfg.cache_capacity, cfg.cache_admission));
    if let Some(cache) = cache.as_ref() {
        // Seed the telemetry mirrors with the cache's effective
        // (rounding-aware) capacities before any traffic arrives.
        counters.record_cache(&cache.stats());
    }
    let mut snap = reader.load();
    let mut spins = 0u32;
    loop {
        let Some(job) = jobs.pop() else {
            if shared.stop.load(SeqCst) {
                break;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                counters.idle_parks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                doorbell.park(Duration::from_millis(1));
            }
            continue;
        };
        spins = 0;
        // Refresh the replicated snapshot between jobs only: one job =
        // one table generation.
        if reader.cell().version() != snap.version {
            snap = reader.load();
            counters.snapshot_refreshes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        let started = Instant::now();
        // The cache epoch is the snapshot's publish version, alone: it
        // is unique and strictly monotone per table image, so a cached
        // row can never be served across a publish. (Folding the
        // table's own `generation()` in would *break* this: version
        // and generation move in lockstep under add/remove, and a
        // `swap_table` to a lower-generation table could then reproduce
        // an old epoch and revive that epoch's stale entries.)
        let epoch = snap.version;
        let Job { headers, idx, submitted, reply } = job;
        let mut rows: Vec<Option<u32>> = Vec::with_capacity(idx.len());
        // Sample the thread-local allocation counter strictly around the
        // per-packet loop (the rows buffer above is per-batch).
        let allocs_before = cfg.alloc_counter.map(|probe| probe());
        match cache.as_mut() {
            Some(cache) => {
                for &i in &idx {
                    let header = &headers[i as usize];
                    let row = match cache.lookup(epoch, header) {
                        Some(row) => row,
                        None => {
                            let row = snap.value.classify(header);
                            cache.insert(epoch, header, row);
                            row
                        }
                    };
                    rows.push(row);
                }
            }
            None => {
                for &i in &idx {
                    rows.push(snap.value.classify(&headers[i as usize]));
                }
            }
        }
        if let (Some(probe), Some(before)) = (cfg.alloc_counter, allocs_before) {
            counters
                .hot_path_allocs
                .fetch_add(probe() - before, std::sync::atomic::Ordering::Relaxed);
        }
        let served = idx.len() as u64;
        counters.packets.fetch_add(served, std::sync::atomic::Ordering::Relaxed);
        counters.batches.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        #[allow(clippy::cast_possible_truncation)]
        counters
            .busy_ns
            .fetch_add(started.elapsed().as_nanos() as u64, std::sync::atomic::Ordering::Relaxed);
        #[allow(clippy::cast_possible_truncation)]
        counters.latency.record(submitted.elapsed().as_nanos() as u64);
        if let Some(cache) = cache.as_ref() {
            counters.record_cache(&cache.stats());
        }
        reply.complete(Part { idx, rows, version: snap.version });
        drop(headers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classifier_api::{reference_classify, ClassifierBuilder};
    use offilter::{FilterSet, RuleAction};
    use oflow::{FlowMatch, MatchFieldKind};

    /// A tiny linear-scan dynamic classifier (the real engines live
    /// downstream; the runtime only needs the trait surface).
    #[derive(Clone)]
    struct Scan(Vec<Rule>);

    impl Classifier for Scan {
        fn name(&self) -> &str {
            "scan"
        }
        fn classify(&self, header: &HeaderValues) -> Option<u32> {
            reference_classify(&self.0, header)
        }
        fn memory_bits(&self) -> u64 {
            1
        }
        fn lookup_accesses(&self, _header: &HeaderValues) -> usize {
            self.0.len()
        }
        fn build_records(&self) -> usize {
            self.0.len()
        }
    }

    impl ClassifierBuilder for Scan {
        fn try_build(set: &FilterSet) -> Result<Self, BuildError> {
            Ok(Self(set.rules.clone()))
        }
    }

    impl DynamicClassifier for Scan {
        fn insert_rule(&mut self, rule: Rule) -> Result<UpdateReport, BuildError> {
            self.0.push(rule);
            Ok(UpdateReport { records: 1, rebuilt: false })
        }
        fn remove_rule(&mut self, rule_id: u32) -> Option<UpdateReport> {
            let before = self.0.len();
            self.0.retain(|r| r.id != rule_id);
            (self.0.len() < before).then_some(UpdateReport { records: 1, rebuilt: false })
        }
    }

    fn route(id: u32, port: u128, value: u128, len: u32, out: u32) -> Rule {
        Rule::new(
            id,
            len as u16,
            FlowMatch::any()
                .with_exact(MatchFieldKind::InPort, port)
                .unwrap()
                .with_prefix(MatchFieldKind::Ipv4Dst, value, len)
                .unwrap(),
            RuleAction::Forward(out),
        )
    }

    fn rules() -> Vec<Rule> {
        vec![
            route(0, 1, 0x0A00_0000, 8, 1),
            route(1, 1, 0x0A01_0200, 24, 2),
            route(2, 2, 0x0A00_0000, 8, 3),
            route(3, 3, 0, 0, 4),
        ]
    }

    fn headers(n: usize) -> Vec<HeaderValues> {
        (0..n as u128)
            .map(|i| {
                HeaderValues::new()
                    .with(MatchFieldKind::InPort, 1 + (i % 4))
                    .with(MatchFieldKind::Ipv4Dst, 0x0A00_0000 + (i % 61) * 0x101)
            })
            .collect()
    }

    fn quick_config(shards: usize) -> RuntimeConfig {
        RuntimeConfig {
            shards,
            ring_capacity: 8,
            cache_capacity: 64,
            pin_workers: false,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn matches_the_sequential_oracle_across_shard_counts() {
        let hs = headers(257);
        for shards in [1, 2, 3, 8] {
            let rt = Runtime::new(Scan(rules()), &quick_config(shards));
            let want: Vec<Option<u32>> =
                hs.iter().map(|h| reference_classify(&rules(), h)).collect();
            // Cold and warm (cache-served) passes are byte-identical.
            let cold = rt.classify_batch(&hs);
            assert_eq!(cold.rows, want, "{shards} shards (cold)");
            assert!(cold.versions.iter().all(|&v| v == 1), "{shards} shards: quiesced version");
            let warm = rt.classify_batch(&hs);
            assert_eq!(warm.rows, want, "{shards} shards (warm)");
            let t = rt.telemetry();
            assert_eq!(t.total_packets(), 2 * 257, "{shards} shards");
            assert_eq!(t.per_shard.len(), shards);
            // The cache mirrors carry the cache's own effective sizes
            // (64 main slots + the default W-TinyLFU window).
            assert!(
                t.per_shard.iter().all(|s| s.cache.capacity == 64 && s.cache.window_capacity == 2),
                "{shards} shards: telemetry must report real cache geometry"
            );
            if shards > 1 {
                let busy: Vec<u64> = t.per_shard.iter().map(|s| s.packets).collect();
                assert!(
                    busy.iter().filter(|&&p| p > 0).count() > 1,
                    "RSS dispatch uses multiple shards: {busy:?}"
                );
            }
            rt.shutdown();
        }
    }

    #[test]
    fn empty_and_tiny_batches() {
        let rt = Runtime::new(Scan(rules()), &quick_config(4));
        let out = rt.classify_batch(&[]);
        assert!(out.is_empty());
        let one = headers(1);
        let out = rt.classify_batch(&one);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0], reference_classify(&rules(), &one[0]));
    }

    #[test]
    fn pipelined_submissions_all_resolve() {
        let rt = Runtime::new(Scan(rules()), &quick_config(2));
        let hs: Arc<[HeaderValues]> = headers(64).into();
        let want: Vec<Option<u32>> = hs.iter().map(|h| reference_classify(&rules(), h)).collect();
        let tickets: Vec<Ticket> = (0..32).map(|_| rt.submit(Arc::clone(&hs))).collect();
        for t in tickets {
            assert_eq!(t.wait().rows, want);
        }
        assert_eq!(rt.telemetry().total_packets(), 32 * 64);
    }

    #[test]
    fn control_plane_updates_become_visible_with_version() {
        let rt = Runtime::with_control(Scan(rules()), &quick_config(2));
        let h = HeaderValues::new()
            .with(MatchFieldKind::InPort, 1)
            .with(MatchFieldKind::Ipv4Dst, 0x0A01_0203u128);
        assert_eq!(rt.classify_batch(std::slice::from_ref(&h)).rows, vec![Some(1)]);

        let (report, v2) = rt.add_rule(route(9, 1, 0x0A01_0200, 24, 9)).unwrap();
        assert_eq!(report.records, 1);
        assert_eq!(v2, 2);
        let out = rt.classify_batch(std::slice::from_ref(&h));
        assert_eq!(out.rows, vec![Some(9)], "higher-priority rule serves after publish");
        assert_eq!(out.versions, vec![2]);

        let (_, v3) = rt.remove_rule(9).expect("rule exists");
        assert_eq!(v3, 3);
        let out = rt.classify_batch(std::slice::from_ref(&h));
        assert_eq!(out.rows, vec![Some(1)], "removal rolls the answer back");
        assert!(rt.remove_rule(123).is_none());
        assert_eq!(rt.version(), 3, "a no-op removal publishes nothing");
    }

    #[test]
    fn swap_table_replaces_everything() {
        let rt = Runtime::with_control(Scan(rules()), &quick_config(2));
        let h = HeaderValues::new()
            .with(MatchFieldKind::InPort, 3)
            .with(MatchFieldKind::Ipv4Dst, 0x0102_0304u128);
        assert_eq!(rt.classify_batch(std::slice::from_ref(&h)).rows, vec![Some(3)]);
        let v = rt.swap_table(Scan(vec![route(77, 3, 0, 0, 7)]));
        assert_eq!(v, 2);
        assert_eq!(rt.classify_batch(std::slice::from_ref(&h)).rows, vec![Some(77)]);
        // The master moved with the swap: updates apply to the new table.
        rt.remove_rule(77).expect("new table's rule exists");
        assert_eq!(rt.classify_batch(std::slice::from_ref(&h)).rows, vec![None]);
    }

    /// Regression: the cache epoch must be the publish version alone.
    /// Folding the table's `generation()` in lets `swap_table` to a
    /// lower-generation table reproduce an earlier epoch and serve that
    /// epoch's stale cached rows.
    #[test]
    fn swap_table_to_lower_generation_does_not_revive_stale_cache() {
        /// A classifier with an arbitrary caller-chosen generation.
        #[derive(Clone)]
        struct Gen(Vec<Rule>, u64);
        impl Classifier for Gen {
            fn name(&self) -> &str {
                "gen"
            }
            fn classify(&self, header: &HeaderValues) -> Option<u32> {
                reference_classify(&self.0, header)
            }
            fn memory_bits(&self) -> u64 {
                1
            }
            fn lookup_accesses(&self, _header: &HeaderValues) -> usize {
                1
            }
            fn build_records(&self) -> usize {
                0
            }
            fn generation(&self) -> u64 {
                self.1
            }
        }

        let h = HeaderValues::new()
            .with(MatchFieldKind::InPort, 3)
            .with(MatchFieldKind::Ipv4Dst, 0x0102_0304u128);
        // Version 1, generation 2: under a version+generation epoch this
        // caches at epoch 3.
        let rt = Runtime::with_control(Gen(vec![route(0, 3, 0, 0, 1)], 2), &quick_config(1));
        assert_eq!(rt.classify_batch(std::slice::from_ref(&h)).rows, vec![Some(0)]);
        assert_eq!(rt.classify_batch(std::slice::from_ref(&h)).rows, vec![Some(0)], "warm hit");
        // Version 2, generation 1 — the old epoch arithmetic collides
        // (2 + 1 == 1 + 2) and would serve the stale Some(0) row; the
        // new table answers None for this flow.
        let v = rt.swap_table(Gen(Vec::new(), 1));
        assert_eq!(v, 2);
        assert_eq!(
            rt.classify_batch(std::slice::from_ref(&h)).rows,
            vec![None],
            "swap_table must invalidate every cached row, whatever the generations"
        );
    }

    #[test]
    fn data_plane_only_runtime_rejects_updates() {
        let rt = Runtime::new(Scan(rules()), &quick_config(1));
        let err = rt.add_rule(route(9, 1, 0, 0, 9)).unwrap_err();
        assert!(matches!(err, BuildError::InvalidConfig { .. }), "{err:?}");
    }

    #[test]
    fn concurrent_classification_and_churn_matches_versioned_oracle() {
        let rt = Runtime::with_control(Scan(rules()), &quick_config(3));
        let handle = rt.handle();
        // Version → rule set at that version.
        let log = Mutex::new(vec![(1u64, rules())]);
        let hs = headers(128);
        std::thread::scope(|scope| {
            let churn = scope.spawn(|| {
                // Single publisher: versions are predictable, and each
                // log entry is appended *before* its publish so a racing
                // worker can never serve a version the log lacks.
                let mut rs = rules();
                let mut next_version = 2u64;
                for round in 0..40u32 {
                    let rule = route(100 + round, 1 + u128::from(round % 4), 0, 0, 90 + round);
                    rs.push(rule.clone());
                    log.lock().unwrap().push((next_version, rs.clone()));
                    let (_, v) = handle.add_rule(rule).unwrap();
                    assert_eq!(v, next_version);
                    next_version += 1;
                    if round % 2 == 0 {
                        rs.retain(|r| r.id != 100 + round);
                        log.lock().unwrap().push((next_version, rs.clone()));
                        let (_, v) = handle.remove_rule(100 + round).expect("just added");
                        assert_eq!(v, next_version);
                        next_version += 1;
                    }
                    std::thread::yield_now();
                }
            });
            for _ in 0..60 {
                let out = rt.classify_batch(&hs);
                let snapshot_log = log.lock().unwrap().clone();
                for (i, (&row, &version)) in out.rows.iter().zip(&out.versions).enumerate() {
                    let rules_at = &snapshot_log
                        .iter()
                        .rev()
                        .find(|(v, _)| *v <= version)
                        .expect("every served version has a log entry")
                        .1;
                    assert_eq!(
                        row,
                        reference_classify(rules_at, &hs[i]),
                        "packet {i} at version {version}"
                    );
                }
            }
            churn.join().unwrap();
        });
    }
}
