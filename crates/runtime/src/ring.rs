//! Single-producer/single-consumer batch ring.
//!
//! Each worker shard owns the consumer end of one bounded ring; the
//! dispatcher owns the producer end. One producer, one consumer —
//! enforced by ownership (the handles are `Send` but not `Clone`) — is
//! exactly the classic Lamport queue: the producer writes only `tail`,
//! the consumer writes only `head`, each side *reads* the other's index
//! with `Acquire` and publishes its own with `Release`, and the slots
//! in between need no synchronisation at all. No locks, no CAS loops,
//! no allocation after construction.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads an index to its own cache line so the producer's and consumer's
/// counters do not false-share.
#[repr(align(64))]
struct PaddedIndex(AtomicUsize);

struct Shared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read. Written only by the consumer.
    head: PaddedIndex,
    /// Next slot the producer will write. Written only by the producer.
    tail: PaddedIndex,
}

// SAFETY: the ring transfers `T` values between exactly two threads;
// slot access is serialised by the head/tail Acquire/Release protocol.
unsafe impl<T: Send> Sync for Shared<T> {}
unsafe impl<T: Send> Send for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both handles are gone; whatever sits between head and tail
        // was initialised by the producer and never consumed.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            // SAFETY: slots in [head, tail) hold initialised values.
            unsafe { (*self.buf[i & self.mask].get()).assume_init_drop() };
        }
    }
}

/// The producing end: [`Producer::push`] from one thread.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming end: [`Consumer::pop`] from one thread.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded SPSC ring of at least `capacity` slots (rounded up
/// to a power of two, minimum 2).
///
/// # Panics
/// Panics if `capacity` exceeds `usize::MAX / 4` (a unit error).
#[must_use]
pub fn spsc<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity <= usize::MAX / 4, "ring capacity {capacity} is implausible");
    let cap = capacity.next_power_of_two().max(2);
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let shared = Arc::new(Shared {
        buf,
        mask: cap - 1,
        head: PaddedIndex(AtomicUsize::new(0)),
        tail: PaddedIndex(AtomicUsize::new(0)),
    });
    (Producer { shared: Arc::clone(&shared) }, Consumer { shared })
}

impl<T: Send> Producer<T> {
    /// Enqueues `item`, or returns it if the ring is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        let s = &*self.shared;
        let tail = s.tail.0.load(Ordering::Relaxed); // we are the only writer
        let head = s.head.0.load(Ordering::Acquire);
        if tail - head > s.mask {
            return Err(item);
        }
        // SAFETY: slot `tail` is outside [head, tail) — unoccupied — and
        // only this producer writes slots; the Release store below
        // publishes the initialised value to the consumer.
        unsafe { (*s.buf[tail & s.mask].get()).write(item) };
        s.tail.0.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Slots currently enqueued (racy, advisory).
    #[must_use]
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail.0.load(Ordering::Relaxed) - s.head.0.load(Ordering::Acquire)
    }

    /// Whether the ring is empty (racy, advisory).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the consumer end still exists.
    #[must_use]
    pub fn consumer_alive(&self) -> bool {
        Arc::strong_count(&self.shared) > 1
    }
}

impl<T: Send> Consumer<T> {
    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        let s = &*self.shared;
        let head = s.head.0.load(Ordering::Relaxed); // we are the only writer
        let tail = s.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: slot `head` is inside [head, tail): initialised by the
        // producer and published by its Release store; after this read
        // the Release store below marks it unoccupied.
        let item = unsafe { (*s.buf[head & s.mask].get()).assume_init_read() };
        s.head.0.store(head + 1, Ordering::Release);
        Some(item)
    }

    /// Whether the ring is empty (racy, advisory).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let s = &*self.shared;
        s.head.0.load(Ordering::Relaxed) == s.tail.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        assert!(rx.is_empty());
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "ring of 4 holds 4");
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        // Wrap-around keeps working.
        for round in 0..10u32 {
            tx.push(round).unwrap();
            assert_eq!(rx.pop(), Some(round));
        }
    }

    #[test]
    fn capacity_rounds_up() {
        let (mut tx, _rx) = spsc::<u8>(3);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert!(tx.push(9).is_err());
        let (tx0, _rx0) = spsc::<u8>(0);
        assert!(tx0.is_empty());
    }

    #[test]
    fn unconsumed_items_are_dropped() {
        let counter = Arc::new(AtomicUsize::new(0));
        #[derive(Debug)]
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, mut rx) = spsc::<D>(8);
        for _ in 0..5 {
            tx.push(D(Arc::clone(&counter))).unwrap();
        }
        drop(rx.pop()); // one consumed
        drop(tx);
        drop(rx);
        assert_eq!(counter.load(Ordering::SeqCst), 5, "4 in-flight + 1 consumed");
    }

    #[test]
    fn cross_thread_stream_is_lossless() {
        let (mut tx, mut rx) = spsc::<u64>(64);
        const N: u64 = 200_000;
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..N {
                    let mut item = i;
                    loop {
                        match tx.push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            });
            let mut expected = 0;
            while expected < N {
                if let Some(v) = rx.pop() {
                    assert_eq!(v, expected);
                    expected += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            assert_eq!(rx.pop(), None);
        });
    }

    #[test]
    fn consumer_liveness_is_observable() {
        let (tx, rx) = spsc::<u8>(2);
        assert!(tx.consumer_alive());
        drop(rx);
        assert!(!tx.consumer_alive());
    }
}
