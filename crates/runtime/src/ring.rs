//! Single-producer/single-consumer batch ring.
//!
//! Each worker shard owns the consumer end of one bounded ring; the
//! dispatcher owns the producer end. One producer, one consumer —
//! enforced by ownership (the handles are `Send` but not `Clone`) — is
//! exactly the classic Lamport queue: the producer writes only `tail`,
//! the consumer writes only `head`, each side *reads* the other's index
//! with `Acquire` and publishes its own with `Release`, and the slots
//! in between need no synchronisation at all. No locks, no CAS loops,
//! no allocation after construction.
//!
//! ## Index protocol
//!
//! `head` and `tail` are **free-running** counters: they only ever
//! increase (wrapping at `usize::MAX`) and are reduced to a slot by
//! `index & mask`. The invariants the unsafe slot accesses ride on —
//! machine-checked in `proofs/` (the `ring_indices` Kani harness walks
//! symbolic op sequences over symbolic capacities and
//! `usize::MAX`-adjacent starting offsets; the model checker replays
//! producer/consumer interleavings across wraparound):
//!
//! * `tail.wrapping_sub(head)` is the exact number of occupied slots and
//!   never exceeds `capacity` (`mask + 1`, a power of two);
//! * the producer writes slot `tail & mask` only when that count is
//!   `< capacity`, so the physical slot is unoccupied — it can never
//!   alias a slot the consumer is still reading, even across index
//!   wraparound, because `capacity` divides `usize::MAX + 1`;
//! * the consumer reads slot `head & mask` only when the count is
//!   `> 0`, i.e. the slot was written and published by the producer's
//!   `Release` store.
//!
//! All index arithmetic is `wrapping_*`: with plain `+`/`-` the
//! free-running counters would panic (debug) or silently corrupt the
//! occupancy count (release overflow UB-adjacent semantics are fine for
//! `usize`, but the *debug* builds the reclamation-race CI leg runs
//! would abort) once a long-lived ring crosses `usize::MAX`.

#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads an index to its own cache line so the producer's and consumer's
/// counters do not false-share.
#[repr(align(64))]
struct PaddedIndex(AtomicUsize);

struct Shared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read. Written only by the consumer.
    head: PaddedIndex,
    /// Next slot the producer will write. Written only by the producer.
    tail: PaddedIndex,
}

// SAFETY: the ring transfers `T` values between exactly two threads;
// slot access is serialised by the head/tail Acquire/Release protocol.
unsafe impl<T: Send> Sync for Shared<T> {}
// SAFETY: as above — ownership of the buffered `T`s moves with the
// handles, which requires `T: Send`.
unsafe impl<T: Send> Send for Shared<T> {}

impl<T> Shared<T> {
    /// Occupied-slot count from a producer/consumer index pair.
    /// Wrapping subtraction keeps the count exact across index
    /// wraparound (free-running counters, see the module docs).
    #[inline]
    fn occupied(&self, head: usize, tail: usize) -> usize {
        let used = tail.wrapping_sub(head);
        debug_assert!(used <= self.mask + 1, "ring occupancy {used} exceeds capacity");
        used
    }
}

impl<T> Shared<T> {
    /// Drains the occupied slots of an exclusively owned ring in FIFO
    /// order and marks them consumed (so `Drop` has nothing left).
    /// Callable only with `&mut self`, i.e. after `Arc::try_unwrap`
    /// proved both handles collapsed into one owner.
    fn drain_owned(&mut self) -> Vec<T> {
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        let mut out = Vec::with_capacity(self.occupied(head, tail));
        let mut i = head;
        while i != tail {
            // SAFETY: we own the ring exclusively (`&mut self` via
            // `Arc::try_unwrap`), and slots in [head, tail) hold values
            // the producer initialised and the consumer never read.
            out.push(unsafe { (*self.buf[i & self.mask].get()).assume_init_read() });
            i = i.wrapping_add(1);
        }
        // Every slot read above is now logically unoccupied.
        *self.head.0.get_mut() = tail;
        out
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both handles are gone; whatever sits between head and tail
        // was initialised by the producer and never consumed.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        debug_assert!((self.mask + 1).is_power_of_two(), "ring capacity must be a power of two");
        let mut drained = 0usize;
        let mut i = head;
        while i != tail {
            // SAFETY: slots in [head, tail) hold initialised values.
            unsafe { (*self.buf[i & self.mask].get()).assume_init_drop() };
            i = i.wrapping_add(1);
            drained += 1;
            debug_assert!(drained <= self.mask + 1, "drop drained more slots than the capacity");
        }
        debug_assert_eq!(
            drained,
            self.occupied(head, tail),
            "drop must drain exactly the occupied slots"
        );
    }
}

/// The producing end: [`Producer::push`] from one thread.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming end: [`Consumer::pop`] from one thread.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded SPSC ring of at least `capacity` slots (rounded up
/// to a power of two, minimum 2).
///
/// # Panics
/// Panics if `capacity` exceeds `usize::MAX / 4` (a unit error).
#[must_use]
pub fn spsc<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    spsc_at(capacity, 0)
}

/// As [`spsc`], but with both free-running indices starting at `start`
/// instead of 0 — the wraparound regression tests start rings just
/// below `usize::MAX` so the index arithmetic crosses the wrap within a
/// few operations. The physical slot is always `index & mask`, so a
/// nonzero start only shifts which slot is "first".
fn spsc_at<T: Send>(capacity: usize, start: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity <= usize::MAX / 4, "ring capacity {capacity} is implausible");
    let cap = capacity.next_power_of_two().max(2);
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let shared = Arc::new(Shared {
        buf,
        mask: cap - 1,
        head: PaddedIndex(AtomicUsize::new(start)),
        tail: PaddedIndex(AtomicUsize::new(start)),
    });
    (Producer { shared: Arc::clone(&shared) }, Consumer { shared })
}

impl<T: Send> Producer<T> {
    /// Enqueues `item`, or returns it if the ring is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        let s = &*self.shared;
        let tail = s.tail.0.load(Ordering::Relaxed); // we are the only writer
        let head = s.head.0.load(Ordering::Acquire);
        if s.occupied(head, tail) > s.mask {
            return Err(item);
        }
        // SAFETY: occupancy < capacity, so slot `tail & mask` is not one
        // of the occupied slots in [head, tail) — unoccupied — and only
        // this producer writes slots; the Release store below publishes
        // the initialised value to the consumer.
        unsafe { (*s.buf[tail & s.mask].get()).write(item) };
        s.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Slots currently enqueued (racy, advisory).
    #[must_use]
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.occupied(s.head.0.load(Ordering::Acquire), s.tail.0.load(Ordering::Relaxed))
    }

    /// Whether the ring is empty (racy, advisory).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the consumer end still exists.
    #[must_use]
    pub fn consumer_alive(&self) -> bool {
        Arc::strong_count(&self.shared) > 1
    }

    /// Reclaims every unconsumed item from a ring whose consumer is
    /// gone (the worker thread died and dropped its [`Consumer`]),
    /// in FIFO order. This is the supervisor's re-routing primitive: a
    /// respawned shard gets the dead shard's backlog re-submitted so no
    /// in-flight batch is lost with the thread.
    ///
    /// Returns `Err(self)` when the consumer is still alive — exclusive
    /// ownership of the shared state is the whole safety argument, so
    /// recovery is refused while the other end could still pop.
    pub fn recover(self) -> Result<Vec<T>, Self> {
        match Arc::try_unwrap(self.shared) {
            Ok(mut shared) => Ok(shared.drain_owned()),
            Err(shared) => Err(Self { shared }),
        }
    }
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = &*self.shared;
        let occupied =
            s.occupied(s.head.0.load(Ordering::Acquire), s.tail.0.load(Ordering::Relaxed));
        f.debug_struct("Producer")
            .field("len", &occupied)
            .field("capacity", &(s.mask + 1))
            .field("consumer_alive", &(Arc::strong_count(&self.shared) > 1))
            .finish()
    }
}

impl<T: Send> Consumer<T> {
    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        let s = &*self.shared;
        let head = s.head.0.load(Ordering::Relaxed); // we are the only writer
        let tail = s.tail.0.load(Ordering::Acquire);
        if s.occupied(head, tail) == 0 {
            return None;
        }
        // SAFETY: occupancy > 0, so slot `head & mask` is inside
        // [head, tail): initialised by the producer and published by its
        // Release store; after this read the Release store below marks
        // it unoccupied.
        let item = unsafe { (*s.buf[head & s.mask].get()).assume_init_read() };
        s.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// Whether the ring is empty (racy, advisory).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let s = &*self.shared;
        s.occupied(s.head.0.load(Ordering::Relaxed), s.tail.0.load(Ordering::Acquire)) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        assert!(rx.is_empty());
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "ring of 4 holds 4");
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        // Wrap-around keeps working.
        for round in 0..10u32 {
            tx.push(round).unwrap();
            assert_eq!(rx.pop(), Some(round));
        }
    }

    #[test]
    fn capacity_rounds_up() {
        let (mut tx, _rx) = spsc::<u8>(3);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert!(tx.push(9).is_err());
        let (tx0, _rx0) = spsc::<u8>(0);
        assert!(tx0.is_empty());
    }

    #[test]
    fn unconsumed_items_are_dropped() {
        let counter = Arc::new(AtomicUsize::new(0));
        #[derive(Debug)]
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, mut rx) = spsc::<D>(8);
        for _ in 0..5 {
            tx.push(D(Arc::clone(&counter))).unwrap();
        }
        drop(rx.pop()); // one consumed
        drop(tx);
        drop(rx);
        assert_eq!(counter.load(Ordering::SeqCst), 5, "4 in-flight + 1 consumed");
    }

    /// Regression for the free-running index protocol: a ring whose
    /// indices start just below `usize::MAX` crosses the numeric wrap
    /// within a handful of operations. With the pre-hardening plain
    /// `tail - head` arithmetic this test aborts in debug builds
    /// (subtraction overflow once `tail` wraps to 0 while `head` is
    /// still near `usize::MAX`).
    #[test]
    fn index_wraparound_near_usize_max() {
        for start in [usize::MAX - 7, usize::MAX - 4, usize::MAX - 2, usize::MAX - 1, usize::MAX, 0]
        {
            let (mut tx, mut rx) = spsc_at::<u64>(4, start);
            // Fill, drain, and interleave across the wrap boundary.
            for i in 0..4u64 {
                tx.push(i).unwrap();
            }
            assert_eq!(tx.len(), 4, "start {start:#x}");
            assert!(tx.push(99).is_err(), "start {start:#x}: full ring rejects");
            for i in 0..4u64 {
                assert_eq!(rx.pop(), Some(i), "start {start:#x}");
            }
            assert_eq!(rx.pop(), None, "start {start:#x}");
            for round in 0..16u64 {
                tx.push(round).unwrap();
                tx.push(round + 100).unwrap();
                assert_eq!(rx.pop(), Some(round), "start {start:#x}");
                assert_eq!(rx.pop(), Some(round + 100), "start {start:#x}");
            }
        }
    }

    /// Unconsumed items straddling the numeric wrap are still dropped
    /// exactly once (the Drop accounting walks `head..tail` with
    /// wrapping increments).
    #[test]
    fn drop_accounting_across_wraparound() {
        let counter = Arc::new(AtomicUsize::new(0));
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, mut rx) = spsc_at::<D>(4, usize::MAX - 1);
        for _ in 0..3 {
            assert!(tx.push(D(Arc::clone(&counter))).is_ok());
        }
        drop(rx.pop()); // head crosses to usize::MAX; 2 left spanning the wrap
        drop(tx);
        drop(rx);
        assert_eq!(counter.load(Ordering::SeqCst), 3, "2 in-flight across the wrap + 1 consumed");
    }

    #[test]
    fn cross_thread_stream_is_lossless() {
        let (mut tx, mut rx) = spsc::<u64>(64);
        const N: u64 = 200_000;
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..N {
                    let mut item = i;
                    loop {
                        match tx.push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            });
            let mut expected = 0;
            while expected < N {
                if let Some(v) = rx.pop() {
                    assert_eq!(v, expected);
                    expected += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            assert_eq!(rx.pop(), None);
        });
    }

    /// As the lossless-stream test, but with the indices starting at the
    /// numeric wrap so the cross-thread protocol (not just the
    /// single-thread arithmetic) is exercised across it.
    #[test]
    fn cross_thread_stream_across_wraparound() {
        let (mut tx, mut rx) = spsc_at::<u64>(8, usize::MAX - 3);
        const N: u64 = 10_000;
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..N {
                    let mut item = i;
                    loop {
                        match tx.push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            });
            let mut expected = 0;
            while expected < N {
                if let Some(v) = rx.pop() {
                    assert_eq!(v, expected);
                    expected += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            assert_eq!(rx.pop(), None);
        });
    }

    #[test]
    fn consumer_liveness_is_observable() {
        let (tx, rx) = spsc::<u8>(2);
        assert!(tx.consumer_alive());
        drop(rx);
        assert!(!tx.consumer_alive());
    }

    /// A consumer dropped *mid-stream* (items pushed, some popped, some
    /// still queued) is observable from the producer, and the producer
    /// can keep pushing into the orphaned ring without error until it
    /// fills — exactly the window the supervisor operates in.
    #[test]
    fn consumer_dropped_mid_stream() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.pop(), Some(1));
        drop(rx);
        assert!(!tx.consumer_alive());
        // The orphaned ring still accepts pushes up to capacity.
        tx.push(3).unwrap();
        tx.push(4).unwrap();
        tx.push(5).unwrap();
        assert_eq!(tx.push(6), Err(6), "orphaned ring still bounds occupancy");
        assert_eq!(tx.recover().expect("consumer is gone"), vec![2, 3, 4, 5]);
    }

    #[test]
    fn recover_refuses_while_consumer_alive() {
        let (mut tx, mut rx) = spsc::<u8>(2);
        tx.push(7).unwrap();
        tx = match tx.recover() {
            Err(tx) => tx,
            Ok(_) => panic!("recover must refuse while the consumer lives"),
        };
        assert_eq!(rx.pop(), Some(7), "refused recovery leaves the ring intact");
        drop(rx);
        assert_eq!(tx.recover().expect("now exclusive"), Vec::<u8>::new());
    }

    /// Recovery drains in FIFO order with correct drop accounting even
    /// when the occupied span straddles the numeric index wrap.
    #[test]
    fn recover_across_wraparound() {
        let counter = Arc::new(AtomicUsize::new(0));
        struct D(u32, Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.1.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, mut rx) = spsc_at::<D>(4, usize::MAX - 1);
        for i in 0..3 {
            assert!(tx.push(D(i, Arc::clone(&counter))).is_ok());
        }
        drop(rx.pop()); // head crosses the wrap; 2 items straddle it
        drop(rx);
        let Ok(recovered) = tx.recover() else { panic!("consumer is gone") };
        assert_eq!(recovered.iter().map(|d| d.0).collect::<Vec<_>>(), vec![1, 2]);
        drop(recovered);
        assert_eq!(counter.load(Ordering::SeqCst), 3, "each item dropped exactly once");
    }
}
