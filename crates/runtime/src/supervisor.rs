//! The shard supervisor: the thread that makes worker death a counted,
//! recovered event instead of a hung dataplane.
//!
//! The supervisor owns every worker `JoinHandle` and polls two signals:
//!
//! * **death** — the worker thread finished. The only way out of the
//!   run-to-completion loop besides shutdown is a caught panic
//!   ([`crate::runtime`]'s `worker_entry` unwind boundary), so a
//!   finished thread while the runtime is live means the shard crashed.
//! * **stall** — the worker's heartbeat counter froze while the shard
//!   has work pending (an in-flight job or ring backlog). Stalls are
//!   detected and counted (`stalls_detected`) but not killed: Rust has
//!   no safe thread preemption, and deadline shedding + ticket timeouts
//!   bound the damage instead.
//!
//! Respawn protocol, in order: **join** the dead thread (after which its
//! ring consumer is provably dropped), swap a **fresh ring** into the
//! shared producer slot (submitters serialise on that lock, so no job
//! can fall between the rings), **recover** the dead ring's backlog
//! ([`crate::ring::Producer::recover`]), take the orphaned in-flight
//! job, spawn a fresh worker (new snapshot reader, new cache), and
//! re-route orphan + backlog in FIFO order. A job whose shard died
//! serving it more than [`MAX_REQUEUES`](crate::runtime::MAX_REQUEUES)
//! times is completed unserved instead of crash-looping the shard.

use std::sync::atomic::Ordering::{Relaxed, SeqCst};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use classifier_api::Classifier;

use crate::ring::spsc;
use crate::runtime::{complete_unserved, spawn_worker, Job, Shared, MAX_REQUEUES};

/// Poll cadence: cheap (two atomic loads per shard) and far below any
/// ticket timeout a caller would choose.
const POLL: Duration = Duration::from_micros(500);

/// Heartbeat silence (with work pending) before a shard counts as
/// stalled.
const STALL_AFTER: Duration = Duration::from_millis(25);

/// Supervises `workers` until the runtime stops, then joins them all.
pub(crate) fn supervise<C: Classifier + 'static>(
    shared: &Arc<Shared<C>>,
    workers: Vec<JoinHandle<()>>,
) {
    let mut workers: Vec<Option<JoinHandle<()>>> = workers.into_iter().map(Some).collect();
    let now = Instant::now();
    let mut beats: Vec<(u64, Instant)> =
        shared.counters.iter().map(|c| (c.heartbeat.load(Relaxed), now)).collect();
    let mut stalled = vec![false; shared.shards];
    while !shared.stop.load(SeqCst) {
        for shard in 0..shared.shards {
            if shared.stop.load(SeqCst) {
                break;
            }
            if workers[shard].as_ref().is_some_and(JoinHandle::is_finished) {
                let old = workers[shard].take().expect("worker slot occupied");
                workers[shard] = Some(respawn(shared, shard, old));
                beats[shard] = (shared.counters[shard].heartbeat.load(Relaxed), Instant::now());
                stalled[shard] = false;
                continue;
            }
            let beat = shared.counters[shard].heartbeat.load(Relaxed);
            if beat != beats[shard].0 {
                beats[shard] = (beat, Instant::now());
                stalled[shard] = false;
            } else if !stalled[shard]
                && beats[shard].1.elapsed() > STALL_AFTER
                && has_pending(shared, shard)
            {
                // Count the episode once; cleared when the beat moves.
                stalled[shard] = true;
                shared.counters[shard].stalls_detected.fetch_add(1, Relaxed);
            }
        }
        std::thread::sleep(POLL);
    }
    for worker in workers.into_iter().flatten() {
        let _ = worker.join();
    }
}

/// Whether the shard has undone work (the stall predicate: a frozen
/// heartbeat on an idle shard is just a long park, not a stall).
fn has_pending<C>(shared: &Arc<Shared<C>>, shard: usize) -> bool {
    if shared.lock_inflight(shard).is_some() {
        return true;
    }
    !shared.lock_producer(shard).is_empty()
}

/// Rebuilds a dead shard and re-routes everything it left behind.
fn respawn<C: Classifier + 'static>(
    shared: &Arc<Shared<C>>,
    shard: usize,
    old: JoinHandle<()>,
) -> JoinHandle<()> {
    // Reap the dead thread first: once joined, its ring consumer is
    // guaranteed dropped and the old producer end is exclusively ours.
    let _ = old.join();
    let counters = &shared.counters[shard];
    let (fresh, consumer) = spsc::<Job>(shared.settings.ring_capacity);
    let old_producer = std::mem::replace(&mut *shared.lock_producer(shard), fresh);
    let backlog = old_producer.recover().unwrap_or_else(|_| {
        debug_assert!(false, "a joined worker cannot still hold its consumer");
        Vec::new()
    });
    let orphan = shared.lock_inflight(shard).take();
    counters.restarts.fetch_add(1, Relaxed);
    let handle = spawn_worker(shared, shard, consumer);
    // Re-route in FIFO order: the orphan was popped before the backlog.
    if let Some(mut job) = orphan {
        job.requeues += 1;
        if job.requeues > MAX_REQUEUES {
            // This job has killed the shard repeatedly: declare it
            // poisonous and resolve its ticket unserved rather than
            // crash-looping forever.
            complete_unserved(counters, job, true);
        } else {
            requeue(shared, shard, job);
        }
    }
    for job in backlog {
        requeue(shared, shard, job);
    }
    handle
}

/// Pushes a recovered job back onto its shard's (fresh) ring. The new
/// worker is already draining, so a full ring is transient; the
/// producer lock is released between attempts so submitters (and a
/// later respawn) are never blocked behind this spin.
fn requeue<C: Classifier>(shared: &Arc<Shared<C>>, shard: usize, mut job: Job) {
    shared.counters[shard].requeued_jobs.fetch_add(1, Relaxed);
    loop {
        let mut producer = shared.lock_producer(shard);
        match producer.push(job) {
            Ok(()) => break,
            Err(back) => {
                drop(producer);
                job = back;
                std::thread::yield_now();
            }
        }
    }
    shared.ring_doorbell(shard);
}
