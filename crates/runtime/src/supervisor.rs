//! The shard supervisor: the thread that makes worker death a counted,
//! recovered event instead of a hung dataplane.
//!
//! The supervisor owns every worker `JoinHandle` and polls two signals:
//!
//! * **death** — the worker thread finished. The only way out of the
//!   run-to-completion loop besides shutdown is a caught panic
//!   ([`crate::runtime`]'s `worker_entry` unwind boundary), so a
//!   finished thread while the runtime is live means the shard crashed.
//! * **stall** — the worker's heartbeat counter froze while the shard
//!   has work pending (an in-flight job or ring backlog). Stalls are
//!   detected and counted (`stalls_detected`) but not killed: Rust has
//!   no safe thread preemption, and deadline shedding + ticket timeouts
//!   bound the damage instead.
//!
//! Respawn protocol, in order: **join** the dead thread (after which its
//! ring consumer is provably dropped), swap a **fresh ring** into the
//! shared producer slot (submitters serialise on that lock, so no job
//! can fall between the rings), **recover** the dead ring's backlog
//! ([`crate::ring::Producer::recover`]), take the orphaned in-flight
//! job, spawn a fresh worker (new snapshot reader, new cache), and
//! re-route orphan + backlog in FIFO order. A job whose shard died
//! serving it more than [`MAX_REQUEUES`](crate::runtime::MAX_REQUEUES)
//! times is completed unserved instead of crash-looping the shard.
//!
//! ## Escalation: shard respawn → runtime restore
//!
//! On a durable runtime ([`crate::Runtime::with_durability`]) the
//! supervisor also owns the next rung of the ladder. When a
//! runtime-level invariant breaks — more than `escalate_after` shard
//! restarts inside `escalate_window`, a fault plan's publish escalation,
//! or an explicit [`crate::RuntimeHandle::force_restore`] — it tears the
//! whole dataplane down and cold-starts it from the latest good
//! checkpoint plus the WAL tail ([`runtime_restore`]): quiesce the
//! workers (bounded wait; wedged ones are left behind as *zombies* that
//! drain their replaced rings and exit), swap every ring fresh, rebuild
//! and republish the master from the store, bump the run epoch, respawn
//! every shard, and re-admit every queued or orphaned job — no ticket
//! hangs across the restore.

use std::sync::atomic::Ordering::{Relaxed, SeqCst};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use classifier_api::Classifier;
use mtl_trace::EventKind;

use crate::ring::spsc;
use crate::runtime::{complete_unserved, spawn_worker, Job, Shared, MAX_REQUEUES};

/// Poll cadence: cheap (two atomic loads per shard) and far below any
/// ticket timeout a caller would choose.
const POLL: Duration = Duration::from_micros(500);

/// Heartbeat silence (with work pending) before a shard counts as
/// stalled.
const STALL_AFTER: Duration = Duration::from_millis(25);

/// Supervises `workers` until the runtime stops, then joins them all.
pub(crate) fn supervise<C: Classifier + 'static>(
    shared: &Arc<Shared<C>>,
    workers: Vec<JoinHandle<()>>,
) {
    let mut workers: Vec<Option<JoinHandle<()>>> = workers.into_iter().map(Some).collect();
    let now = Instant::now();
    let mut beats: Vec<(u64, Instant)> =
        shared.counters.iter().map(|c| (c.heartbeat.load(Relaxed), now)).collect();
    let mut stalled = vec![false; shared.shards];
    // Zombies: workers a restore abandoned because they would not
    // quiesce in time. They drain their replaced rings and exit on
    // their own; joined at shutdown.
    let mut zombies: Vec<JoinHandle<()>> = Vec::new();
    // Restart timestamps inside the escalation window.
    let mut restart_times: Vec<Instant> = Vec::new();
    while !shared.stop.load(SeqCst) {
        if shared.restore_requested.swap(false, SeqCst) && shared.rebuild_master.is_some() {
            runtime_restore(shared, &mut workers, &mut zombies, &mut beats);
            stalled.fill(false);
            restart_times.clear();
            continue;
        }
        for shard in 0..shared.shards {
            if shared.stop.load(SeqCst) {
                break;
            }
            if workers[shard].as_ref().is_some_and(JoinHandle::is_finished) {
                let old = workers[shard].take().expect("worker slot occupied");
                workers[shard] = Some(respawn(shared, shard, old));
                beats[shard] = (shared.counters[shard].heartbeat.load(Relaxed), Instant::now());
                stalled[shard] = false;
                // Escalation trigger: a restart storm. More than
                // `after` respawns inside the sliding window means the
                // shard-level ladder is not converging — tear down and
                // cold-start from the durable state instead.
                if shared.rebuild_master.is_some() {
                    let now = Instant::now();
                    restart_times.push(now);
                    restart_times.retain(|t| now.duration_since(*t) <= shared.escalation.window);
                    if restart_times.len() > shared.escalation.after as usize {
                        shared.restore_requested.store(true, SeqCst);
                    }
                }
                continue;
            }
            let beat = shared.counters[shard].heartbeat.load(Relaxed);
            if beat != beats[shard].0 {
                beats[shard] = (beat, Instant::now());
                stalled[shard] = false;
            } else if !stalled[shard]
                && beats[shard].1.elapsed() > STALL_AFTER
                && has_pending(shared, shard)
            {
                // Count the episode once; cleared when the beat moves.
                stalled[shard] = true;
                shared.counters[shard].stalls_detected.fetch_add(1, Relaxed);
                #[allow(clippy::cast_possible_truncation)]
                shared.trace_supervisor(
                    EventKind::WorkerStall,
                    shard as u64,
                    beats[shard].1.elapsed().as_nanos() as u64,
                );
            }
        }
        std::thread::sleep(POLL);
    }
    for worker in workers.into_iter().flatten().chain(zombies) {
        let _ = worker.join();
    }
}

/// The top rung of the escalation ladder: tear the whole dataplane down
/// and cold-start it from the durable store.
///
/// Protocol, in order:
///
/// 1. **Quiesce**: raise the flag and ring every doorbell; current-epoch
///    workers park out at their next job boundary. The wait is bounded
///    by the configured quiesce timeout — a wedged worker cannot be
///    preempted, so it is abandoned as a *zombie* (it drains whatever
///    remains of its replaced ring, then exits; joined at shutdown).
/// 2. **Swap every ring fresh** under the producer locks (submitters
///    serialise there, so no job falls between rings), collecting the
///    backlog + orphan of every shard whose worker exited.
/// 3. **Rebuild the master from the store** (the type-erased closure
///    installed by `with_durability`): newest valid checkpoint decoded +
///    WAL tail replayed, republished through the snapshot cell.
/// 4. **Bump the run epoch** (zombie demarcation), drop the quiesce
///    flag, respawn every shard, and **re-admit** the collected jobs —
///    orphans from crashed workers count a requeue (and are completed
///    unserved past [`MAX_REQUEUES`]); clean ring backlog is re-admitted
///    as-is. No ticket hangs across the restore.
fn runtime_restore<C: Classifier + 'static>(
    shared: &Arc<Shared<C>>,
    workers: &mut [Option<JoinHandle<()>>],
    zombies: &mut Vec<JoinHandle<()>>,
    beats: &mut [(u64, Instant)],
) {
    let old_epoch = shared.run_epoch.load(SeqCst);
    shared.trace_supervisor(EventKind::RestoreBegin, old_epoch, 0);
    shared.quiesce.store(true, SeqCst);
    for shard in 0..shared.shards {
        shared.ring_doorbell(shard);
    }
    let deadline = Instant::now() + shared.escalation.quiesce_timeout;
    while workers.iter().flatten().any(|w| !w.is_finished()) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_micros(200));
    }
    // (shard, job, from_crash) in FIFO order per shard.
    let mut pending: Vec<(usize, Job, bool)> = Vec::new();
    let mut consumers = Vec::with_capacity(shared.shards);
    for (shard, worker_slot) in workers.iter_mut().enumerate().take(shared.shards) {
        let (fresh, consumer) = spsc::<Job>(shared.settings.ring_capacity);
        let old_producer = std::mem::replace(&mut *shared.lock_producer(shard), fresh);
        consumers.push(consumer);
        let old_worker = worker_slot.take().expect("worker slot occupied");
        if old_worker.is_finished() {
            // The worker exited (clean quiesce or an earlier panic):
            // its consumer is dropped, so its ring and in-flight slot
            // are exclusively ours. The orphan (if any) was popped
            // before the backlog — keep FIFO.
            let _ = old_worker.join();
            if let Some(job) = shared.lock_inflight(shard).take() {
                // A recorded in-flight job on an exited worker means it
                // died mid-batch (clean quiesce clears the slot): the
                // re-route counts against MAX_REQUEUES.
                pending.push((shard, job, true));
            }
            match old_producer.recover() {
                Ok(backlog) => pending.extend(backlog.into_iter().map(|j| (shard, j, false))),
                Err(_) => debug_assert!(false, "a joined worker cannot still hold its consumer"),
            }
        } else {
            // Wedged mid-job: no safe preemption exists. Drop our
            // producer end and abandon the worker as a zombie — it
            // still owns its consumer, so it (alone) drains the old
            // ring's jobs, completes them, and exits when it observes
            // the epoch moved. Its in-flight job stays with it.
            drop(old_producer);
            zombies.push(old_worker);
        }
    }
    if let Some(rebuild) = &shared.rebuild_master {
        rebuild(shared);
    }
    shared.durability.restores.fetch_add(1, Relaxed);
    // Epoch before spawn: every fresh worker must read the new epoch,
    // and zombies must observe themselves stale before any fresh worker
    // shares their shard's in-flight slot.
    shared.run_epoch.fetch_add(1, SeqCst);
    shared.quiesce.store(false, SeqCst);
    for (shard, consumer) in consumers.into_iter().enumerate() {
        // Every shard gets a fresh worker (and so a fresh cache): fold
        // the old generation's cache counters into the baseline so
        // telemetry stays monotone across the restore.
        shared.counters[shard].absorb_cache_baseline();
        workers[shard] = Some(spawn_worker(shared, shard, consumer));
        beats[shard] = (shared.counters[shard].heartbeat.load(Relaxed), Instant::now());
    }
    for (shard, mut job, from_crash) in pending {
        if from_crash {
            job.requeues += 1;
            if job.requeues > MAX_REQUEUES {
                complete_unserved(&shared.counters[shard], job, true);
                continue;
            }
        }
        requeue(shared, shard, job);
    }
    let restored = shared.durable_snapshot_version();
    shared.trace_supervisor(EventKind::RestoreEnd, shared.run_epoch.load(SeqCst), restored);
    // The restore is itself forensic evidence — persist it.
    shared.flush_flight_log();
}

/// Whether the shard has undone work (the stall predicate: a frozen
/// heartbeat on an idle shard is just a long park, not a stall).
fn has_pending<C>(shared: &Arc<Shared<C>>, shard: usize) -> bool {
    if shared.lock_inflight(shard).is_some() {
        return true;
    }
    !shared.lock_producer(shard).is_empty()
}

/// Rebuilds a dead shard and re-routes everything it left behind.
fn respawn<C: Classifier + 'static>(
    shared: &Arc<Shared<C>>,
    shard: usize,
    old: JoinHandle<()>,
) -> JoinHandle<()> {
    // Reap the dead thread first: once joined, its ring consumer is
    // guaranteed dropped and the old producer end is exclusively ours.
    let _ = old.join();
    let counters = &shared.counters[shard];
    let (fresh, consumer) = spsc::<Job>(shared.settings.ring_capacity);
    let old_producer = std::mem::replace(&mut *shared.lock_producer(shard), fresh);
    let backlog = old_producer.recover().unwrap_or_else(|_| {
        debug_assert!(false, "a joined worker cannot still hold its consumer");
        Vec::new()
    });
    let orphan = shared.lock_inflight(shard).take();
    counters.restarts.fetch_add(1, Relaxed);
    // The replacement worker builds a fresh cache whose stats restart
    // at zero: fold the dead generation's counters into the baseline
    // first so cumulative cache telemetry never goes backwards.
    counters.absorb_cache_baseline();
    shared.trace_supervisor(
        EventKind::WorkerRespawn,
        shard as u64,
        counters.restarts.load(Relaxed),
    );
    let handle = spawn_worker(shared, shard, consumer);
    // Re-route in FIFO order: the orphan was popped before the backlog.
    if let Some(mut job) = orphan {
        job.requeues += 1;
        if job.requeues > MAX_REQUEUES {
            // This job has killed the shard repeatedly: declare it
            // poisonous and resolve its ticket unserved rather than
            // crash-looping forever.
            complete_unserved(counters, job, true);
        } else {
            requeue(shared, shard, job);
        }
    }
    for job in backlog {
        requeue(shared, shard, job);
    }
    handle
}

/// Pushes a recovered job back onto its shard's (fresh) ring. The new
/// worker is already draining, so a full ring is transient; the
/// producer lock is released between attempts so submitters (and a
/// later respawn) are never blocked behind this spin.
fn requeue<C: Classifier>(shared: &Arc<Shared<C>>, shard: usize, mut job: Job) {
    shared.counters[shard].requeued_jobs.fetch_add(1, Relaxed);
    loop {
        let mut producer = shared.lock_producer(shard);
        match producer.push(job) {
            Ok(()) => break,
            Err(back) => {
                drop(producer);
                job = back;
                std::thread::yield_now();
            }
        }
    }
    shared.ring_doorbell(shard);
}
