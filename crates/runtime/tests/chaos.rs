//! Chaos suite: drives the supervised runtime through deterministic,
//! seeded fault schedules ([`FaultPlan`]) while the control plane
//! churns, and asserts the three robustness invariants:
//!
//! 1. **liveness** — no ticket ever waits forever (every wait here is a
//!    bounded `wait_timeout` that must not report `Timeout`);
//! 2. **consistency** — every *delivered* packet matches the sequential
//!    oracle at the exact table version that served it, faults or not;
//! 3. **recovery** — the fault counters (panics, restarts, requeues,
//!    stalls, sheds) land in telemetry, and once the schedule is
//!    exhausted the runtime's throughput returns to the fault-free
//!    ballpark.
//!
//! Compiled only with `--features fault-injection` (the CI `chaos` leg
//! runs it with debug assertions on).
#![cfg(feature = "fault-injection")]

use classifier_api::{reference_classify, Classifier, DynamicClassifier, UpdateReport};
use mtl_runtime::{
    AdmissionPolicy, FaultPlan, Runtime, RuntimeConfig, RuntimeHandle, Ticket, WaitOutcome,
};
use offilter::{Rule, RuleAction};
use oflow::{FlowMatch, HeaderValues, MatchFieldKind};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A linear-scan dynamic classifier: slow but incontestably correct,
/// which is what an oracle-checked chaos run wants.
#[derive(Clone)]
struct Scan(Vec<Rule>);

impl Classifier for Scan {
    fn name(&self) -> &str {
        "scan"
    }
    fn classify(&self, header: &HeaderValues) -> Option<u32> {
        reference_classify(&self.0, header)
    }
    fn memory_bits(&self) -> u64 {
        1
    }
    fn lookup_accesses(&self, _header: &HeaderValues) -> usize {
        self.0.len()
    }
    fn build_records(&self) -> usize {
        self.0.len()
    }
}

impl DynamicClassifier for Scan {
    fn insert_rule(&mut self, rule: Rule) -> Result<UpdateReport, classifier_api::BuildError> {
        self.0.push(rule);
        Ok(UpdateReport { records: 1, rebuilt: false })
    }
    fn remove_rule(&mut self, rule_id: u32) -> Option<UpdateReport> {
        let before = self.0.len();
        self.0.retain(|r| r.id != rule_id);
        (self.0.len() < before).then_some(UpdateReport { records: 1, rebuilt: false })
    }
}

fn route(id: u32, port: u128, value: u128, len: u32, out: u32) -> Rule {
    Rule::new(
        id,
        len as u16,
        FlowMatch::any()
            .with_exact(MatchFieldKind::InPort, port)
            .unwrap()
            .with_prefix(MatchFieldKind::Ipv4Dst, value, len)
            .unwrap(),
        RuleAction::Forward(out),
    )
}

fn rules() -> Vec<Rule> {
    vec![
        route(0, 1, 0x0A00_0000, 8, 1),
        route(1, 1, 0x0A01_0200, 24, 2),
        route(2, 2, 0x0A00_0000, 8, 3),
        route(3, 3, 0, 0, 4),
    ]
}

fn headers(n: usize) -> Vec<HeaderValues> {
    (0..n as u128)
        .map(|i| {
            HeaderValues::new()
                .with(MatchFieldKind::InPort, 1 + (i % 4))
                .with(MatchFieldKind::Ipv4Dst, 0x0A00_0000 + (i % 61) * 0x101)
        })
        .collect()
}

/// A wait that is generous but finite: the liveness assertion.
fn must_complete(ticket: Ticket, what: &str) -> mtl_runtime::ClassifiedBatch {
    match ticket.wait_timeout(Duration::from_secs(30)) {
        WaitOutcome::Complete(batch) => batch,
        other => panic!("{what}: ticket must resolve, got {other:?}"),
    }
}

/// Batches/sec over `batches` synchronous submissions of `hs`.
fn throughput(handle: &RuntimeHandle<Scan>, hs: &Arc<[HeaderValues]>, batches: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..batches {
        let _ = must_complete(handle.submit(Arc::clone(hs)), "throughput probe");
    }
    batches as f64 / t0.elapsed().as_secs_f64()
}

/// The acceptance-criteria run: a seeded plan with at least one worker
/// panic and one shard stall, under add/remove churn, with a
/// per-version oracle over every delivered packet.
#[test]
fn seeded_faults_under_churn_deliver_oracle_correct_results() {
    let shards = 3;
    let seed = 0xC0FF_EE42u64;
    let plan = Arc::new(FaultPlan::seeded(seed, shards, 40));
    assert!(plan.planned_panics() >= 1 && plan.planned_stalls() >= 1);
    let rt = Runtime::with_control(
        Scan(rules()),
        &RuntimeConfig {
            shards,
            ring_capacity: 8,
            cache_capacity: 64,
            pin_workers: false,
            fault_plan: Some(Arc::clone(&plan)),
            ..RuntimeConfig::default()
        },
    );
    let handle = rt.handle();
    // Version → rule set at that version (appended before each publish,
    // so a racing worker can never serve a version the log lacks).
    let log = Mutex::new(vec![(1u64, rules())]);
    let hs = headers(128);
    std::thread::scope(|scope| {
        let churn = scope.spawn(|| {
            let mut rs = rules();
            let mut next_version = 2u64;
            for round in 0..30u32 {
                let rule = route(100 + round, 1 + u128::from(round % 4), 0, 0, 90 + round);
                rs.push(rule.clone());
                log.lock().unwrap().push((next_version, rs.clone()));
                let (_, v) = handle.add_rule(rule).unwrap();
                assert_eq!(v, next_version);
                next_version += 1;
                if round % 2 == 0 {
                    rs.retain(|r| r.id != 100 + round);
                    log.lock().unwrap().push((next_version, rs.clone()));
                    let (_, v) = handle.remove_rule(100 + round).expect("just added");
                    assert_eq!(v, next_version);
                    next_version += 1;
                }
                std::thread::yield_now();
            }
        });
        // 150 batches ≫ the 40-step fault horizon: every scheduled
        // worker fault fires during this loop.
        for round in 0..150 {
            let out = must_complete(rt.submit(hs.clone().into()), "chaos batch");
            // Injected panics fire exactly once, so every re-routed job
            // succeeds on its second attempt: nothing may be lost.
            assert!(out.fully_delivered(), "round {round}: all packets delivered");
            let snapshot_log = log.lock().unwrap().clone();
            for (i, (&row, &version)) in out.rows.iter().zip(&out.versions).enumerate() {
                let rules_at = &snapshot_log
                    .iter()
                    .rev()
                    .find(|(v, _)| *v <= version)
                    .expect("every served version has a log entry")
                    .1;
                assert_eq!(
                    row,
                    reference_classify(rules_at, &hs[i]),
                    "round {round}, packet {i} at version {version}"
                );
            }
        }
        churn.join().unwrap();
    });

    // Recovery accounting: every planned panic crashed a shard, every
    // crash was a counted respawn, and the JSON report carries it all.
    let t = rt.telemetry();
    let planned = plan.planned_panics() as u64;
    assert_eq!(t.total_panics(), planned, "every planned panic fired, nothing else crashed");
    assert_eq!(t.total_restarts(), planned, "every crash was a respawn");
    assert!(
        t.per_shard.iter().map(|s| s.requeued_jobs).sum::<u64>() >= planned,
        "each crash re-routed at least its orphaned job"
    );
    assert!(
        t.per_shard.iter().map(|s| s.stalls_detected).sum::<u64>() >= 1,
        "the planned stall (≥40ms) was detected"
    );
    let json = t.to_json();
    for key in [
        "\"total_panics\"",
        "\"total_restarts\"",
        "\"restarts\"",
        "\"requeued_jobs\"",
        "\"stalls_detected\"",
        "\"poison_recoveries\"",
        "\"ticket_timeouts\"",
    ] {
        assert!(json.contains(key), "telemetry JSON carries {key}");
    }

    // Post-recovery throughput: the schedule is exhausted, so the
    // runtime must be back in the fault-free ballpark (≥ 90%). The two
    // sides are measured one at a time (never two live runtimes
    // competing for cores), the baseline gets the *same* exhausted plan
    // so both run identical code paths, and we take the best recovered
    // sample against the median baseline to damp scheduler noise.
    let probe: Arc<[HeaderValues]> = headers(256).into();
    let recovered_handle = rt.handle();
    let _ = throughput(&recovered_handle, &probe, 50); // warm
    let recovered: Vec<f64> = (0..5).map(|_| throughput(&recovered_handle, &probe, 200)).collect();
    drop(recovered_handle);
    rt.shutdown();
    // The baseline must serve the same post-churn table (the scan
    // classifier's cost is linear in rules), not the 4-rule seed.
    let final_rules = log.into_inner().unwrap().pop().expect("churn logged").1;
    let baseline_rt = Runtime::with_control(
        Scan(final_rules),
        &RuntimeConfig {
            shards,
            ring_capacity: 8,
            cache_capacity: 64,
            pin_workers: false,
            fault_plan: Some(plan),
            ..RuntimeConfig::default()
        },
    );
    let baseline_handle = baseline_rt.handle();
    let _ = throughput(&baseline_handle, &probe, 50); // warm
    let mut baseline: Vec<f64> =
        (0..5).map(|_| throughput(&baseline_handle, &probe, 200)).collect();
    baseline.sort_by(f64::total_cmp);
    let best_recovered = recovered.iter().fold(0.0f64, |a, &b| a.max(b));
    let median_baseline = baseline[baseline.len() / 2];
    let ratio = best_recovered / median_baseline;
    assert!(
        ratio >= 0.9,
        "post-recovery throughput within 10% of fault-free (ratio {ratio:.3}, \
         recovered {recovered:?}, baseline {baseline:?})"
    );
}

/// Reruns of the same seed produce the same fault accounting — the
/// "deterministic" in deterministic fault injection.
#[test]
fn same_seed_same_fault_accounting() {
    let observe = |seed: u64| {
        let shards = 2;
        let plan = Arc::new(FaultPlan::seeded(seed, shards, 10));
        let rt = Runtime::new(
            Scan(rules()),
            &RuntimeConfig {
                shards,
                ring_capacity: 8,
                cache_capacity: 0,
                pin_workers: false,
                fault_plan: Some(Arc::clone(&plan)),
                ..RuntimeConfig::default()
            },
        );
        let hs = headers(64);
        for _ in 0..40 {
            let out = must_complete(rt.submit(hs.clone().into()), "deterministic batch");
            assert!(out.fully_delivered());
        }
        let t = rt.telemetry();
        (t.total_panics(), t.total_restarts())
    };
    let a = observe(7);
    let b = observe(7);
    assert_eq!(a, b, "same seed, same panics/restarts");
    assert_eq!(a.0, FaultPlan::seeded(7, 2, 10).planned_panics() as u64);
}

/// Dropped doorbell notifies must cost at most a park timeout, never a
/// hang: the worker's bounded park is the liveness backstop.
#[test]
fn dropped_doorbell_notifies_do_not_hang_submissions() {
    let mut plan = FaultPlan::new(1);
    for n in 0..16 {
        plan = plan.drop_notify(0, n);
    }
    let rt = Runtime::new(
        Scan(rules()),
        &RuntimeConfig {
            shards: 1,
            ring_capacity: 8,
            cache_capacity: 0,
            pin_workers: false,
            fault_plan: Some(Arc::new(plan)),
            ..RuntimeConfig::default()
        },
    );
    let hs = headers(16);
    let want: Vec<Option<u32>> = hs.iter().map(|h| reference_classify(&rules(), h)).collect();
    for _ in 0..8 {
        let out = must_complete(rt.submit(hs.clone().into()), "notify-dropped batch");
        assert_eq!(out.rows, want);
    }
}

/// A wedged shard under `Shed` admission: queue growth is bounded, shed
/// packets are marked unserved (never fabricated), the stall is
/// detected, and every ticket still resolves.
#[test]
fn stalled_shard_sheds_and_recovers() {
    let plan = FaultPlan::new(1).stall(0, 1, Duration::from_millis(80));
    let rt = Runtime::new(
        Scan(rules()),
        &RuntimeConfig {
            shards: 1,
            ring_capacity: 8,
            cache_capacity: 0,
            admission: AdmissionPolicy::Shed { max_queued: 2 },
            pin_workers: false,
            fault_plan: Some(Arc::new(plan)),
            ..RuntimeConfig::default()
        },
    );
    let hs = headers(8);
    let want: Vec<Option<u32>> = hs.iter().map(|h| reference_classify(&rules(), h)).collect();
    // Batch 0 serves clean; batch 1 triggers the 80ms stall; the rest
    // pile up behind it and overflow the occupancy bound.
    let tickets: Vec<Ticket> = (0..20).map(|_| rt.submit(hs.clone().into())).collect();
    let mut delivered = 0usize;
    let mut shed = 0usize;
    for (i, ticket) in tickets.into_iter().enumerate() {
        let out = must_complete(ticket, "stall/shed batch");
        if out.fully_delivered() {
            assert_eq!(out.rows, want, "batch {i}");
            delivered += 1;
        } else {
            assert_eq!(
                out.delivered_count(),
                0,
                "batch {i}: single-shard sheds are all-or-nothing"
            );
            assert!(out.rows.iter().all(Option::is_none), "shed packets carry no fabricated rows");
            shed += 1;
        }
    }
    assert!(delivered >= 2, "the shard kept serving around the stall ({delivered} delivered)");
    assert!(shed >= 1, "the occupancy bound shed something during the stall ({shed} shed)");
    let t = rt.telemetry();
    assert_eq!(t.per_shard[0].shed_jobs, shed as u64);
    assert_eq!(t.per_shard[0].shed_packets, (shed * hs.len()) as u64);
    assert!(t.per_shard[0].stalls_detected >= 1, "the 80ms stall was detected");
    assert!(t.total_shed_packets() >= 1 && t.to_json().contains("\"shed_packets\""));
}

/// A delayed snapshot publish slows the control plane only: the
/// dataplane keeps serving the old version meanwhile, and the update
/// becomes visible (at the bumped version) once the publish lands.
#[test]
fn delayed_publish_slows_control_plane_not_dataplane() {
    let plan = FaultPlan::new(2).publish_delay(0, Duration::from_millis(60));
    let rt = Runtime::with_control(
        Scan(rules()),
        &RuntimeConfig {
            shards: 2,
            ring_capacity: 8,
            cache_capacity: 64,
            pin_workers: false,
            fault_plan: Some(Arc::new(plan)),
            ..RuntimeConfig::default()
        },
    );
    let handle = rt.handle();
    let h = HeaderValues::new()
        .with(MatchFieldKind::InPort, 1)
        .with(MatchFieldKind::Ipv4Dst, 0x0A01_0203u128);
    assert_eq!(rt.classify_batch(std::slice::from_ref(&h)).rows, vec![Some(1)]);
    let t0 = Instant::now();
    let publisher = std::thread::spawn(move || handle.add_rule(route(9, 1, 0x0A01_0200, 24, 9)));
    // While the publish sleeps, the dataplane serves version 1 answers.
    // (The publish can land mid-batch, so gate the row assertion on the
    // version each packet actually reports.)
    while rt.version() == 1 {
        let out = rt.classify_batch(std::slice::from_ref(&h));
        if out.versions == [1] {
            assert_eq!(out.rows, vec![Some(1)], "old table serves during the delayed publish");
        }
        assert!(t0.elapsed() < Duration::from_secs(10), "publish never landed");
    }
    let (_, v) = publisher.join().unwrap().unwrap();
    assert_eq!(v, 2);
    assert!(t0.elapsed() >= Duration::from_millis(50), "the publish really was delayed");
    assert_eq!(
        rt.classify_batch(std::slice::from_ref(&h)).rows,
        vec![Some(9)],
        "the delayed update is visible after it lands"
    );
}
