//! Chaos suite: drives the supervised runtime through deterministic,
//! seeded fault schedules ([`FaultPlan`]) while the control plane
//! churns, and asserts the robustness invariants:
//!
//! 1. **liveness** — no ticket ever waits forever (every wait here is a
//!    bounded `wait_timeout` that must not report `Timeout`);
//! 2. **consistency** — every *delivered* packet matches the sequential
//!    oracle at the exact table version that served it, faults or not;
//! 3. **recovery** — the fault counters (panics, restarts, requeues,
//!    stalls, sheds, restores) land in telemetry, and once the schedule
//!    is exhausted the runtime returns to the fault-free ballpark;
//! 4. **durability** — on a durable runtime, the state rebuilt from the
//!    store (newest valid snapshot + WAL tail) is byte-identical to the
//!    live master, through publish storms, torn WAL appends, corrupted
//!    checkpoints and whole-runtime restores.
//!
//! Every seeded test routes its seed through
//! [`mtl_runtime::resolve_seed`], so `CHAOS_SEED=<n>` (decimal or
//! `0x`-hex) replays any soak or CI failure exactly. Compiled only with
//! `--features fault-injection` (the CI `chaos` leg runs it with debug
//! assertions on; the nightly soak runs the `#[ignore]`d
//! [`chaos_soak`] on fresh seeds for minutes).
#![cfg(feature = "fault-injection")]

use classifier_api::{reference_classify, Classifier, DynamicClassifier, UpdateReport};
use mtl_persist::{FaultFs, PersistError, Persistent, Storage, Store, WalOp};
use mtl_runtime::{
    resolve_seed, shard_of, AdmissionPolicy, DurabilityConfig, FaultPlan, Runtime, RuntimeConfig,
    RuntimeHandle, Ticket, WaitOutcome, UNSERVED_VERSION,
};
use offilter::{FilterKind, Rule, RuleAction};
use oflow::{FlowMatch, HeaderValues, MatchFieldKind};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A linear-scan dynamic classifier: slow but incontestably correct,
/// which is what an oracle-checked chaos run wants.
#[derive(Clone)]
struct Scan(Vec<Rule>);

impl Classifier for Scan {
    fn name(&self) -> &str {
        "scan"
    }
    fn classify(&self, header: &HeaderValues) -> Option<u32> {
        reference_classify(&self.0, header)
    }
    fn memory_bits(&self) -> u64 {
        1
    }
    fn lookup_accesses(&self, _header: &HeaderValues) -> usize {
        self.0.len()
    }
    fn build_records(&self) -> usize {
        self.0.len()
    }
}

impl DynamicClassifier for Scan {
    fn insert_rule(&mut self, rule: Rule) -> Result<UpdateReport, classifier_api::BuildError> {
        self.0.push(rule);
        Ok(UpdateReport { records: 1, rebuilt: false })
    }
    fn remove_rule(&mut self, rule_id: u32) -> Option<UpdateReport> {
        let before = self.0.len();
        self.0.retain(|r| r.id != rule_id);
        (self.0.len() < before).then_some(UpdateReport { records: 1, rebuilt: false })
    }
}

impl Persistent for Scan {
    fn encode_image(&self) -> Vec<u8> {
        let mut w = mtl_persist::Writer::new();
        w.put_usize(self.0.len());
        for rule in &self.0 {
            mtl_persist::codec::encode_rule(&mut w, rule);
        }
        w.into_bytes()
    }
    fn decode_image(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut r = mtl_persist::Reader::new(bytes, "scan image");
        let n = r.seq_len(7)?;
        let mut rules = Vec::with_capacity(n);
        for _ in 0..n {
            rules.push(mtl_persist::codec::decode_rule(&mut r)?);
        }
        r.finish()?;
        Ok(Self(rules))
    }
}

fn route(id: u32, port: u128, value: u128, len: u32, out: u32) -> Rule {
    Rule::new(
        id,
        len as u16,
        FlowMatch::any()
            .with_exact(MatchFieldKind::InPort, port)
            .unwrap()
            .with_prefix(MatchFieldKind::Ipv4Dst, value, len)
            .unwrap(),
        RuleAction::Forward(out),
    )
}

fn rules() -> Vec<Rule> {
    vec![
        route(0, 1, 0x0A00_0000, 8, 1),
        route(1, 1, 0x0A01_0200, 24, 2),
        route(2, 2, 0x0A00_0000, 8, 3),
        route(3, 3, 0, 0, 4),
    ]
}

fn headers(n: usize) -> Vec<HeaderValues> {
    (0..n as u128)
        .map(|i| {
            HeaderValues::new()
                .with(MatchFieldKind::InPort, 1 + (i % 4))
                .with(MatchFieldKind::Ipv4Dst, 0x0A00_0000 + (i % 61) * 0x101)
        })
        .collect()
}

/// A wait that is generous but finite: the liveness assertion.
fn must_complete(ticket: Ticket, what: &str) -> mtl_runtime::ClassifiedBatch {
    match ticket.wait_timeout(Duration::from_secs(30)) {
        WaitOutcome::Complete(batch) => batch,
        other => panic!("{what}: ticket must resolve, got {other:?}"),
    }
}

/// Batches/sec over `batches` synchronous submissions of `hs`.
fn throughput(handle: &RuntimeHandle<Scan>, hs: &Arc<[HeaderValues]>, batches: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..batches {
        let _ = must_complete(handle.submit(Arc::clone(hs)), "throughput probe");
    }
    batches as f64 / t0.elapsed().as_secs_f64()
}

/// A fresh, collision-free store directory under the system temp dir.
fn temp_store(tag: &str) -> PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let n = NONCE.fetch_add(1, Relaxed);
    let dir = std::env::temp_dir().join(format!("mtl-chaos-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Polls until the runtime's epoch reaches `want` (a completed restore).
fn wait_epoch(rt: &RuntimeHandle<Scan>, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while rt.run_epoch() < want {
        assert!(Instant::now() < deadline, "restore to epoch {want} never completed");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// The recovery computation, reimplemented from first principles on a
/// *fresh* store handle: decode the newest valid snapshot and replay
/// the WAL tail past its watermark. This is the independent oracle the
/// byte-identity assertions compare [`RuntimeHandle::master_image`]
/// against — it shares no code with the runtime's own restore path
/// beyond the store itself.
fn replayed_image(dir: &Path) -> Option<Vec<u8>> {
    replayed_image_on(Store::open(dir).expect("store reopens"))
}

/// [`replayed_image`] over an injected [`Storage`] backend — the oracle
/// for stores that live inside a [`FaultFs`] rather than on the real
/// filesystem.
fn replayed_image_with(dir: &Path, storage: Arc<dyn Storage>) -> Option<Vec<u8>> {
    replayed_image_on(Store::open_with(dir, storage).expect("store reopens"))
}

fn replayed_image_on(mut store: Store) -> Option<Vec<u8>> {
    let point = store.restore().expect("restore scan succeeds")?;
    let mut table = Scan::decode_image(&point.image).expect("checkpoint image decodes");
    for record in &point.wal_tail {
        match WalOp::decode(&record.payload).expect("WAL record decodes") {
            WalOp::Add { rule, .. } => {
                let _ = table.insert_rule(rule);
            }
            WalOp::Remove { rule_id } => {
                let _ = table.remove_rule(rule_id);
            }
        }
    }
    Some(table.encode_image())
}

fn fault_config(shards: usize, plan: Arc<FaultPlan>) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        ring_capacity: 8,
        cache_capacity: 64,
        pin_workers: false,
        fault_plan: Some(plan),
        ..RuntimeConfig::default()
    }
}

/// The acceptance-criteria run: a seeded plan with at least one worker
/// panic and one shard stall, under add/remove churn, with a
/// per-version oracle over every delivered packet.
#[test]
fn seeded_faults_under_churn_deliver_oracle_correct_results() {
    let shards = 3;
    let seed = resolve_seed(0xC0FF_EE42);
    let plan = Arc::new(FaultPlan::seeded(seed, shards, 40));
    assert!(plan.planned_panics() >= 1 && plan.planned_stalls() >= 1);
    let rt = Runtime::with_control(Scan(rules()), &fault_config(shards, Arc::clone(&plan)));
    let handle = rt.handle();
    // Version → rule set at that version (appended before each publish,
    // so a racing worker can never serve a version the log lacks).
    let log = Mutex::new(vec![(1u64, rules())]);
    let hs = headers(128);
    std::thread::scope(|scope| {
        let churn = scope.spawn(|| {
            let mut rs = rules();
            let mut next_version = 2u64;
            for round in 0..30u32 {
                let rule = route(100 + round, 1 + u128::from(round % 4), 0, 0, 90 + round);
                rs.push(rule.clone());
                log.lock().unwrap().push((next_version, rs.clone()));
                let (_, v) = handle.add_rule(rule).unwrap();
                assert_eq!(v, next_version);
                next_version += 1;
                if round % 2 == 0 {
                    rs.retain(|r| r.id != 100 + round);
                    log.lock().unwrap().push((next_version, rs.clone()));
                    let (_, v) = handle.remove_rule(100 + round).expect("just added");
                    assert_eq!(v, next_version);
                    next_version += 1;
                }
                std::thread::yield_now();
            }
        });
        // 150 batches ≫ the 40-step fault horizon: every scheduled
        // worker fault fires during this loop.
        for round in 0..150 {
            let out = must_complete(rt.submit(hs.clone().into()), "chaos batch");
            // Injected panics fire exactly once, so every re-routed job
            // succeeds on its second attempt: nothing may be lost.
            assert!(out.fully_delivered(), "round {round}: all packets delivered");
            let snapshot_log = log.lock().unwrap().clone();
            for (i, (&row, &version)) in out.rows.iter().zip(&out.versions).enumerate() {
                let rules_at = &snapshot_log
                    .iter()
                    .rev()
                    .find(|(v, _)| *v <= version)
                    .expect("every served version has a log entry")
                    .1;
                assert_eq!(
                    row,
                    reference_classify(rules_at, &hs[i]),
                    "round {round}, packet {i} at version {version} (seed {seed:#x})"
                );
            }
        }
        churn.join().unwrap();
    });

    // Recovery accounting: every planned panic crashed a shard, every
    // crash was a counted respawn, and the JSON report carries it all.
    let t = rt.telemetry();
    let planned = plan.planned_panics() as u64;
    assert_eq!(t.total_panics(), planned, "every planned panic fired, nothing else crashed");
    assert_eq!(t.total_restarts(), planned, "every crash was a respawn");
    assert!(
        t.per_shard.iter().map(|s| s.requeued_jobs).sum::<u64>() >= planned,
        "each crash re-routed at least its orphaned job"
    );
    assert!(
        t.per_shard.iter().map(|s| s.stalls_detected).sum::<u64>() >= 1,
        "the planned stall (≥40ms) was detected"
    );
    let json = t.to_json();
    for key in [
        "\"total_panics\"",
        "\"total_restarts\"",
        "\"restarts\"",
        "\"requeued_jobs\"",
        "\"stalls_detected\"",
        "\"poison_recoveries\"",
        "\"ticket_timeouts\"",
        "\"durability\"",
    ] {
        assert!(json.contains(key), "telemetry JSON carries {key}");
    }

    // Post-recovery throughput: the schedule is exhausted, so the
    // runtime must be back in the fault-free ballpark. The two sides
    // are measured one at a time (never two live runtimes competing
    // for cores), the baseline gets the *same* exhausted plan so both
    // run identical code paths, and we take the best recovered sample
    // against the median baseline to damp scheduler noise. The floor
    // is 0.7: a shard that died and never respawned would cap the
    // ratio at ~1 - 1/shards (≤ 0.67 here), which is the regression
    // this guards against — anything tighter flakes on shared hosts
    // whose wall-clock throughput wobbles by double-digit percents
    // between the two measurement windows.
    let probe: Arc<[HeaderValues]> = headers(256).into();
    let recovered_handle = rt.handle();
    let _ = throughput(&recovered_handle, &probe, 50); // warm
    let recovered: Vec<f64> = (0..5).map(|_| throughput(&recovered_handle, &probe, 200)).collect();
    drop(recovered_handle);
    rt.shutdown();
    // The baseline must serve the same post-churn table (the scan
    // classifier's cost is linear in rules), not the 4-rule seed.
    let final_rules = log.into_inner().unwrap().pop().expect("churn logged").1;
    let baseline_rt = Runtime::with_control(Scan(final_rules), &fault_config(shards, plan));
    let baseline_handle = baseline_rt.handle();
    let _ = throughput(&baseline_handle, &probe, 50); // warm
    let mut baseline: Vec<f64> =
        (0..5).map(|_| throughput(&baseline_handle, &probe, 200)).collect();
    baseline.sort_by(f64::total_cmp);
    let best_recovered = recovered.iter().fold(0.0f64, |a, &b| a.max(b));
    let median_baseline = baseline[baseline.len() / 2];
    let ratio = best_recovered / median_baseline;
    assert!(
        ratio >= 0.7,
        "post-recovery throughput back in the fault-free ballpark (ratio {ratio:.3}, \
         recovered {recovered:?}, baseline {baseline:?})"
    );
}

/// Reruns of the same seed produce the same fault accounting — the
/// "deterministic" in deterministic fault injection.
#[test]
fn same_seed_same_fault_accounting() {
    let seed = resolve_seed(7);
    let observe = |seed: u64| {
        let shards = 2;
        let plan = Arc::new(FaultPlan::seeded(seed, shards, 10));
        let rt = Runtime::new(
            Scan(rules()),
            &RuntimeConfig { cache_capacity: 0, ..fault_config(shards, Arc::clone(&plan)) },
        );
        let hs = headers(64);
        for _ in 0..40 {
            let out = must_complete(rt.submit(hs.clone().into()), "deterministic batch");
            assert!(out.fully_delivered());
        }
        let t = rt.telemetry();
        (t.total_panics(), t.total_restarts())
    };
    let a = observe(seed);
    let b = observe(seed);
    assert_eq!(a, b, "same seed, same panics/restarts");
    assert_eq!(a.0, FaultPlan::seeded(seed, 2, 10).planned_panics() as u64);
}

/// Dropped doorbell notifies must cost at most a park timeout, never a
/// hang: the worker's bounded park is the liveness backstop.
#[test]
fn dropped_doorbell_notifies_do_not_hang_submissions() {
    let mut plan = FaultPlan::new(1);
    for n in 0..16 {
        plan = plan.drop_notify(0, n);
    }
    let rt = Runtime::new(
        Scan(rules()),
        &RuntimeConfig { cache_capacity: 0, ..fault_config(1, Arc::new(plan)) },
    );
    let hs = headers(16);
    let want: Vec<Option<u32>> = hs.iter().map(|h| reference_classify(&rules(), h)).collect();
    for _ in 0..8 {
        let out = must_complete(rt.submit(hs.clone().into()), "notify-dropped batch");
        assert_eq!(out.rows, want);
    }
}

/// A wedged shard under `Shed` admission: queue growth is bounded, shed
/// packets are marked unserved (never fabricated), the stall is
/// detected, and every ticket still resolves.
#[test]
fn stalled_shard_sheds_and_recovers() {
    let plan = FaultPlan::new(1).stall(0, 1, Duration::from_millis(80));
    let rt = Runtime::new(
        Scan(rules()),
        &RuntimeConfig {
            cache_capacity: 0,
            admission: AdmissionPolicy::Shed { max_queued: 2 },
            ..fault_config(1, Arc::new(plan))
        },
    );
    let hs = headers(8);
    let want: Vec<Option<u32>> = hs.iter().map(|h| reference_classify(&rules(), h)).collect();
    // Batch 0 serves clean; batch 1 triggers the 80ms stall; the rest
    // pile up behind it and overflow the occupancy bound.
    let tickets: Vec<Ticket> = (0..20).map(|_| rt.submit(hs.clone().into())).collect();
    let mut delivered = 0usize;
    let mut shed = 0usize;
    for (i, ticket) in tickets.into_iter().enumerate() {
        let out = must_complete(ticket, "stall/shed batch");
        if out.fully_delivered() {
            assert_eq!(out.rows, want, "batch {i}");
            delivered += 1;
        } else {
            assert_eq!(
                out.delivered_count(),
                0,
                "batch {i}: single-shard sheds are all-or-nothing"
            );
            assert!(out.rows.iter().all(Option::is_none), "shed packets carry no fabricated rows");
            shed += 1;
        }
    }
    assert!(delivered >= 2, "the shard kept serving around the stall ({delivered} delivered)");
    assert!(shed >= 1, "the occupancy bound shed something during the stall ({shed} shed)");
    let t = rt.telemetry();
    assert_eq!(t.per_shard[0].shed_jobs, shed as u64);
    assert_eq!(t.per_shard[0].shed_packets, (shed * hs.len()) as u64);
    assert!(t.per_shard[0].stalls_detected >= 1, "the 80ms stall was detected");
    assert!(t.total_shed_packets() >= 1 && t.to_json().contains("\"shed_packets\""));
}

/// A delayed snapshot publish slows the control plane only: the
/// dataplane keeps serving the old version meanwhile, and the update
/// becomes visible (at the bumped version) once the publish lands.
#[test]
fn delayed_publish_slows_control_plane_not_dataplane() {
    let plan = FaultPlan::new(2).publish_delay(0, Duration::from_millis(60));
    let rt = Runtime::with_control(Scan(rules()), &fault_config(2, Arc::new(plan)));
    let handle = rt.handle();
    let h = HeaderValues::new()
        .with(MatchFieldKind::InPort, 1)
        .with(MatchFieldKind::Ipv4Dst, 0x0A01_0203u128);
    assert_eq!(rt.classify_batch(std::slice::from_ref(&h)).rows, vec![Some(1)]);
    let t0 = Instant::now();
    let publisher = std::thread::spawn(move || handle.add_rule(route(9, 1, 0x0A01_0200, 24, 9)));
    // While the publish sleeps, the dataplane serves version 1 answers.
    // (The publish can land mid-batch, so gate the row assertion on the
    // version each packet actually reports.)
    while rt.version() == 1 {
        let out = rt.classify_batch(std::slice::from_ref(&h));
        if out.versions == [1] {
            assert_eq!(out.rows, vec![Some(1)], "old table serves during the delayed publish");
        }
        assert!(t0.elapsed() < Duration::from_secs(10), "publish never landed");
    }
    let (_, v) = publisher.join().unwrap().unwrap();
    assert_eq!(v, 2);
    assert!(t0.elapsed() >= Duration::from_millis(50), "the publish really was delayed");
    assert_eq!(
        rt.classify_batch(std::slice::from_ref(&h)).rows,
        vec![Some(9)],
        "the delayed update is visible after it lands"
    );
}

// ---- durable control plane ------------------------------------------

/// One full durable chaos round: add/remove churn and traffic under a
/// [`FaultPlan::seeded_control`] schedule (publish storms racing shard
/// respawns, torn WAL appends, corrupted checkpoints, maybe a
/// publish-triggered escalation), plus one *forced* runtime-level
/// escalation between the churn phases. Asserts the per-version oracle
/// over every delivered packet, bounded waits throughout, and —
/// after shutdown — that `decode(newest valid snapshot) + replay(WAL
/// tail)` reproduces the live master byte-for-byte. Factored out so the
/// nightly soak can spin it on fresh seeds.
fn durable_chaos_round(seed: u64, dir: &Path) {
    let shards = 3;
    let plan = Arc::new(FaultPlan::seeded_control(seed, shards, 40));
    let durability = DurabilityConfig {
        checkpoint_every: 4,
        quiesce_timeout: Duration::from_millis(100),
        ..DurabilityConfig::new(dir)
    };
    let (rt, boot) = Runtime::with_durability(
        Scan(rules()),
        &fault_config(shards, Arc::clone(&plan)),
        &durability,
    )
    .expect("durable boot");
    assert!(!boot.restored, "a fresh store boots from the fallback (seed {seed:#x})");
    let handle = rt.handle();
    // Version → rule set at that version. Entries are pushed *before*
    // the mutation publishes and popped again if the write-ahead append
    // rejected it (both under the log lock), so a racing worker can
    // never serve a version the log lacks. Storm republishes carry the
    // new table, and a restore republishes nothing when the recovered
    // bytes equal the live master's, so "last entry at or below the
    // served version" is exact.
    let log = Mutex::new(vec![(1u64, rules())]);
    let hs = headers(128);
    std::thread::scope(|scope| {
        let churn = scope.spawn(|| {
            let mut rs = rules();
            let mut prev = 1u64;
            for phase in 0..2u32 {
                for round in 0..14u32 {
                    let n = phase * 14 + round;
                    let rule = route(100 + n, 1 + u128::from(n % 4), 0, 0, 90 + n);
                    {
                        let mut lg = log.lock().unwrap();
                        rs.push(rule.clone());
                        lg.push((prev + 1, rs.clone()));
                        match handle.add_rule(rule) {
                            Ok((_, v)) => prev = v,
                            Err(_) => {
                                // A torn WAL append rejected the update
                                // before the master moved: live table
                                // and log agree it never happened.
                                lg.pop();
                                rs.pop();
                            }
                        }
                    }
                    if n % 3 == 0 {
                        let mut lg = log.lock().unwrap();
                        let dropped = rs.clone();
                        rs.retain(|r| r.id != 100 + n);
                        if rs.len() < dropped.len() {
                            lg.push((prev + 1, rs.clone()));
                            match handle.remove_rule(100 + n) {
                                Some((_, v)) => prev = v,
                                None => {
                                    lg.pop();
                                    rs = dropped;
                                }
                            }
                        }
                    }
                    std::thread::yield_now();
                }
                if phase == 0 {
                    // The forced runtime-level escalation, mid-churn:
                    // tear the dataplane down, cold-start from the
                    // store, keep serving. (The plan may have triggered
                    // more restores already; wait for one *further*
                    // epoch.)
                    let epoch = handle.run_epoch();
                    assert!(handle.force_restore(), "durable runtimes accept force_restore");
                    let deadline = Instant::now() + Duration::from_secs(10);
                    while handle.run_epoch() <= epoch {
                        assert!(Instant::now() < deadline, "forced restore never completed");
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        });
        for round in 0..120 {
            let out = must_complete(rt.submit(hs.clone().into()), "durable chaos batch");
            let snapshot_log = log.lock().unwrap().clone();
            for (i, (&row, &version)) in out.rows.iter().zip(&out.versions).enumerate() {
                if version == UNSERVED_VERSION {
                    // Explicitly unserved (a job re-routed past its
                    // requeue budget during a crash/restore race) —
                    // never a fabricated answer.
                    assert!(row.is_none(), "round {round}: unserved packets carry no rows");
                    continue;
                }
                let rules_at = &snapshot_log
                    .iter()
                    .rev()
                    .find(|(v, _)| *v <= version)
                    .expect("every served version has a log entry")
                    .1;
                assert_eq!(
                    row,
                    reference_classify(rules_at, &hs[i]),
                    "round {round}, packet {i} at version {version} (seed {seed:#x})"
                );
            }
        }
        churn.join().unwrap();
    });

    let live = rt.master_image().expect("durable runtime exposes its master image");
    let t = rt.telemetry();
    let d = t.durability.expect("durable telemetry present");
    assert!(d.runtime_restores >= 1, "the forced escalation restored the runtime (seed {seed:#x})");
    assert_eq!(d.restore_fallbacks, 0, "every restore found a usable checkpoint (seed {seed:#x})");
    assert!(d.wal_appends >= 1 && d.checkpoints >= 1, "the store saw traffic (seed {seed:#x})");
    rt.shutdown();
    let replayed = replayed_image(dir).expect("the store restores (seed issue otherwise)");
    assert_eq!(
        replayed, live,
        "snapshot + WAL replay reproduces the live master byte-for-byte (seed {seed:#x})"
    );
}

/// The durable acceptance run: publish storms race shard respawns, WAL
/// appends tear, checkpoints corrupt, and a forced whole-runtime
/// escalation lands mid-churn — the oracle and the bytes must hold.
#[test]
fn durable_chaos_storms_and_escalation_hold_the_oracle_and_the_bytes() {
    let seed = resolve_seed(0x5EED_CAFE);
    let plan = FaultPlan::seeded_control(seed, 3, 40);
    assert!(plan.planned_storms() >= 1, "the plan storms a publish into the respawn races");
    assert!(plan.planned_panics() >= 1 && plan.planned_stalls() >= 1);
    assert!(plan.planned_wal_cuts() >= 1 && plan.planned_checkpoint_faults() >= 1);
    let dir = temp_store("acceptance");
    durable_chaos_round(seed, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn write-ahead append must reject the update — version
/// unchanged, master unchanged — and the healed log must accept a
/// retry; afterwards the store still replays to exactly the live table.
#[test]
fn torn_wal_append_rejects_update_and_keeps_log_and_table_agreeing() {
    let dir = temp_store("wal-cut");
    let plan = FaultPlan::new(1).wal_cut(1, 9); // tear the 2nd append mid-header
    let (rt, _) = Runtime::with_durability(
        Scan(rules()),
        &fault_config(1, Arc::new(plan)),
        &DurabilityConfig { checkpoint_every: 1000, ..DurabilityConfig::new(&dir) },
    )
    .unwrap();
    let (_, v) = rt.add_rule(route(50, 1, 0x1400_0000, 8, 50)).unwrap();
    assert_eq!(v, 2);
    let err = rt.add_rule(route(51, 1, 0x1500_0000, 8, 51)).unwrap_err();
    assert!(
        format!("{err:?}").contains("write-ahead append failed"),
        "the rejection names its cause: {err:?}"
    );
    assert_eq!(rt.version(), 2, "a rejected update publishes nothing");
    let h = HeaderValues::new()
        .with(MatchFieldKind::InPort, 1)
        .with(MatchFieldKind::Ipv4Dst, 0x1501_0000u128);
    assert_eq!(rt.classify_rows(std::slice::from_ref(&h)), vec![None], "rule 51 never landed");
    let d = rt.telemetry().durability.unwrap();
    assert_eq!((d.wal_appends, d.wal_append_failures), (1, 1));
    // The log self-healed to a record boundary: the same rule retries
    // cleanly.
    let (_, v) = rt.add_rule(route(51, 1, 0x1500_0000, 8, 51)).unwrap();
    assert_eq!(v, 3);
    assert_eq!(rt.classify_rows(std::slice::from_ref(&h)), vec![Some(51)]);
    let live = rt.master_image().unwrap();
    rt.shutdown();
    assert_eq!(replayed_image(&dir).unwrap(), live, "replay agrees with the live table");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn checkpoint is skipped at restore: recovery falls back to the
/// previous durable snapshot and replays the longer WAL tail — ending
/// at the same state.
#[test]
fn torn_checkpoint_falls_back_to_previous_snapshot_plus_longer_replay() {
    let dir = temp_store("torn-ckpt");
    let live;
    {
        // Checkpoint cadence 2: adds 1-2 → checkpoint #0 (durable),
        // adds 3-4 → checkpoint #1 (torn after 40 bytes).
        let plan = FaultPlan::new(1).torn_checkpoint(1, 40);
        let (rt, boot) = Runtime::with_durability(
            Scan(rules()),
            &fault_config(1, Arc::new(plan)),
            &DurabilityConfig { checkpoint_every: 2, ..DurabilityConfig::new(&dir) },
        )
        .unwrap();
        assert!(!boot.restored);
        for n in 0..4u32 {
            rt.add_rule(route(60 + n, 1, 0x3C00_0000 + (u128::from(n) << 8), 32, 60 + n)).unwrap();
        }
        let d = rt.telemetry().durability.unwrap();
        assert_eq!(d.checkpoints, 2, "both cadence checkpoints were attempted");
        live = rt.master_image().unwrap();
        rt.shutdown();
    }
    let (rt, report) = Runtime::with_durability(
        Scan(Vec::new()),
        &RuntimeConfig {
            shards: 1,
            ring_capacity: 8,
            cache_capacity: 0,
            pin_workers: false,
            ..RuntimeConfig::default()
        },
        &DurabilityConfig { checkpoint_every: 2, ..DurabilityConfig::new(&dir) },
    )
    .unwrap();
    assert!(report.restored);
    assert_eq!(report.version, 2, "the torn v3 was skipped; v2 is the newest valid snapshot");
    assert_eq!(report.skipped_checkpoints, 1);
    assert_eq!(report.wal_replayed, 2, "the two post-v2 adds replay from the WAL");
    assert_eq!(rt.master_image().unwrap(), live, "fallback + longer replay = the same bytes");
    let h = HeaderValues::new()
        .with(MatchFieldKind::InPort, 1)
        .with(MatchFieldKind::Ipv4Dst, 0x3C00_0300u128);
    assert_eq!(rt.classify_rows(std::slice::from_ref(&h)), vec![Some(63)], "last add survived");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Ticket::wait_timeout` across a runtime restore: a batch half-served
/// when a shard wedges reports `Partial` with `missing` equal to
/// exactly the wedged shard's packets, and the restored runtime serves
/// the re-submitted batch in full.
#[test]
fn partial_wait_counts_missing_exactly_across_a_runtime_restore() {
    let dir = temp_store("partial");
    let shards = 2;
    let plan = FaultPlan::new(shards).stall(0, 0, Duration::from_millis(400));
    let (rt, _) = Runtime::with_durability(
        Scan(rules()),
        &fault_config(shards, Arc::new(plan)),
        &DurabilityConfig {
            quiesce_timeout: Duration::from_millis(25),
            ..DurabilityConfig::new(&dir)
        },
    )
    .unwrap();
    let hs = headers(64);
    let on_wedged: usize = hs.iter().filter(|h| shard_of(h, shards) == 0).count();
    assert!(on_wedged > 0 && on_wedged < hs.len(), "the batch spans both shards");
    let ticket = rt.submit(hs.clone().into());
    match ticket.wait_timeout(Duration::from_millis(100)) {
        WaitOutcome::Partial { batch, missing } => {
            assert_eq!(missing, on_wedged, "missing = exactly the wedged shard's packets");
            for (i, h) in hs.iter().enumerate() {
                if shard_of(h, shards) == 0 {
                    assert_eq!(batch.versions[i], UNSERVED_VERSION, "packet {i} still pending");
                    assert!(batch.rows[i].is_none(), "pending packets carry no rows");
                } else {
                    assert_eq!(batch.rows[i], reference_classify(&rules(), h), "packet {i}");
                }
            }
        }
        other => panic!("a wedged shard must yield Partial, got {other:?}"),
    }
    // Restore while the shard is still wedged: the bounded quiesce wait
    // expires, the worker is abandoned as a zombie, and the runtime
    // comes back whole on a fresh epoch.
    assert!(rt.force_restore());
    wait_epoch(&rt, 1);
    let out = must_complete(rt.submit(hs.clone().into()), "post-restore batch");
    assert!(out.fully_delivered(), "the restored runtime serves the batch in full");
    let want: Vec<Option<u32>> = hs.iter().map(|h| reference_classify(&rules(), h)).collect();
    assert_eq!(out.rows, want);
    let t = rt.telemetry();
    assert_eq!(t.ticket_timeouts, 1, "the partial wait was counted");
    assert_eq!(t.durability.unwrap().runtime_restores, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `DeadlineShed` expiry during restore downtime: jobs stranded behind
/// a wedge while the runtime restores are shed as unserved by the
/// zombie's drain — explicitly, with their tickets resolving — and the
/// fresh epoch serves new traffic inside the deadline again.
#[test]
fn deadline_sheds_expire_during_restore_downtime_and_tickets_resolve() {
    let dir = temp_store("deadline");
    let plan = FaultPlan::new(1).stall(0, 0, Duration::from_millis(300));
    let (rt, _) = Runtime::with_durability(
        Scan(rules()),
        &RuntimeConfig {
            cache_capacity: 0,
            admission: AdmissionPolicy::DeadlineShed { deadline: Duration::from_millis(40) },
            ..fault_config(1, Arc::new(plan))
        },
        &DurabilityConfig {
            quiesce_timeout: Duration::from_millis(20),
            ..DurabilityConfig::new(&dir)
        },
    )
    .unwrap();
    let hs = headers(8);
    // A: picked up inside its deadline, then wedged 300ms — expired by
    // the time the worker would serve it.
    let a = rt.submit(hs.clone().into());
    std::thread::sleep(Duration::from_millis(30));
    // B: queued behind the wedge; its 40ms deadline expires during the
    // restore downtime, in a ring only the zombie still drains.
    let b = rt.submit(hs.clone().into());
    assert!(rt.force_restore());
    wait_epoch(&rt, 1);
    let out_a = must_complete(a, "wedged batch");
    assert_eq!(out_a.delivered_count(), 0, "A expired during the wedge: shed, not served late");
    let out_b = must_complete(b, "stranded batch");
    assert_eq!(out_b.delivered_count(), 0, "B expired during the downtime: shed, not served late");
    assert!(out_b.versions.iter().all(|&v| v == UNSERVED_VERSION));
    assert!(out_b.rows.iter().all(Option::is_none), "shed packets carry no fabricated rows");
    // The fresh epoch meets the deadline again.
    let out = must_complete(rt.submit(hs.clone().into()), "post-restore batch");
    assert!(out.fully_delivered(), "the restored shard serves inside the deadline");
    let t = rt.telemetry();
    assert!(
        t.per_shard[0].deadline_shed_packets >= (2 * hs.len()) as u64,
        "both expired batches were counted as deadline sheds"
    );
    assert_eq!(t.durability.unwrap().runtime_restores, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Worker crashes racing a forced restore: orphans are re-admitted
/// (counting their requeue budget), nothing is lost, and every ticket
/// resolves.
#[test]
fn crashes_racing_a_forced_restore_strand_no_ticket() {
    let dir = temp_store("crash-restore");
    let plan = FaultPlan::new(2).worker_panic(0, 1).worker_panic(1, 3);
    let (rt, _) = Runtime::with_durability(
        Scan(rules()),
        &fault_config(2, Arc::new(plan)),
        &DurabilityConfig {
            quiesce_timeout: Duration::from_millis(50),
            ..DurabilityConfig::new(&dir)
        },
    )
    .unwrap();
    let hs = headers(64);
    for round in 0..40 {
        if round == 10 {
            assert!(rt.force_restore());
        }
        let out = must_complete(rt.submit(hs.clone().into()), "crash/restore batch");
        assert!(out.fully_delivered(), "round {round}: a single crash re-routes, never loses");
    }
    wait_epoch(&rt, 1);
    let t = rt.telemetry();
    assert_eq!(t.total_panics(), 2, "both planned panics fired");
    assert!(t.durability.unwrap().runtime_restores >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cache telemetry must be cumulative across worker generations: a
/// respawn hands the shard a *fresh* cache whose internal stats restart
/// at zero, and the supervisor folds the dead generation's totals into
/// a baseline first. Regression test for the counter-amnesia bug where
/// hits/misses/insertions visibly went backwards after every panic.
#[test]
fn cache_counters_stay_monotone_across_worker_respawns() {
    let plan = FaultPlan::new(1).worker_panic(0, 3).worker_panic(0, 9);
    let rt = Runtime::with_control(Scan(rules()), &fault_config(1, Arc::new(plan)));
    let hs = headers(64);
    let mut last = (0u64, 0u64, 0u64);
    for round in 0..30 {
        let out = must_complete(rt.submit(hs.clone().into()), "monotonicity batch");
        assert!(out.fully_delivered(), "round {round}: a crash re-routes, never loses");
        let cache = rt.telemetry().per_shard[0].cache;
        let now = (cache.hits, cache.misses, cache.insertions);
        assert!(
            now.0 >= last.0 && now.1 >= last.1 && now.2 >= last.2,
            "round {round}: cumulative cache counters went backwards: {last:?} -> {now:?}"
        );
        last = now;
    }
    let t = rt.telemetry();
    assert_eq!(t.total_panics(), 2, "both planned panics fired");
    assert!(t.per_shard[0].restarts >= 2, "both crashes were respawned");
    let lookups = last.0 + last.1;
    assert!(
        lookups >= (30 * hs.len()) as u64,
        "cumulative lookups span all generations: {lookups} < {}",
        30 * hs.len()
    );
}

/// The flight recorder is crash forensics: after injected panics the
/// drained timeline must contain the whole story — submits, serves,
/// the panics themselves, and the supervisor's respawns — and the
/// trace telemetry block must account for it.
#[test]
fn flight_recorder_captures_panic_and_respawn_forensics() {
    use mtl_runtime::trace::EventKind;
    let plan = FaultPlan::new(2).worker_panic(0, 2).worker_panic(1, 5);
    let rt = Runtime::with_control(Scan(rules()), &fault_config(2, Arc::new(plan)));
    let hs = headers(64);
    for _ in 0..12 {
        let _ = must_complete(rt.submit(hs.clone().into()), "forensics batch");
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while rt.telemetry().total_restarts() < 2 {
        assert!(Instant::now() < deadline, "respawns never landed");
        std::thread::sleep(Duration::from_millis(1));
    }
    let events = rt.trace_events();
    let count = |kind: EventKind| events.iter().filter(|e| e.kind == kind).count();
    assert!(count(EventKind::Boot) >= 1, "boot is on the timeline");
    assert!(count(EventKind::BatchSubmit) > 0, "admissions are on the timeline");
    assert!(count(EventKind::BatchServe) > 0, "serves are on the timeline");
    assert_eq!(count(EventKind::WorkerPanic), 2, "both injected panics were recorded");
    assert!(count(EventKind::WorkerRespawn) >= 2, "both respawns were recorded");
    assert!(
        events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
        "the drained timeline is time-sorted"
    );
    let trace = rt.telemetry().trace.expect("recorder is on by default");
    assert!(trace.events_recorded >= events.len() as u64);
    assert_eq!(trace.lanes, 2 + 3, "shards + control/durability/supervisor lanes");
}

/// The automatic rung of the escalation ladder: a restart storm (> K
/// respawns inside the window) must escalate to a whole-runtime restore
/// without any explicit `force_restore`.
#[test]
fn restart_storm_escalates_to_runtime_restore_automatically() {
    let dir = temp_store("storm");
    let mut plan = FaultPlan::new(1);
    for step in 0..6 {
        plan = plan.worker_panic(0, step);
    }
    let (rt, _) = Runtime::with_durability(
        Scan(rules()),
        &RuntimeConfig { cache_capacity: 0, ..fault_config(1, Arc::new(plan)) },
        &DurabilityConfig {
            escalate_after: 2,
            escalate_window: Duration::from_secs(30),
            quiesce_timeout: Duration::from_millis(50),
            ..DurabilityConfig::new(&dir)
        },
    )
    .unwrap();
    let hs = headers(16);
    let deadline = Instant::now() + Duration::from_secs(10);
    // Each batch feeds the panic schedule; every ticket still resolves
    // (possibly unserved once a job exhausts its requeue budget). The
    // third respawn inside the window trips the escalation.
    while rt.run_epoch() == 0 {
        assert!(Instant::now() < deadline, "the restart storm never escalated");
        let _ = rt.submit(hs.clone().into()).wait_timeout(Duration::from_secs(30));
    }
    let out = must_complete(rt.submit(hs.clone().into()), "post-escalation batch");
    assert!(out.fully_delivered(), "the restored runtime serves again");
    let t = rt.telemetry();
    assert!(t.total_restarts() >= 3, "the storm was real");
    assert!(t.durability.unwrap().runtime_restores >= 1, "and it escalated");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- hostile disk (injected storage faults) -------------------------

/// A fault-free runtime config for the hostile-disk tests, where the
/// adversary is the storage layer rather than the fault plan.
fn plain_config(shards: usize) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        ring_capacity: 8,
        cache_capacity: 0,
        pin_workers: false,
        ..RuntimeConfig::default()
    }
}

/// The largest WAL frame any of this suite's `route` rules can produce
/// (payload + record header) — the "small writes still fit" side of the
/// ENOSPC geometry.
fn frame_ceiling(rules: &[Rule]) -> usize {
    rules
        .iter()
        .map(|r| WalOp::Add { kind: FilterKind::Routing, rule: r.clone() }.encode().len())
        .max()
        .expect("at least one rule")
        + mtl_persist::wal::RECORD_HEADER
}

/// ENOSPC on every checkpoint-sized write: the runtime must *degrade*,
/// not error — WAL-only serving, counted in telemetry — and return to
/// full durability once the disk heals, with the store still replaying
/// to the live master byte-for-byte.
#[test]
fn enospc_checkpoints_degrade_to_wal_only_and_heal() {
    let fs = Arc::new(FaultFs::seeded(resolve_seed(0xD15C_Fa11)));
    let dir = PathBuf::from("/faultfs/enospc");
    let durability = DurabilityConfig {
        checkpoint_every: 2,
        storage: Some(Arc::<FaultFs>::clone(&fs) as Arc<dyn Storage>),
        ..DurabilityConfig::new(&dir)
    };
    let (rt, boot) =
        Runtime::with_durability(Scan(rules()), &plain_config(1), &durability).unwrap();
    assert!(!boot.restored, "fresh in-memory store boots from the fallback");

    // Arm the cap *between* the boot image size and the largest WAL
    // frame: every checkpoint from here on hits ENOSPC mid-write, every
    // append still fits. (The table only grows below, and the on-disk
    // checkpoint carries container overhead on top of the raw image, so
    // the boot image length is a safe floor.)
    let adds: Vec<Rule> =
        (0..6u32).map(|n| route(200 + n, 1, 0x3000_0000 + (u128::from(n) << 8), 32, n)).collect();
    let cap = Scan(rules()).encode_image().len();
    assert!(
        frame_ceiling(&adds) < cap,
        "test geometry: WAL frames must fit under the checkpoint-sized cap"
    );
    fs.set_write_cap(Some(cap));

    // Four adds = two failed cadence checkpoints; the control plane
    // keeps accepting updates and the dataplane keeps classifying.
    for rule in &adds[..4] {
        rt.add_rule(rule.clone()).expect("WAL-only degraded mode still accepts updates");
    }
    let h = HeaderValues::new()
        .with(MatchFieldKind::InPort, 1)
        .with(MatchFieldKind::Ipv4Dst, 0x3000_0100u128);
    assert_eq!(rt.classify_rows(std::slice::from_ref(&h)), vec![Some(201)], "still classifying");
    let d = rt.telemetry().durability.unwrap();
    assert!(d.checkpoint_failures >= 2, "both cadence checkpoints hit ENOSPC");
    assert!(d.degraded, "the runtime reports WAL-only degraded mode");
    assert_eq!(d.degraded_episodes, 1, "one continuous episode, not one per failure");
    assert_eq!(d.wal_appends, 4, "every update was still write-ahead logged");
    assert!(fs.counters().enospc_hits >= 2, "the faults came from the IO layer itself");

    // Disk heals: the next cadence checkpoint succeeds and ends the
    // episode.
    fs.heal();
    for rule in &adds[4..] {
        rt.add_rule(rule.clone()).unwrap();
    }
    let d = rt.telemetry().durability.unwrap();
    assert!(!d.degraded, "a durable checkpoint ended the degraded episode");
    assert_eq!(d.degraded_episodes, 1);
    assert!(d.checkpoints >= 1, "the post-heal cadence checkpoint landed");

    let live = rt.master_image().unwrap();
    rt.shutdown();
    let replayed = replayed_image_with(&dir, fs).expect("the healed store restores");
    assert_eq!(replayed, live, "no durably-acked rule was lost across the ENOSPC episode");
}

/// Per-mille fsync failures from the storage layer: a failed WAL fsync
/// must reject its update (the bytes never became durable), the live
/// table and the log must stay in agreement, and the store must still
/// replay to the live master.
#[test]
fn injected_fsync_failures_reject_updates_and_keep_log_and_table_agreeing() {
    let seed = resolve_seed(0xF5C_FA11);
    let fs = Arc::new(FaultFs::seeded(seed));
    let dir = PathBuf::from("/faultfs/fsync");
    let durability = DurabilityConfig {
        checkpoint_every: 1000, // WAL-only: isolate the append path
        storage: Some(Arc::<FaultFs>::clone(&fs) as Arc<dyn Storage>),
        ..DurabilityConfig::new(&dir)
    };
    let (rt, _) = Runtime::with_durability(Scan(rules()), &plain_config(1), &durability).unwrap();
    fs.set_fault_rates(0, 300); // ~30% of fsyncs fail
    let mut acked = Vec::new();
    let mut rejected = 0u32;
    for n in 0..40u32 {
        let rule = route(300 + n, 1, 0x4000_0000 + (u128::from(n) << 8), 32, n);
        match rt.add_rule(rule) {
            Ok(_) => acked.push(300 + n),
            Err(_) => rejected += 1,
        }
    }
    assert!(rejected >= 1, "the fault rate fired at least once (seed {seed:#x})");
    assert!(!acked.is_empty(), "and at least one add got through (seed {seed:#x})");
    let d = rt.telemetry().durability.unwrap();
    assert_eq!(d.wal_appends, acked.len() as u64);
    assert_eq!(d.wal_append_failures, u64::from(rejected));
    let live = rt.master_image().unwrap();
    rt.shutdown();
    fs.heal();
    let replayed = replayed_image_with(&dir, fs).expect("store restores");
    assert_eq!(
        replayed, live,
        "acked updates are durable, rejected ones left no trace (seed {seed:#x})"
    );
}

/// A compaction + GC soak on the real filesystem: continuous churn with
/// small segments and a tight checkpoint cadence must keep the store
/// directory bounded (segments rotated *and* collected, ≤ K snapshots)
/// while never losing a durably-acked rule.
#[test]
fn gc_soak_bounds_the_store_directory_and_loses_no_acked_rule() {
    let dir = temp_store("gc-soak");
    let durability = DurabilityConfig {
        checkpoint_every: 4,
        wal_segment_bytes: 512,
        retain_snapshots: 2,
        ..DurabilityConfig::new(&dir)
    };
    let (rt, _) = Runtime::with_durability(Scan(rules()), &plain_config(1), &durability).unwrap();
    for n in 0..200u32 {
        rt.add_rule(route(1000 + n, 1 + u128::from(n % 4), 0x5000_0000 + u128::from(n), 32, n))
            .unwrap();
        if n % 3 == 0 {
            rt.remove_rule(1000 + n).expect("just added");
        }
    }
    let d = rt.telemetry().durability.unwrap();
    assert!(d.segments_rotated >= 4, "512-byte segments rotate under 200 ops");
    assert!(d.gc_runs >= 1 && d.gc_segments_removed >= 1, "GC collected rotated-out segments");
    assert!(
        d.wal_segments <= 6,
        "live segments stay near the retained watermark ({} on disk)",
        d.wal_segments
    );
    assert_eq!(d.snapshots, 2, "exactly K snapshot generations retained");
    assert!(
        d.wal_bytes <= 8 * 512,
        "WAL bytes bounded by the rotation/retention policy ({} bytes)",
        d.wal_bytes
    );
    let live = rt.master_image().unwrap();
    rt.shutdown();
    let replayed = replayed_image(&dir).expect("the GC'd store restores");
    assert_eq!(replayed, live, "compaction + GC never loses a durably-acked rule");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every snapshot lost (all images corrupt or deleted) with the WAL
/// intact: boot must fall back to replaying the *entire* log onto the
/// fallback table instead of silently dropping acked rules.
#[test]
fn boot_with_no_valid_snapshot_replays_the_whole_wal_onto_the_fallback() {
    let dir = temp_store("wal-only-boot");
    let live;
    {
        let durability = DurabilityConfig { checkpoint_every: 1000, ..DurabilityConfig::new(&dir) };
        let (rt, _) =
            Runtime::with_durability(Scan(rules()), &plain_config(1), &durability).unwrap();
        for n in 0..5u32 {
            rt.add_rule(route(400 + n, 1, 0x6000_0000 + (u128::from(n) << 8), 32, n)).unwrap();
        }
        live = rt.master_image().unwrap();
        rt.shutdown();
    }
    // A hostile disk ate every snapshot; the log survived.
    let mut removed = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.file_name().is_some_and(|n| n.to_string_lossy().starts_with("snapshot-")) {
            std::fs::remove_file(&path).unwrap();
            removed += 1;
        }
    }
    assert!(removed >= 1, "the store had checkpoints to lose");
    let durability = DurabilityConfig { checkpoint_every: 1000, ..DurabilityConfig::new(&dir) };
    let (rt, report) =
        Runtime::with_durability(Scan(rules()), &plain_config(1), &durability).unwrap();
    assert!(!report.restored, "no snapshot to restore from");
    assert_eq!(report.wal_replayed, 5, "every logged add replayed onto the fallback");
    assert_eq!(
        rt.master_image().unwrap(),
        live,
        "fallback + full WAL replay reproduces the pre-crash master"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The nightly soak: fresh-seed durable chaos rounds for
/// `CHAOS_SOAK_SECS` seconds (default 20; the nightly leg runs minutes).
/// Every round's seed is printed before it runs, so a failure is
/// replayable exactly with `CHAOS_SEED=<seed>` (which pins the base
/// seed, making iteration 0 the failing round). `#[ignore]`d to keep
/// `cargo test` fast; CI runs it with `--ignored --nocapture`.
#[test]
#[ignore = "minutes-long randomized soak; run with --ignored (nightly CI leg)"]
fn chaos_soak() {
    let secs: u64 =
        std::env::var("CHAOS_SOAK_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(20);
    let wallclock = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let base = resolve_seed(wallclock ^ wallclock.rotate_left(31));
    eprintln!("chaos soak: {secs}s budget, base seed {base:#018x} (pin with CHAOS_SEED)");
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut iterations = 0u64;
    loop {
        let seed = base.wrapping_add(iterations.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        eprintln!("chaos soak iteration {iterations}: CHAOS_SEED={seed:#x}");
        let dir = temp_store(&format!("soak-{iterations}"));
        durable_chaos_round(seed, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        iterations += 1;
        if Instant::now() >= deadline {
            break;
        }
    }
    eprintln!("chaos soak: {iterations} iterations clean");
}
