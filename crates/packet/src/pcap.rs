//! Classic libpcap capture ingest.
//!
//! Real traffic lives in `.pcap` files, so the runtime and cache
//! experiments need a path from a capture to the line-oriented replay
//! format of [`crate::trace`]. This module reads the **classic libpcap**
//! container (the `tcpdump -w` format — not pcapng): a 24-byte global
//! header whose magic encodes byte order and timestamp resolution,
//! followed by length-prefixed packet records.
//!
//! ```text
//! magic (4)  0xa1b2c3d4 = µs timestamps, 0xa1b23c4d = ns;
//!            byte-swapped values mean the file is opposite-endian
//! version (2+2), thiszone (4), sigfigs (4), snaplen (4), linktype (4)
//! per record: ts_sec (4), ts_frac (4), incl_len (4), orig_len (4),
//!             incl_len bytes of frame data
//! ```
//!
//! Only linktype 1 (`LINKTYPE_ETHERNET`) is accepted — that is what the
//! workspace's parser ([`crate::extract::parse_packet`]) walks.
//! Malformed input is never papered over: unknown magics, wrong
//! linktypes, truncated records, records whose captured length exceeds
//! the original length, and frames the Ethernet parser rejects all
//! surface as [`io::ErrorKind::InvalidData`] errors naming the offending
//! record. `repro -- trace convert --pcap FILE` drives
//! [`pcap_to_trace_file`] from the command line.

use crate::extract::parse_packet;
use oflow::HeaderValues;
use std::io::{self, Read, Write};
use std::path::Path;

/// Classic pcap magic, microsecond timestamps, file-native byte order.
pub const MAGIC_MICROS: u32 = 0xa1b2_c3d4;
/// Classic pcap magic, nanosecond timestamps.
pub const MAGIC_NANOS: u32 = 0xa1b2_3c4d;
/// `LINKTYPE_ETHERNET` — the only link layer this reader accepts.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// Ceiling on one record's captured length: larger values are corrupt
/// length fields, not jumbo frames (64 KiB covers every Ethernet MTU).
const MAX_CAPTURED_LEN: u32 = 1 << 16;

/// How the reader must interpret the file's multi-byte integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ByteOrder {
    Little,
    Big,
}

impl ByteOrder {
    fn u32(self, bytes: [u8; 4]) -> u32 {
        match self {
            ByteOrder::Little => u32::from_le_bytes(bytes),
            ByteOrder::Big => u32::from_be_bytes(bytes),
        }
    }
}

/// One captured packet record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture timestamp, seconds part.
    pub ts_sec: u32,
    /// Capture timestamp, sub-second part in **nanoseconds** (µs files
    /// are scaled on read, so consumers see one unit).
    pub ts_nanos: u32,
    /// Original on-the-wire length (may exceed `frame.len()` when the
    /// capture was truncated by the snap length).
    pub orig_len: u32,
    /// The captured frame bytes.
    pub frame: Vec<u8>,
}

/// A parsed capture: the records plus the global-header facts consumers
/// care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcap {
    /// Snap length the capture was taken with.
    pub snaplen: u32,
    /// Whether timestamps were recorded with nanosecond resolution.
    pub nanosecond_timestamps: bool,
    /// The captured records, file order.
    pub records: Vec<PcapRecord>,
}

fn bad(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

/// Reads exactly `N` bytes, or reports which structure was truncated.
fn read_exact<const N: usize>(r: &mut impl Read, what: &str) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            bad(format!("truncated pcap: EOF inside {what}"))
        } else {
            e
        }
    })?;
    Ok(buf)
}

/// Parses a classic libpcap stream (both byte orders, µs and ns
/// timestamp resolution, linktype Ethernet).
///
/// # Errors
/// [`io::ErrorKind::InvalidData`] for unknown magics, non-Ethernet
/// linktypes, implausible or inconsistent record lengths and truncated
/// records; reader errors are propagated.
pub fn read_pcap(mut r: impl Read) -> io::Result<Pcap> {
    let magic_bytes: [u8; 4] = read_exact(&mut r, "the global header")?;
    let le = u32::from_le_bytes(magic_bytes);
    let be = u32::from_be_bytes(magic_bytes);
    let (order, nanos) = match (le, be) {
        (MAGIC_MICROS, _) => (ByteOrder::Little, false),
        (MAGIC_NANOS, _) => (ByteOrder::Little, true),
        (_, MAGIC_MICROS) => (ByteOrder::Big, false),
        (_, MAGIC_NANOS) => (ByteOrder::Big, true),
        _ => return Err(bad(format!("not a classic pcap file (magic {le:#010x})"))),
    };
    // version major/minor, thiszone, sigfigs: read and ignored (2.4 is
    // the only version ever emitted in practice).
    let _version_zone_sigfigs: [u8; 12] = read_exact(&mut r, "the global header")?;
    let snaplen = order.u32(read_exact(&mut r, "the global header")?);
    let linktype = order.u32(read_exact(&mut r, "the global header")?);
    if linktype != LINKTYPE_ETHERNET {
        return Err(bad(format!("unsupported linktype {linktype} (only Ethernet = 1)")));
    }

    let mut records = Vec::new();
    loop {
        // Record boundaries are the only legal EOF points.
        let mut first = [0u8; 4];
        let n = {
            let mut filled = 0;
            while filled < 4 {
                match r.read(&mut first[filled..])? {
                    0 => break,
                    k => filled += k,
                }
            }
            filled
        };
        if n == 0 {
            break;
        }
        if n < 4 {
            return Err(bad(format!("truncated pcap: EOF inside record {} header", records.len())));
        }
        let which = format!("record {} header", records.len());
        let ts_sec = order.u32(first);
        let ts_frac = order.u32(read_exact(&mut r, &which)?);
        let incl_len = order.u32(read_exact(&mut r, &which)?);
        let orig_len = order.u32(read_exact(&mut r, &which)?);
        if incl_len > MAX_CAPTURED_LEN {
            return Err(bad(format!(
                "record {}: captured length {incl_len} is implausible (corrupt length field?)",
                records.len()
            )));
        }
        if incl_len > orig_len {
            return Err(bad(format!(
                "record {}: captured length {incl_len} exceeds original length {orig_len}",
                records.len()
            )));
        }
        let mut frame = vec![0u8; incl_len as usize];
        r.read_exact(&mut frame).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                bad(format!("truncated pcap: EOF inside record {} data", records.len()))
            } else {
                e
            }
        })?;
        let ts_nanos = if nanos { ts_frac } else { ts_frac.saturating_mul(1000) };
        records.push(PcapRecord { ts_sec, ts_nanos, orig_len, frame });
    }
    Ok(Pcap { snaplen, nanosecond_timestamps: nanos, records })
}

/// [`read_pcap`] from a file path.
///
/// # Errors
/// Propagates file-open errors and [`read_pcap`]'s parse errors.
pub fn read_pcap_file(path: impl AsRef<Path>) -> io::Result<Pcap> {
    read_pcap(io::BufReader::new(std::fs::File::open(path)?))
}

/// Extracts OXM header values from every record via
/// [`crate::extract::parse_packet`], stamping `in_port` as the ingress
/// port (captures carry no port; classification rule sets key on one).
///
/// # Errors
/// [`io::ErrorKind::InvalidData`] naming the record whose frame the
/// Ethernet-upward parser rejects (e.g. a layer cut off by the snap
/// length).
pub fn pcap_headers(pcap: &Pcap, in_port: u32) -> io::Result<Vec<HeaderValues>> {
    pcap.records
        .iter()
        .enumerate()
        .map(|(i, rec)| {
            let pkt = parse_packet(&rec.frame)
                .map_err(|e| bad(format!("record {i}: malformed frame: {e}")))?;
            Ok(pkt.header_values(in_port))
        })
        .collect()
}

/// Converts a capture file into the [`crate::trace`] replay format: read,
/// extract, write. Returns the number of packets converted.
///
/// # Errors
/// Propagates [`read_pcap_file`] / [`pcap_headers`] errors and trace-file
/// write errors.
pub fn pcap_to_trace_file(
    pcap_path: impl AsRef<Path>,
    trace_path: impl AsRef<Path>,
    in_port: u32,
) -> io::Result<usize> {
    let pcap = read_pcap_file(pcap_path)?;
    let headers = pcap_headers(&pcap, in_port)?;
    crate::trace::write_trace_file(trace_path, &headers)?;
    Ok(headers.len())
}

/// Writes frames as a classic little-endian microsecond pcap (the
/// recording side — lets tests and tooling fabricate captures without an
/// external dependency). Timestamps are synthesised as one packet per
/// microsecond.
///
/// # Errors
/// Propagates writer errors.
pub fn write_pcap(mut w: impl Write, frames: &[Vec<u8>]) -> io::Result<()> {
    w.write_all(&MAGIC_MICROS.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // version major
    w.write_all(&4u16.to_le_bytes())?; // version minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&MAX_CAPTURED_LEN.to_le_bytes())?; // snaplen
    w.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
    for (i, frame) in frames.iter().enumerate() {
        let len = u32::try_from(frame.len()).map_err(|_| bad("frame exceeds u32 length"))?;
        w.write_all(&(i as u32).to_le_bytes())?; // ts_sec
        w.write_all(&(i as u32 % 1_000_000).to_le_bytes())?; // ts_usec
        w.write_all(&len.to_le_bytes())?; // incl_len
        w.write_all(&len.to_le_bytes())?; // orig_len
        w.write_all(frame)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MacAddr;
    use crate::builder::PacketBuilder;
    use oflow::MatchFieldKind;
    use std::net::Ipv4Addr;

    fn frames() -> Vec<Vec<u8>> {
        let s = MacAddr::from_u64(0x0200_0000_0001);
        let d = MacAddr::from_u64(0x0200_0000_0002);
        vec![
            PacketBuilder::ethernet(s, d)
                .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(192, 168, 1, 1))
                .tcp(4444, 80)
                .build(),
            PacketBuilder::ethernet(s, d)
                .vlan(100, 3)
                .ipv4(Ipv4Addr::new(10, 0, 0, 2), Ipv4Addr::new(192, 168, 1, 2))
                .udp(53, 53)
                .build(),
        ]
    }

    /// Byte-swaps a little-endian capture into a big-endian one (header
    /// and record-header words only; frame bytes are order-free).
    fn swap_to_big_endian(le: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(le.len());
        // magic, then 2x u16, then 4x u32.
        out.extend(le[0..4].iter().rev());
        out.extend(le[4..6].iter().rev());
        out.extend(le[6..8].iter().rev());
        for w in 0..4 {
            out.extend(le[8 + 4 * w..12 + 4 * w].iter().rev());
        }
        let mut off = 24;
        while off < le.len() {
            for w in 0..4 {
                out.extend(le[off + 4 * w..off + 4 * w + 4].iter().rev());
            }
            let incl = u32::from_le_bytes(le[off + 8..off + 12].try_into().unwrap()) as usize;
            off += 16;
            out.extend(&le[off..off + incl]);
            off += incl;
        }
        out
    }

    #[test]
    fn roundtrip_and_extraction() {
        let frames = frames();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &frames).unwrap();
        let pcap = read_pcap(buf.as_slice()).unwrap();
        assert_eq!(pcap.records.len(), 2);
        assert!(!pcap.nanosecond_timestamps);
        assert_eq!(pcap.records[0].frame, frames[0]);
        assert_eq!(pcap.records[1].orig_len as usize, frames[1].len());
        assert_eq!(pcap.records[1].ts_nanos, 1000, "µs scaled to ns");

        let headers = pcap_headers(&pcap, 7).unwrap();
        assert_eq!(headers.len(), 2);
        assert_eq!(headers[0].get(MatchFieldKind::InPort), Some(7));
        assert_eq!(headers[0].get(MatchFieldKind::TcpDst), Some(80));
        assert_eq!(headers[1].get(MatchFieldKind::VlanVid), Some(0x1000 | 100));
        assert_eq!(headers[1].get(MatchFieldKind::UdpDst), Some(53));
    }

    #[test]
    fn big_endian_captures_parse() {
        let mut le = Vec::new();
        write_pcap(&mut le, &frames()).unwrap();
        let be = swap_to_big_endian(&le);
        assert_ne!(le, be);
        let a = read_pcap(le.as_slice()).unwrap();
        let b = read_pcap(be.as_slice()).unwrap();
        assert_eq!(a, b, "byte order must not change what was captured");
    }

    #[test]
    fn nanosecond_magic_keeps_fractions() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &frames()).unwrap();
        buf[0..4].copy_from_slice(&MAGIC_NANOS.to_le_bytes());
        let pcap = read_pcap(buf.as_slice()).unwrap();
        assert!(pcap.nanosecond_timestamps);
        assert_eq!(pcap.records[1].ts_nanos, 1, "ns fractions are taken verbatim");
    }

    #[test]
    fn malformed_captures_are_errors() {
        let mut good = Vec::new();
        write_pcap(&mut good, &frames()).unwrap();

        // Unknown magic.
        let mut bad_magic = good.clone();
        bad_magic[0..4].copy_from_slice(&0xdead_beefu32.to_le_bytes());
        let err = read_pcap(bad_magic.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("magic"), "{err}");

        // Non-Ethernet linktype.
        let mut bad_link = good.clone();
        bad_link[20..24].copy_from_slice(&101u32.to_le_bytes()); // LINKTYPE_RAW
        let err = read_pcap(bad_link.as_slice()).unwrap_err();
        assert!(err.to_string().contains("linktype 101"), "{err}");

        // Truncated mid-record-data and mid-record-header.
        let err = read_pcap(&good[..good.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        let err = read_pcap(&good[..24 + 9]).unwrap_err();
        assert!(err.to_string().contains("record 0 header"), "{err}");

        // Captured length exceeding the original length.
        let mut inconsistent = good.clone();
        inconsistent[36..40].copy_from_slice(&1u32.to_le_bytes()); // orig_len of record 0
        let err = read_pcap(inconsistent.as_slice()).unwrap_err();
        assert!(err.to_string().contains("exceeds original"), "{err}");

        // Corrupt (huge) captured length.
        let mut corrupt = good;
        corrupt[32..36].copy_from_slice(&u32::MAX.to_le_bytes()); // incl_len of record 0
        corrupt[36..40].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_pcap(corrupt.as_slice()).unwrap_err();
        assert!(err.to_string().contains("implausible"), "{err}");
    }

    #[test]
    fn truncated_frame_surfaces_the_record_index() {
        // A record whose frame was cut mid-IPv4 by the snap length: the
        // container parses, extraction must name the record.
        let full = &frames()[0];
        let cut = full[..20].to_vec();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &[frames()[1].clone(), cut]).unwrap();
        let pcap = read_pcap(buf.as_slice()).unwrap();
        let err = pcap_headers(&pcap, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("record 1"), "{err}");
    }

    #[test]
    fn convert_writes_a_replayable_trace() {
        let dir = std::env::temp_dir().join("ofpacket-pcap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let pcap_path = dir.join(format!("c{}.pcap", std::process::id()));
        let trace_path = dir.join(format!("c{}.trace", std::process::id()));
        let mut bytes = Vec::new();
        write_pcap(&mut bytes, &frames()).unwrap();
        std::fs::write(&pcap_path, &bytes).unwrap();

        let n = pcap_to_trace_file(&pcap_path, &trace_path, 3).unwrap();
        assert_eq!(n, 2);
        let replayed = crate::trace::read_trace_file(&trace_path).unwrap();
        let direct = pcap_headers(&read_pcap(bytes.as_slice()).unwrap(), 3).unwrap();
        assert_eq!(replayed, direct, "trace roundtrip preserves extraction");
        std::fs::remove_file(&pcap_path).ok();
        std::fs::remove_file(&trace_path).ok();
    }

    #[test]
    fn empty_capture_is_fine() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &[]).unwrap();
        let pcap = read_pcap(buf.as_slice()).unwrap();
        assert!(pcap.records.is_empty());
        assert_eq!(pcap.snaplen, MAX_CAPTURED_LEN);
    }
}
