//! The Internet checksum (RFC 1071) used by IPv4, TCP, UDP and ICMP.

/// One's-complement sum of 16-bit words, folded to 16 bits. Odd trailing
/// bytes are padded with zero, per RFC 1071.
#[must_use]
pub fn ones_complement_sum(data: &[u8], initial: u32) -> u32 {
    let mut sum = initial;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum
}

/// Internet checksum over `data` (the one's complement of the folded sum).
#[must_use]
pub fn internet_checksum(data: &[u8]) -> u16 {
    !(ones_complement_sum(data, 0) as u16)
}

/// TCP/UDP checksum with the IPv4 pseudo-header.
#[must_use]
pub fn transport_checksum_v4(src: [u8; 4], dst: [u8; 4], proto: u8, segment: &[u8]) -> u16 {
    let mut pseudo = Vec::with_capacity(12 + segment.len());
    pseudo.extend_from_slice(&src);
    pseudo.extend_from_slice(&dst);
    pseudo.push(0);
    pseudo.push(proto);
    pseudo.extend_from_slice(&(segment.len() as u16).to_be_bytes());
    pseudo.extend_from_slice(segment);
    internet_checksum(&pseudo)
}

/// Verifies a checksummed region: the folded sum including the stored
/// checksum must be `0xFFFF`.
#[must_use]
pub fn verify(data: &[u8]) -> bool {
    ones_complement_sum(data, 0) == 0xFFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1071 §3 worked example.
    #[test]
    fn rfc1071_example() {
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data, 0), 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    #[test]
    fn odd_length_pads_zero() {
        assert_eq!(ones_complement_sum(&[0xAB], 0), 0xAB00);
    }

    #[test]
    fn verify_accepts_valid_region() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11];
        data.extend_from_slice(&[0, 0]); // checksum placeholder
        data.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let ck = internet_checksum(&data);
        data[10] = (ck >> 8) as u8;
        data[11] = (ck & 0xFF) as u8;
        assert!(verify(&data));
        data[0] ^= 1;
        assert!(!verify(&data));
    }

    #[test]
    fn empty_data_checksums_to_all_ones() {
        assert_eq!(internet_checksum(&[]), 0xFFFF);
        assert!(ones_complement_sum(&[], 0) == 0);
    }

    #[test]
    fn pseudo_header_changes_transport_checksum() {
        let seg = [0u8; 8];
        let a = transport_checksum_v4([10, 0, 0, 1], [10, 0, 0, 2], 17, &seg);
        let b = transport_checksum_v4([10, 0, 0, 1], [10, 0, 0, 3], 17, &seg);
        assert_ne!(a, b);
    }
}
