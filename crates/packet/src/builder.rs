//! Layered packet construction.
//!
//! [`PacketBuilder`] assembles a frame from L2 up, fixing up length and
//! checksum fields at [`PacketBuilder::build`] time so tests and traces can
//! describe packets declaratively.

use crate::addr::MacAddr;
use crate::checksum::transport_checksum_v4;
use crate::headers::{
    ethertype, ip_proto, ArpHeader, EthernetHeader, IcmpHeader, Ipv4Header, Ipv6Header, MplsHeader,
    TcpHeader, UdpHeader, VlanTag,
};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Layer-3+ content of a frame under construction.
#[derive(Debug, Clone)]
enum L3 {
    None,
    Arp(ArpHeader),
    Ipv4(Ipv4Header, L4),
    Ipv6(Ipv6Header, L4),
}

/// Layer-4 content.
#[derive(Debug, Clone)]
enum L4 {
    None,
    Tcp(TcpHeader),
    Udp(UdpHeader),
    Icmp(IcmpHeader),
    Raw(Vec<u8>),
}

/// A declarative packet builder.
///
/// ```
/// use ofpacket::{PacketBuilder, MacAddr};
/// use std::net::Ipv4Addr;
///
/// let bytes = PacketBuilder::ethernet(
///         MacAddr::from_u64(0x020000000001),
///         MacAddr::from_u64(0x020000000002),
///     )
///     .vlan(100, 3)
///     .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
///     .tcp(12345, 80)
///     .payload(b"hello".to_vec())
///     .build();
/// assert!(bytes.len() >= 14 + 4 + 20 + 20 + 5);
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    vlans: Vec<(u16, u8)>,
    mpls: Vec<MplsHeader>,
    l3: L3,
    payload: Vec<u8>,
}

impl PacketBuilder {
    /// Starts a frame with the given Ethernet addresses.
    #[must_use]
    pub fn ethernet(src: MacAddr, dst: MacAddr) -> Self {
        Self {
            src_mac: src,
            dst_mac: dst,
            vlans: Vec::new(),
            mpls: Vec::new(),
            l3: L3::None,
            payload: Vec::new(),
        }
    }

    /// Pushes an 802.1Q tag (outermost first).
    #[must_use]
    pub fn vlan(mut self, vid: u16, pcp: u8) -> Self {
        self.vlans.push((vid, pcp));
        self
    }

    /// Pushes an MPLS label (outermost first; bottom-of-stack bits are
    /// fixed automatically).
    #[must_use]
    pub fn mpls(mut self, label: u32, tc: u8, ttl: u8) -> Self {
        self.mpls.push(MplsHeader { label, tc, bos: false, ttl });
        self
    }

    /// Sets an ARP body.
    #[must_use]
    pub fn arp(mut self, arp: ArpHeader) -> Self {
        self.l3 = L3::Arp(arp);
        self
    }

    /// Sets an IPv4 layer.
    #[must_use]
    pub fn ipv4(mut self, src: Ipv4Addr, dst: Ipv4Addr) -> Self {
        self.l3 = L3::Ipv4(Ipv4Header::template(src, dst, 0), L4::None);
        self
    }

    /// Adjusts the pending IPv4 header (DSCP, TTL, ...).
    #[must_use]
    pub fn ipv4_with(mut self, f: impl FnOnce(&mut Ipv4Header)) -> Self {
        if let L3::Ipv4(ref mut h, _) = self.l3 {
            f(h);
        }
        self
    }

    /// Sets an IPv6 layer.
    #[must_use]
    pub fn ipv6(mut self, src: Ipv6Addr, dst: Ipv6Addr) -> Self {
        self.l3 = L3::Ipv6(
            Ipv6Header {
                traffic_class: 0,
                flow_label: 0,
                payload_len: 0,
                next_header: 59, // no next header
                hop_limit: 64,
                src,
                dst,
            },
            L4::None,
        );
        self
    }

    /// Adds a TCP segment.
    #[must_use]
    pub fn tcp(mut self, src_port: u16, dst_port: u16) -> Self {
        self.set_l4(L4::Tcp(TcpHeader::template(src_port, dst_port)), ip_proto::TCP);
        self
    }

    /// Adds a UDP datagram.
    #[must_use]
    pub fn udp(mut self, src_port: u16, dst_port: u16) -> Self {
        self.set_l4(
            L4::Udp(UdpHeader { src_port, dst_port, length: 0, checksum: 0 }),
            ip_proto::UDP,
        );
        self
    }

    /// Adds an ICMP echo-request header.
    #[must_use]
    pub fn icmp(mut self, icmp_type: u8, code: u8) -> Self {
        self.set_l4(L4::Icmp(IcmpHeader { icmp_type, code, checksum: 0 }), ip_proto::ICMP);
        self
    }

    /// Adds an opaque L4 payload with an explicit protocol number.
    #[must_use]
    pub fn raw_l4(mut self, proto: u8, data: Vec<u8>) -> Self {
        self.set_l4(L4::Raw(data), proto);
        self
    }

    /// Appends application payload bytes.
    #[must_use]
    pub fn payload(mut self, data: Vec<u8>) -> Self {
        self.payload = data;
        self
    }

    fn set_l4(&mut self, l4: L4, proto: u8) {
        match self.l3 {
            L3::Ipv4(ref mut h, ref mut slot) => {
                h.protocol = proto;
                *slot = l4;
            }
            L3::Ipv6(ref mut h, ref mut slot) => {
                h.next_header = proto;
                *slot = l4;
            }
            _ => panic!("set an IP layer before L4"),
        }
    }

    /// Serializes the frame, fixing lengths and checksums.
    #[must_use]
    pub fn build(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);

        // Decide the Ethernet ethertype chain: VLANs, then MPLS/L3.
        let inner_ethertype = match (&self.mpls.is_empty(), &self.l3) {
            (false, _) => ethertype::MPLS,
            (true, L3::Arp(_)) => ethertype::ARP,
            (true, L3::Ipv4(..)) => ethertype::IPV4,
            (true, L3::Ipv6(..)) => ethertype::IPV6,
            (true, L3::None) => 0xFFFF,
        };
        let first_ethertype = if self.vlans.is_empty() { inner_ethertype } else { ethertype::VLAN };
        EthernetHeader { dst: self.dst_mac, src: self.src_mac, ethertype: first_ethertype }
            .write_to(&mut out);
        for (i, (vid, pcp)) in self.vlans.iter().enumerate() {
            let next = if i + 1 < self.vlans.len() { ethertype::VLAN } else { inner_ethertype };
            VlanTag { pcp: *pcp, dei: false, vid: *vid, ethertype: next }.write_to(&mut out);
        }
        for (i, shim) in self.mpls.iter().enumerate() {
            let mut s = *shim;
            s.bos = i + 1 == self.mpls.len();
            s.write_to(&mut out);
        }

        // L4 segment bytes (checksummed against the pseudo-header below).
        let mut segment = Vec::new();
        let l4 = match &self.l3 {
            L3::Ipv4(_, l4) | L3::Ipv6(_, l4) => l4,
            _ => &L4::None,
        };
        match l4 {
            L4::Tcp(t) => {
                t.write_to(&mut segment);
                segment.extend_from_slice(&self.payload);
            }
            L4::Udp(u) => {
                let mut u = *u;
                u.length = (UdpHeader::LEN + self.payload.len()) as u16;
                u.write_to(&mut segment);
                segment.extend_from_slice(&self.payload);
            }
            L4::Icmp(c) => {
                c.write_to(&mut segment);
                segment.extend_from_slice(&self.payload);
            }
            L4::Raw(d) => {
                segment.extend_from_slice(d);
                segment.extend_from_slice(&self.payload);
            }
            L4::None => segment.extend_from_slice(&self.payload),
        }

        match self.l3 {
            L3::None => out.extend_from_slice(&self.payload),
            L3::Arp(arp) => arp.write_to(&mut out),
            L3::Ipv4(mut h, ref l4) => {
                h.total_len = (h.header_len() + segment.len()) as u16;
                if let L4::Tcp(_) | L4::Udp(_) = l4 {
                    let ck =
                        transport_checksum_v4(h.src.octets(), h.dst.octets(), h.protocol, &segment);
                    // Checksum slot is at offset 16 (TCP) / 6 (UDP) of the
                    // segment.
                    let off = if matches!(l4, L4::Tcp(_)) { 16 } else { 6 };
                    segment[off] = (ck >> 8) as u8;
                    segment[off + 1] = (ck & 0xFF) as u8;
                }
                h.write_to(&mut out);
                out.extend_from_slice(&segment);
            }
            L3::Ipv6(mut h, _) => {
                h.payload_len = segment.len() as u16;
                h.write_to(&mut out);
                out.extend_from_slice(&segment);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::verify;

    fn macs() -> (MacAddr, MacAddr) {
        (MacAddr::from_u64(0x0200_0000_0001), MacAddr::from_u64(0x0200_0000_0002))
    }

    #[test]
    fn plain_ipv4_tcp_frame() {
        let (s, d) = macs();
        let bytes = PacketBuilder::ethernet(s, d)
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .tcp(1234, 80)
            .build();
        assert_eq!(bytes.len(), 14 + 20 + 20);
        // Ethertype at offset 12.
        assert_eq!(&bytes[12..14], &ethertype::IPV4.to_be_bytes());
        // IPv4 checksum valid over its 20 bytes.
        assert!(verify(&bytes[14..34]));
    }

    #[test]
    fn vlan_tag_inserted() {
        let (s, d) = macs();
        let bytes = PacketBuilder::ethernet(s, d)
            .vlan(100, 5)
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .udp(53, 53)
            .build();
        assert_eq!(&bytes[12..14], &ethertype::VLAN.to_be_bytes());
        let (tag, _) = VlanTag::parse(&bytes[14..]).unwrap();
        assert_eq!(tag.vid, 100);
        assert_eq!(tag.pcp, 5);
        assert_eq!(tag.ethertype, ethertype::IPV4);
    }

    #[test]
    fn double_vlan_chains_tpids() {
        let (s, d) = macs();
        let bytes = PacketBuilder::ethernet(s, d)
            .vlan(10, 0)
            .vlan(20, 0)
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .build();
        let (outer, _) = VlanTag::parse(&bytes[14..]).unwrap();
        assert_eq!(outer.vid, 10);
        assert_eq!(outer.ethertype, ethertype::VLAN);
        let (inner, _) = VlanTag::parse(&bytes[18..]).unwrap();
        assert_eq!(inner.vid, 20);
        assert_eq!(inner.ethertype, ethertype::IPV4);
    }

    #[test]
    fn mpls_bottom_of_stack_set_on_last() {
        let (s, d) = macs();
        let bytes = PacketBuilder::ethernet(s, d)
            .mpls(1000, 0, 64)
            .mpls(2000, 0, 64)
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .build();
        assert_eq!(&bytes[12..14], &ethertype::MPLS.to_be_bytes());
        let (outer, _) = MplsHeader::parse(&bytes[14..]).unwrap();
        let (inner, _) = MplsHeader::parse(&bytes[18..]).unwrap();
        assert!(!outer.bos);
        assert!(inner.bos);
        assert_eq!(outer.label, 1000);
        assert_eq!(inner.label, 2000);
    }

    #[test]
    fn udp_length_and_checksum_fixed_up() {
        let (s, d) = macs();
        let bytes = PacketBuilder::ethernet(s, d)
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 9))
            .udp(1111, 2222)
            .payload(vec![0xAA; 10])
            .build();
        let (udp, _) = UdpHeader::parse(&bytes[34..]).unwrap();
        assert_eq!(udp.length, 18);
        assert_ne!(udp.checksum, 0);
    }

    #[test]
    fn arp_frame() {
        let (s, d) = macs();
        let arp = ArpHeader {
            operation: 1,
            sender_mac: s,
            sender_ip: Ipv4Addr::new(10, 0, 0, 1),
            target_mac: MacAddr::default(),
            target_ip: Ipv4Addr::new(10, 0, 0, 2),
        };
        let bytes = PacketBuilder::ethernet(s, d).arp(arp).build();
        assert_eq!(&bytes[12..14], &ethertype::ARP.to_be_bytes());
        assert_eq!(bytes.len(), 14 + 28);
    }

    #[test]
    fn ipv6_payload_len() {
        let (s, d) = macs();
        let bytes = PacketBuilder::ethernet(s, d)
            .ipv6(Ipv6Addr::LOCALHOST, Ipv6Addr::UNSPECIFIED)
            .udp(1, 2)
            .payload(vec![0; 4])
            .build();
        let (v6, _) = Ipv6Header::parse(&bytes[14..]).unwrap();
        assert_eq!(v6.payload_len, 12);
    }

    #[test]
    #[should_panic(expected = "set an IP layer")]
    fn l4_without_l3_panics() {
        let (s, d) = macs();
        let _ = PacketBuilder::ethernet(s, d).tcp(1, 2);
    }
}
