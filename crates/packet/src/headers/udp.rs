//! UDP header.

use super::{need, HeaderError};

/// A UDP header (8 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header + payload.
    pub length: u16,
    /// Checksum (0 = not computed, legal for IPv4).
    pub checksum: u16,
}

impl UdpHeader {
    /// Serialized length in bytes.
    pub const LEN: usize = 8;

    /// Appends the header to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.length.to_be_bytes());
        out.extend_from_slice(&self.checksum.to_be_bytes());
    }

    /// Parses the header; returns it and the bytes consumed.
    pub fn parse(data: &[u8]) -> Result<(Self, usize), HeaderError> {
        need("udp", data, Self::LEN)?;
        let h = Self {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            length: u16::from_be_bytes([data[4], data[5]]),
            checksum: u16::from_be_bytes([data[6], data[7]]),
        };
        if usize::from(h.length) < Self::LEN {
            return Err(HeaderError::Malformed { layer: "udp", reason: "length < 8" });
        }
        Ok((h, Self::LEN))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = UdpHeader { src_port: 53, dst_port: 5353, length: 16, checksum: 0xABCD };
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        let (parsed, used) = UdpHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(used, 8);
    }

    #[test]
    fn bad_length_rejected() {
        let h = UdpHeader { src_port: 1, dst_port: 2, length: 4, checksum: 0 };
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        assert!(UdpHeader::parse(&buf).is_err());
    }

    #[test]
    fn truncated_rejected() {
        assert!(UdpHeader::parse(&[0u8; 7]).is_err());
    }
}
