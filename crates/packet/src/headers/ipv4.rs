//! IPv4 header.

use super::{need, HeaderError};
use crate::checksum::internet_checksum;
use std::net::Ipv4Addr;

/// An IPv4 header (20 bytes without options; options preserved opaquely).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services code point (6 bits).
    pub dscp: u8,
    /// Explicit congestion notification (2 bits).
    pub ecn: u8,
    /// Identification field.
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol number.
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Raw option bytes (length must be a multiple of 4, at most 40).
    pub options: Vec<u8>,
    /// Total length field (header + payload); filled by the builder.
    pub total_len: u16,
}

impl Ipv4Header {
    /// Minimum serialized length in bytes.
    pub const MIN_LEN: usize = 20;

    /// Header length in bytes including options.
    #[must_use]
    pub fn header_len(&self) -> usize {
        Self::MIN_LEN + self.options.len()
    }

    /// Appends the header (with a correct checksum) to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        let ihl = (self.header_len() / 4) as u8;
        let start = out.len();
        out.push(0x40 | ihl);
        out.push((self.dscp << 2) | (self.ecn & 0x3));
        out.extend_from_slice(&self.total_len.to_be_bytes());
        out.extend_from_slice(&self.identification.to_be_bytes());
        let flags = u16::from(self.dont_fragment) << 14;
        out.extend_from_slice(&flags.to_be_bytes());
        out.push(self.ttl);
        out.push(self.protocol);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&self.options);
        let ck = internet_checksum(&out[start..]);
        out[start + 10] = (ck >> 8) as u8;
        out[start + 11] = (ck & 0xFF) as u8;
    }

    /// Parses the header; returns it and the bytes consumed (IHL * 4).
    pub fn parse(data: &[u8]) -> Result<(Self, usize), HeaderError> {
        need("ipv4", data, Self::MIN_LEN)?;
        let version = data[0] >> 4;
        if version != 4 {
            return Err(HeaderError::Malformed { layer: "ipv4", reason: "version != 4" });
        }
        let ihl = usize::from(data[0] & 0x0F) * 4;
        if ihl < Self::MIN_LEN {
            return Err(HeaderError::Malformed { layer: "ipv4", reason: "IHL < 5" });
        }
        need("ipv4", data, ihl)?;
        Ok((
            Self {
                dscp: data[1] >> 2,
                ecn: data[1] & 0x3,
                total_len: u16::from_be_bytes([data[2], data[3]]),
                identification: u16::from_be_bytes([data[4], data[5]]),
                dont_fragment: data[6] & 0x40 != 0,
                ttl: data[8],
                protocol: data[9],
                src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
                dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
                options: data[Self::MIN_LEN..ihl].to_vec(),
            },
            ihl,
        ))
    }

    /// A minimal header template for the builder.
    #[must_use]
    pub fn template(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8) -> Self {
        Self {
            dscp: 0,
            ecn: 0,
            identification: 0,
            dont_fragment: true,
            ttl: 64,
            protocol,
            src,
            dst,
            options: Vec::new(),
            total_len: Self::MIN_LEN as u16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::verify;

    #[test]
    fn round_trip_with_valid_checksum() {
        let mut h = Ipv4Header::template(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 6);
        h.dscp = 46;
        h.total_len = 40;
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        assert_eq!(buf.len(), 20);
        assert!(verify(&buf));
        let (parsed, used) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(used, 20);
        assert_eq!(parsed, h);
    }

    #[test]
    fn options_extend_header() {
        let mut h = Ipv4Header::template(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 17);
        h.options = vec![1, 1, 1, 1]; // 4 bytes of NOP
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        assert_eq!(buf.len(), 24);
        let (parsed, used) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(used, 24);
        assert_eq!(parsed.options, vec![1, 1, 1, 1]);
    }

    #[test]
    fn rejects_wrong_version_and_bad_ihl() {
        let mut buf = Vec::new();
        Ipv4Header::template(Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED, 6).write_to(&mut buf);
        buf[0] = 0x60 | (buf[0] & 0x0F);
        assert!(Ipv4Header::parse(&buf).is_err());
        buf[0] = 0x42; // version 4, IHL 2
        assert!(Ipv4Header::parse(&buf).is_err());
    }

    #[test]
    fn truncated_rejected() {
        assert!(Ipv4Header::parse(&[0x45; 10]).is_err());
    }
}
