//! IPv6 header.

use super::{need, HeaderError};
use std::net::Ipv6Addr;

/// An IPv6 fixed header (40 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6Header {
    /// Traffic class (DSCP + ECN).
    pub traffic_class: u8,
    /// 20-bit flow label.
    pub flow_label: u32,
    /// Payload length in bytes.
    pub payload_len: u16,
    /// Next header (protocol) number.
    pub next_header: u8,
    /// Hop limit.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
}

impl Ipv6Header {
    /// Serialized length in bytes.
    pub const LEN: usize = 40;

    /// Appends the header to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        let w = (6u32 << 28) | (u32::from(self.traffic_class) << 20) | (self.flow_label & 0xF_FFFF);
        out.extend_from_slice(&w.to_be_bytes());
        out.extend_from_slice(&self.payload_len.to_be_bytes());
        out.push(self.next_header);
        out.push(self.hop_limit);
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
    }

    /// Parses the header; returns it and the bytes consumed.
    pub fn parse(data: &[u8]) -> Result<(Self, usize), HeaderError> {
        need("ipv6", data, Self::LEN)?;
        let w = u32::from_be_bytes([data[0], data[1], data[2], data[3]]);
        if w >> 28 != 6 {
            return Err(HeaderError::Malformed { layer: "ipv6", reason: "version != 6" });
        }
        let mut src = [0u8; 16];
        let mut dst = [0u8; 16];
        src.copy_from_slice(&data[8..24]);
        dst.copy_from_slice(&data[24..40]);
        Ok((
            Self {
                traffic_class: ((w >> 20) & 0xFF) as u8,
                flow_label: w & 0xF_FFFF,
                payload_len: u16::from_be_bytes([data[4], data[5]]),
                next_header: data[6],
                hop_limit: data[7],
                src: Ipv6Addr::from(src),
                dst: Ipv6Addr::from(dst),
            },
            Self::LEN,
        ))
    }

    /// DSCP portion of the traffic class.
    #[must_use]
    pub fn dscp(&self) -> u8 {
        self.traffic_class >> 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = Ipv6Header {
            traffic_class: 0xB8,
            flow_label: 0x12345,
            payload_len: 8,
            next_header: 17,
            hop_limit: 64,
            src: Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1),
            dst: Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2),
        };
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        assert_eq!(buf.len(), 40);
        let (parsed, used) = Ipv6Header::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(used, 40);
        assert_eq!(parsed.dscp(), 0xB8 >> 2);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        Ipv6Header {
            traffic_class: 0,
            flow_label: 0,
            payload_len: 0,
            next_header: 59,
            hop_limit: 1,
            src: Ipv6Addr::UNSPECIFIED,
            dst: Ipv6Addr::UNSPECIFIED,
        }
        .write_to(&mut buf);
        buf[0] = 0x40 | (buf[0] & 0x0F);
        assert!(Ipv6Header::parse(&buf).is_err());
    }

    #[test]
    fn truncated_rejected() {
        assert!(Ipv6Header::parse(&[0x60; 39]).is_err());
    }
}
