//! ICMP header (v4 and v6 share the 4-byte layout we model).

use super::{need, HeaderError};

/// An ICMP header (type, code, checksum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpHeader {
    /// Message type (8 = echo request for ICMPv4).
    pub icmp_type: u8,
    /// Message code.
    pub code: u8,
    /// Checksum over the ICMP message.
    pub checksum: u16,
}

impl IcmpHeader {
    /// Serialized length in bytes.
    pub const LEN: usize = 4;

    /// Appends the header to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.push(self.icmp_type);
        out.push(self.code);
        out.extend_from_slice(&self.checksum.to_be_bytes());
    }

    /// Parses the header; returns it and the bytes consumed.
    pub fn parse(data: &[u8]) -> Result<(Self, usize), HeaderError> {
        need("icmp", data, Self::LEN)?;
        Ok((
            Self {
                icmp_type: data[0],
                code: data[1],
                checksum: u16::from_be_bytes([data[2], data[3]]),
            },
            Self::LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = IcmpHeader { icmp_type: 8, code: 0, checksum: 0x1234 };
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        let (parsed, used) = IcmpHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(used, 4);
    }

    #[test]
    fn truncated_rejected() {
        assert!(IcmpHeader::parse(&[8, 0]).is_err());
    }
}
