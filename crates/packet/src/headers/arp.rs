//! ARP header (Ethernet/IPv4 flavour).

use super::{need, HeaderError};
use crate::addr::MacAddr;
use std::net::Ipv4Addr;

/// An ARP packet for Ethernet + IPv4 (28 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpHeader {
    /// Operation: 1 = request, 2 = reply.
    pub operation: u16,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address.
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpHeader {
    /// Serialized length in bytes.
    pub const LEN: usize = 28;

    /// Appends the packet to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&1u16.to_be_bytes()); // htype = Ethernet
        out.extend_from_slice(&0x0800u16.to_be_bytes()); // ptype = IPv4
        out.push(6); // hlen
        out.push(4); // plen
        out.extend_from_slice(&self.operation.to_be_bytes());
        out.extend_from_slice(&self.sender_mac.0);
        out.extend_from_slice(&self.sender_ip.octets());
        out.extend_from_slice(&self.target_mac.0);
        out.extend_from_slice(&self.target_ip.octets());
    }

    /// Parses the packet; returns it and the bytes consumed.
    pub fn parse(data: &[u8]) -> Result<(Self, usize), HeaderError> {
        need("arp", data, Self::LEN)?;
        if data[4] != 6 || data[5] != 4 {
            return Err(HeaderError::Malformed { layer: "arp", reason: "not Ethernet/IPv4" });
        }
        let mut smac = [0u8; 6];
        let mut tmac = [0u8; 6];
        smac.copy_from_slice(&data[8..14]);
        tmac.copy_from_slice(&data[18..24]);
        Ok((
            Self {
                operation: u16::from_be_bytes([data[6], data[7]]),
                sender_mac: MacAddr(smac),
                sender_ip: Ipv4Addr::new(data[14], data[15], data[16], data[17]),
                target_mac: MacAddr(tmac),
                target_ip: Ipv4Addr::new(data[24], data[25], data[26], data[27]),
            },
            Self::LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = ArpHeader {
            operation: 1,
            sender_mac: MacAddr([1, 2, 3, 4, 5, 6]),
            sender_ip: Ipv4Addr::new(10, 0, 0, 1),
            target_mac: MacAddr::default(),
            target_ip: Ipv4Addr::new(10, 0, 0, 2),
        };
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        assert_eq!(buf.len(), 28);
        let (parsed, used) = ArpHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(used, 28);
    }

    #[test]
    fn non_ethernet_ipv4_rejected() {
        let mut buf = Vec::new();
        ArpHeader {
            operation: 1,
            sender_mac: MacAddr::default(),
            sender_ip: Ipv4Addr::UNSPECIFIED,
            target_mac: MacAddr::default(),
            target_ip: Ipv4Addr::UNSPECIFIED,
        }
        .write_to(&mut buf);
        buf[4] = 8;
        assert!(ArpHeader::parse(&buf).is_err());
    }

    #[test]
    fn truncated_rejected() {
        assert!(ArpHeader::parse(&[0u8; 27]).is_err());
    }
}
