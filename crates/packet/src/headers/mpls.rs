//! MPLS label stack entry.

use super::{need, HeaderError};

/// One MPLS shim (4 bytes): label, traffic class, bottom-of-stack, TTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MplsHeader {
    /// 20-bit label.
    pub label: u32,
    /// 3-bit traffic class.
    pub tc: u8,
    /// Bottom-of-stack flag.
    pub bos: bool,
    /// Time to live.
    pub ttl: u8,
}

impl MplsHeader {
    /// Serialized length in bytes.
    pub const LEN: usize = 4;

    /// Appends the shim to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        let w = ((self.label & 0xF_FFFF) << 12)
            | (u32::from(self.tc & 0x7) << 9)
            | (u32::from(self.bos) << 8)
            | u32::from(self.ttl);
        out.extend_from_slice(&w.to_be_bytes());
    }

    /// Parses one shim; returns it and the bytes consumed.
    pub fn parse(data: &[u8]) -> Result<(Self, usize), HeaderError> {
        need("mpls", data, Self::LEN)?;
        let w = u32::from_be_bytes([data[0], data[1], data[2], data[3]]);
        Ok((
            Self {
                label: w >> 12,
                tc: ((w >> 9) & 0x7) as u8,
                bos: w & 0x100 != 0,
                ttl: (w & 0xFF) as u8,
            },
            Self::LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = MplsHeader { label: 0xABCDE, tc: 3, bos: true, ttl: 64 };
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        let (parsed, used) = MplsHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(used, 4);
    }

    #[test]
    fn label_masked_to_20_bits() {
        let h = MplsHeader { label: u32::MAX, tc: 0, bos: false, ttl: 1 };
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        let (parsed, _) = MplsHeader::parse(&buf).unwrap();
        assert_eq!(parsed.label, 0xF_FFFF);
    }

    #[test]
    fn truncated_rejected() {
        assert!(MplsHeader::parse(&[0u8; 2]).is_err());
    }
}
