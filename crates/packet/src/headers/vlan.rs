//! 802.1Q VLAN tag.

use super::{need, HeaderError};

/// An 802.1Q tag body: PCP, DEI, VID and the encapsulated ethertype
/// (4 bytes following the TPID already consumed from the Ethernet header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlanTag {
    /// Priority code point (3 bits).
    pub pcp: u8,
    /// Drop-eligible indicator.
    pub dei: bool,
    /// VLAN identifier (12 bits on the wire; OpenFlow's 13-bit `vlan_vid`
    /// adds a presence flag bit).
    pub vid: u16,
    /// Ethertype of what follows the tag.
    pub ethertype: u16,
}

impl VlanTag {
    /// Serialized length in bytes (TCI + inner ethertype).
    pub const LEN: usize = 4;

    /// Appends TCI + inner ethertype to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        let tci =
            (u16::from(self.pcp & 0x7) << 13) | (u16::from(self.dei) << 12) | (self.vid & 0x0FFF);
        out.extend_from_slice(&tci.to_be_bytes());
        out.extend_from_slice(&self.ethertype.to_be_bytes());
    }

    /// Parses the tag body; returns it and the bytes consumed.
    pub fn parse(data: &[u8]) -> Result<(Self, usize), HeaderError> {
        need("vlan", data, Self::LEN)?;
        let tci = u16::from_be_bytes([data[0], data[1]]);
        Ok((
            Self {
                pcp: (tci >> 13) as u8,
                dei: tci & 0x1000 != 0,
                vid: tci & 0x0FFF,
                ethertype: u16::from_be_bytes([data[2], data[3]]),
            },
            Self::LEN,
        ))
    }

    /// OpenFlow's 13-bit `vlan_vid` encoding: OFPVID_PRESENT (0x1000) | vid.
    #[must_use]
    pub fn openflow_vid(&self) -> u16 {
        0x1000 | (self.vid & 0x0FFF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let t = VlanTag { pcp: 5, dei: true, vid: 0x123, ethertype: 0x0800 };
        let mut buf = Vec::new();
        t.write_to(&mut buf);
        let (parsed, used) = VlanTag::parse(&buf).unwrap();
        assert_eq!(parsed, t);
        assert_eq!(used, 4);
    }

    #[test]
    fn vid_masked_to_12_bits() {
        let t = VlanTag { pcp: 0, dei: false, vid: 0xFFFF, ethertype: 0 };
        let mut buf = Vec::new();
        t.write_to(&mut buf);
        let (parsed, _) = VlanTag::parse(&buf).unwrap();
        assert_eq!(parsed.vid, 0x0FFF);
    }

    #[test]
    fn openflow_vid_sets_present_bit() {
        let t = VlanTag { pcp: 0, dei: false, vid: 100, ethertype: 0 };
        assert_eq!(t.openflow_vid(), 0x1000 | 100);
    }

    #[test]
    fn truncated_rejected() {
        assert!(VlanTag::parse(&[0u8; 3]).is_err());
    }
}
