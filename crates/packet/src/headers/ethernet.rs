//! Ethernet II header.

use super::{need, HeaderError};
use crate::addr::MacAddr;

/// An Ethernet II frame header (14 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Ethertype of the payload (or of the first tag).
    pub ethertype: u16,
}

impl EthernetHeader {
    /// Serialized length in bytes.
    pub const LEN: usize = 14;

    /// Appends the header to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.to_be_bytes());
    }

    /// Parses the header; returns it and the bytes consumed.
    pub fn parse(data: &[u8]) -> Result<(Self, usize), HeaderError> {
        need("ethernet", data, Self::LEN)?;
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        Ok((
            Self {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype: u16::from_be_bytes([data[12], data[13]]),
            },
            Self::LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::ethertype;

    #[test]
    fn round_trip() {
        let h = EthernetHeader {
            dst: MacAddr([1, 2, 3, 4, 5, 6]),
            src: MacAddr([7, 8, 9, 10, 11, 12]),
            ethertype: ethertype::IPV4,
        };
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        assert_eq!(buf.len(), EthernetHeader::LEN);
        let (parsed, used) = EthernetHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(used, EthernetHeader::LEN);
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            EthernetHeader::parse(&[0u8; 13]),
            Err(HeaderError::Truncated { layer: "ethernet", .. })
        ));
    }
}
