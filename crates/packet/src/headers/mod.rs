//! Protocol header structures.
//!
//! Each header type offers `write_to(&mut Vec<u8>)` (serialize in network
//! byte order) and `parse(&[u8]) -> Result<(Self, usize), HeaderError>`
//! returning the header and the number of bytes consumed.

pub mod arp;
pub mod ethernet;
pub mod icmp;
pub mod ipv4;
pub mod ipv6;
pub mod mpls;
pub mod tcp;
pub mod udp;
pub mod vlan;

pub use arp::ArpHeader;
pub use ethernet::EthernetHeader;
pub use icmp::IcmpHeader;
pub use ipv4::Ipv4Header;
pub use ipv6::Ipv6Header;
pub use mpls::MplsHeader;
pub use tcp::TcpHeader;
pub use udp::UdpHeader;
pub use vlan::VlanTag;

use std::fmt;

/// Well-known ethertypes.
pub mod ethertype {
    /// IPv4.
    pub const IPV4: u16 = 0x0800;
    /// ARP.
    pub const ARP: u16 = 0x0806;
    /// 802.1Q VLAN tag.
    pub const VLAN: u16 = 0x8100;
    /// 802.1ad service tag (QinQ outer).
    pub const QINQ: u16 = 0x88A8;
    /// IPv6.
    pub const IPV6: u16 = 0x86DD;
    /// MPLS unicast.
    pub const MPLS: u16 = 0x8847;
}

/// IP protocol numbers.
pub mod ip_proto {
    /// ICMP.
    pub const ICMP: u8 = 1;
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
    /// SCTP.
    pub const SCTP: u8 = 132;
}

/// Error parsing a protocol header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeaderError {
    /// Fewer bytes than the header needs.
    Truncated {
        /// Header being parsed.
        layer: &'static str,
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A version/size field is inconsistent.
    Malformed {
        /// Header being parsed.
        layer: &'static str,
        /// What was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for HeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderError::Truncated { layer, needed, got } => {
                write!(f, "{layer}: truncated (need {needed} bytes, got {got})")
            }
            HeaderError::Malformed { layer, reason } => write!(f, "{layer}: {reason}"),
        }
    }
}

impl std::error::Error for HeaderError {}

/// Bounds-checks `data` for a fixed-size header.
pub(crate) fn need(layer: &'static str, data: &[u8], n: usize) -> Result<(), HeaderError> {
    if data.len() < n {
        Err(HeaderError::Truncated { layer, needed: n, got: data.len() })
    } else {
        Ok(())
    }
}
