//! TCP header.

use super::{need, HeaderError};

/// A TCP header (20 bytes, options preserved opaquely).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits (low 9 bits: NS..FIN).
    pub flags: u16,
    /// Receive window.
    pub window: u16,
    /// Checksum (written as-is; compute with `checksum::transport_checksum_v4`).
    pub checksum: u16,
    /// Urgent pointer.
    pub urgent: u16,
    /// Raw option bytes (multiple of 4, at most 40).
    pub options: Vec<u8>,
}

/// TCP flag constants.
pub mod flags {
    /// Synchronize.
    pub const SYN: u16 = 0x002;
    /// Acknowledge.
    pub const ACK: u16 = 0x010;
    /// Finish.
    pub const FIN: u16 = 0x001;
    /// Reset.
    pub const RST: u16 = 0x004;
    /// Push.
    pub const PSH: u16 = 0x008;
}

impl TcpHeader {
    /// Minimum serialized length in bytes.
    pub const MIN_LEN: usize = 20;

    /// Header length including options.
    #[must_use]
    pub fn header_len(&self) -> usize {
        Self::MIN_LEN + self.options.len()
    }

    /// Appends the header to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        let data_offset = (self.header_len() / 4) as u16;
        let w = (data_offset << 12) | (self.flags & 0x1FF);
        out.extend_from_slice(&w.to_be_bytes());
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&self.checksum.to_be_bytes());
        out.extend_from_slice(&self.urgent.to_be_bytes());
        out.extend_from_slice(&self.options);
    }

    /// Parses the header; returns it and the bytes consumed.
    pub fn parse(data: &[u8]) -> Result<(Self, usize), HeaderError> {
        need("tcp", data, Self::MIN_LEN)?;
        let w = u16::from_be_bytes([data[12], data[13]]);
        let hlen = usize::from(w >> 12) * 4;
        if hlen < Self::MIN_LEN {
            return Err(HeaderError::Malformed { layer: "tcp", reason: "data offset < 5" });
        }
        need("tcp", data, hlen)?;
        Ok((
            Self {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
                ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
                flags: w & 0x1FF,
                window: u16::from_be_bytes([data[14], data[15]]),
                checksum: u16::from_be_bytes([data[16], data[17]]),
                urgent: u16::from_be_bytes([data[18], data[19]]),
                options: data[Self::MIN_LEN..hlen].to_vec(),
            },
            hlen,
        ))
    }

    /// A SYN template for the builder.
    #[must_use]
    pub fn template(src_port: u16, dst_port: u16) -> Self {
        Self {
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            flags: flags::SYN,
            window: 65_535,
            checksum: 0,
            urgent: 0,
            options: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut h = TcpHeader::template(12345, 80);
        h.flags = flags::SYN | flags::ACK;
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        assert_eq!(buf.len(), 20);
        let (parsed, used) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(used, 20);
    }

    #[test]
    fn options_round_trip() {
        let mut h = TcpHeader::template(1, 2);
        h.options = vec![2, 4, 5, 0xB4]; // MSS 1460
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        let (parsed, used) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(used, 24);
        assert_eq!(parsed.options, h.options);
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut buf = Vec::new();
        TcpHeader::template(1, 2).write_to(&mut buf);
        buf[12] = 0x40; // data offset 4
        assert!(TcpHeader::parse(&buf).is_err());
    }

    #[test]
    fn truncated_rejected() {
        assert!(TcpHeader::parse(&[0u8; 19]).is_err());
    }
}
