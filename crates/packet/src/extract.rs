//! Full-stack parsing and OXM field extraction.
//!
//! [`parse_packet`] walks a frame from the Ethernet header upward and
//! produces a [`ParsedPacket`]; [`ParsedPacket::header_values`] flattens it
//! into [`oflow::HeaderValues`] — the representation every classifier in
//! this workspace consumes. Field presence follows OpenFlow prerequisites:
//! `tcp_dst` only exists on TCP packets, `vlan_vid` only on tagged frames,
//! and so on.

use crate::headers::{
    ethertype, ip_proto, ArpHeader, EthernetHeader, HeaderError, IcmpHeader, Ipv4Header,
    Ipv6Header, MplsHeader, TcpHeader, UdpHeader, VlanTag,
};
use oflow::{HeaderValues, MatchFieldKind};

/// Error from full-stack parsing.
pub type ParseError = HeaderError;

/// A fully parsed frame.
#[derive(Debug, Clone)]
pub struct ParsedPacket {
    /// The Ethernet header.
    pub ethernet: EthernetHeader,
    /// VLAN tags, outermost first.
    pub vlans: Vec<VlanTag>,
    /// MPLS label stack, outermost first.
    pub mpls: Vec<MplsHeader>,
    /// IPv4 header, if present.
    pub ipv4: Option<Ipv4Header>,
    /// IPv6 header, if present.
    pub ipv6: Option<Ipv6Header>,
    /// ARP body, if present.
    pub arp: Option<ArpHeader>,
    /// TCP header, if present.
    pub tcp: Option<TcpHeader>,
    /// UDP header, if present.
    pub udp: Option<UdpHeader>,
    /// ICMP header, if present.
    pub icmp: Option<IcmpHeader>,
    /// Offset of the (unparsed) payload within the original frame.
    pub payload_offset: usize,
}

/// Parses a frame from the Ethernet layer upward.
///
/// Unknown ethertypes / protocols stop the walk without failing: whatever
/// was recognised is returned and the rest is payload.
pub fn parse_packet(frame: &[u8]) -> Result<ParsedPacket, ParseError> {
    let (eth, mut off) = EthernetHeader::parse(frame)?;
    let mut pkt = ParsedPacket {
        ethernet: eth,
        vlans: Vec::new(),
        mpls: Vec::new(),
        ipv4: None,
        ipv6: None,
        arp: None,
        tcp: None,
        udp: None,
        icmp: None,
        payload_offset: off,
    };

    let mut ety = eth.ethertype;
    while ety == ethertype::VLAN || ety == ethertype::QINQ {
        let (tag, used) = VlanTag::parse(&frame[off..])?;
        off += used;
        ety = tag.ethertype;
        pkt.vlans.push(tag);
    }
    if ety == ethertype::MPLS {
        loop {
            let (shim, used) = MplsHeader::parse(&frame[off..])?;
            off += used;
            let bos = shim.bos;
            pkt.mpls.push(shim);
            if bos {
                break;
            }
        }
        // Per RFC 4928 heuristics: first nibble 4 => IPv4, 6 => IPv6.
        ety = match frame.get(off).map(|b| b >> 4) {
            Some(4) => ethertype::IPV4,
            Some(6) => ethertype::IPV6,
            _ => 0,
        };
    }

    let mut proto = None;
    match ety {
        ethertype::ARP => {
            let (arp, used) = ArpHeader::parse(&frame[off..])?;
            off += used;
            pkt.arp = Some(arp);
        }
        ethertype::IPV4 => {
            let (ip, used) = Ipv4Header::parse(&frame[off..])?;
            off += used;
            proto = Some(ip.protocol);
            pkt.ipv4 = Some(ip);
        }
        ethertype::IPV6 => {
            let (ip, used) = Ipv6Header::parse(&frame[off..])?;
            off += used;
            proto = Some(ip.next_header);
            pkt.ipv6 = Some(ip);
        }
        _ => {}
    }

    match proto {
        Some(ip_proto::TCP) => {
            let (t, used) = TcpHeader::parse(&frame[off..])?;
            off += used;
            pkt.tcp = Some(t);
        }
        Some(ip_proto::UDP) => {
            let (u, used) = UdpHeader::parse(&frame[off..])?;
            off += used;
            pkt.udp = Some(u);
        }
        Some(ip_proto::ICMP) => {
            let (c, used) = IcmpHeader::parse(&frame[off..])?;
            off += used;
            pkt.icmp = Some(c);
        }
        _ => {}
    }

    pkt.payload_offset = off;
    Ok(pkt)
}

impl ParsedPacket {
    /// Flattens the parsed layers into OXM header values, stamping the
    /// given ingress port.
    #[must_use]
    pub fn header_values(&self, in_port: u32) -> HeaderValues {
        use MatchFieldKind::*;
        let mut h = HeaderValues::new();
        h.set(InPort, u128::from(in_port));
        h.set(EthDst, u128::from(self.ethernet.dst.to_u64()));
        h.set(EthSrc, u128::from(self.ethernet.src.to_u64()));

        // eth_type is the type of the innermost non-tag payload, per
        // OpenFlow (tags are matched via their own fields).
        let mut ety = self.ethernet.ethertype;
        if let Some(last_tag) = self.vlans.last() {
            ety = last_tag.ethertype;
        }
        if !self.mpls.is_empty() {
            ety = ethertype::MPLS;
        }
        h.set(EthType, u128::from(ety));

        if let Some(tag) = self.vlans.first() {
            h.set(VlanVid, u128::from(tag.openflow_vid()));
            h.set(VlanPcp, u128::from(tag.pcp));
        }
        if let Some(shim) = self.mpls.first() {
            h.set(MplsLabel, u128::from(shim.label));
            h.set(MplsTc, u128::from(shim.tc));
            h.set(MplsBos, u128::from(shim.bos));
        }
        if let Some(arp) = &self.arp {
            h.set(ArpOp, u128::from(arp.operation));
            h.set(ArpSpa, u128::from(u32::from(arp.sender_ip)));
            h.set(ArpTpa, u128::from(u32::from(arp.target_ip)));
            h.set(ArpSha, u128::from(arp.sender_mac.to_u64()));
            h.set(ArpTha, u128::from(arp.target_mac.to_u64()));
        }
        if let Some(ip) = &self.ipv4 {
            h.set(Ipv4Src, u128::from(u32::from(ip.src)));
            h.set(Ipv4Dst, u128::from(u32::from(ip.dst)));
            h.set(IpProto, u128::from(ip.protocol));
            h.set(IpDscp, u128::from(ip.dscp));
            h.set(IpEcn, u128::from(ip.ecn));
        }
        if let Some(ip) = &self.ipv6 {
            h.set(Ipv6Src, u128::from_be_bytes(ip.src.octets()));
            h.set(Ipv6Dst, u128::from_be_bytes(ip.dst.octets()));
            h.set(IpProto, u128::from(ip.next_header));
            h.set(IpDscp, u128::from(ip.dscp()));
            h.set(Ipv6Flabel, u128::from(ip.flow_label));
        }
        if let Some(t) = &self.tcp {
            h.set(TcpSrc, u128::from(t.src_port));
            h.set(TcpDst, u128::from(t.dst_port));
        }
        if let Some(u) = &self.udp {
            h.set(UdpSrc, u128::from(u.src_port));
            h.set(UdpDst, u128::from(u.dst_port));
        }
        if let Some(c) = &self.icmp {
            h.set(Icmpv4Type, u128::from(c.icmp_type));
            h.set(Icmpv4Code, u128::from(c.code));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MacAddr;
    use crate::builder::PacketBuilder;
    use oflow::MatchFieldKind::*;
    use std::net::Ipv4Addr;

    fn macs() -> (MacAddr, MacAddr) {
        (MacAddr::from_u64(0x0200_0000_0001), MacAddr::from_u64(0x0200_0000_0002))
    }

    #[test]
    fn tcp_over_vlan_extraction() {
        let (s, d) = macs();
        let frame = PacketBuilder::ethernet(s, d)
            .vlan(100, 3)
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(192, 168, 1, 1))
            .tcp(4444, 80)
            .build();
        let pkt = parse_packet(&frame).unwrap();
        assert_eq!(pkt.vlans.len(), 1);
        let h = pkt.header_values(7);
        assert_eq!(h.get(InPort), Some(7));
        assert_eq!(h.get(VlanVid), Some(0x1000 | 100));
        assert_eq!(h.get(VlanPcp), Some(3));
        assert_eq!(h.get(EthType), Some(0x0800));
        assert_eq!(h.get(Ipv4Dst), Some(u128::from(u32::from(Ipv4Addr::new(192, 168, 1, 1)))));
        assert_eq!(h.get(TcpDst), Some(80));
        assert_eq!(h.get(UdpDst), None);
        assert_eq!(h.get(EthDst), Some(0x0200_0000_0002));
    }

    #[test]
    fn untagged_frame_has_no_vlan_fields() {
        let (s, d) = macs();
        let frame = PacketBuilder::ethernet(s, d)
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .udp(53, 53)
            .build();
        let h = parse_packet(&frame).unwrap().header_values(0);
        assert_eq!(h.get(VlanVid), None);
        assert_eq!(h.get(UdpSrc), Some(53));
        assert_eq!(h.get(TcpSrc), None);
    }

    #[test]
    fn mpls_stack_extraction() {
        let (s, d) = macs();
        let frame = PacketBuilder::ethernet(s, d)
            .mpls(12345, 2, 64)
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .build();
        let pkt = parse_packet(&frame).unwrap();
        assert_eq!(pkt.mpls.len(), 1);
        // MPLS payload heuristic recovered the IPv4 layer.
        assert!(pkt.ipv4.is_some());
        let h = pkt.header_values(0);
        assert_eq!(h.get(MplsLabel), Some(12345));
        assert_eq!(h.get(EthType), Some(u128::from(ethertype::MPLS)));
    }

    #[test]
    fn arp_extraction() {
        let (s, d) = macs();
        let arp = ArpHeader {
            operation: 2,
            sender_mac: s,
            sender_ip: Ipv4Addr::new(10, 0, 0, 1),
            target_mac: d,
            target_ip: Ipv4Addr::new(10, 0, 0, 2),
        };
        let frame = PacketBuilder::ethernet(s, d).arp(arp).build();
        let h = parse_packet(&frame).unwrap().header_values(1);
        assert_eq!(h.get(ArpOp), Some(2));
        assert_eq!(h.get(ArpTpa), Some(u128::from(u32::from(Ipv4Addr::new(10, 0, 0, 2)))));
        assert_eq!(h.get(Ipv4Dst), None);
    }

    #[test]
    fn icmp_extraction() {
        let (s, d) = macs();
        let frame = PacketBuilder::ethernet(s, d)
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .icmp(8, 0)
            .build();
        let h = parse_packet(&frame).unwrap().header_values(0);
        assert_eq!(h.get(Icmpv4Type), Some(8));
        assert_eq!(h.get(Icmpv4Code), Some(0));
    }

    #[test]
    fn unknown_ethertype_is_payload() {
        let (s, d) = macs();
        let mut frame = Vec::new();
        crate::headers::EthernetHeader { dst: d, src: s, ethertype: 0x9999 }.write_to(&mut frame);
        frame.extend_from_slice(&[1, 2, 3]);
        let pkt = parse_packet(&frame).unwrap();
        assert!(pkt.ipv4.is_none());
        assert_eq!(pkt.payload_offset, 14);
        let h = pkt.header_values(0);
        assert_eq!(h.get(EthType), Some(0x9999));
    }

    #[test]
    fn truncated_inner_layer_fails() {
        let (s, d) = macs();
        let frame = PacketBuilder::ethernet(s, d)
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .tcp(1, 2)
            .build();
        assert!(parse_packet(&frame[..40]).is_err());
    }

    #[test]
    fn ipv6_extraction() {
        use std::net::Ipv6Addr;
        let (s, d) = macs();
        let frame = PacketBuilder::ethernet(s, d)
            .ipv6(
                Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1),
                Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2),
            )
            .tcp(1000, 443)
            .build();
        let h = parse_packet(&frame).unwrap().header_values(0);
        assert_eq!(h.get(TcpDst), Some(443));
        assert!(h.get(Ipv6Dst).is_some());
        assert_eq!(h.get(Ipv4Dst), None);
    }
}
