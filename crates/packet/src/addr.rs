//! Link-layer addresses.

use std::fmt;
use std::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
///
/// The paper's MAC-filter analysis splits this into three 16-bit
/// partitions (higher / middle / lower); [`MacAddr::partition16`] exposes
/// exactly that split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// Broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Builds from the numeric 48-bit value (low 48 bits of `v`).
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        let b = v.to_be_bytes();
        MacAddr([b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// The numeric 48-bit value.
    #[must_use]
    pub fn to_u64(self) -> u64 {
        let b = self.0;
        u64::from_be_bytes([0, 0, b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// The 16-bit partition `i` (0 = higher, 1 = middle, 2 = lower), as in
    /// the paper's Table III field split.
    #[must_use]
    pub fn partition16(self, i: usize) -> u16 {
        assert!(i < 3, "MAC has three 16-bit partitions");
        u16::from_be_bytes([self.0[2 * i], self.0[2 * i + 1]])
    }

    /// The 24-bit Organizationally Unique Identifier (vendor prefix).
    #[must_use]
    pub fn oui(self) -> u32 {
        u32::from_be_bytes([0, self.0[0], self.0[1], self.0[2]])
    }

    /// Whether the group (multicast) bit is set.
    #[must_use]
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// Error parsing a MAC address from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacParseError(String);

impl fmt::Display for MacParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address: {}", self.0)
    }
}

impl std::error::Error for MacParseError {}

impl FromStr for MacAddr {
    type Err = MacParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut bytes = [0u8; 6];
        let mut n = 0;
        for part in s.split([':', '-']) {
            if n == 6 {
                return Err(MacParseError(s.to_owned()));
            }
            bytes[n] = u8::from_str_radix(part, 16).map_err(|_| MacParseError(s.to_owned()))?;
            n += 1;
        }
        if n != 6 {
            return Err(MacParseError(s.to_owned()));
        }
        Ok(MacAddr(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip() {
        let m = MacAddr([0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF]);
        assert_eq!(m.to_u64(), 0xAABB_CCDD_EEFF);
        assert_eq!(MacAddr::from_u64(0xAABB_CCDD_EEFF), m);
        assert_eq!(MacAddr::from_u64(m.to_u64()), m);
    }

    #[test]
    fn partitions_match_paper_split() {
        let m = MacAddr([0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF]);
        assert_eq!(m.partition16(0), 0xAABB); // higher
        assert_eq!(m.partition16(1), 0xCCDD); // middle
        assert_eq!(m.partition16(2), 0xEEFF); // lower
    }

    #[test]
    #[should_panic(expected = "three 16-bit partitions")]
    fn partition_index_bounds() {
        let _ = MacAddr::default().partition16(3);
    }

    #[test]
    fn oui_is_top_three_bytes() {
        let m = MacAddr([0x00, 0x1B, 0x21, 0x01, 0x02, 0x03]);
        assert_eq!(m.oui(), 0x001B21);
    }

    #[test]
    fn multicast_bit() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr([0xAA, 0, 0, 0, 0, 0]).is_multicast());
        assert!(MacAddr([0x01, 0, 0, 0, 0, 0]).is_multicast());
    }

    #[test]
    fn parse_and_display() {
        let m: MacAddr = "aa:bb:cc:dd:ee:ff".parse().unwrap();
        assert_eq!(m.to_string(), "aa:bb:cc:dd:ee:ff");
        let m2: MacAddr = "AA-BB-CC-DD-EE-FF".parse().unwrap();
        assert_eq!(m, m2);
        assert!("aa:bb:cc".parse::<MacAddr>().is_err());
        assert!("aa:bb:cc:dd:ee:ff:00".parse::<MacAddr>().is_err());
        assert!("zz:bb:cc:dd:ee:ff".parse::<MacAddr>().is_err());
    }
}
