//! Synthetic packet-trace generation and recorded-trace replay.
//!
//! Benchmarks need packet streams with controlled locality and hit ratios.
//! [`TraceGenerator`] produces [`oflow::HeaderValues`] sequences (and full
//! frames via [`TraceGenerator::frames`]) by sampling from a population of
//! header templates — typically derived from a rule set so a chosen fraction
//! of packets hit installed flows.
//!
//! ## Recorded traces
//!
//! [`write_trace`] / [`read_trace`] implement a minimal line-oriented
//! trace file so experiments can replay *recorded* traffic instead of a
//! synthetic distribution (the `repro` harness's `--trace FILE` flag):
//!
//! ```text
//! # comment lines and blank lines are ignored
//! in_port=1 ipv4_dst=a010203
//! eth_dst=20000000001 vlan_vid=64
//! -
//! ```
//!
//! One packet per line as `field=hex` pairs in OXM field names
//! ([`MatchFieldKind::name`]); a lone `-` is a packet with no parsed
//! fields. The format is deliberately the smallest thing that
//! round-trips [`HeaderValues`] — a pcap ingest can target it without
//! the experiments caring.

use crate::addr::MacAddr;
use crate::builder::PacketBuilder;
use oflow::{HeaderValues, MatchFieldKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, BufRead, Write};
use std::net::Ipv4Addr;
use std::path::Path;

/// A reproducible trace generator over a template population.
#[derive(Debug)]
pub struct TraceGenerator {
    templates: Vec<HeaderValues>,
    rng: StdRng,
    /// Probability that an emitted header is drawn from the templates
    /// (vs. randomised into a likely miss).
    pub hit_ratio: f64,
}

impl TraceGenerator {
    /// Creates a generator over `templates` with the given RNG seed.
    ///
    /// # Panics
    /// Panics if `templates` is empty or `hit_ratio` is outside `[0, 1]`.
    #[must_use]
    pub fn new(templates: Vec<HeaderValues>, hit_ratio: f64, seed: u64) -> Self {
        assert!(!templates.is_empty(), "trace needs at least one template");
        assert!((0.0..=1.0).contains(&hit_ratio), "hit_ratio must be in [0,1]");
        Self { templates, rng: StdRng::seed_from_u64(seed), hit_ratio }
    }

    /// Emits the next header. Hits are uniform draws from the templates;
    /// misses are a template with its widest fields randomised.
    pub fn next_header(&mut self) -> HeaderValues {
        let idx = self.rng.gen_range(0..self.templates.len());
        let mut h = self.templates[idx].clone();
        if self.rng.gen_bool(1.0 - self.hit_ratio) {
            // Perturb address-like fields to miss with high probability.
            for field in [
                MatchFieldKind::EthDst,
                MatchFieldKind::Ipv4Dst,
                MatchFieldKind::VlanVid,
                MatchFieldKind::InPort,
            ] {
                if h.contains(field) {
                    let v: u128 = u128::from(self.rng.gen::<u64>());
                    h.set(field, v);
                }
            }
        }
        h
    }

    /// Emits `n` headers.
    pub fn headers(&mut self, n: usize) -> Vec<HeaderValues> {
        (0..n).map(|_| self.next_header()).collect()
    }

    /// Emits `n` full frames (bytes) realising the headers; only fields the
    /// builder understands are realised (Ethernet/VLAN/IPv4/TCP/UDP).
    pub fn frames(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| realise(&self.next_header())).collect()
    }
}

/// Builds a concrete frame carrying the given header values.
#[must_use]
pub fn realise(h: &HeaderValues) -> Vec<u8> {
    use MatchFieldKind::*;
    let src = MacAddr::from_u64(h.get(EthSrc).unwrap_or(0x02_0000_00AA_u128) as u64);
    let dst = MacAddr::from_u64(h.get(EthDst).unwrap_or(0x02_0000_00BB_u128) as u64);
    let mut b = PacketBuilder::ethernet(src, dst);
    if let Some(vid) = h.get(VlanVid) {
        b = b.vlan((vid & 0xFFF) as u16, h.get(VlanPcp).unwrap_or(0) as u8);
    }
    if let Some(dst_ip) = h.get(Ipv4Dst) {
        let src_ip = h.get(Ipv4Src).unwrap_or(0x0A00_0001);
        b = b.ipv4(Ipv4Addr::from(src_ip as u32), Ipv4Addr::from(dst_ip as u32));
        if let Some(p) = h.get(TcpDst) {
            b = b.tcp(h.get(TcpSrc).unwrap_or(40_000) as u16, p as u16);
        } else if let Some(p) = h.get(UdpDst) {
            b = b.udp(h.get(UdpSrc).unwrap_or(40_000) as u16, p as u16);
        } else {
            b = b.raw_l4(h.get(IpProto).unwrap_or(253) as u8, Vec::new());
        }
    }
    b.build()
}

/// Serialises headers into the line-oriented trace format (see the
/// [module docs](self)).
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_trace(mut w: impl Write, headers: &[HeaderValues]) -> io::Result<()> {
    writeln!(w, "# openflow-mtl header trace v1: one packet per line, field=hex pairs")?;
    for h in headers {
        let fields = h.fields();
        if fields.is_empty() {
            writeln!(w, "-")?;
            continue;
        }
        let mut line = String::new();
        for (i, &(field, value)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(field.name());
            line.push('=');
            line.push_str(&format!("{value:x}"));
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Parses a trace written by [`write_trace`] (or by hand, or by a pcap
/// converter). Blank lines and `#` comments are skipped.
///
/// # Errors
/// [`io::ErrorKind::InvalidData`] for unknown field names, missing `=`,
/// or non-hex values; reader errors are propagated.
pub fn read_trace(r: impl BufRead) -> io::Result<Vec<HeaderValues>> {
    let bad = |line_no: usize, what: &str| {
        io::Error::new(io::ErrorKind::InvalidData, format!("trace line {line_no}: {what}"))
    };
    let mut out = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        let line_no = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut h = HeaderValues::new();
        if line != "-" {
            for pair in line.split_ascii_whitespace() {
                let Some((name, hex)) = pair.split_once('=') else {
                    return Err(bad(line_no, &format!("`{pair}` is not a field=hex pair")));
                };
                let Some(&field) = MatchFieldKind::ALL.iter().find(|f| f.name() == name) else {
                    return Err(bad(line_no, &format!("unknown field `{name}`")));
                };
                let value = u128::from_str_radix(hex, 16)
                    .map_err(|_| bad(line_no, &format!("`{hex}` is not a hex value")))?;
                let width = field.bit_width();
                if width < 128 && value >> width != 0 {
                    return Err(bad(
                        line_no,
                        &format!("`{hex}` exceeds the {width}-bit field `{name}`"),
                    ));
                }
                // A repeated key on one line is a malformed record, not a
                // last-wins overwrite: silently keeping either value would
                // replay a packet the recorder never saw.
                if h.contains(field) {
                    return Err(bad(line_no, &format!("duplicate field `{name}`")));
                }
                h.set(field, value);
            }
        }
        out.push(h);
    }
    Ok(out)
}

/// [`write_trace`] to a file path.
///
/// # Errors
/// Propagates file-creation and write errors.
pub fn write_trace_file(path: impl AsRef<Path>, headers: &[HeaderValues]) -> io::Result<()> {
    write_trace(io::BufWriter::new(std::fs::File::create(path)?), headers)
}

/// [`read_trace`] from a file path.
///
/// # Errors
/// Propagates file-open errors and [`read_trace`]'s parse errors.
pub fn read_trace_file(path: impl AsRef<Path>) -> io::Result<Vec<HeaderValues>> {
    read_trace(io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::parse_packet;

    fn template() -> HeaderValues {
        HeaderValues::new()
            .with(MatchFieldKind::EthSrc, 0x0200_0000_0001)
            .with(MatchFieldKind::EthDst, 0x0200_0000_0002)
            .with(MatchFieldKind::VlanVid, 100)
            .with(MatchFieldKind::Ipv4Dst, 0x0A00_0001)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = TraceGenerator::new(vec![template()], 0.5, 42);
        let mut b = TraceGenerator::new(vec![template()], 0.5, 42);
        assert_eq!(a.headers(100), b.headers(100));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TraceGenerator::new(vec![template()], 0.5, 1);
        let mut b = TraceGenerator::new(vec![template()], 0.5, 2);
        assert_ne!(a.headers(100), b.headers(100));
    }

    #[test]
    fn full_hit_ratio_only_emits_templates() {
        let mut g = TraceGenerator::new(vec![template()], 1.0, 7);
        for h in g.headers(50) {
            assert_eq!(h, template());
        }
    }

    #[test]
    fn zero_hit_ratio_perturbs() {
        let mut g = TraceGenerator::new(vec![template()], 0.0, 7);
        let perturbed = g.headers(50).iter().filter(|h| **h != template()).count();
        assert!(perturbed > 45, "almost all should be perturbed, got {perturbed}");
    }

    #[test]
    fn frames_parse_back() {
        let mut g = TraceGenerator::new(vec![template()], 1.0, 3);
        for f in g.frames(10) {
            let pkt = parse_packet(&f).unwrap();
            let h = pkt.header_values(0);
            assert_eq!(h.get(MatchFieldKind::Ipv4Dst), Some(0x0A00_0001));
            // VLAN vid in OpenFlow encoding has the present bit.
            assert_eq!(h.get(MatchFieldKind::VlanVid), Some(0x1000 | 100));
        }
    }

    #[test]
    #[should_panic(expected = "at least one template")]
    fn empty_templates_panic() {
        let _ = TraceGenerator::new(vec![], 1.0, 0);
    }

    #[test]
    fn trace_file_roundtrip() {
        let mut g = TraceGenerator::new(vec![template()], 0.5, 13);
        let mut headers = g.headers(64);
        headers.push(HeaderValues::new()); // field-less packets survive too
        let mut buf = Vec::new();
        write_trace(&mut buf, &headers).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, headers);
    }

    #[test]
    fn trace_parser_skips_comments_and_blanks() {
        let text = "# a comment\n\n  \nin_port=1 ipv4_dst=a010203\n# tail\n-\n";
        let parsed = read_trace(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].get(MatchFieldKind::InPort), Some(1));
        assert_eq!(parsed[0].get(MatchFieldKind::Ipv4Dst), Some(0x0A01_0203));
        assert_eq!(parsed[1].len(), 0);
    }

    #[test]
    fn trace_parser_rejects_garbage() {
        for (text, what) in [
            ("nonsense_field=1\n", "unknown field"),
            ("in_port\n", "field=hex"),
            ("in_port=zz\n", "hex value"),
            // Wider than the field: silently masking would replay a
            // different packet than was recorded.
            ("in_port=1ffffffff\n", "exceeds"),
            ("vlan_vid=10000\n", "exceeds"),
            // A duplicate key is a malformed record: last-wins would
            // silently replay a packet the recorder never saw.
            ("in_port=1 ipv4_dst=a in_port=2\n", "duplicate field"),
            ("in_port=1 in_port=1\n", "duplicate field"),
        ] {
            let err = read_trace(text.as_bytes()).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{text}");
            assert!(err.to_string().contains(what), "{text}: {err}");
        }
    }

    #[test]
    fn trace_file_helpers_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("ofpacket-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t{}.trace", std::process::id()));
        let mut g = TraceGenerator::new(vec![template()], 1.0, 5);
        let headers = g.headers(16);
        write_trace_file(&path, &headers).unwrap();
        assert_eq!(read_trace_file(&path).unwrap(), headers);
        std::fs::remove_file(&path).ok();
    }
}
