//! # ofpacket — byte-level packet substrate
//!
//! Construction, parsing and field extraction for the protocol stack the
//! paper's filters classify: Ethernet II, 802.1Q VLAN, MPLS, ARP, IPv4,
//! IPv6, TCP, UDP and ICMP.
//!
//! The crate serves three purposes in the reproduction:
//!
//! 1. **Realistic inputs** — lookup benchmarks classify real packet bytes,
//!    not pre-parsed tuples, so header extraction cost is visible.
//! 2. **Field extraction** — [`extract::parse_packet`] turns raw bytes into
//!    [`oflow::HeaderValues`], the interface all classifiers consume.
//! 3. **Trace generation** — [`trace`] synthesises packet streams that hit
//!    or miss a given rule population with a chosen ratio, and [`pcap`]
//!    ingests real classic-libpcap captures into the same replay format.
//!
//! All multi-byte fields are network byte order (big-endian) on the wire.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod builder;
pub mod checksum;
pub mod extract;
pub mod headers;
pub mod pcap;
pub mod trace;

pub use addr::MacAddr;
pub use builder::PacketBuilder;
pub use extract::{parse_packet, ParseError, ParsedPacket};
