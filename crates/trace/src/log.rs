//! The `flight.log` binary image: the recorder's drained timeline,
//! checksummed so a torn or half-written region is rejected at decode
//! instead of producing a fictional post-mortem.
//!
//! Layout (all little-endian):
//!
//! ```text
//! [0..8)    magic  "MTLFLT01"
//! [8..16)   event count (u64)
//! then per event, 32 bytes: ts_ns u64 | code u64 | a u64 | b u64
//!           where code = kind << 16 | lane
//! trailer   FNV-1a 64 over everything before it (u64)
//! ```

use crate::ring::{Event, EventKind};

/// The 8-byte magic that opens every flight-log image.
pub const FLIGHT_LOG_MAGIC: [u8; 8] = *b"MTLFLT01";

const HEADER: usize = 16;
const EVENT_BYTES: usize = 32;
const TRAILER: usize = 8;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes a drained timeline into one self-validating image.
#[must_use]
pub fn encode_flight_log(events: &[Event]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + events.len() * EVENT_BYTES + TRAILER);
    out.extend_from_slice(&FLIGHT_LOG_MAGIC);
    out.extend_from_slice(&(events.len() as u64).to_le_bytes());
    for e in events {
        out.extend_from_slice(&e.ts_ns.to_le_bytes());
        let code = (u64::from(e.kind as u16) << 16) | u64::from(e.lane);
        out.extend_from_slice(&code.to_le_bytes());
        out.extend_from_slice(&e.a.to_le_bytes());
        out.extend_from_slice(&e.b.to_le_bytes());
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut word = [0u8; 8];
    word.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(word)
}

/// Decodes a flight-log image, rejecting torn, truncated, corrupt, or
/// unknown-format regions.
///
/// # Errors
/// Returns a human-readable reason on any structural violation.
pub fn decode_flight_log(bytes: &[u8]) -> Result<Vec<Event>, String> {
    if bytes.len() < HEADER + TRAILER {
        return Err(format!("flight log too short ({} bytes)", bytes.len()));
    }
    if bytes[..8] != FLIGHT_LOG_MAGIC {
        return Err("flight log magic mismatch".into());
    }
    let body = &bytes[..bytes.len() - TRAILER];
    let want = read_u64(bytes, bytes.len() - TRAILER);
    let got = fnv1a(body);
    if want != got {
        return Err(format!("flight log checksum mismatch (want {want:#x}, got {got:#x})"));
    }
    let count = read_u64(bytes, 8);
    let expected = HEADER + (count as usize).saturating_mul(EVENT_BYTES) + TRAILER;
    if bytes.len() != expected {
        return Err(format!(
            "flight log length {} does not match its {count}-event header",
            bytes.len()
        ));
    }
    let mut events = Vec::with_capacity(count as usize);
    for i in 0..count as usize {
        let at = HEADER + i * EVENT_BYTES;
        let ts_ns = read_u64(bytes, at);
        let code = read_u64(bytes, at + 8);
        let a = read_u64(bytes, at + 16);
        let b = read_u64(bytes, at + 24);
        let kind_code = u16::try_from(code >> 16)
            .map_err(|_| format!("event {i}: kind field overflows u16"))?;
        let lane = u16::try_from(code & 0xFFFF).expect("masked to 16 bits");
        let kind = EventKind::from_code(kind_code)
            .ok_or_else(|| format!("event {i}: unknown kind code {kind_code}"))?;
        events.push(Event { ts_ns, lane, kind, a, b });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline() -> Vec<Event> {
        vec![
            Event { ts_ns: 10, lane: 0, kind: EventKind::Boot, a: 3, b: 17 },
            Event { ts_ns: 25, lane: 1, kind: EventKind::WalAppend, a: 18, b: 96 },
            Event { ts_ns: 40, lane: 1, kind: EventKind::CheckpointSuccess, a: 4, b: 18 },
        ]
    }

    #[test]
    fn round_trips_exactly() {
        let events = timeline();
        let bytes = encode_flight_log(&events);
        assert_eq!(decode_flight_log(&bytes).expect("decodes"), events);
        assert_eq!(decode_flight_log(&encode_flight_log(&[])).expect("empty ok"), Vec::new());
    }

    #[test]
    fn rejects_truncation_corruption_and_bad_magic() {
        let bytes = encode_flight_log(&timeline());
        assert!(decode_flight_log(&bytes[..bytes.len() - 1]).is_err(), "truncated");
        let mut flipped = bytes.clone();
        flipped[HEADER + 4] ^= 0x40;
        assert!(decode_flight_log(&flipped).is_err(), "corrupt payload");
        let mut magic = bytes.clone();
        magic[0] ^= 0xFF;
        assert!(decode_flight_log(&magic).is_err(), "bad magic");
        assert!(decode_flight_log(&[]).is_err(), "empty region");
    }

    #[test]
    fn rejects_unknown_kind_codes_even_with_a_valid_checksum() {
        let mut events = timeline();
        events[0].ts_ns = 1;
        let mut bytes = encode_flight_log(&events);
        // Overwrite event 0's kind with an unknown code and re-seal the
        // checksum: structure valid, vocabulary not.
        let bogus_code = 999u64 << 16;
        bytes[HEADER + 8..HEADER + 16].copy_from_slice(&bogus_code.to_le_bytes());
        let body_len = bytes.len() - TRAILER;
        let checksum = fnv1a(&bytes[..body_len]);
        let len = bytes.len();
        bytes[len - TRAILER..].copy_from_slice(&checksum.to_le_bytes());
        let err = decode_flight_log(&bytes).unwrap_err();
        assert!(err.contains("unknown kind"), "{err}");
    }
}
