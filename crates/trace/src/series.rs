//! The in-memory metrics time-series: a bounded ring of telemetry
//! samples plus first-class deltas, so rates (publishes/s, sheds/s,
//! hit-rate trend) come from one place instead of being re-derived by
//! every caller.
//!
//! Sampling runs on its own cadence thread far from the hot path; a
//! `Mutex` around the ring is deliberate — contention is one sampler
//! writer against occasional dump readers.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Default retained samples (at a 50 ms cadence: ~25 s of history).
pub const DEFAULT_SERIES_CAPACITY: usize = 512;

/// One telemetry sample: a timestamp plus named values. Keys are
/// static so samples never allocate strings; values are `f64` (every
/// counter/gauge the runtime exposes fits).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricPoint {
    /// Monotonic nanoseconds (same clock as the flight recorder).
    pub ts_ns: u64,
    /// Named values, in capture order.
    pub values: Vec<(&'static str, f64)>,
}

impl MetricPoint {
    /// Value lookup by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<f64> {
        self.values.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

/// The per-key change between two consecutive samples.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesDelta {
    /// Timestamp of the newer sample.
    pub ts_ns: u64,
    /// Wall time between the two samples.
    pub dt_ns: u64,
    /// Per key: (delta over the interval, rate per second).
    pub changes: Vec<(&'static str, f64, f64)>,
}

/// Deltas between each consecutive pair of samples. Keys are matched
/// by name (a key absent from either side is skipped); rate is
/// delta / seconds. Monotonic counters yield events/s, gauges yield a
/// trend slope — the caller knows which is which by key.
#[must_use]
pub fn deltas(points: &[MetricPoint]) -> Vec<SeriesDelta> {
    points
        .windows(2)
        .map(|pair| {
            let (prev, next) = (&pair[0], &pair[1]);
            let dt_ns = next.ts_ns.saturating_sub(prev.ts_ns);
            let secs = (dt_ns as f64 / 1e9).max(1e-12);
            let changes = next
                .values
                .iter()
                .filter_map(|&(key, value)| {
                    prev.get(key).map(|before| {
                        let delta = value - before;
                        (key, delta, delta / secs)
                    })
                })
                .collect();
            SeriesDelta { ts_ns: next.ts_ns, dt_ns, changes }
        })
        .collect()
}

/// The bounded sample ring (overwrite-oldest).
pub struct SeriesRing {
    capacity: usize,
    points: Mutex<VecDeque<MetricPoint>>,
    total: AtomicU64,
}

impl SeriesRing {
    /// A ring retaining at most `capacity` samples.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        Self {
            capacity,
            points: Mutex::new(VecDeque::with_capacity(capacity)),
            total: AtomicU64::new(0),
        }
    }

    /// Appends a sample, evicting the oldest at capacity.
    pub fn push(&self, point: MetricPoint) {
        let mut points = self.points.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if points.len() == self.capacity {
            points.pop_front();
        }
        points.push_back(point);
        self.total.fetch_add(1, Relaxed);
    }

    /// The resident samples, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<MetricPoint> {
        self.points
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Samples ever pushed (including evicted ones).
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.total.load(Relaxed)
    }

    /// Retention bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(ts_ns: u64, publishes: f64, hit_rate: f64) -> MetricPoint {
        MetricPoint { ts_ns, values: vec![("publishes", publishes), ("hit_rate", hit_rate)] }
    }

    #[test]
    fn ring_bounds_residency_and_counts_totals() {
        let ring = SeriesRing::new(3);
        for i in 0..10u64 {
            ring.push(point(i, i as f64, 0.5));
        }
        let resident = ring.snapshot();
        assert_eq!(resident.len(), 3);
        assert_eq!(resident[0].ts_ns, 7, "oldest evicted");
        assert_eq!(ring.total_samples(), 10);
    }

    #[test]
    fn deltas_compute_per_second_rates_between_consecutive_samples() {
        // Two samples 500 ms apart; publishes went 10 → 35.
        let points = vec![point(1_000_000_000, 10.0, 0.50), point(1_500_000_000, 35.0, 0.60)];
        let ds = deltas(&points);
        assert_eq!(ds.len(), 1);
        let d = &ds[0];
        assert_eq!(d.dt_ns, 500_000_000);
        let (_, delta, rate) =
            *d.changes.iter().find(|(k, _, _)| *k == "publishes").expect("key matched");
        assert!((delta - 25.0).abs() < 1e-9);
        assert!((rate - 50.0).abs() < 1e-9, "25 publishes over 0.5 s = 50/s, got {rate}");
        let (_, hr_delta, _) =
            *d.changes.iter().find(|(k, _, _)| *k == "hit_rate").expect("gauge matched");
        assert!((hr_delta - 0.1).abs() < 1e-9, "hit-rate trend is a first-class delta");
    }

    #[test]
    fn deltas_skip_keys_missing_on_either_side() {
        let a = MetricPoint { ts_ns: 0, values: vec![("x", 1.0)] };
        let b = MetricPoint { ts_ns: 1_000_000_000, values: vec![("x", 2.0), ("y", 9.0)] };
        let ds = deltas(&[a, b]);
        assert_eq!(ds[0].changes.len(), 1, "y has no previous value to difference");
        assert_eq!(ds[0].changes[0].0, "x");
    }
}
