//! The lock-free per-lane event ring.
//!
//! Single ordering contract: a writer fully populates a slot's payload
//! words with relaxed stores, then publishes the slot by storing its
//! claim ticket (+1) into `seq` with release ordering. A reader
//! acquires `seq`, copies the payload, and re-acquires `seq`: if the
//! two loads differ, a wrapping writer raced the copy and the slot is
//! discarded rather than guessed at. Tickets strictly increase per
//! slot (each wrap adds the ring capacity), so a torn read can never
//! be mistaken for a clean one.

use std::sync::atomic::{
    AtomicU64,
    Ordering::{AcqRel, Acquire, Relaxed, Release},
};
use std::time::Instant;

/// Default events retained per lane (a power of two; ~64 KiB/lane).
pub const DEFAULT_EVENTS_PER_LANE: usize = 1024;

/// Upper bound on per-lane capacity (keeps `flight.log` regions and
/// trace dumps bounded even with a hostile config).
pub const EVENTS_PER_LANE_MAX: usize = 1 << 16;

/// What happened. The numeric values are part of the on-disk
/// `flight.log` format — append only, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum EventKind {
    /// Runtime boot finished: a = restored snapshot version (0 when
    /// booting from the fallback table), b = WAL records replayed.
    Boot = 1,
    /// A batch part was submitted to a shard: a = packets, b = queue
    /// depth after enqueue.
    BatchSubmit = 2,
    /// A shard finished serving a batch part: a = packets, b = table
    /// version that served them.
    BatchServe = 3,
    /// A worker re-acquired the published snapshot: a = new version,
    /// b = previous version.
    SnapshotRefresh = 4,
    /// The control plane published a new table: a = version, b = rules
    /// in the table (when cheaply known, else 0).
    Publish = 5,
    /// A worker's flow cache rolled to a new epoch: a = epoch.
    CacheEpochBump = 6,
    /// Admission shed a job: a = packets, b = queued jobs at the time.
    ShedJob = 7,
    /// A job expired its deadline: a = packets.
    DeadlineShed = 8,
    /// A ticket wait timed out: a = packets still missing.
    TicketTimeout = 9,
    /// A worker panicked: a = shard.
    WorkerPanic = 10,
    /// The supervisor respawned a worker: a = shard, b = that shard's
    /// restart count.
    WorkerRespawn = 11,
    /// The supervisor detected a stalled shard: a = shard, b = stall
    /// duration so far (ns).
    WorkerStall = 12,
    /// A WAL record became durable: a = sequence number, b = bytes.
    WalAppend = 13,
    /// The WAL rotated to a fresh segment: a = segments rotated so far.
    WalRotate = 14,
    /// A checkpoint attempt began: a = table version.
    CheckpointStart = 15,
    /// The checkpoint became durable: a = table version, b = WAL
    /// sequence watermark it covers.
    CheckpointSuccess = 16,
    /// The checkpoint failed (and the runtime degraded or stayed
    /// degraded): a = table version.
    CheckpointFailure = 17,
    /// Degraded WAL-only mode entered: a = consecutive failures.
    DegradedEnter = 18,
    /// A durable checkpoint ended the degraded episode.
    DegradedExit = 19,
    /// Retention GC ran: a = segments removed, b = snapshots removed.
    GcPass = 20,
    /// A whole-runtime restore began: a = run epoch being replaced.
    RestoreBegin = 21,
    /// The restore finished: a = new run epoch, b = restored version.
    RestoreEnd = 22,
    /// A control-plane span opened: a = span id, b = [`SpanOp`] code.
    SpanBegin = 23,
    /// The span closed: a = span id, b = resulting table version
    /// (0 when the operation failed).
    SpanEnd = 24,
    /// The recorder was flushed to the store: a = bytes written.
    FlightFlush = 25,
    /// The metrics sampler captured a snapshot: a = sample ordinal.
    SamplerTick = 26,
}

impl EventKind {
    /// Decodes the on-disk code; unknown codes are an error (the
    /// flight log is versioned, never guessed at).
    #[must_use]
    pub fn from_code(code: u16) -> Option<Self> {
        Some(match code {
            1 => Self::Boot,
            2 => Self::BatchSubmit,
            3 => Self::BatchServe,
            4 => Self::SnapshotRefresh,
            5 => Self::Publish,
            6 => Self::CacheEpochBump,
            7 => Self::ShedJob,
            8 => Self::DeadlineShed,
            9 => Self::TicketTimeout,
            10 => Self::WorkerPanic,
            11 => Self::WorkerRespawn,
            12 => Self::WorkerStall,
            13 => Self::WalAppend,
            14 => Self::WalRotate,
            15 => Self::CheckpointStart,
            16 => Self::CheckpointSuccess,
            17 => Self::CheckpointFailure,
            18 => Self::DegradedEnter,
            19 => Self::DegradedExit,
            20 => Self::GcPass,
            21 => Self::RestoreBegin,
            22 => Self::RestoreEnd,
            23 => Self::SpanBegin,
            24 => Self::SpanEnd,
            25 => Self::FlightFlush,
            26 => Self::SamplerTick,
            _ => return None,
        })
    }

    /// Stable lower-snake name (rendered into trace dumps).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Boot => "boot",
            Self::BatchSubmit => "batch_submit",
            Self::BatchServe => "batch_serve",
            Self::SnapshotRefresh => "snapshot_refresh",
            Self::Publish => "publish",
            Self::CacheEpochBump => "cache_epoch_bump",
            Self::ShedJob => "shed_job",
            Self::DeadlineShed => "deadline_shed",
            Self::TicketTimeout => "ticket_timeout",
            Self::WorkerPanic => "worker_panic",
            Self::WorkerRespawn => "worker_respawn",
            Self::WorkerStall => "worker_stall",
            Self::WalAppend => "wal_append",
            Self::WalRotate => "wal_rotate",
            Self::CheckpointStart => "checkpoint_start",
            Self::CheckpointSuccess => "checkpoint_success",
            Self::CheckpointFailure => "checkpoint_failure",
            Self::DegradedEnter => "degraded_enter",
            Self::DegradedExit => "degraded_exit",
            Self::GcPass => "gc_pass",
            Self::RestoreBegin => "restore_begin",
            Self::RestoreEnd => "restore_end",
            Self::SpanBegin => "span_begin",
            Self::SpanEnd => "span_end",
            Self::FlightFlush => "flight_flush",
            Self::SamplerTick => "sampler_tick",
        }
    }
}

/// The control-plane operation a span covers (the `b` payload of
/// [`EventKind::SpanBegin`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum SpanOp {
    AddRule = 1,
    RemoveRule = 2,
    SwapTable = 3,
}

impl SpanOp {
    /// Stable name for trace rendering; unknown codes render as `op`.
    #[must_use]
    pub fn name_of(code: u64) -> &'static str {
        match code {
            1 => "add_rule",
            2 => "remove_rule",
            3 => "swap_table",
            _ => "op",
        }
    }
}

/// One drained event, decoded out of its slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Monotonic nanoseconds since the recorder was created.
    pub ts_ns: u64,
    /// Lane that emitted it (shard id, or a service lane).
    pub lane: u16,
    pub kind: EventKind,
    pub a: u64,
    pub b: u64,
}

/// One ring slot, padded to a cache line so lanes and neighbouring
/// slots never false-share. `seq` is the claim-ticket publication
/// word; the rest are payload.
#[repr(align(64))]
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    code: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// One lane's fixed-capacity overwrite-oldest ring.
struct Lane {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl Lane {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().clamp(8, EVENTS_PER_LANE_MAX);
        let slots = (0..capacity).map(|_| Slot::default()).collect();
        Self { slots, head: AtomicU64::new(0) }
    }

    #[inline]
    fn emit(&self, ts_ns: u64, lane: u16, kind: EventKind, a: u64, b: u64) {
        let ticket = self.head.fetch_add(1, Relaxed);
        let slot = &self.slots[(ticket as usize) & (self.slots.len() - 1)];
        slot.ts.store(ts_ns, Relaxed);
        slot.code.store((u64::from(kind as u16) << 16) | u64::from(lane), Relaxed);
        slot.a.store(a, Relaxed);
        slot.b.store(b, Relaxed);
        slot.seq.store(ticket + 1, Release);
    }

    /// Seq-validated drain of whatever is currently resident; torn
    /// slots (a writer wrapped mid-copy) are skipped, never guessed.
    fn drain_into(&self, out: &mut Vec<Event>) {
        for slot in self.slots.iter() {
            let before = slot.seq.load(Acquire);
            if before == 0 {
                continue; // never written
            }
            let ts_ns = slot.ts.load(Relaxed);
            let code = slot.code.load(Relaxed);
            let a = slot.a.load(Relaxed);
            let b = slot.b.load(Relaxed);
            if slot.seq.load(Acquire) != before {
                continue; // torn by a wrapping writer
            }
            #[allow(clippy::cast_possible_truncation)]
            let (kind_code, lane) = ((code >> 16) as u16, (code & 0xFFFF) as u16);
            if let Some(kind) = EventKind::from_code(kind_code) {
                out.push(Event { ts_ns, lane, kind, a, b });
            }
        }
    }
}

/// The per-shard flight recorder: `shards` worker lanes plus three
/// service lanes (control plane, durability, supervisor).
pub struct FlightRecorder {
    base: Instant,
    lanes: Vec<Lane>,
    shards: usize,
    next_span: AtomicU64,
    flushes: AtomicU64,
}

impl FlightRecorder {
    /// A recorder for `shards` worker lanes with `events_per_lane`
    /// slots each (rounded up to a power of two, clamped to
    /// [`EVENTS_PER_LANE_MAX`]).
    #[must_use]
    pub fn new(shards: usize, events_per_lane: usize) -> Self {
        let lane_count = shards + 3;
        Self {
            base: Instant::now(),
            lanes: (0..lane_count).map(|_| Lane::new(events_per_lane)).collect(),
            shards,
            next_span: AtomicU64::new(1),
            flushes: AtomicU64::new(0),
        }
    }

    /// Worker-shard lane index (identity; named for call-site clarity).
    #[must_use]
    pub fn shard_lane(&self, shard: usize) -> u16 {
        debug_assert!(shard < self.shards);
        lane_u16(shard)
    }

    /// The control-plane lane (publishes, spans).
    #[must_use]
    pub fn control_lane(&self) -> u16 {
        lane_u16(self.shards)
    }

    /// The durability lane (WAL, checkpoints, GC, degraded mode).
    #[must_use]
    pub fn durability_lane(&self) -> u16 {
        lane_u16(self.shards + 1)
    }

    /// The supervisor lane (panics, respawns, stalls, restores).
    #[must_use]
    pub fn supervisor_lane(&self) -> u16 {
        lane_u16(self.shards + 2)
    }

    /// Total lanes (shards + 3 service lanes).
    #[must_use]
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Worker lanes.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Slots per lane.
    #[must_use]
    pub fn events_per_lane(&self) -> usize {
        self.lanes.first().map_or(0, |l| l.slots.len())
    }

    /// Monotonic nanoseconds since the recorder was created.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.base.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records one event on `lane`. This is the hot-path entry: one
    /// monotonic clock read, one relaxed `fetch_add`, five stores.
    #[inline]
    pub fn emit(&self, lane: u16, kind: EventKind, a: u64, b: u64) {
        let ts = self.now_ns();
        self.lanes[usize::from(lane)].emit(ts, lane, kind, a, b);
    }

    /// Opens a control-plane span; returns its process-unique id. The
    /// caller pairs it with [`FlightRecorder::span_end`].
    pub fn span_begin(&self, op: SpanOp) -> u64 {
        let id = self.next_span.fetch_add(1, Relaxed);
        self.emit(self.control_lane(), EventKind::SpanBegin, id, op as u64);
        id
    }

    /// Closes span `id`, recording the table version the operation
    /// produced (0 for a failed/no-op operation).
    pub fn span_end(&self, id: u64, version: u64) {
        self.emit(self.control_lane(), EventKind::SpanEnd, id, version);
    }

    /// Events ever recorded (including overwritten ones).
    #[must_use]
    pub fn events_recorded(&self) -> u64 {
        self.lanes.iter().map(|l| l.head.load(Relaxed)).sum()
    }

    /// Events lost to overwrite-oldest.
    #[must_use]
    pub fn events_overwritten(&self) -> u64 {
        self.lanes.iter().map(|l| l.head.load(Relaxed).saturating_sub(l.slots.len() as u64)).sum()
    }

    /// Counts a flush of this recorder to durable storage.
    pub fn count_flush(&self) -> u64 {
        self.flushes.fetch_add(1, AcqRel) + 1
    }

    /// Flushes performed so far.
    #[must_use]
    pub fn flushes(&self) -> u64 {
        self.flushes.load(Relaxed)
    }

    /// Drains every lane into one timeline, sorted by timestamp (ties
    /// broken by lane then kind, so the order is deterministic).
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.lanes.len() * 64);
        for lane in &self.lanes {
            lane.drain_into(&mut out);
        }
        out.sort_by_key(|e| (e.ts_ns, e.lane, e.kind as u16));
        out
    }
}

fn lane_u16(index: usize) -> u16 {
    u16::try_from(index).expect("lane count fits u16")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_cache_line_sized() {
        assert_eq!(std::mem::size_of::<Slot>(), 64);
        assert_eq!(std::mem::align_of::<Slot>(), 64);
    }

    #[test]
    fn emit_then_snapshot_round_trips_payloads_in_time_order() {
        let r = FlightRecorder::new(2, 64);
        r.emit(r.shard_lane(0), EventKind::BatchServe, 128, 7);
        r.emit(r.shard_lane(1), EventKind::SnapshotRefresh, 8, 7);
        r.emit(r.control_lane(), EventKind::Publish, 8, 42);
        let events = r.snapshot();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let serve = events.iter().find(|e| e.kind == EventKind::BatchServe).unwrap();
        assert_eq!((serve.lane, serve.a, serve.b), (0, 128, 7));
        assert_eq!(r.events_recorded(), 3);
        assert_eq!(r.events_overwritten(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_the_loss() {
        let r = FlightRecorder::new(1, 8);
        for i in 0..20 {
            r.emit(0, EventKind::BatchServe, i, 0);
        }
        let events = r.snapshot();
        assert_eq!(events.len(), 8, "capacity bounds residency");
        let mut payloads: Vec<u64> = events.iter().map(|e| e.a).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, (12..20).collect::<Vec<_>>(), "oldest were overwritten");
        assert_eq!(r.events_recorded(), 20);
        assert_eq!(r.events_overwritten(), 12);
    }

    #[test]
    fn spans_get_unique_ids_and_paired_events() {
        let r = FlightRecorder::new(1, 64);
        let a = r.span_begin(SpanOp::AddRule);
        let b = r.span_begin(SpanOp::RemoveRule);
        assert_ne!(a, b);
        r.span_end(a, 5);
        r.span_end(b, 0);
        let events = r.snapshot();
        let begins: Vec<_> = events.iter().filter(|e| e.kind == EventKind::SpanBegin).collect();
        let ends: Vec<_> = events.iter().filter(|e| e.kind == EventKind::SpanEnd).collect();
        assert_eq!(begins.len(), 2);
        assert_eq!(ends.len(), 2);
        assert_eq!(begins[0].b, SpanOp::AddRule as u64);
        assert!(ends.iter().any(|e| e.a == a && e.b == 5));
    }

    #[test]
    fn concurrent_writers_never_produce_garbage_kinds() {
        let r = std::sync::Arc::new(FlightRecorder::new(4, 64));
        std::thread::scope(|scope| {
            for shard in 0..4u16 {
                let r = std::sync::Arc::clone(&r);
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        r.emit(shard, EventKind::BatchServe, i, u64::from(shard));
                    }
                });
            }
            // A racing reader: every drained event must decode to a
            // real kind with a self-consistent payload.
            for _ in 0..50 {
                for e in r.snapshot() {
                    assert_eq!(e.kind, EventKind::BatchServe);
                    assert_eq!(e.b, u64::from(e.lane));
                }
            }
        });
        assert_eq!(r.events_recorded(), 20_000);
    }

    #[test]
    fn kind_codes_round_trip_and_reject_unknowns() {
        for code in 1..=26u16 {
            let kind = EventKind::from_code(code).expect("known code");
            assert_eq!(kind as u16, code);
            assert!(!kind.name().is_empty());
        }
        assert_eq!(EventKind::from_code(0), None);
        assert_eq!(EventKind::from_code(27), None);
    }
}
