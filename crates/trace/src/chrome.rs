//! Chrome `trace_event` rendering: the drained timeline plus sampled
//! metrics as one JSON document loadable in `chrome://tracing` or
//! Perfetto.
//!
//! Mapping: every lane is a thread (`tid`) of one process (`pid` 1),
//! named via `thread_name` metadata events; complete control-plane
//! spans render as `B`/`E` duration pairs; every other event is an
//! instant (`ph:"i"`, thread scope); metric samples render as counter
//! (`ph:"C"`) events, which Perfetto draws as stacked time series.

use crate::ring::{Event, EventKind, SpanOp};
use crate::series::MetricPoint;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Lane display name: worker shards, then the three service lanes.
fn lane_name(lane: u16, shards: usize) -> String {
    let lane = usize::from(lane);
    if lane < shards {
        format!("shard-{lane}")
    } else {
        match lane - shards {
            0 => "control".to_owned(),
            1 => "durability".to_owned(),
            _ => "supervisor".to_owned(),
        }
    }
}

fn push_event(out: &mut String, first: &mut bool, body: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('\n');
    out.push_str(body);
}

/// Microseconds with nanosecond resolution (trace_event's `ts` unit).
fn ts_us(ts_ns: u64) -> String {
    format!("{:.3}", ts_ns as f64 / 1e3)
}

/// Renders `events` (a [`crate::FlightRecorder::snapshot`]) and
/// `samples` (a [`crate::SeriesRing::snapshot`]) for `shards` worker
/// lanes as a complete Chrome trace_event JSON document.
#[must_use]
pub fn chrome_trace(shards: usize, events: &[Event], samples: &[MetricPoint]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + samples.len() * 128 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;

    // Thread-name metadata for every lane that appears.
    let mut lanes: Vec<u16> = events.iter().map(|e| e.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for &lane in &lanes {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                lane_name(lane, shards)
            ),
        );
    }

    // Pair spans: id → (begin event, op); ends consume their begin.
    // Unpaired halves (the ring overwrote the partner) fall through to
    // the instant pass — never a dangling B that corrupts the nesting.
    let mut open: HashMap<u64, &Event> = HashMap::new();
    let mut paired: Vec<(&Event, &Event)> = Vec::new();
    let mut instant: Vec<&Event> = Vec::new();
    for e in events {
        match e.kind {
            EventKind::SpanBegin => {
                open.insert(e.a, e);
            }
            EventKind::SpanEnd => match open.remove(&e.a) {
                Some(begin) => paired.push((begin, e)),
                None => instant.push(e),
            },
            _ => instant.push(e),
        }
    }
    instant.extend(open.into_values());
    instant.sort_by_key(|e| (e.ts_ns, e.lane, e.kind as u16));

    for (begin, end) in paired {
        let name = SpanOp::name_of(begin.b);
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"{name}\",\
                 \"args\":{{\"span\":{}}}}}",
                begin.lane,
                ts_us(begin.ts_ns),
                begin.a
            ),
        );
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"{name}\",\
                 \"args\":{{\"span\":{},\"version\":{}}}}}",
                end.lane,
                ts_us(end.ts_ns.max(begin.ts_ns)),
                end.a,
                end.b
            ),
        );
    }

    for e in instant {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{},\"s\":\"t\",\
                 \"name\":\"{}\",\"args\":{{\"a\":{},\"b\":{}}}}}",
                e.lane,
                ts_us(e.ts_ns),
                e.kind.name(),
                e.a,
                e.b
            ),
        );
    }

    // Metric samples as counter tracks.
    for p in samples {
        let mut args = String::new();
        for (i, (key, value)) in p.values.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            let rendered = if value.is_finite() { *value } else { 0.0 };
            let _ = write!(args, "\"{key}\":{rendered}");
        }
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{},\"name\":\"runtime\",\
                 \"args\":{{{args}}}}}",
                ts_us(p.ts_ns)
            ),
        );
    }

    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minijson::{parse_json, Json};

    fn sample_events() -> Vec<Event> {
        vec![
            Event { ts_ns: 100, lane: 2, kind: EventKind::SpanBegin, a: 1, b: 1 },
            Event { ts_ns: 150, lane: 3, kind: EventKind::WalAppend, a: 5, b: 64 },
            Event { ts_ns: 200, lane: 2, kind: EventKind::Publish, a: 6, b: 10 },
            Event { ts_ns: 250, lane: 2, kind: EventKind::SpanEnd, a: 1, b: 6 },
            Event { ts_ns: 300, lane: 0, kind: EventKind::SnapshotRefresh, a: 6, b: 5 },
            // An unpaired end (its begin was overwritten): must render
            // as an instant, not a dangling E.
            Event { ts_ns: 350, lane: 2, kind: EventKind::SpanEnd, a: 99, b: 7 },
        ]
    }

    fn samples() -> Vec<MetricPoint> {
        vec![MetricPoint { ts_ns: 400, values: vec![("publishes", 6.0), ("hit_rate", 0.8)] }]
    }

    #[test]
    fn output_is_valid_json_with_balanced_spans() {
        let text = chrome_trace(2, &sample_events(), &samples());
        let doc = parse_json(&text).expect("chrome trace parses as JSON");
        let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
        let mut begins = 0i64;
        let mut ends = 0i64;
        for e in events {
            let ph = e.get("ph").and_then(Json::as_str).expect("every event has ph");
            assert!(e.get("pid").is_some());
            assert!(e.get("tid").is_some());
            if ph != "M" {
                assert!(e.get("ts").and_then(Json::as_f64).is_some(), "non-meta events have ts");
            }
            match ph {
                "B" => begins += 1,
                "E" => ends += 1,
                _ => {}
            }
        }
        assert_eq!(begins, 1);
        assert_eq!(ends, 1, "the unpaired end rendered as an instant");
        assert!(
            events.iter().any(|e| e.get("ph").and_then(Json::as_str) == Some("C")),
            "metric samples render as counters"
        );
    }

    #[test]
    fn lanes_are_named_threads() {
        let text = chrome_trace(2, &sample_events(), &[]);
        let doc = parse_json(&text).expect("parses");
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str))
            .collect();
        assert_eq!(names, ["shard-0", "control", "durability"]);
    }

    #[test]
    fn timestamps_render_in_microseconds() {
        assert_eq!(ts_us(1_500), "1.500");
        assert_eq!(ts_us(0), "0.000");
    }
}
