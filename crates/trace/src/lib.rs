//! # mtl-trace — the runtime's flight recorder
//!
//! Always-on, low-overhead observability in the PerSyst mold:
//! collection cheap enough to never turn off, aggregation kept out of
//! the hot path.
//!
//! Three layers, bottom up:
//!
//! * [`FlightRecorder`] — one lock-free fixed-capacity ring of compact
//!   binary events per *lane* (one lane per worker shard, plus
//!   dedicated control-plane / durability / supervisor lanes). An event
//!   is a monotonic timestamp, a lane, an [`EventKind`], and two `u64`
//!   payload words, padded to one cache line so concurrent writers
//!   never share a line. Writers claim a slot with one relaxed
//!   `fetch_add` and publish with a release store — a few nanoseconds
//!   per *batch* on the dataplane, never per packet — and the ring
//!   overwrites oldest, so memory is bounded forever.
//! * **Spans** ([`FlightRecorder::span_begin`]) — paired begin/end
//!   events with a process-unique id, used by the control plane so an
//!   `add_rule` renders as a causal timeline: span begin → WAL append →
//!   publish → per-shard snapshot refreshes observed.
//! * [`SeriesRing`] — a bounded time-series of sampled telemetry
//!   gauges/counters with first-class [`deltas`]: rates between
//!   consecutive snapshots (publishes/s, sheds/s, hit-rate trend) are
//!   computed here, not re-derived by every caller.
//!
//! For crash forensics the recorder's drained timeline round-trips
//! through a checksummed binary image ([`encode_flight_log`] /
//! [`decode_flight_log`]) that the runtime persists as a bounded
//! `flight.log` region via its store; for humans, [`chrome_trace`]
//! renders events + samples as a Chrome `trace_event` JSON document
//! loadable in `chrome://tracing` or Perfetto.

#![forbid(unsafe_code)]

mod chrome;
mod log;
mod ring;
mod series;

pub use chrome::chrome_trace;
pub use log::{decode_flight_log, encode_flight_log, FLIGHT_LOG_MAGIC};
pub use ring::{
    Event, EventKind, FlightRecorder, SpanOp, DEFAULT_EVENTS_PER_LANE, EVENTS_PER_LANE_MAX,
};
pub use series::{deltas, MetricPoint, SeriesDelta, SeriesRing, DEFAULT_SERIES_CAPACITY};
