//! # minijson — the workspace's shared dependency-free JSON reader
//!
//! A minimal recursive-descent parser over the JSON subset the repo's
//! own tooling emits (bench artifacts, runtime telemetry, trace
//! exports). It is strict — unknown syntax is an error, not a guess —
//! and deliberately tiny: objects keep insertion order, numbers are
//! `f64` (every value our writers produce fits without loss of
//! meaning).
//!
//! Grown out of `xtask`'s bench-report tooling and promoted to a crate
//! so telemetry/trace schema tests can *parse* the documents they
//! validate instead of grepping for needles.

#![forbid(unsafe_code)]

/// A parsed JSON value. Objects keep insertion order; numbers are f64.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (None on missing key or non-object).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object field names, in document order (empty for non-objects).
    #[must_use]
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Convenience: `point.num("speedup")` with a named error.
    ///
    /// # Errors
    /// Returns the missing key's name when absent or non-numeric.
    pub fn num(&self, key: &str) -> Result<f64, String> {
        self.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing number `{key}`"))
    }
}

/// Parses a complete JSON document; trailing garbage is an error.
///
/// # Errors
/// Returns a byte-positioned message on any syntax violation.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ASCII slice");
    text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number `{text}`: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        // Surrogate pairs never appear in our tooling's
                        // output; map them to U+FFFD rather than guess.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 passes through verbatim.
                let len = utf8_len(c);
                let chunk = b.get(*pos..*pos + len).ok_or("truncated UTF-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_the_tooling_subset() {
        let json = parse_json(
            r#"{"experiment":"coldstart","n":3,"f":1.5,"neg":-2e3,
                "ok":true,"no":false,"nil":null,
                "arr":[1,2,3],"nested":{"s":"a\"b\\c\nA"}}"#,
        )
        .expect("parses");
        assert_eq!(json.get("experiment").and_then(Json::as_str), Some("coldstart"));
        assert_eq!(json.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(json.get("neg").and_then(Json::as_f64), Some(-2000.0));
        assert_eq!(json.get("arr").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        assert_eq!(
            json.get("nested").and_then(|n| n.get("s")).and_then(Json::as_str),
            Some("a\"b\\c\nA")
        );
    }

    #[test]
    fn parser_rejects_torn_documents() {
        for bad in [r#"{"a":1"#, "[1,2", r#"{"a"}"#, "{} trailing", r#""unterminated"#] {
            assert!(parse_json(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn keys_preserve_document_order() {
        let json = parse_json(r#"{"z":1,"a":2,"m":3}"#).expect("parses");
        assert_eq!(json.keys(), ["z", "a", "m"]);
        assert_eq!(Json::Null.keys(), Vec::<&str>::new());
    }

    #[test]
    fn num_names_its_missing_key() {
        let json = parse_json(r#"{"present":1.25}"#).expect("parses");
        assert_eq!(json.num("present"), Ok(1.25));
        assert!(json.num("absent").unwrap_err().contains("absent"));
    }
}
